#!/usr/bin/env python3
"""Validate the machine-readable benchmark snapshots at the repo root.

Every BENCH_*.json must (a) parse as JSON and (b) carry an integer
schema_version, so downstream tooling (and CI trend jobs) can rely on the
files without per-bench special cases. BENCH_decode.json additionally
must report tokens/s at all of 1/64/4096 concurrent streams with every
level bit-identical (the decode-tier contract). Run from anywhere:

    python3 tools/check_bench_json.py [repo_root]

Exit code 0 when every snapshot is valid, 1 otherwise. Stdlib only.
"""

import glob
import json
import os
import sys


def check(path: str) -> list:
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"does not parse: {e}"]
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append(f"schema_version missing or not an integer: {version!r}")
    if not doc.get("bench"):
        problems.append("missing 'bench' name")
    if doc.get("bench") == "decode":
        problems.extend(check_decode(doc))
    return problems


def check_decode(doc: dict) -> list:
    """The decode snapshot's contract: the full 1/64/4096-stream sweep,
    positive tokens/s at every level, and bit-identity everywhere."""
    problems = []
    levels = doc.get("levels")
    if not isinstance(levels, list):
        return ["'levels' missing or not a list"]
    by_streams = {}
    for entry in levels:
        if isinstance(entry, dict):
            by_streams[entry.get("streams")] = entry
    for want in (1, 64, 4096):
        entry = by_streams.get(want)
        if entry is None:
            problems.append(f"missing level for {want} streams")
            continue
        tps = entry.get("tokens_per_s")
        if not isinstance(tps, (int, float)) or isinstance(tps, bool) or tps <= 0:
            problems.append(f"{want} streams: tokens_per_s not positive: {tps!r}")
        if entry.get("bit_identical") is not True:
            problems.append(f"{want} streams: bit_identical is not true")
    if doc.get("bit_identical") is not True:
        problems.append("top-level bit_identical is not true")
    return problems


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir)
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"check_bench_json: no BENCH_*.json found under {root}", file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        problems = check(path)
        name = os.path.basename(path)
        if problems:
            failed = True
            for p in problems:
                print(f"FAIL {name}: {p}")
        else:
            print(f"ok   {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
