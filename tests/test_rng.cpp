#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace salo {
namespace {

TEST(Rng, DeterministicPerSeed) {
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(2);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(3);
    double sum = 0.0, sq = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.02);
    EXPECT_NEAR(sq / trials, 1.0, 0.03);
}

TEST(Rng, UniformIndexBounds) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
    EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
    Rng rng(5);
    const auto idx = rng.sample_indices(100, 10);
    ASSERT_EQ(idx.size(), 10u);
    std::set<int> seen;
    int prev = -1;
    for (int i : idx) {
        EXPECT_GE(i, 0);
        EXPECT_LT(i, 100);
        EXPECT_GT(i, prev);  // sorted strictly increasing
        prev = i;
        seen.insert(i);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleAllElements) {
    Rng rng(6);
    const auto idx = rng.sample_indices(5, 5);
    ASSERT_EQ(idx.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(idx[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace salo
