// Failure injection: every module must reject malformed configurations
// loudly (ContractViolation) instead of producing silently wrong cycle
// counts or outputs — the cardinal sin of a hardware model.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "model/salo_model.hpp"
#include "model/sanger.hpp"
#include "model/synthesis.hpp"
#include "scheduler/scheduler.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

TEST(FailureInjection, GeometryValidation) {
    ArrayGeometry g;
    g.rows = 0;
    EXPECT_THROW(g.validate(), ContractViolation);
    g = {};
    g.cols = -3;
    EXPECT_THROW(g.validate(), ContractViolation);
    g = {};
    g.frequency_ghz = 0.0;
    EXPECT_THROW(g.validate(), ContractViolation);
    g = {};
    g.key_buffer_bytes = 0;
    EXPECT_THROW(g.validate(), ContractViolation);
}

TEST(FailureInjection, EngineRejectsBadConfig) {
    SaloConfig c;
    c.geometry.rows = -1;
    EXPECT_THROW(SaloEngine{c}, ContractViolation);
    c = {};
    c.bus_bytes_per_cycle = 0;
    EXPECT_THROW(SaloEngine{c}, ContractViolation);
    c = {};
    c.exp_config.seg_bits = 99;
    EXPECT_THROW(SaloEngine{c}, ContractViolation);
    c = {};
    c.recip_config.nr_iters = -2;
    EXPECT_THROW(SaloEngine{c}, ContractViolation);
}

TEST(FailureInjection, SchedulerRejectsUndersizedBuffers) {
    ArrayGeometry g;
    g.query_buffer_bytes = 8;  // cannot hold 33 queries x 64 dims
    EXPECT_THROW(schedule(longformer(128, 16, 1), g, 64), ContractViolation);

    g = {};
    g.key_buffer_bytes = 64;  // cannot hold the diagonal stream
    g.value_buffer_bytes = 64;
    EXPECT_THROW(schedule(longformer(128, 16, 1), g, 64), ContractViolation);

    g = {};
    g.output_buffer_bytes = 4;
    EXPECT_THROW(schedule(longformer(128, 16, 1), g, 64), ContractViolation);
}

TEST(FailureInjection, SchedulerRejectsBadHeadDim) {
    ArrayGeometry g;
    EXPECT_THROW(schedule(longformer(128, 16, 1), g, 0), ContractViolation);
}

TEST(FailureInjection, EngineShapeMismatches) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    const SaloEngine engine(c);
    const auto pattern = longformer(16, 4, 1);
    Matrix<float> ok(16, 8), wrong_rows(8, 8), wrong_cols(16, 4);
    EXPECT_THROW(engine.run_head(pattern, wrong_rows, ok, ok, 1.0f), ContractViolation);
    EXPECT_THROW(engine.run_head(pattern, ok, wrong_cols, ok, 1.0f), ContractViolation);
    EXPECT_THROW(engine.run_head(pattern, ok, ok, wrong_rows, 1.0f), ContractViolation);
}

TEST(FailureInjection, MultiHeadCountMismatch) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    const SaloEngine engine(c);
    const auto pattern = longformer(16, 4, 1);
    Tensor3<float> q(2, 16, 8), k(3, 16, 8), v(2, 16, 8);
    EXPECT_THROW(engine.run(pattern, q, k, v, 1.0f), ContractViolation);
    Tensor3<float> empty;
    EXPECT_THROW(engine.run(pattern, empty, empty, empty, 1.0f), ContractViolation);
}

TEST(FailureInjection, SynthesisRejectsInvalidGeometry) {
    ArrayGeometry g;
    g.rows = 0;
    EXPECT_THROW(synthesize(g), ContractViolation);
}

TEST(FailureInjection, SangerRejectsZeroPes) {
    SangerConfig c;
    c.pe_rows = 0;
    EXPECT_THROW(sanger_estimate(c, longformer_small(64, 8, 1, 8, 1)),
                 ContractViolation);
}

TEST(FailureInjection, VerifyCoverageDetectsCorruption) {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    const auto pattern = longformer(32, 8, 1);
    SchedulePlan plan = schedule(pattern, g, 8, {});
    std::string error;
    ASSERT_TRUE(verify_coverage(pattern, plan, &error));

    // Corrupt a valid slot: double-counting must be caught.
    for (auto& tile : plan.tiles) {
        for (int r = 0; r < tile.rows(); ++r) {
            for (int c = 0; c + 1 < tile.cols(); ++c) {
                if (tile.is_valid(r, c) && !tile.is_valid(r, c + 1) &&
                    tile.segment_at(c + 1) != nullptr) {
                    tile.valid[static_cast<std::size_t>(r * tile.cols() + c + 1)] = 1;
                    EXPECT_FALSE(verify_coverage(pattern, plan, &error));
                    EXPECT_FALSE(error.empty());
                    return;
                }
            }
        }
    }
    FAIL() << "no corruptible slot found";
}

TEST(FailureInjection, VerifyCoverageDetectsMissingWork) {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    const auto pattern = longformer(32, 8, 1);
    SchedulePlan plan = schedule(pattern, g, 8, {});
    // Drop a tile entirely.
    plan.tiles.pop_back();
    std::string error;
    EXPECT_FALSE(verify_coverage(pattern, plan, &error));
    EXPECT_NE(error.find("coverage mismatch"), std::string::npos);
}

}  // namespace
}  // namespace salo
