#include "numeric/fake_quant.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "numeric/fixed.hpp"

namespace salo {
namespace {

TEST(FakeQuant, MatchesFixedFormatGrid) {
    // fake_quantize(3, 4) must agree with the compile-time InputFx (Q3.4)
    // on every representable point and on rounding behaviour.
    for (double x = -9.0; x <= 9.0; x += 0.0173) {
        const float fake = fake_quantize_value(static_cast<float>(x), 3, 4);
        const float fixed = InputFx::from_float(x).to_float();
        EXPECT_FLOAT_EQ(fake, fixed) << "x=" << x;
    }
}

TEST(FakeQuant, Saturates) {
    EXPECT_FLOAT_EQ(fake_quantize_value(100.0f, 3, 4), 7.9375f);
    EXPECT_FLOAT_EQ(fake_quantize_value(-100.0f, 3, 4), -8.0f);
    EXPECT_FLOAT_EQ(fake_quantize_value(std::nanf(""), 3, 4), 0.0f);
}

TEST(FakeQuant, FinerGridSmallerError) {
    Rng rng(1);
    const auto m = random_matrix(16, 16, rng, 0.0, 1.0);
    double prev = 1e9;
    for (int frac : {2, 4, 6, 8}) {
        const auto q = fake_quantize(m, 3, frac);
        const double err = max_abs_diff(m, q);
        EXPECT_LE(err, std::ldexp(1.0, -frac - 1) + 1e-9);
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(FakeQuant, IdempotentOnGridValues) {
    Rng rng(2);
    const auto m = random_matrix(8, 8, rng);
    const auto once = fake_quantize(m, 2, 5);
    const auto twice = fake_quantize(once, 2, 5);
    EXPECT_DOUBLE_EQ(max_abs_diff(once, twice), 0.0);
}

TEST(FakeQuant, RejectsBadFormats) {
    EXPECT_THROW(fake_quantize_value(1.0f, -1, 4), ContractViolation);
    EXPECT_THROW(fake_quantize_value(1.0f, 0, 0), ContractViolation);
    EXPECT_THROW(fake_quantize_value(1.0f, 20, 20), ContractViolation);
}

}  // namespace
}  // namespace salo
