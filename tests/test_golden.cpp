#include "attention/golden.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace salo {
namespace {

TEST(Softmax, RowSumsToOne) {
    Rng rng(1);
    Matrix<float> m = random_matrix(1, 50, rng, 0.0, 3.0);
    softmax_row_inplace(m.row(0));
    double sum = 0.0;
    for (float v : m.row(0)) {
        EXPECT_GE(v, 0.0f);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(Softmax, StableForLargeScores) {
    Matrix<float> m(1, 3);
    m(0, 0) = 1000.0f;
    m(0, 1) = 999.0f;
    m(0, 2) = -1000.0f;
    softmax_row_inplace(m.row(0));
    EXPECT_NEAR(m(0, 0), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5);
    EXPECT_FALSE(std::isnan(m(0, 0)));
    EXPECT_NEAR(m(0, 2), 0.0f, 1e-6);
}

TEST(Softmax, UniformScoresGiveUniformWeights) {
    Matrix<float> m(1, 8, 2.5f);
    softmax_row_inplace(m.row(0));
    for (float v : m.row(0)) EXPECT_NEAR(v, 0.125f, 1e-6);
}

TEST(DenseAttention, SingleKeyReturnsItsValue) {
    // n=1: softmax over one element is 1, output = v.
    Matrix<float> q(1, 4, 0.3f), k(1, 4, -0.7f), v(1, 4);
    for (int t = 0; t < 4; ++t) v(0, t) = static_cast<float>(t);
    const Matrix<float> out = dense_attention(q, k, v, 0.5f);
    for (int t = 0; t < 4; ++t) EXPECT_NEAR(out(0, t), v(0, t), 1e-6);
}

TEST(DenseAttention, OutputIsConvexCombinationOfValues) {
    Rng rng(2);
    const auto q = random_matrix(6, 8, rng);
    const auto k = random_matrix(6, 8, rng);
    const auto v = random_matrix(6, 8, rng);
    const Matrix<float> out = dense_attention(q, k, v, 0.35f);
    for (int i = 0; i < out.rows(); ++i) {
        for (int t = 0; t < out.cols(); ++t) {
            float lo = 1e30f, hi = -1e30f;
            for (int j = 0; j < v.rows(); ++j) {
                lo = std::min(lo, v(j, t));
                hi = std::max(hi, v(j, t));
            }
            EXPECT_GE(out(i, t), lo - 1e-5);
            EXPECT_LE(out(i, t), hi + 1e-5);
        }
    }
}

TEST(MaskedAttention, FullMaskEqualsDense) {
    Rng rng(3);
    const auto q = random_matrix(7, 8, rng);
    const auto k = random_matrix(7, 8, rng);
    const auto v = random_matrix(7, 8, rng);
    const auto dense = dense_attention(q, k, v, 0.35f);
    const auto masked = masked_attention(q, k, v, 0.35f, [](int, int) { return true; });
    EXPECT_LT(max_abs_diff(dense, masked), 1e-5);
}

TEST(MaskedAttention, EmptyRowGivesZeros) {
    Rng rng(4);
    const auto q = random_matrix(3, 4, rng);
    const auto k = random_matrix(3, 4, rng);
    const auto v = random_matrix(3, 4, rng);
    const auto out =
        masked_attention(q, k, v, 1.0f, [](int i, int) { return i != 1; });
    for (int t = 0; t < 4; ++t) EXPECT_FLOAT_EQ(out(1, t), 0.0f);
    // Other rows are unaffected non-zero results.
    double mag = 0.0;
    for (int t = 0; t < 4; ++t) mag += std::abs(out(0, t));
    EXPECT_GT(mag, 0.0);
}

TEST(MaskedAttention, DiagonalMaskSelectsOwnValue) {
    Rng rng(5);
    const auto q = random_matrix(5, 4, rng);
    const auto k = random_matrix(5, 4, rng);
    const auto v = random_matrix(5, 4, rng);
    const auto out = masked_attention(q, k, v, 1.0f, [](int i, int j) { return i == j; });
    for (int i = 0; i < 5; ++i)
        for (int t = 0; t < 4; ++t) EXPECT_NEAR(out(i, t), v(i, t), 1e-6);
}

TEST(MaskedAttention, MatchesManualTwoKeyComputation) {
    Matrix<float> q(1, 2), k(2, 2), v(2, 2);
    q(0, 0) = 1.0f;
    q(0, 1) = 0.0f;
    k(0, 0) = 1.0f;
    k(0, 1) = 0.0f;  // score 1
    k(1, 0) = -1.0f;
    k(1, 1) = 0.0f;  // score -1
    v(0, 0) = 1.0f;
    v(0, 1) = 0.0f;
    v(1, 0) = 0.0f;
    v(1, 1) = 1.0f;
    const auto out = masked_attention(q, k, v, 1.0f,
                                      [](int, int) { return true; });
    const double w0 = std::exp(1.0) / (std::exp(1.0) + std::exp(-1.0));
    EXPECT_NEAR(out(0, 0), w0, 1e-6);
    EXPECT_NEAR(out(0, 1), 1.0 - w0, 1e-6);
}

TEST(ScoreMatrix, AppliesScale) {
    Rng rng(6);
    const auto q = random_matrix(3, 4, rng);
    const auto k = random_matrix(3, 4, rng);
    const auto s1 = score_matrix(q, k, 1.0f);
    const auto s2 = score_matrix(q, k, 0.25f);
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_NEAR(s2.data()[i], s1.data()[i] * 0.25f, 1e-5);
}

}  // namespace
}  // namespace salo
