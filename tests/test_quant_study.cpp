#include "workload/quant_study.hpp"

#include <gtest/gtest.h>

namespace salo {
namespace {

SaloConfig small_config() {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    return c;
}

TEST(QuantStudy, QuantizationPreservesAccuracy) {
    // The Table 3 claim: fixed-point SALO matches float accuracy closely.
    QuantStudyConfig study;
    study.n = 48;
    study.head_dim = 16;
    study.window = 8;
    study.num_samples = 80;
    const auto result = run_quant_study(study, small_config());
    EXPECT_GT(result.accuracy_original, 65.0);  // task is learnable
    EXPECT_LT(result.accuracy_original, 100.0); // and not trivial
    EXPECT_NEAR(result.accuracy_quantized, result.accuracy_original, 5.0);
}

TEST(QuantStudy, DeterministicPerSeed) {
    QuantStudyConfig study;
    study.n = 32;
    study.head_dim = 8;
    study.window = 8;
    study.num_samples = 20;
    const auto a = run_quant_study(study, small_config());
    const auto b = run_quant_study(study, small_config());
    EXPECT_DOUBLE_EQ(a.accuracy_original, b.accuracy_original);
    EXPECT_DOUBLE_EQ(a.accuracy_quantized, b.accuracy_quantized);
}

TEST(QuantStudy, EasyTaskIsNearPerfect) {
    QuantStudyConfig study;
    study.n = 32;
    study.head_dim = 8;
    study.window = 8;
    study.noise = 0.2;
    study.confuser_prob = 0.2;  // strong signal
    study.num_samples = 30;
    const auto result = run_quant_study(study, small_config());
    EXPECT_GT(result.accuracy_original, 95.0);
    EXPECT_GT(result.accuracy_quantized, 95.0);
}

TEST(QuantStudy, RejectsBadConfig) {
    QuantStudyConfig study;
    study.num_classes = 1;
    EXPECT_THROW(run_quant_study(study, small_config()), ContractViolation);
}

}  // namespace
}  // namespace salo
