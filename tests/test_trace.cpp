#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace salo {
namespace {

SchedulePlan make_plan() {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    return schedule(longformer(32, 8, 1), g, 8, {});
}

TEST(Trace, RenderTileShowsMaskAndMetadata) {
    const auto plan = make_plan();
    ASSERT_FALSE(plan.tiles.empty());
    const std::string s = render_tile(plan.tiles.front());
    EXPECT_NE(s.find("segment"), std::string::npos);
    EXPECT_NE(s.find('#'), std::string::npos);  // some valid slots
    EXPECT_NE(s.find('q'), std::string::npos);  // query labels
    // 8 rows + header -> at least 9 lines.
    int lines = 0;
    for (char c : s)
        if (c == '\n') ++lines;
    EXPECT_GE(lines, 9);
}

TEST(Trace, RenderTileMarksGlobalColumnRows) {
    const auto plan = make_plan();
    bool found = false;
    for (const TileTask& tile : plan.tiles) {
        if (tile.global_col_key < 0) continue;
        const std::string s = render_tile(tile);
        EXPECT_NE(s.find("global_col_k=0"), std::string::npos);
        EXPECT_NE(s.find("+g"), std::string::npos);
        found = true;
        break;
    }
    EXPECT_TRUE(found);
}

TEST(Trace, RenderPlanSummarizes) {
    const auto plan = make_plan();
    const std::string s = render_plan(plan, 2);
    EXPECT_NE(s.find("plan: n=32"), std::string::npos);
    EXPECT_NE(s.find("#0:"), std::string::npos);
    EXPECT_NE(s.find("more tiles"), std::string::npos);  // capped
    const std::string full = render_plan(plan, 10000);
    EXPECT_EQ(full.find("more tiles"), std::string::npos);
}

TEST(Trace, RenderPlanShowsDilation) {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    const auto plan = schedule(dilated_window(32, -1, 1, 3), g, 8, {});
    const std::string s = render_plan(plan);
    EXPECT_NE(s.find("/d3"), std::string::npos);
}

TEST(Trace, CycleProfilePercentagesSumToAboutHundred) {
    const auto plan = make_plan();
    const std::string s = render_cycle_profile(plan, CycleConfig{});
    EXPECT_NE(s.find("stage1 Q*K^T"), std::string::npos);
    EXPECT_NE(s.find("stage5 S'*V"), std::string::npos);
    // Extract the five percentages (digits immediately before each '%')
    // and check they sum to ~100.
    int total = 0;
    for (std::size_t pos = s.find('%'); pos != std::string::npos;
         pos = s.find('%', pos + 1)) {
        std::size_t start = pos;
        while (start > 0 && std::isdigit(static_cast<unsigned char>(s[start - 1])))
            --start;
        total += std::atoi(s.substr(start, pos - start).c_str());
    }
    EXPECT_GE(total, 97);
    EXPECT_LE(total, 103);
}

}  // namespace
}  // namespace salo
