// Functional simulator vs float golden model: for every supported pattern
// family, running the scheduled tiles through the bit-accurate datapath and
// merging with the weighted-sum module must reproduce masked attention up to
// quantization tolerance.
#include <gtest/gtest.h>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/tile_executor.hpp"
#include "sim/wsm.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

// End-to-end quantization tolerance: inputs are Q3.4 (step 1/16), outputs
// Q7.8; with |v| ~ 1.5 the softmax-weighted result is accurate to a few
// input steps.
constexpr double kTolerance = 0.12;

struct SimResult {
    Matrix<float> output;
    ActivityStats activity;
};

SimResult run_functional(const HybridPattern& pattern, const Matrix<float>& q,
                         const Matrix<float>& k, const Matrix<float>& v, float scale,
                         const ArrayGeometry& geometry,
                         PackingMode packing = PackingMode::kPacked) {
    ScheduleOptions options;
    options.packing = packing;
    const SchedulePlan plan = schedule(pattern, geometry, q.cols(), options);
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error)) << error;

    Matrix<float> q_scaled = q;
    for (auto& x : q_scaled.data()) x *= scale;
    const auto qq = quantize<InputFx>(q_scaled);
    const auto kq = quantize<InputFx>(k);
    const auto vq = quantize<InputFx>(v);

    const PwlExp exp_unit;
    const Reciprocal recip_unit;
    const TileExecutor exec(exp_unit, recip_unit, qq, kq, vq);
    WeightedSumModule wsm(pattern.n(), q.cols(), recip_unit);
    SimResult result;
    std::vector<TilePart> parts;
    for (const TileTask& tile : plan.tiles) {
        parts.clear();
        exec.run(tile, parts, result.activity);
        for (const TilePart& p : parts) wsm.merge(p);
    }
    result.output = wsm.finalize();
    return result;
}

/// Golden reference computed on the *quantized* inputs (so the comparison
/// isolates datapath error from input quantization error).
Matrix<float> golden_on_quantized(const HybridPattern& pattern, const Matrix<float>& q,
                                  const Matrix<float>& k, const Matrix<float>& v,
                                  float scale) {
    Matrix<float> q_scaled = q;
    for (auto& x : q_scaled.data()) x *= scale;
    const auto qr = quantize_roundtrip<InputFx>(q_scaled);
    const auto kr = quantize_roundtrip<InputFx>(k);
    const auto vr = quantize_roundtrip<InputFx>(v);
    return masked_attention(qr, kr, vr, 1.0f, pattern.attend_fn());
}

void expect_matches_golden(const HybridPattern& pattern, int d, std::uint64_t seed,
                           const ArrayGeometry& geometry,
                           PackingMode packing = PackingMode::kPacked) {
    Rng rng(seed);
    const auto q = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const auto k = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const auto v = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const auto sim = run_functional(pattern, q, k, v, scale, geometry, packing);
    const auto gold = golden_on_quantized(pattern, q, k, v, scale);
    EXPECT_LT(max_abs_diff(sim.output, gold), kTolerance);
}

ArrayGeometry small_geometry(int rows = 8, int cols = 8) {
    ArrayGeometry g;
    g.rows = rows;
    g.cols = cols;
    return g;
}

TEST(Sim, SlidingWindowMatchesGolden) {
    expect_matches_golden(sliding_window(64, 8), 16, 1, small_geometry());
}

TEST(Sim, LongformerMatchesGolden) {
    expect_matches_golden(longformer(64, 8, 1), 16, 2, small_geometry());
}

TEST(Sim, LongformerTwoGlobalsMatchesGolden) {
    expect_matches_golden(longformer(48, 12, 2), 8, 3, small_geometry());
}

TEST(Sim, DilatedWindowMatchesGolden) {
    expect_matches_golden(dilated_window(64, -2, 2, 3), 8, 4, small_geometry());
}

TEST(Sim, Vil2dMatchesGolden) {
    expect_matches_golden(vil_2d(8, 8, 3, 3, 1), 8, 5, small_geometry());
}

TEST(Sim, Vil2dPerBandMatchesGolden) {
    expect_matches_golden(vil_2d(8, 8, 3, 3, 1), 8, 6, small_geometry(),
                          PackingMode::kPerBand);
}

TEST(Sim, StarTransformerMatchesGolden) {
    expect_matches_golden(star_transformer(40), 8, 7, small_geometry());
}

TEST(Sim, SparseTransformerStridedMatchesGolden) {
    expect_matches_golden(sparse_transformer_strided(48, 4), 8, 8, small_geometry());
}

TEST(Sim, SparseTransformerFixedMatchesGolden) {
    expect_matches_golden(sparse_transformer_fixed(40, 8), 8, 9, small_geometry());
}

TEST(Sim, AsymmetricWindowMatchesGolden) {
    expect_matches_golden(sliding_window_range(48, 0, 7), 8, 10, small_geometry());
}

TEST(Sim, NonSquareGeometry) {
    expect_matches_golden(longformer(64, 12, 1), 8, 11, small_geometry(4, 16));
    expect_matches_golden(longformer(64, 12, 1), 8, 12, small_geometry(16, 4));
}

TEST(Sim, WindowSplittingRenormalizes) {
    // Window of 24 split over 8 columns: three parts per query row, merged
    // by Eq. 2 — this is the core §4.2 correctness property.
    expect_matches_golden(sliding_window(64, 24), 8, 13, small_geometry());
}

TEST(Sim, ActivityCountsAreConsistent) {
    const auto pattern = longformer(64, 8, 1);
    Rng rng(20);
    const auto q = random_matrix(64, 8, rng, 0.0, 0.8);
    const auto k = random_matrix(64, 8, rng, 0.0, 0.8);
    const auto v = random_matrix(64, 8, rng, 0.0, 0.8);
    const auto sim = run_functional(pattern, q, k, v, 0.35f, small_geometry());
    // Every attended pair costs d MACs in stage 1 and d in stage 5.
    EXPECT_EQ(sim.activity.mac_ops, 2 * pattern.nnz() * 8);
    EXPECT_EQ(sim.activity.exp_ops, pattern.nnz());
}

TEST(Sim, ParameterizedSweepHoldsTolerance) {
    // Property-style sweep over window sizes and head dims.
    for (int w : {4, 10, 16}) {
        for (int d : {4, 8, 32}) {
            expect_matches_golden(sliding_window(48, w, {0}), d,
                                  static_cast<std::uint64_t>(100 + w * 10 + d),
                                  small_geometry());
        }
    }
}

// --- Parameterized suite over sequence lengths --------------------------

class SimSequenceLength : public ::testing::TestWithParam<int> {};

TEST_P(SimSequenceLength, LongformerMatchesGolden) {
    const int n = GetParam();
    expect_matches_golden(longformer(n, 8, 1), 8,
                          static_cast<std::uint64_t>(n), small_geometry());
}

INSTANTIATE_TEST_SUITE_P(Lengths, SimSequenceLength,
                         ::testing::Values(8, 15, 16, 33, 64, 100));

}  // namespace
}  // namespace salo
