#include "numeric/fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace salo {
namespace {

TEST(Fixed, InputFormatMatchesPaper) {
    // Paper §6.4: 8 bits total, 4 fraction bits.
    EXPECT_EQ(InputFx::frac_bits, 4);
    EXPECT_EQ(InputFx::int_bits + InputFx::frac_bits + 1, 8);
    EXPECT_DOUBLE_EQ(InputFx::resolution(), 1.0 / 16.0);
}

TEST(Fixed, OutputFormatIs16Bit) {
    EXPECT_EQ(sizeof(OutputFx::storage_type), 2u);
    EXPECT_EQ(OutputFx::int_bits + OutputFx::frac_bits + 1, 16);
}

TEST(Fixed, RoundTripExactValues) {
    // Multiples of the resolution survive the round trip exactly.
    for (int raw = -128; raw <= 127; ++raw) {
        const double v = raw / 16.0;
        EXPECT_DOUBLE_EQ(InputFx::from_float(v).to_double(), v) << "raw=" << raw;
    }
}

TEST(Fixed, RoundsToNearest) {
    EXPECT_DOUBLE_EQ(InputFx::from_float(0.031).to_double(), 0.0);     // 0.496 -> 0
    EXPECT_DOUBLE_EQ(InputFx::from_float(0.047).to_double(), 0.0625);  // 0.752 -> 1
    EXPECT_DOUBLE_EQ(InputFx::from_float(0.09).to_double(), 0.0625);   // 1.44 -> 1
    EXPECT_DOUBLE_EQ(InputFx::from_float(0.10).to_double(), 0.125);    // 1.6 -> 2
    EXPECT_DOUBLE_EQ(InputFx::from_float(-0.10).to_double(), -0.125);
}

TEST(Fixed, SaturatesAtFormatBounds) {
    EXPECT_EQ(InputFx::from_float(100.0).raw(), InputFx::raw_max);
    EXPECT_EQ(InputFx::from_float(-100.0).raw(), InputFx::raw_min);
    EXPECT_DOUBLE_EQ(InputFx::from_float(1e30).to_double(), 127.0 / 16.0);
    EXPECT_DOUBLE_EQ(InputFx::from_float(-1e30).to_double(), -8.0);
}

TEST(Fixed, NanQuantizesToZero) {
    EXPECT_EQ(InputFx::from_float(std::nan("")).raw(), 0);
}

TEST(Fixed, SaturatingAddition) {
    const auto a = InputFx::from_float(7.0);
    const auto b = InputFx::from_float(6.0);
    EXPECT_EQ((a + b).raw(), InputFx::raw_max);  // 13 > 7.9375 saturates
    const auto c = InputFx::from_float(-7.0);
    EXPECT_EQ((c + c).raw(), InputFx::raw_min);
    EXPECT_DOUBLE_EQ((InputFx::from_float(1.5) + InputFx::from_float(2.25)).to_double(),
                     3.75);
}

TEST(Fixed, SubtractionAndNegation) {
    EXPECT_DOUBLE_EQ(
        (InputFx::from_float(3.0) - InputFx::from_float(4.5)).to_double(), -1.5);
    EXPECT_DOUBLE_EQ((-InputFx::from_float(2.5)).to_double(), -2.5);
    // Negating the minimum saturates (two's complement asymmetry).
    EXPECT_EQ((-InputFx::min()).raw(), InputFx::raw_max);
}

TEST(Fixed, MulRawHasFullPrecision) {
    const auto a = InputFx::from_float(1.5);   // raw 24
    const auto b = InputFx::from_float(-2.25); // raw -36
    EXPECT_EQ(a.mul_raw(b), -864);             // Q.8 of -3.375
    EXPECT_DOUBLE_EQ(static_cast<double>(a.mul_raw(b)) / 256.0, -3.375);
}

TEST(Fixed, MulToRenormalizes) {
    using Acc = Fixed<23, 8, std::int32_t>;
    const auto a = InputFx::from_float(1.5);
    const auto b = InputFx::from_float(-2.25);
    EXPECT_DOUBLE_EQ((a.mul_to<Acc>(b)).to_double(), -3.375);
    // Renormalizing into the input format rounds.
    EXPECT_DOUBLE_EQ((a.mul_to<InputFx>(b)).to_double(), -3.375);
}

TEST(Fixed, Comparisons) {
    EXPECT_LT(InputFx::from_float(1.0), InputFx::from_float(2.0));
    EXPECT_EQ(InputFx::from_float(0.5), InputFx::from_float(0.5));
    EXPECT_GT(InputFx::from_float(-1.0), InputFx::from_float(-2.0));
}

TEST(Fixed, QuantizationErrorBound) {
    // |quantize(x) - x| <= resolution/2 inside the representable range.
    for (double x = -7.9; x < 7.9; x += 0.0137) {
        const double err = std::abs(InputFx::from_float(x).to_double() - x);
        EXPECT_LE(err, InputFx::resolution() / 2 + 1e-12) << "x=" << x;
    }
}

}  // namespace
}  // namespace salo
