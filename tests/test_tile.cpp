#include "scheduler/tile.hpp"

#include <gtest/gtest.h>

namespace salo {
namespace {

TileTask make_two_segment_tile() {
    TileTask tile;
    tile.query_ids = {10, 11, 12, 13};
    TileSegment a;
    a.band = 0;
    a.col_begin = 0;
    a.col_end = 3;
    a.key_base = 100;
    a.dilation = 1;
    TileSegment b;
    b.band = 1;
    b.col_begin = 3;
    b.col_end = 5;
    b.key_base = 200;
    b.dilation = 2;
    tile.segments = {a, b};
    tile.valid.assign(4 * 6, 0);  // 4 rows x 6 cols, last col unused
    return tile;
}

TEST(Tile, ShapeAccessors) {
    const TileTask tile = make_two_segment_tile();
    EXPECT_EQ(tile.rows(), 4);
    EXPECT_EQ(tile.cols(), 6);
    EXPECT_EQ(tile.cols_used(), 5);
}

TEST(Tile, SegmentLookup) {
    const TileTask tile = make_two_segment_tile();
    ASSERT_NE(tile.segment_at(0), nullptr);
    EXPECT_EQ(tile.segment_at(0)->band, 0);
    EXPECT_EQ(tile.segment_at(2)->band, 0);
    EXPECT_EQ(tile.segment_at(3)->band, 1);
    EXPECT_EQ(tile.segment_at(4)->band, 1);
    EXPECT_EQ(tile.segment_at(5), nullptr);  // packing waste column
}

TEST(Tile, KeyAtFollowsDiagonal) {
    const TileTask tile = make_two_segment_tile();
    // Segment A: key = 100 + (r + c - 0) * 1.
    EXPECT_EQ(tile.key_at(0, 0), 100);
    EXPECT_EQ(tile.key_at(2, 1), 103);
    EXPECT_EQ(tile.key_at(0, 1), tile.key_at(1, 0));  // diagonal sharing
    // Segment B: key = 200 + (r + c - 3) * 2.
    EXPECT_EQ(tile.key_at(0, 3), 200);
    EXPECT_EQ(tile.key_at(1, 3), 202);
    EXPECT_EQ(tile.key_at(0, 4), tile.key_at(1, 3));  // diagonal with stride
    EXPECT_EQ(tile.key_at(3, 4), 208);
}

TEST(Tile, StreamLengthsAndKeys) {
    const TileTask tile = make_two_segment_tile();
    // Segment A streams rows + width - 1 = 4 + 3 - 1 = 6 keys; B: 4+2-1 = 5.
    EXPECT_EQ(tile.segments[0].stream_length(4), 6);
    EXPECT_EQ(tile.segments[1].stream_length(4), 5);
    EXPECT_EQ(tile.total_stream_length(), 11);
    EXPECT_EQ(tile.segments[0].stream_key(0), 100);
    EXPECT_EQ(tile.segments[0].stream_key(5), 105);
    EXPECT_EQ(tile.segments[1].stream_key(4), 208);
}

TEST(Tile, ValidMaskCounting) {
    TileTask tile = make_two_segment_tile();
    EXPECT_FALSE(tile.has_window_work());
    tile.valid[0] = 1;
    tile.valid[7] = 1;
    EXPECT_EQ(tile.num_valid_slots(), 2);
    EXPECT_TRUE(tile.has_window_work());
    EXPECT_TRUE(tile.is_valid(0, 0));
    EXPECT_TRUE(tile.is_valid(1, 1));
    EXPECT_FALSE(tile.is_valid(0, 1));
}

TEST(Tile, GlobalWorkFlags) {
    TileTask tile = make_two_segment_tile();
    EXPECT_FALSE(tile.has_global_work());
    tile.global_row_query = 0;
    EXPECT_TRUE(tile.has_global_work());
    tile.global_row_query = -1;
    tile.global_col_key = 5;
    EXPECT_TRUE(tile.has_global_work());
}

TEST(Tile, KeyAtOutsideSegmentsThrows) {
    const TileTask tile = make_two_segment_tile();
    EXPECT_THROW(tile.key_at(0, 5), ContractViolation);
}

TEST(Geometry, DerivedQuantities) {
    ArrayGeometry g;
    EXPECT_EQ(g.key_stream_length(), 63);
    EXPECT_EQ(g.total_pes(), 32 * 32 + 32 + 32);
    g.rows = 4;
    g.cols = 8;
    g.num_global_rows = 2;
    g.num_global_cols = 3;
    EXPECT_EQ(g.key_stream_length(), 11);
    EXPECT_EQ(g.total_pes(), 32 + 16 + 12);
}

}  // namespace
}  // namespace salo
