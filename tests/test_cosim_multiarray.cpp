// Multi-array co-simulation behavior: determinism, contention physics
// (bank/channel conflicts, writeback backpressure), scaling sanity, and
// configuration validation.
#include <gtest/gtest.h>

#include <vector>

#include "cosim/system.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/tile_costs.hpp"

namespace salo {
namespace {

TileCostParams small_params() {
    TileCostParams params;
    params.head_dim = 8;
    return params;
}

std::vector<TileCost> small_workload(const TileCostParams& params) {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    const SchedulePlan plan = schedule(longformer(96, 12, 2), g, params.head_dim, {});
    return plan_tile_costs(plan, params);
}

cosim::CosimReport run_system(const cosim::CosimConfig& config,
                              const std::vector<TileCost>& per_array_tiles) {
    cosim::MultiArraySystem system(config);
    for (int a = 0; a < config.num_arrays; ++a)
        for (const TileCost& cost : per_array_tiles) system.enqueue(a, cost);
    return system.run();
}

TEST(CosimMultiArray, RepeatedRunsAreBitDeterministic) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    for (int arrays : {1, 2, 4}) {
        cosim::CosimConfig config;
        config.num_arrays = arrays;
        config.costs = params;
        const cosim::CosimReport a = run_system(config, tiles);
        const cosim::CosimReport b = run_system(config, tiles);
        EXPECT_EQ(a.final_state, cosim::RunState::kIdle);
        EXPECT_EQ(a.fingerprint(), b.fingerprint()) << arrays << " arrays";
        EXPECT_EQ(a.makespan_cycles, b.makespan_cycles);
    }
}

TEST(CosimMultiArray, SingleBankSingleChannelConflicts) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    cosim::CosimConfig config;
    config.num_arrays = 2;
    config.costs = params;
    config.memory.num_banks = 1;
    config.memory.num_channels = 1;
    const cosim::CosimReport report = run_system(config, tiles);
    EXPECT_EQ(report.final_state, cosim::RunState::kIdle);
    EXPECT_GT(report.memory.bank_conflicts, 0);
}

TEST(CosimMultiArray, MoreChannelsNeverSlower) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    std::int64_t prev = -1;
    for (int channels : {1, 2, 4}) {
        cosim::CosimConfig config;
        config.num_arrays = 4;
        config.costs = params;
        config.memory.num_channels = channels;
        const cosim::CosimReport report = run_system(config, tiles);
        EXPECT_EQ(report.final_state, cosim::RunState::kIdle);
        if (prev >= 0) EXPECT_LE(report.makespan_cycles, prev) << channels << " channels";
        prev = report.makespan_cycles;
    }
}

TEST(CosimMultiArray, TwoArraysBeatOneOnIndependentWork) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    // One array doing 2x the tiles vs two arrays doing 1x each, with ample
    // bandwidth (4 channels, wide bus) so compute dominates.
    cosim::CosimConfig one;
    one.num_arrays = 1;
    one.costs = params;
    one.memory.num_channels = 4;
    one.bus.beats_per_cycle = 4;
    cosim::MultiArraySystem single(one);
    for (int rep = 0; rep < 2; ++rep)
        for (const TileCost& cost : tiles) single.enqueue(0, cost);
    const cosim::CosimReport serial = single.run();

    cosim::CosimConfig two = one;
    two.num_arrays = 2;
    const cosim::CosimReport parallel = run_system(two, tiles);

    EXPECT_EQ(serial.final_state, cosim::RunState::kIdle);
    EXPECT_EQ(parallel.final_state, cosim::RunState::kIdle);
    EXPECT_LT(parallel.makespan_cycles, serial.makespan_cycles);
}

TEST(CosimMultiArray, WritebackBackpressureStallsButCompletes) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    cosim::CosimConfig config;
    config.num_arrays = 2;
    config.costs = params;
    config.bus.beat_bytes = 1;      // every output byte is a beat
    config.bus.queue_capacity = 1;  // no elasticity
    const cosim::CosimReport report = run_system(config, tiles);
    EXPECT_EQ(report.final_state, cosim::RunState::kIdle)
        << "backpressure must throttle, not wedge";
    std::int64_t wb_stalls = 0;
    for (const auto& a : report.arrays) wb_stalls += a.wb_stall_cycles;
    EXPECT_GT(wb_stalls, 0);
}

TEST(CosimMultiArray, BothArbitrationPoliciesQuiesce) {
    const TileCostParams params = small_params();
    const std::vector<TileCost> tiles = small_workload(params);
    for (auto policy : {cosim::Arbitration::kRoundRobin, cosim::Arbitration::kOldestFirst}) {
        cosim::CosimConfig config;
        config.num_arrays = 4;
        config.costs = params;
        config.memory.policy = policy;
        config.bus.policy = policy;
        const cosim::CosimReport report = run_system(config, tiles);
        EXPECT_EQ(report.final_state, cosim::RunState::kIdle)
            << cosim::to_string(policy);
        EXPECT_TRUE(report.stuck.empty());
    }
}

TEST(CosimMultiArray, ConfigValidationNamesTheField) {
    cosim::CosimConfig config;
    config.costs = small_params();

    config.num_arrays = 0;
    try {
        config.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("num_arrays"), std::string::npos);
    }
    config.num_arrays = 1;

    config.memory.num_channels = 0;
    try {
        config.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("num_channels"), std::string::npos);
    }
    config.memory.num_channels = 16;  // > num_banks
    EXPECT_THROW(config.validate(), ContractViolation);
    config.memory.num_channels = 2;

    config.bus.beats_per_cycle = 0;
    try {
        config.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("beats_per_cycle"), std::string::npos);
    }
    config.bus.beats_per_cycle = 1;

    config.costs.head_dim = 0;
    EXPECT_THROW(config.validate(), ContractViolation);
    config.costs.head_dim = 8;

    EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace salo
