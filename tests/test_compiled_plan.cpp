// The compile -> cache layer: pattern equality and fingerprints (including
// the dilation-only and global-set-only near-collisions), SaloConfig
// validation, CompiledPlan compilation, and the PlanCache LRU semantics
// (hit/miss/eviction, collision safety, cross-thread sharing).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/compiled_plan.hpp"
#include "core/engine.hpp"
#include "core/errors.hpp"
#include "core/plan_cache.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

// -------------------------------------------------------------------------
// HybridPattern equality and fingerprints
// -------------------------------------------------------------------------

TEST(PatternIdentity, EqualityMatchesStructure) {
    const HybridPattern a = longformer(128, 16, 2);
    const HybridPattern b = longformer(128, 16, 2);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == longformer(128, 16, 1));   // globals differ
    EXPECT_FALSE(a == longformer(128, 32, 2));   // window differs
    EXPECT_FALSE(a == longformer(256, 16, 2));   // n differs
}

TEST(PatternIdentity, EqualityIsGlobalSetBased) {
    // The constructor sorts and deduplicates globals: different spellings
    // of the same set compare equal.
    const HybridPattern a = sliding_window(64, 8, {3, 1, 1});
    const HybridPattern b = sliding_window(64, 8, {1, 3});
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(PatternIdentity, DilationOnlyDifferenceChangesFingerprint) {
    // The latent-collision case called out in the issue: same band extent,
    // different dilation. dilated_window(n, a, b, d) scales offsets by d,
    // so construct bands directly to isolate the dilation field.
    const HybridPattern d1(256, {Band{-8, 5, 2, 0}});
    const HybridPattern d2(256, {Band{-8, 5, 4, 0}});
    EXPECT_FALSE(d1 == d2);
    EXPECT_NE(d1.fingerprint(), d2.fingerprint());

    // Single-offset band: the offset *set* is identical for any dilation,
    // but the patterns must still be distinguished (scheduler reordering
    // keys off the dilation).
    const HybridPattern s1(256, {Band{4, 1, 1, 0}});
    const HybridPattern s2(256, {Band{4, 1, 3, 0}});
    EXPECT_NE(s1.fingerprint(), s2.fingerprint());
}

TEST(PatternIdentity, GlobalSetOnlyDifferenceChangesFingerprint) {
    const HybridPattern g1 = sliding_window(256, 16, {0});
    const HybridPattern g2 = sliding_window(256, 16, {1});
    const HybridPattern g3 = sliding_window(256, 16, {0, 1});
    EXPECT_NE(g1.fingerprint(), g2.fingerprint());
    EXPECT_NE(g1.fingerprint(), g3.fingerprint());
    EXPECT_NE(g2.fingerprint(), g3.fingerprint());
}

TEST(PatternIdentity, BandSplitDoesNotAliasFingerprint) {
    // One 4-wide band vs two 2-wide bands covering the same offsets: the
    // field-count prefixes keep the byte streams distinct.
    const HybridPattern one(64, {Band{-2, 4, 1, 0}});
    const HybridPattern two(64, {Band{-2, 2, 1, 0}, Band{0, 2, 1, 0}});
    EXPECT_NE(one.fingerprint(), two.fingerprint());
}

TEST(PatternIdentity, FingerprintIsStableAcrossCopies) {
    const HybridPattern p = vil_2d(12, 12, 5, 5, 1);
    const HybridPattern copy = p;
    EXPECT_EQ(p.fingerprint(), copy.fingerprint());
    EXPECT_EQ(p.fingerprint(), vil_2d(12, 12, 5, 5, 1).fingerprint());
}

TEST(PatternIdentity, PaperPatternFamilyHasDistinctFingerprints) {
    std::vector<HybridPattern> family = {
        sliding_window(128, 16),
        dilated_window(128, -4, 4, 2),
        longformer(128, 16, 1),
        longformer(128, 16, 2),
        star_transformer(128),
        sparse_transformer_strided(128, 8),
        sparse_transformer_fixed(128, 8),
        vil_2d(16, 8, 5, 5, 1),
        vil_2d(8, 16, 5, 5, 1),  // transposed grid, same n
    };
    std::set<std::uint64_t> prints;
    for (const HybridPattern& p : family) prints.insert(p.fingerprint());
    EXPECT_EQ(prints.size(), family.size());
}

// -------------------------------------------------------------------------
// Geometry / options / combined plan fingerprints
// -------------------------------------------------------------------------

TEST(PlanFingerprint, GeometryAndOptionsParticipate) {
    const HybridPattern p = longformer(128, 16, 1);
    SaloConfig base;
    SaloConfig taller;
    taller.geometry.rows = 16;
    SaloConfig per_band;
    per_band.schedule_options.packing = PackingMode::kPerBand;

    const auto fp = [&](const SaloConfig& c, int d) {
        return plan_fingerprint(p, d, c.geometry, c.schedule_options);
    };
    EXPECT_EQ(fp(base, 64), fp(base, 64));
    EXPECT_NE(fp(base, 64), fp(taller, 64));
    EXPECT_NE(fp(base, 64), fp(per_band, 64));
    EXPECT_NE(fp(base, 64), fp(base, 32));  // head_dim participates
}

TEST(PlanFingerprint, CompileStampsTheKey) {
    const HybridPattern p = longformer(128, 16, 1);
    const SaloConfig config;
    const CompiledPlan plan = compile(p, 32, config);
    EXPECT_EQ(plan.fingerprint(),
              plan_fingerprint(p, 32, config.geometry, config.schedule_options));
    EXPECT_EQ(plan.head_dim(), 32);
    EXPECT_EQ(plan.n(), 128);
    EXPECT_TRUE(plan.pattern() == p);
    EXPECT_GT(plan.schedule_stats().total_tiles(), 0);
    // The compiled schedule is the schedule the engine would build.
    const SaloEngine engine(config);
    const SchedulePlan direct = engine.plan(p, 32);
    EXPECT_EQ(plan.plan().tiles.size(), direct.tiles.size());
    EXPECT_EQ(plan.schedule_stats().valid_slots, direct.stats.valid_slots);
}

// -------------------------------------------------------------------------
// SaloConfig validation
// -------------------------------------------------------------------------

TEST(ConfigValidation, RejectsNonsenseWithNamedField) {
    SaloConfig bus;
    bus.bus_bytes_per_cycle = 0;
    try {
        bus.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("bus_bytes_per_cycle"), std::string::npos);
    }

    SaloConfig zero_geometry;
    zero_geometry.geometry.rows = 0;
    try {
        zero_geometry.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("geometry.rows"), std::string::npos);
    }

    SaloConfig bad_freq;
    bad_freq.geometry.frequency_ghz = 0.0;
    EXPECT_THROW(bad_freq.validate(), ContractViolation);

    SaloConfig bad_cache;
    bad_cache.plan_cache_capacity = -1;
    EXPECT_THROW(bad_cache.validate(), ContractViolation);
}

TEST(ConfigValidation, EngineAndCompileReject) {
    SaloConfig bad;
    bad.bus_bytes_per_cycle = -7;
    EXPECT_THROW(SaloEngine{bad}, ContractViolation);
    EXPECT_THROW(compile(longformer(64, 8, 1), 16, bad), ContractViolation);
}

TEST(ConfigValidation, NumThreadsIsNormalizedNotRejected) {
    SaloConfig c;
    c.num_threads = -3;  // "auto"
    EXPECT_NO_THROW(c.validate());
    EXPECT_GE(c.effective_threads(), 1);
}

// -------------------------------------------------------------------------
// PlanCache
// -------------------------------------------------------------------------

TEST(PlanCacheTest, HitMissEviction) {
    PlanCache cache(2);
    const SaloConfig config;
    const HybridPattern a = longformer(64, 8, 1);
    const HybridPattern b = longformer(64, 8, 2);
    const HybridPattern c = longformer(64, 16, 1);

    const CompiledPlanPtr pa = cache.get_or_compile(a, 16, config);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.get_or_compile(a, 16, config), pa);  // hit: same artifact
    EXPECT_EQ(cache.stats().hits, 1u);

    cache.get_or_compile(b, 16, config);   // fills capacity
    cache.get_or_compile(a, 16, config);   // touch a -> b becomes LRU
    cache.get_or_compile(c, 16, config);   // evicts b
    const PlanCacheStats s1 = cache.stats();
    EXPECT_EQ(s1.evictions, 1u);
    EXPECT_EQ(s1.size, 2u);

    // a survived (was MRU); b was evicted and must recompile.
    EXPECT_EQ(cache.get_or_compile(a, 16, config), pa);
    const std::uint64_t hits_before = cache.stats().hits;
    cache.get_or_compile(b, 16, config);
    const PlanCacheStats s2 = cache.stats();
    EXPECT_EQ(s2.hits, hits_before);  // b was a miss
    EXPECT_EQ(s2.evictions, 2u);      // and evicted c, the LRU entry
}

TEST(PlanCacheTest, DistinctHeadDimsAreDistinctEntries) {
    PlanCache cache(8);
    const SaloConfig config;
    const HybridPattern p = longformer(64, 8, 1);
    const CompiledPlanPtr d16 = cache.get_or_compile(p, 16, config);
    const CompiledPlanPtr d32 = cache.get_or_compile(p, 32, config);
    EXPECT_NE(d16, d32);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().size, 2u);
}

TEST(PlanCacheTest, CrossThreadSharingReturnsOneArtifact) {
    PlanCache cache(8);
    const SaloConfig config;
    const HybridPattern p = longformer(192, 16, 1);
    constexpr int kThreads = 8;
    std::vector<CompiledPlanPtr> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { got[static_cast<std::size_t>(t)] = cache.get_or_compile(p, 32, config); });
    for (std::thread& t : threads) t.join();
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[0], got[static_cast<std::size_t>(t)]);
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(s.size, 1u);
    EXPECT_EQ(s.misses, 1u);  // in-flight dedup: racing threads share one compile
}

TEST(PlanCacheTest, ConcurrentColdCompileRunsSchedulerOnce) {
    // N threads hit a cold cache with the same fingerprint simultaneously
    // (spin barrier maximizes the race). In-flight deduplication must elect
    // exactly one leader: one miss, one scheduler run, N-1 hits that adopt
    // the leader's artifact — regardless of interleaving.
    PlanCache cache(8);
    const SaloConfig config;
    const HybridPattern p = longformer(256, 16, 2);
    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<CompiledPlanPtr> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads) {}  // spin barrier
            got[static_cast<std::size_t>(t)] = cache.get_or_compile(p, 32, config);
        });
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_NE(got[static_cast<std::size_t>(t)], nullptr);
        EXPECT_EQ(got[0], got[static_cast<std::size_t>(t)]);
    }
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(s.size, 1u);
}

TEST(PlanCacheTest, ThrowingCompileWakesWaitersAndRetries) {
    // Regression for the in-flight dedup exception path: the leader's
    // compile throws while another thread is waiting on the same key. The
    // waiter must be woken, elect itself the new leader, and compile
    // successfully — not sleep forever on a key nobody is compiling.
    // (A regression here fails as a ctest hang/timeout.)
    std::atomic<int> calls{0};
    std::atomic<bool> waiter_started{false};
    PlanCache cache(8, [&](const HybridPattern& pattern, int head_dim,
                           const SaloConfig& config) -> CompiledPlanPtr {
        if (calls.fetch_add(1) == 0) {
            // First (leader) call: hold until the second thread has at
            // least called into the cache — it then waits on the in-flight
            // key — and fail.
            while (!waiter_started.load()) std::this_thread::yield();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            throw EngineFault("injected compile failure");
        }
        return compile_shared(pattern, head_dim, config);
    });
    const SaloConfig config;
    const HybridPattern p = longformer(64, 8, 1);

    std::atomic<bool> leader_threw{false};
    std::thread leader([&] {
        try {
            cache.get_or_compile(p, 16, config);
        } catch (const EngineFault&) {
            leader_threw.store(true);
        }
    });
    CompiledPlanPtr adopted;
    std::thread waiter([&] {
        waiter_started.store(true);
        adopted = cache.get_or_compile(p, 16, config);
    });
    leader.join();
    waiter.join();

    EXPECT_TRUE(leader_threw.load());  // the error reached the leader's caller
    ASSERT_NE(adopted, nullptr);       // the waiter recovered and compiled
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 2u);    // both threads missed (no artifact to adopt)
    EXPECT_EQ(s.compiles, 1u);  // only the successful compile counts
    EXPECT_EQ(s.size, 1u);
    EXPECT_EQ(calls.load(), 2);
}

TEST(PlanCacheTest, SharedStoreCompilesOnceAcrossCaches) {
    // Four "shard" caches attached to one shared store: the same shape
    // resolved through each local cache runs the scheduler exactly once
    // tier-wide (in the shared store), and every cache hands out the same
    // artifact.
    auto store = std::make_shared<PlanCache>(8);
    std::vector<std::unique_ptr<PlanCache>> locals;
    for (int i = 0; i < 4; ++i) {
        locals.push_back(std::make_unique<PlanCache>(8));
        locals.back()->attach_shared_store(store);
    }
    const SaloConfig config;
    const HybridPattern p = longformer(64, 8, 1);

    std::vector<CompiledPlanPtr> got;
    for (auto& local : locals) got.push_back(local->get_or_compile(p, 16, config));
    for (std::size_t i = 1; i < got.size(); ++i) EXPECT_EQ(got[0], got[i]);

    EXPECT_EQ(store->stats().compiles, 1u);  // one scheduler pass tier-wide
    EXPECT_EQ(store->stats().misses, 1u);
    EXPECT_EQ(store->stats().hits, 3u);
    for (auto& local : locals) {
        const PlanCacheStats s = local->stats();
        EXPECT_EQ(s.compiles, 0u);  // locals never ran the scheduler
        EXPECT_EQ(s.misses, 1u);
        EXPECT_EQ(s.shared_resolved, 1u);
        EXPECT_EQ(s.size, 1u);
    }

    // Second sight is a pure local hit — the shared store is not touched.
    const std::uint64_t store_lookups = store->stats().hits + store->stats().misses;
    for (auto& local : locals) EXPECT_EQ(local->get_or_compile(p, 16, config), got[0]);
    EXPECT_EQ(store->stats().hits + store->stats().misses, store_lookups);
    for (auto& local : locals) EXPECT_EQ(local->stats().hits, 1u);
}

TEST(PlanCacheTest, PeekDoesNotCountOrReorder) {
    PlanCache cache(4);
    const SaloConfig config;
    const HybridPattern p = longformer(64, 8, 1);
    const CompiledPlanPtr plan = cache.get_or_compile(p, 16, config);
    const PlanCacheStats before = cache.stats();
    EXPECT_EQ(cache.peek(plan->fingerprint()), plan);
    EXPECT_EQ(cache.peek(~plan->fingerprint()), nullptr);
    const PlanCacheStats after = cache.stats();
    EXPECT_EQ(before.hits, after.hits);
    EXPECT_EQ(before.misses, after.misses);
}

// -------------------------------------------------------------------------
// Engine integration: compile() caching and legacy-shim equivalence
// -------------------------------------------------------------------------

TEST(EngineCompile, RepeatedCompileIsACacheHit) {
    const SaloEngine engine;
    const HybridPattern p = longformer(128, 16, 1);
    const CompiledPlanPtr first = engine.compile(p, 32);
    const CompiledPlanPtr second = engine.compile(p, 32);
    EXPECT_EQ(first, second);
    const PlanCacheStats s = engine.plan_cache_stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(EngineCompile, LegacyShimsMatchCompiledPlanRuns) {
    SaloConfig config;
    config.geometry.rows = 8;
    config.geometry.cols = 8;
    config.num_threads = 2;
    const SaloEngine engine(config);
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    const QkvSet qkv = make_qkv(w, 5);

    const LayerResult via_pattern = engine.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    const CompiledPlanPtr plan = engine.compile(w.pattern, w.head_dim);
    const LayerResult via_plan = engine.run(*plan, qkv.q, qkv.k, qkv.v, w.scale());

    ASSERT_EQ(via_pattern.output.count(), via_plan.output.count());
    for (int h = 0; h < via_pattern.output.count(); ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(via_pattern.output[h], via_plan.output[h]), 0.0);
    EXPECT_EQ(via_pattern.stats.cycles, via_plan.stats.cycles);
    EXPECT_EQ(via_pattern.schedule.valid_slots, via_plan.schedule.valid_slots);
    // The legacy call went through the same cache: one miss total.
    EXPECT_EQ(engine.plan_cache_stats().misses, 1u);
    EXPECT_GE(engine.plan_cache_stats().hits, 1u);
}

TEST(EngineCompile, RunRejectsPlanFromDifferentGeometry) {
    SaloConfig small;
    small.geometry.rows = 8;
    small.geometry.cols = 8;
    const SaloEngine small_engine(small);
    const SaloEngine default_engine;
    const HybridPattern p = longformer(64, 8, 1);
    const CompiledPlanPtr plan = small_engine.compile(p, 16);

    Rng rng(1);
    const Tensor3<float> q = random_tensor3(1, 64, 16, rng, 0.5);
    const Tensor3<float> k = random_tensor3(1, 64, 16, rng, 0.5);
    const Tensor3<float> v = random_tensor3(1, 64, 16, rng, 0.5);
    EXPECT_THROW(default_engine.run(*plan, q, k, v, 0.25f), ContractViolation);
}

}  // namespace
}  // namespace salo
