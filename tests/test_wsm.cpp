#include "sim/wsm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "numeric/datapath.hpp"

namespace salo {
namespace {

constexpr double kExpScale = 1 << Datapath::exp_frac;
constexpr double kWsmScale = 1 << Datapath::wsm_frac;

TilePart make_part(int query, double weight, const std::vector<double>& out) {
    TilePart part;
    part.query = query;
    part.weight = static_cast<SumRaw>(std::llround(weight * kExpScale));
    for (double v : out)
        part.out_q.push_back(static_cast<std::int32_t>(std::llround(v * kWsmScale)));
    return part;
}

TEST(WeightedSum, SinglePartPassesThrough) {
    const Reciprocal recip;
    WeightedSumModule wsm(4, 2, recip);
    wsm.merge(make_part(1, 3.0, {0.5, -1.25}));
    const Matrix<float> out = wsm.finalize();
    EXPECT_NEAR(out(1, 0), 0.5, 1e-2);
    EXPECT_NEAR(out(1, 1), -1.25, 1e-2);
    // Untouched queries stay zero.
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(3, 1), 0.0f);
}

TEST(WeightedSum, EqualWeightsAverage) {
    const Reciprocal recip;
    WeightedSumModule wsm(1, 1, recip);
    wsm.merge(make_part(0, 2.0, {1.0}));
    wsm.merge(make_part(0, 2.0, {3.0}));
    EXPECT_NEAR(wsm.finalize()(0, 0), 2.0, 1e-2);
}

TEST(WeightedSum, Equation2TwoParts) {
    // Paper Eq. 2: out = W1/(W1+W2)*out1 + W2/(W1+W2)*out2.
    const Reciprocal recip;
    WeightedSumModule wsm(1, 3, recip);
    const double w1 = 5.0, w2 = 1.5;
    const std::vector<double> o1 = {1.0, -2.0, 0.25};
    const std::vector<double> o2 = {-1.0, 4.0, 0.75};
    wsm.merge(make_part(0, w1, o1));
    wsm.merge(make_part(0, w2, o2));
    const Matrix<float> out = wsm.finalize();
    for (int t = 0; t < 3; ++t) {
        const double expected =
            (w1 * o1[static_cast<std::size_t>(t)] + w2 * o2[static_cast<std::size_t>(t)]) /
            (w1 + w2);
        EXPECT_NEAR(out(0, t), expected, 2e-2) << "t=" << t;
    }
}

TEST(WeightedSum, ManyPartsMatchAppendixAFormula) {
    // Appendix A: out = sum_k (W_k / W) * out_k for any number of parts.
    const Reciprocal recip;
    Rng rng(11);
    const int parts = 16;
    const int d = 4;
    WeightedSumModule wsm(1, d, recip);
    double total_w = 0.0;
    std::vector<double> expected(static_cast<std::size_t>(d), 0.0);
    for (int p = 0; p < parts; ++p) {
        const double w = rng.uniform(0.25, 8.0);
        std::vector<double> o;
        for (int t = 0; t < d; ++t) o.push_back(rng.uniform(-3.0, 3.0));
        wsm.merge(make_part(0, w, o));
        total_w += w;
        for (int t = 0; t < d; ++t)
            expected[static_cast<std::size_t>(t)] += w * o[static_cast<std::size_t>(t)];
    }
    const Matrix<float> out = wsm.finalize();
    for (int t = 0; t < d; ++t)
        EXPECT_NEAR(out(0, t), expected[static_cast<std::size_t>(t)] / total_w, 0.05)
            << "t=" << t;
}

TEST(WeightedSum, MergeOrderInsensitiveWithinTolerance) {
    // Eq. 2 is mathematically associative; fixed-point rounding may differ
    // slightly but results must agree to output resolution.
    const Reciprocal recip;
    std::vector<TilePart> parts;
    Rng rng(5);
    for (int p = 0; p < 6; ++p)
        parts.push_back(make_part(0, rng.uniform(0.5, 4.0),
                                  {rng.uniform(-2, 2), rng.uniform(-2, 2)}));
    WeightedSumModule fwd(1, 2, recip), rev(1, 2, recip);
    for (const auto& p : parts) fwd.merge(p);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) rev.merge(*it);
    EXPECT_LT(max_abs_diff(fwd.finalize(), rev.finalize()), 0.03);
}

TEST(WeightedSum, ZeroWeightPartIgnored) {
    const Reciprocal recip;
    WeightedSumModule wsm(1, 1, recip);
    wsm.merge(make_part(0, 1.0, {2.0}));
    TilePart zero = make_part(0, 0.0, {99.0});
    wsm.merge(zero);
    EXPECT_NEAR(wsm.finalize()(0, 0), 2.0, 1e-2);
    EXPECT_EQ(wsm.merges(), 1);
}

TEST(WeightedSum, DominantWeightWins) {
    const Reciprocal recip;
    WeightedSumModule wsm(1, 1, recip);
    wsm.merge(make_part(0, 1000.0, {1.0}));
    wsm.merge(make_part(0, 0.001, {-1.0}));
    EXPECT_NEAR(wsm.finalize()(0, 0), 1.0, 1e-2);
}

TEST(WeightedSum, RejectsBadPart) {
    const Reciprocal recip;
    WeightedSumModule wsm(2, 2, recip);
    TilePart bad = make_part(5, 1.0, {0.0, 0.0});  // query out of range
    EXPECT_THROW(wsm.merge(bad), ContractViolation);
    TilePart wrong_d = make_part(0, 1.0, {0.0});  // dimension mismatch
    EXPECT_THROW(wsm.merge(wrong_d), ContractViolation);
}

TEST(WeightedSum, FinalizeRawIs16Bit) {
    const Reciprocal recip;
    WeightedSumModule wsm(1, 1, recip);
    wsm.merge(make_part(0, 1.0, {3.141}));
    const Matrix<std::int16_t> raw = wsm.finalize_raw();
    EXPECT_NEAR(static_cast<double>(raw(0, 0)) / 256.0, 3.141, 1e-2);
}

}  // namespace
}  // namespace salo
