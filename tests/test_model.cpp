#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "model/baseline.hpp"
#include "model/energy.hpp"
#include "model/salo_model.hpp"
#include "model/sanger.hpp"
#include "model/synthesis.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

SaloConfig small_config() {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    return c;
}

TEST(SaloModel, MatchesEngineFunctionalCycles) {
    // The analytic model and the engine must agree exactly — same formulas,
    // same load-overlap accounting.
    const auto workload = longformer_small(96, 16, 1, 8, 1);
    const SaloConfig config = small_config();
    const SaloEngine engine(config);
    const auto qkv = make_qkv(workload, 3);
    const auto run = engine.run(workload.pattern, qkv.q, qkv.k, qkv.v, workload.scale());
    const auto plan = engine.plan(workload.pattern, workload.head_dim);
    const SimStats estimate = estimate_head_stats(plan, config);
    EXPECT_EQ(estimate.cycles, run.stats.cycles);
    EXPECT_EQ(estimate.tiles, run.stats.tiles);
    EXPECT_EQ(estimate.stage_totals.total(), run.stats.stage_totals.total());
    EXPECT_EQ(estimate.activity.mac_ops, run.stats.activity.mac_ops);
    EXPECT_EQ(estimate.activity.exp_ops, run.stats.activity.exp_ops);
}

TEST(SaloModel, PipeliningMatchesEngineAndReducesCycles) {
    const auto workload = longformer_small(96, 16, 1, 8, 1);
    SaloConfig config = small_config();
    config.tile_pipelining = true;
    const SaloEngine engine(config);
    const auto qkv = make_qkv(workload, 4);
    const auto run = engine.run(workload.pattern, qkv.q, qkv.k, qkv.v, workload.scale());
    const auto plan = engine.plan(workload.pattern, workload.head_dim);
    EXPECT_EQ(estimate_head_stats(plan, config).cycles, run.stats.cycles);

    SaloConfig off = small_config();
    EXPECT_LT(run.stats.cycles,
              estimate_head_stats(plan, off).cycles);
}

TEST(SaloModel, LayerEstimateScalesWithHeads) {
    SaloConfig config;  // full-size 32x32 array
    const auto w1 = longformer_small(512, 64, 1, 64, 1);
    const auto w4 = longformer_small(512, 64, 4, 64, 1);
    const auto e1 = estimate_layer(w1, config);
    const auto e4 = estimate_layer(w4, config);
    EXPECT_EQ(e4.stats.cycles, 4 * e1.stats.cycles);
}

TEST(SaloModel, LongformerLatencyInExpectedRange) {
    // Full-size Longformer layer: the paper's speedups imply a SALO latency
    // of a few milliseconds at 1 GHz.
    const auto estimate = estimate_layer(longformer_base_4096(), SaloConfig{});
    EXPECT_GT(estimate.latency_ms, 1.0);
    EXPECT_LT(estimate.latency_ms, 20.0);
}

TEST(SaloModel, QuadraticWorkloadScalesQuadratically) {
    SaloConfig config;
    const auto t1 = estimate_layer(bert_base(512), config).latency_ms;
    const auto t2 = estimate_layer(bert_base(1024), config).latency_ms;
    EXPECT_NEAR(t2 / t1, 4.0, 0.6);
}

TEST(Baseline, GpuDenseMatchesPaperAnchors) {
    // Paper §2.1: 9.20 ms at n=2048 and ~16x more at n=8192 on a 1080Ti.
    const auto gpu = gtx_1080ti();
    EXPECT_NEAR(dense_attention_ms(gpu, 2048, 768), 9.20, 1.0);
    const double r = dense_attention_ms(gpu, 8192, 768) / dense_attention_ms(gpu, 2048, 768);
    EXPECT_NEAR(r, 16.0, 1.0);
}

TEST(Baseline, CpuSlowerThanGpu) {
    const auto cpu = xeon_e5_2630_v3();
    const auto gpu = gtx_1080ti();
    EXPECT_GT(dense_attention_ms(cpu, 2048, 768), dense_attention_ms(gpu, 2048, 768) * 8);
    for (const auto& w : paper_workloads())
        EXPECT_GT(sparse_attention_ms(cpu, w).total_ms(),
                  sparse_attention_ms(gpu, w).total_ms());
}

TEST(Baseline, SparseCheaperThanDenseForVeryLongSequences) {
    // Framework sliding-window kernels carry heavy constant factors (which
    // is why the paper's GPU Longformer numbers are slower than ideal), but
    // their linear scaling must beat dense quadratic scaling eventually —
    // Longformer supports up to 16384 tokens.
    const auto gpu = gtx_1080ti();
    const auto lf16k = longformer_small(16384, 512, 12, 64, 1);
    EXPECT_LT(sparse_attention_ms(gpu, lf16k).total_ms(),
              dense_attention_ms(gpu, 16384, 768));
    // And the crossover is real: at n=2048 dense is still competitive.
    const auto lf2k = longformer_small(2048, 512, 12, 64, 1);
    EXPECT_GT(sparse_attention_ms(gpu, lf2k).total_ms(),
              dense_attention_ms(gpu, 2048, 768));
}

TEST(Baseline, ImpliedPowersPositiveAndOrdered) {
    const auto cpu = xeon_e5_2630_v3();
    const auto gpu = gtx_1080ti();
    for (const auto& w : paper_workloads()) {
        EXPECT_GT(implied_power_w(cpu, w.name), 0.0);
        EXPECT_GT(implied_power_w(gpu, w.name), 0.0);
        // The paper's GPU energy numbers imply a higher draw than CPU's.
        EXPECT_GT(implied_power_w(gpu, w.name), implied_power_w(cpu, w.name));
    }
}

TEST(Sanger, UtilizationInterpolatesPaperRange) {
    EXPECT_NEAR(sanger_utilization(0.05), 0.55, 1e-9);
    EXPECT_NEAR(sanger_utilization(0.30), 0.75, 1e-9);
    EXPECT_NEAR(sanger_utilization(0.175), 0.65, 1e-9);
    // Clamped outside the quoted range.
    EXPECT_NEAR(sanger_utilization(0.01), 0.55, 1e-9);
    EXPECT_NEAR(sanger_utilization(0.9), 0.75, 1e-9);
}

TEST(Sanger, PredictionIsQuadratic) {
    SangerConfig config;
    config.utilization = 0.65;  // pin utilization to isolate scaling
    const auto small = sanger_estimate(config, longformer_small(1024, 128, 1, 64, 1));
    const auto big = sanger_estimate(config, longformer_small(2048, 128, 1, 64, 1));
    EXPECT_NEAR(big.prediction_cycles / small.prediction_cycles, 4.0, 0.01);
    // While the attention part is linear in n.
    EXPECT_NEAR(big.attention_cycles / small.attention_cycles, 2.0, 0.05);
}

TEST(Sanger, AutoUtilizationTracksSparsity) {
    SangerConfig config;  // utilization = 0 -> derive from sparsity
    const auto sparse = sanger_estimate(config, longformer_small(2048, 128, 1, 64, 1));
    const auto dense = sanger_estimate(config, longformer_small(2048, 512, 1, 64, 1));
    // Equal nnz-per-window ratio but different sparsity: the denser pattern
    // gets better utilization, so cycles grow sublinearly in window size.
    EXPECT_LT(dense.attention_cycles / sparse.attention_cycles, 4.0);
}

TEST(Sanger, SaloFasterOnLongformer) {
    const auto workload = longformer_base_4096();
    const auto sanger = sanger_estimate(SangerConfig{}, workload);
    const auto salo = estimate_layer(workload, SaloConfig{});
    const double speedup =
        sanger.latency_ms(1.0) / salo.latency_ms;
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 3.0);  // paper: 1.33x
}

TEST(Synthesis, MatchesTable1Totals) {
    const auto report = synthesize(ArrayGeometry{});
    EXPECT_NEAR(report.total_area_mm2(), 4.56, 0.10);
    EXPECT_NEAR(report.total_power_mw(), 532.66, 10.0);
    EXPECT_DOUBLE_EQ(report.frequency_ghz, 1.0);
}

TEST(Synthesis, ScalesWithArraySize) {
    ArrayGeometry half;
    half.rows = 16;
    half.cols = 16;
    const auto full = synthesize(ArrayGeometry{});
    const auto small = synthesize(half);
    EXPECT_LT(small.total_area_mm2(), full.total_area_mm2());
    EXPECT_LT(small.total_power_mw(), full.total_power_mw());
}

TEST(Synthesis, ComponentBreakdownSumsToTotal) {
    const auto report = synthesize(ArrayGeometry{});
    double area = 0.0, power = 0.0;
    for (const auto& c : report.components) {
        EXPECT_GE(c.area_mm2, 0.0);
        EXPECT_GE(c.power_mw, 0.0);
        area += c.area_mm2;
        power += c.power_mw;
    }
    EXPECT_DOUBLE_EQ(area, report.total_area_mm2());
    EXPECT_DOUBLE_EQ(power, report.total_power_mw());
}

TEST(Energy, ComparisonIsConsistent) {
    const auto cmp = compare_energy(longformer_base_4096(), gtx_1080ti(), SaloConfig{});
    EXPECT_GT(cmp.speedup(), 1.0);
    EXPECT_GT(cmp.energy_saving(), 1.0);
    EXPECT_NEAR(cmp.salo_power_w, 0.533, 0.02);
    EXPECT_DOUBLE_EQ(cmp.energy_saving(),
                     cmp.device_energy_mj() / cmp.salo_energy_mj());
}

}  // namespace
}  // namespace salo
