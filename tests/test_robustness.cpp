// Overload-hardened serving: typed failure delivery, deadlines and
// cancellation (shed-before-dispatch and tile-boundary mid-flight),
// admission control (reject_fast / block_with_timeout / per-class caps),
// and the stats conservation law
//
//   completed + failed + rejected + timed_out + cancelled == submitted.
//
// The tests wedge the dispatcher deterministically with a FaultInjector
// stall on the first request, so later requests are provably still queued
// when they are shed/cancelled — probe injectors (tiles_seen() == 0) prove
// shed requests never reached the engine pool.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/salo.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

SaloConfig serving_config(int threads) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.num_threads = threads;
    return c;
}

/// An injector that sleeps at the first tile boundary of every head run —
/// the deterministic dispatcher wedge used to keep later requests queued.
std::shared_ptr<FaultInjector> stall_injector(milliseconds stall) {
    FaultInjector::Config c;
    c.stall_tiles = {0};
    c.stall_for = std::chrono::duration_cast<std::chrono::microseconds>(stall);
    return std::make_shared<FaultInjector>(c);
}

/// Trigger-free injector: counts tile-boundary visits only, so a test can
/// assert a request never executed (tiles_seen() == 0).
std::shared_ptr<FaultInjector> probe_injector() {
    return std::make_shared<FaultInjector>();
}

bool eventually(const std::function<bool()>& pred, milliseconds budget = milliseconds(2000)) {
    const Clock::time_point until = Clock::now() + budget;
    while (Clock::now() < until) {
        if (pred()) return true;
        std::this_thread::sleep_for(milliseconds(1));
    }
    return pred();
}

struct Work {
    AttentionWorkload w = longformer_small(64, 8, 1, 16, 1);
    QkvSet qkv;
    explicit Work(std::uint64_t seed = 7) : qkv(make_qkv(w, seed)) {}

    AttentionRequest request() const {
        return make_request(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    }
};

void expect_conserved(const SessionStats& s) {
    EXPECT_EQ(s.accounted(), s.submitted)
        << "completed=" << s.completed << " failed=" << s.failed
        << " rejected=" << s.rejected << " timed_out=" << s.timed_out
        << " cancelled=" << s.cancelled;
}

// -------------------------------------------------------------------------
// AdmissionController: pure decision logic (no session needed).
// -------------------------------------------------------------------------

TEST(AdmissionController, UnboundedPolicyAdmitsEverything) {
    const AdmissionController ctl{AdmissionPolicy{}};
    EXPECT_FALSE(ctl.bounded());
    AdmissionSnapshot s;
    s.queued_interactive = 1000000;
    s.queued_batch = 1000000;
    s.outstanding_cost = ~0ull / 2;
    EXPECT_EQ(ctl.decide(s, Priority::interactive, 1), AdmissionDecision::admit);
    EXPECT_EQ(ctl.decide(s, Priority::batch, 1), AdmissionDecision::admit);
}

TEST(AdmissionController, DepthLimitWaitsOrRejectsByMode) {
    AdmissionPolicy p;
    p.max_queue = 4;
    AdmissionSnapshot s;
    s.queued_interactive = 4;

    p.mode = AdmissionMode::block;
    EXPECT_EQ(AdmissionController(p).decide(s, Priority::interactive, 1),
              AdmissionDecision::wait);
    p.mode = AdmissionMode::block_with_timeout;
    EXPECT_EQ(AdmissionController(p).decide(s, Priority::interactive, 1),
              AdmissionDecision::wait);
    p.mode = AdmissionMode::reject_fast;
    EXPECT_EQ(AdmissionController(p).decide(s, Priority::interactive, 1),
              AdmissionDecision::reject);

    s.queued_interactive = 3;  // below the limit again
    EXPECT_EQ(AdmissionController(p).decide(s, Priority::interactive, 1),
              AdmissionDecision::admit);
}

TEST(AdmissionController, BatchCapOnlyCapsBatchClass) {
    AdmissionPolicy p;
    p.mode = AdmissionMode::reject_fast;
    p.max_queue = 100;
    p.max_queue_batch = 2;
    const AdmissionController ctl(p);
    AdmissionSnapshot s;
    s.queued_batch = 2;
    EXPECT_EQ(ctl.decide(s, Priority::batch, 1), AdmissionDecision::reject);
    EXPECT_EQ(ctl.decide(s, Priority::interactive, 1), AdmissionDecision::admit);
}

TEST(AdmissionController, CostGateAdmitsALoneOversizedRequest) {
    AdmissionPolicy p;
    p.mode = AdmissionMode::reject_fast;
    p.max_outstanding_cost = 100;
    const AdmissionController ctl(p);
    AdmissionSnapshot idle;  // nothing queued or in flight
    EXPECT_EQ(ctl.decide(idle, Priority::interactive, 5000), AdmissionDecision::admit);
    AdmissionSnapshot busy;
    busy.outstanding_cost = 60;
    EXPECT_EQ(ctl.decide(busy, Priority::interactive, 50), AdmissionDecision::reject);
    EXPECT_EQ(ctl.decide(busy, Priority::interactive, 30), AdmissionDecision::admit);
}

// -------------------------------------------------------------------------
// Deadlines: shed-before-dispatch and tile-boundary mid-flight expiry.
// -------------------------------------------------------------------------

TEST(Robustness, AlreadyExpiredDeadlineIsShedAtSubmit) {
    const Work work;
    SaloSession session(serving_config(1));
    auto probe = probe_injector();
    AttentionRequest r = work.request();
    r.deadline = Clock::now() - milliseconds(1);
    r.fault_injector = probe;
    auto future = session.submit(std::move(r));
    EXPECT_THROW(future.get(), DeadlineExceeded);
    EXPECT_EQ(probe->tiles_seen(), 0u);  // never reached the engine
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.shed_expired, 1u);
    expect_conserved(s);
}

TEST(Robustness, DeadlineExpiredWhileQueuedIsShedBeforeDispatch) {
    const Work work;
    SaloSession session(serving_config(1));

    auto stall = stall_injector(milliseconds(300));
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    // Queued behind the wedge with a deadline that expires during the stall.
    auto probe = probe_injector();
    AttentionRequest r = work.request();
    r.deadline = Clock::now() + milliseconds(50);
    r.fault_injector = probe;
    auto future = session.submit(std::move(r));

    EXPECT_EQ(first.get().output.count(), 1);  // the wedge itself completes
    EXPECT_THROW(future.get(), DeadlineExceeded);
    EXPECT_EQ(probe->tiles_seen(), 0u);  // shed before batching, not mid-run
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.shed_expired, 1u);
    expect_conserved(s);
}

TEST(Robustness, MidFlightDeadlineStopsAtTileBoundary) {
    const Work work;
    SaloSession session(serving_config(1));
    // The request itself stalls at its first tile past its own deadline, so
    // expiry is only observable at the next tile boundary.
    auto stall = stall_injector(milliseconds(150));
    AttentionRequest r = work.request();
    r.deadline = Clock::now() + milliseconds(50);
    r.fault_injector = stall;
    auto future = session.submit(std::move(r));
    EXPECT_THROW(future.get(), DeadlineExceeded);
    EXPECT_GE(stall->tiles_seen(), 1u);  // it did start executing
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.shed_expired, 0u);  // mid-flight expiry, not a queue shed
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// Cancellation: pre-dispatch shed and tile-boundary mid-flight stop.
// -------------------------------------------------------------------------

TEST(Robustness, CancelledWhileQueuedNeverReachesEngine) {
    const Work work;
    SaloSession session(serving_config(1));

    auto stall = stall_injector(milliseconds(300));
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    auto probe = probe_injector();
    CancellationToken token = CancellationToken::make();
    AttentionRequest r = work.request();
    r.cancel = token;
    r.fault_injector = probe;
    auto future = session.submit(std::move(r));
    token.request_cancel();

    EXPECT_EQ(first.get().output.count(), 1);
    EXPECT_THROW(future.get(), RequestCancelled);
    EXPECT_EQ(probe->tiles_seen(), 0u);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.cancelled, 1u);
    expect_conserved(s);
}

TEST(Robustness, MidFlightCancellationStopsAtTileBoundary) {
    const Work work;
    SaloSession session(serving_config(1));
    auto stall = stall_injector(milliseconds(300));
    CancellationToken token = CancellationToken::make();
    AttentionRequest r = work.request();
    r.cancel = token;
    r.fault_injector = stall;
    auto future = session.submit(std::move(r));
    // Cancel while the run is wedged inside its first tile; the next tile
    // boundary must observe the token.
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));
    token.request_cancel();
    EXPECT_THROW(future.get(), RequestCancelled);
    EXPECT_GE(stall->tiles_seen(), 1u);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.cancelled, 1u);
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// Admission control on a live session.
// -------------------------------------------------------------------------

TEST(Robustness, RejectFastShedsExcessWithQueueFull) {
    const Work work;
    SessionOptions options;
    options.admission.mode = AdmissionMode::reject_fast;
    options.admission.max_queue = 2;
    SaloSession session(serving_config(1), options);

    auto stall = stall_injector(milliseconds(300));
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    auto ok1 = session.submit(work.request());   // queued: 1
    auto ok2 = session.submit(work.request());   // queued: 2 (limit)
    auto shed1 = session.submit(work.request());  // over: rejected fast
    auto shed2 = session.submit(work.request());
    EXPECT_THROW(shed1.get(), QueueFull);
    EXPECT_THROW(shed2.get(), QueueFull);
    EXPECT_EQ(first.get().output.count(), 1);
    EXPECT_EQ(ok1.get().output.count(), 1);
    EXPECT_EQ(ok2.get().output.count(), 1);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.submitted, 5u);
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.rejected, 2u);
    expect_conserved(s);
}

TEST(Robustness, BlockWithTimeoutRejectsWhenNoSpaceOpens) {
    const Work work;
    SessionOptions options;
    options.admission.mode = AdmissionMode::block_with_timeout;
    options.admission.block_timeout = milliseconds(30);
    options.admission.max_queue = 1;
    SaloSession session(serving_config(1), options);

    auto stall = stall_injector(milliseconds(400));
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    auto queued = session.submit(work.request());  // fills the queue
    const Clock::time_point t0 = Clock::now();
    auto blocked = session.submit(work.request());  // waits 30ms, then sheds
    const milliseconds waited =
        std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_GE(waited.count(), 25);   // it did block...
    EXPECT_LT(waited.count(), 350);  // ...but gave up long before the wedge cleared
    EXPECT_THROW(blocked.get(), QueueFull);
    EXPECT_EQ(first.get().output.count(), 1);
    EXPECT_EQ(queued.get().output.count(), 1);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.rejected, 1u);
    expect_conserved(s);
}

TEST(Robustness, BatchClassCapShedsBatchButAdmitsInteractive) {
    const Work work;
    SessionOptions options;
    options.admission.mode = AdmissionMode::reject_fast;
    options.admission.max_queue = 10;
    options.admission.max_queue_batch = 1;
    SaloSession session(serving_config(1), options);

    auto stall = stall_injector(milliseconds(300));
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    AttentionRequest b1 = work.request();
    b1.priority = Priority::batch;
    auto batch_ok = session.submit(std::move(b1));  // batch queue: 1 (cap)
    AttentionRequest b2 = work.request();
    b2.priority = Priority::batch;
    auto batch_shed = session.submit(std::move(b2));  // over the class cap
    auto interactive_ok = session.submit(work.request());  // unaffected

    EXPECT_THROW(batch_shed.get(), QueueFull);
    EXPECT_EQ(first.get().output.count(), 1);
    EXPECT_EQ(batch_ok.get().output.count(), 1);
    EXPECT_EQ(interactive_ok.get().output.count(), 1);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.rejected, 1u);
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// Injected stalls observe deadlines: a wedged tile can delay a request but
// never hold it past its deadline (regression — stalls used to sleep the
// full configured duration regardless).
// -------------------------------------------------------------------------

TEST(Robustness, InjectedStallIsCutShortByTheDeadline) {
    FaultInjector::Config c;
    c.stall_tiles = {0};
    c.stall_for = std::chrono::duration_cast<std::chrono::microseconds>(
        milliseconds(10000));
    const FaultInjector injector(c);
    const Clock::time_point t0 = Clock::now();
    EXPECT_THROW(injector.on_tile(0, t0 + milliseconds(20)), DeadlineExceeded);
    const milliseconds took = std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 2000);  // nowhere near the 10 s stall
    EXPECT_EQ(injector.stalls_injected(), 1u);
}

TEST(Robustness, InjectedStallIsCutShortByCancellation) {
    FaultInjector::Config c;
    c.stall_tiles = {0};
    c.stall_for = std::chrono::duration_cast<std::chrono::microseconds>(
        milliseconds(10000));
    const FaultInjector injector(c);
    CancellationToken token = CancellationToken::make();
    token.request_cancel();
    const Clock::time_point t0 = Clock::now();
    EXPECT_THROW(injector.on_tile(0, std::nullopt, &token), RequestCancelled);
    const milliseconds took = std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 2000);
}

TEST(Robustness, StalledRequestResolvesAtItsDeadlineNotTheStall) {
    const Work work;
    SaloSession session(serving_config(1));
    // The request wedges at its first tile for 10 s but carries a 50 ms
    // deadline: it must fail DeadlineExceeded on the deadline's timescale.
    auto stall = stall_injector(milliseconds(10000));
    AttentionRequest r = work.request();
    r.deadline = Clock::now() + milliseconds(50);
    r.fault_injector = stall;
    const Clock::time_point t0 = Clock::now();
    auto future = session.submit(std::move(r));
    EXPECT_THROW(future.get(), DeadlineExceeded);
    const milliseconds took = std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 5000);  // deadline timescale, not the 10 s wedge
    EXPECT_GE(stall->tiles_seen(), 1u);  // it did reach the engine
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.timed_out, 1u);
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// The extended conservation law on the sharded tier: per-attempt retry
// counters live outside the law, and every outcome class still sums to
// submitted under a mixed fault/cancel/deadline/reject stream.
// -------------------------------------------------------------------------

TEST(Robustness, PlainSessionReportsZeroShardCounters) {
    const Work work;
    SaloSession session(serving_config(1));
    EXPECT_EQ(session.submit(work.request()).get().output.count(), 1);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.retried, 0u);
    EXPECT_EQ(s.failed_over, 0u);
    EXPECT_EQ(s.quarantined_shard_events, 0u);
    EXPECT_EQ(s.reintegrated_shard_events, 0u);
    expect_conserved(s);
}

TEST(Robustness, ShardedTierConservationUnderMixedOutcomes) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 3;
    ShardedSession tier(serving_config(1), options);

    std::vector<std::future<LayerResult>> futures;
    // 6 clean requests.
    for (int i = 0; i < 6; ++i) futures.push_back(tier.submit(work.request()));
    // 4 transient faults: complete after exactly one retry each.
    for (int i = 0; i < 4; ++i) {
        FaultInjector::Config c;
        c.fault_tiles = {0};
        c.max_faults = 1;
        AttentionRequest r = work.request();
        r.fault_injector = std::make_shared<FaultInjector>(c);
        futures.push_back(tier.submit(std::move(r)));
    }
    // 2 hard failures: every attempt faults, the retry budget exhausts.
    for (int i = 0; i < 2; ++i) {
        FaultInjector::Config c;
        c.fault_tiles = {0};
        AttentionRequest r = work.request();
        r.fault_injector = std::make_shared<FaultInjector>(c);
        futures.push_back(tier.submit(std::move(r)));
    }
    // 2 cancelled before dispatch could matter.
    for (int i = 0; i < 2; ++i) {
        CancellationToken token = CancellationToken::make();
        token.request_cancel();
        AttentionRequest r = work.request();
        r.cancel = token;
        futures.push_back(tier.submit(std::move(r)));
    }
    // 2 already expired: shed at admission.
    for (int i = 0; i < 2; ++i) {
        AttentionRequest r = work.request();
        r.deadline = Clock::now() - milliseconds(1);
        futures.push_back(tier.submit(std::move(r)));
    }

    int completed = 0, failed = 0, cancelled = 0, timed_out = 0;
    for (auto& f : futures) {
        try {
            f.get();
            ++completed;
        } catch (const EngineFault&) {
            ++failed;
        } catch (const RequestCancelled&) {
            ++cancelled;
        } catch (const DeadlineExceeded&) {
            ++timed_out;
        }
    }
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.submitted, 16u);
    EXPECT_EQ(s.completed, 10u);
    EXPECT_EQ(s.failed, 2u);
    EXPECT_EQ(s.cancelled, 2u);
    EXPECT_EQ(s.timed_out, 2u);
    EXPECT_EQ(s.rejected, 0u);
    expect_conserved(s);
    EXPECT_EQ(completed, 10);
    EXPECT_EQ(failed, 2);
    EXPECT_EQ(cancelled, 2);
    EXPECT_EQ(timed_out, 2);
    // Per-attempt counters: 4 single-retry completions plus 2 exhausted
    // requests at 2 retries each; failover never exceeds the retry count.
    EXPECT_EQ(s.retried, 8u);
    EXPECT_LE(s.failed_over, s.retried);
    EXPECT_GE(s.failed_over, 1u);
}

TEST(Robustness, LegacyMaxQueueStillBlocksUntilSpace) {
    // The legacy SessionOptions::max_queue bound folds into the admission
    // policy as depth-only block mode: submits past the bound wait and are
    // eventually served, never rejected.
    const Work work;
    SessionOptions options;
    options.max_queue = 1;
    SaloSession session(serving_config(1), options);
    std::vector<std::future<LayerResult>> futures;
    for (int i = 0; i < 6; ++i) futures.push_back(session.submit(work.request()));
    for (auto& f : futures) EXPECT_EQ(f.get().output.count(), 1);
    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.completed, 6u);
    EXPECT_EQ(s.rejected, 0u);
    expect_conserved(s);
}

}  // namespace
}  // namespace salo
