// Bit-level properties of the shared datapath helpers: rounding shifts,
// probability normalization bounds, and cross-format consistency.
#include <gtest/gtest.h>

#include "numeric/datapath.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"

namespace salo {
namespace {

TEST(RoundShift, ExactMultiplesAreExact) {
    for (std::int64_t v : {-4096, -256, -16, 0, 16, 256, 4096})
        EXPECT_EQ(round_shift(v, 4), v / 16) << v;
}

TEST(RoundShift, RoundsToNearest) {
    EXPECT_EQ(round_shift(17, 4), 1);   // 1.0625 -> 1
    EXPECT_EQ(round_shift(25, 4), 2);   // 1.5625 -> 2
    EXPECT_EQ(round_shift(-17, 4), -1);
    EXPECT_EQ(round_shift(-25, 4), -2);
}

TEST(RoundShift, TiesAwayFromZero) {
    EXPECT_EQ(round_shift(24, 4), 2);    // 1.5 -> 2
    EXPECT_EQ(round_shift(-24, 4), -2);  // -1.5 -> -2
    EXPECT_EQ(round_shift(8, 4), 1);     // 0.5 -> 1
    EXPECT_EQ(round_shift(-8, 4), -1);
}

TEST(RoundShift, Symmetry) {
    // round_shift(-v) == -round_shift(v) for all v (no floor bias).
    for (std::int64_t v = 0; v < 1000; v += 7)
        EXPECT_EQ(round_shift(-v, 3), -round_shift(v, 3)) << v;
}

TEST(RoundShift, NegativeShiftWidens) {
    EXPECT_EQ(round_shift(3, -2), 12);
    EXPECT_EQ(round_shift(-3, -2), -12);
    EXPECT_EQ(round_shift(5, 0), 5);
}

TEST(RoundShift, ErrorBoundedByHalfLsb) {
    for (std::int64_t v = -500; v <= 500; v += 3) {
        const double exact = static_cast<double>(v) / 8.0;
        const double rounded = static_cast<double>(round_shift(v, 3));
        EXPECT_LE(std::abs(rounded - exact), 0.5 + 1e-12) << v;
    }
}

TEST(NormalizeProbBounds, NeverExceedsSaturation) {
    const Reciprocal recip;
    // For any exp <= W, S' stays within [0, 1] + rounding slack.
    for (ExpRaw e : {ExpRaw{1}, ExpRaw{100}, ExpRaw{1u << 14}, ExpRaw{1u << 20},
                     ExpRaw{1u << 30}}) {
        for (std::uint64_t mult : {1ull, 2ull, 7ull, 63ull}) {
            const SumRaw w = static_cast<SumRaw>(e) * mult;
            const InvRaw inv = recip.inv_raw(w);
            const double sp = static_cast<double>(normalize_prob(e, inv)) /
                              (1 << Datapath::sprime_frac);
            EXPECT_GE(sp, 0.0);
            EXPECT_LE(sp, 1.001);
            EXPECT_NEAR(sp, 1.0 / static_cast<double>(mult), 0.01);
        }
    }
}

TEST(DatapathLayout, FracPositionsAreConsistent) {
    // The stage-5 accumulator (sprime + in) must have at least wsm_frac
    // bits so the renormalizing shift is non-negative, and the WSM's final
    // emission must shrink to out_frac.
    static_assert(Datapath::sprime_frac + Datapath::in_frac >= Datapath::wsm_frac);
    static_assert(Datapath::wsm_frac >= Datapath::out_frac);
    static_assert(Datapath::exp_frac + Datapath::inv_frac >= Datapath::sprime_frac);
    static_assert(Datapath::acc_frac == 2 * Datapath::in_frac);
    SUCCEED();
}

TEST(PwlExpVsReciprocal, SelfNormalizationIsOne) {
    // exp(x) / exp(x) == 1 through the full quantized pipeline.
    const PwlExp exp_unit;
    const Reciprocal recip;
    for (ScoreRaw x = -1024; x <= 1024; x += 64) {
        const ExpRaw e = exp_unit.exp_raw(x);
        if (e == 0) continue;
        const InvRaw inv = recip.inv_raw(e);
        const double sp = static_cast<double>(normalize_prob(e, inv)) /
                          (1 << Datapath::sprime_frac);
        EXPECT_NEAR(sp, 1.0, 0.005) << "x=" << x;
    }
}

TEST(PwlExpVsReciprocal, SoftmaxOfEqualScoresIsUniform) {
    const PwlExp exp_unit;
    const Reciprocal recip;
    for (int count : {2, 5, 16, 32}) {
        const ExpRaw e = exp_unit.exp_raw(300);  // arbitrary positive score
        const SumRaw w = static_cast<SumRaw>(e) * static_cast<SumRaw>(count);
        const InvRaw inv = recip.inv_raw(w);
        const double sp = static_cast<double>(normalize_prob(e, inv)) /
                          (1 << Datapath::sprime_frac);
        EXPECT_NEAR(sp, 1.0 / count, 0.005) << "count=" << count;
    }
}

}  // namespace
}  // namespace salo
