// Co-simulation kernel semantics: phase ordering, quiescence, deadlock
// detection from the commit tally, budget abort, and the wiring-time
// registration contract.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cosim/kernel.hpp"

namespace salo::cosim {
namespace {

/// Test shim exposing the protected registration hook.
class Probe : public Component {
public:
    Probe(Kernel& kernel, std::string name) : Component(kernel, std::move(name)) {}

    void add(const std::string& process, std::function<RunState(CyclePhase)> fn) {
        register_process(process, std::move(fn));
    }
};

/// Runs for `work` cycles, then goes idle forever.
RunState counter_process(std::int64_t* remaining, CyclePhase phase) {
    if (phase != CyclePhase::kCommit) return RunState::kIdle;
    if (*remaining > 0) {
        --*remaining;
        return RunState::kRunning;
    }
    return RunState::kIdle;
}

TEST(CosimKernel, QuiescesWhenAllWorkDrains) {
    Kernel kernel;
    Probe p(kernel, "p");
    std::int64_t work = 5;
    p.add("count", [&](CyclePhase ph) { return counter_process(&work, ph); });
    EXPECT_EQ(kernel.run(100), RunState::kIdle);
    EXPECT_EQ(kernel.cycle(), 6);  // 5 running cycles + the idle cycle observed
    EXPECT_EQ(work, 0);
}

TEST(CosimKernel, CyclicWaitIsDeadlockWithStuckNames) {
    // a waits for b's token, b waits for a's token; neither ever commits.
    Kernel kernel;
    Probe a(kernel, "a");
    Probe b(kernel, "b");
    bool token_a = false, token_b = false;
    a.add("wait_b", [&](CyclePhase ph) {
        if (ph != CyclePhase::kCommit) return RunState::kIdle;
        if (token_b) {
            token_a = true;
            return RunState::kRunning;
        }
        return RunState::kDeadlock;
    });
    b.add("wait_a", [&](CyclePhase ph) {
        if (ph != CyclePhase::kCommit) return RunState::kIdle;
        if (token_a) {
            token_b = true;
            return RunState::kRunning;
        }
        return RunState::kDeadlock;
    });
    EXPECT_EQ(kernel.run(1000), RunState::kDeadlock);
    EXPECT_EQ(kernel.cycle(), 1);  // detected on the first committed cycle
    const std::vector<std::string> stuck = kernel.stuck_processes();
    ASSERT_EQ(stuck.size(), 2u);
    EXPECT_EQ(stuck[0], "a/wait_b");
    EXPECT_EQ(stuck[1], "b/wait_a");
}

TEST(CosimKernel, ProgressElsewhereDefersDeadlock) {
    // A stalled process is not a deadlock while any process still commits;
    // once the runner drains, the stall is promoted to a system deadlock.
    Kernel kernel;
    Probe p(kernel, "p");
    std::int64_t work = 7;
    p.add("runner", [&](CyclePhase ph) { return counter_process(&work, ph); });
    p.add("stuck", [](CyclePhase ph) {
        return ph == CyclePhase::kCommit ? RunState::kDeadlock : RunState::kIdle;
    });
    for (int i = 0; i < 7; ++i) EXPECT_EQ(kernel.step(), RunState::kRunning);
    EXPECT_EQ(kernel.step(), RunState::kDeadlock);
    const std::vector<std::string> stuck = kernel.stuck_processes();
    ASSERT_EQ(stuck.size(), 1u);
    EXPECT_EQ(stuck[0], "p/stuck");
}

TEST(CosimKernel, BudgetExhaustionAborts) {
    Kernel kernel;
    Probe p(kernel, "p");
    p.add("spin", [](CyclePhase ph) {
        return ph == CyclePhase::kCommit ? RunState::kRunning : RunState::kIdle;
    });
    EXPECT_EQ(kernel.run(50), RunState::kAborted);
    EXPECT_EQ(kernel.cycle(), 50);
}

TEST(CosimKernel, PhasesAndProcessesRunInRegistrationOrder) {
    Kernel kernel;
    Probe p(kernel, "p");
    std::vector<std::string> trace;
    auto record = [&trace](const char* name, CyclePhase ph) {
        const char* phase = ph == CyclePhase::kAcquire ? "acq"
                            : ph == CyclePhase::kCheck ? "chk"
                                                       : "com";
        trace.push_back(std::string(name) + ":" + phase);
        return RunState::kIdle;
    };
    p.add("first", [&](CyclePhase ph) { return record("first", ph); });
    p.add("second", [&](CyclePhase ph) { return record("second", ph); });
    kernel.step();
    const std::vector<std::string> expected = {"first:acq", "second:acq",
                                               "first:chk", "second:chk",
                                               "first:com", "second:com"};
    EXPECT_EQ(trace, expected);
}

TEST(CosimKernel, RegistrationAfterFirstCycleIsRejected) {
    Kernel kernel;
    Probe p(kernel, "p");
    p.add("noop", [](CyclePhase) { return RunState::kIdle; });
    kernel.step();
    EXPECT_THROW(p.add("late", [](CyclePhase) { return RunState::kIdle; }),
                 ContractViolation);
}

}  // namespace
}  // namespace salo::cosim
