// Property-based tests: randomized patterns and shapes, with the scheduler
// coverage invariant and the simulator-vs-golden equivalence as properties.
#include <gtest/gtest.h>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"

namespace salo {
namespace {

/// Draw a random hybrid pattern: 1-3 bands with random ranges/dilations
/// plus 0-2 global tokens.
HybridPattern random_pattern(Rng& rng, int n) {
    const int num_bands = 1 + static_cast<int>(rng.uniform_index(3));
    std::vector<Band> bands;
    for (int b = 0; b < num_bands; ++b) {
        Band band;
        band.dilation = 1 + static_cast<int>(rng.uniform_index(4));
        band.count = 2 + static_cast<int>(rng.uniform_index(10));
        band.lo = static_cast<int>(rng.uniform_index(17)) - 8;
        bands.push_back(band);
    }
    std::vector<int> globals;
    const int ng = static_cast<int>(rng.uniform_index(3));
    for (int g = 0; g < ng; ++g)
        globals.push_back(static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n))));
    return HybridPattern(n, std::move(bands), std::move(globals));
}

class RandomPattern : public ::testing::TestWithParam<int> {};

TEST_P(RandomPattern, SchedulerCoversExactly) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    const int n = 24 + static_cast<int>(rng.uniform_index(60));
    const auto pattern = random_pattern(rng, n);
    ArrayGeometry geometry;
    geometry.rows = 4 + static_cast<int>(rng.uniform_index(3)) * 4;   // 4, 8, 12
    geometry.cols = 4 + static_cast<int>(rng.uniform_index(3)) * 4;
    ScheduleOptions options;
    options.packing =
        rng.uniform() < 0.5 ? PackingMode::kPacked : PackingMode::kPerBand;
    const SchedulePlan plan = schedule(pattern, geometry, 8, options);
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error))
        << error << " (n=" << n << ", rows=" << geometry.rows
        << ", cols=" << geometry.cols << ")";
}

TEST_P(RandomPattern, EngineMatchesGoldenOnQuantizedInputs) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    const int n = 24 + static_cast<int>(rng.uniform_index(40));
    const int d = 8;
    const auto pattern = random_pattern(rng, n);

    SaloConfig config;
    config.geometry.rows = 8;
    config.geometry.cols = 8;
    const SaloEngine engine(config);

    const auto q = random_matrix(n, d, rng, 0.0, 0.8);
    const auto k = random_matrix(n, d, rng, 0.0, 0.8);
    const auto v = random_matrix(n, d, rng, 0.0, 0.8);
    const float scale = 0.35f;

    const auto sim = engine.run_head(pattern, q, k, v, scale);

    // Golden on the same quantized inputs isolates datapath error.
    Matrix<float> q_scaled = q;
    for (auto& x : q_scaled.data()) x *= scale;
    const auto gold = masked_attention(quantize_roundtrip<InputFx>(q_scaled),
                                       quantize_roundtrip<InputFx>(k),
                                       quantize_roundtrip<InputFx>(v), 1.0f,
                                       pattern.attend_fn());
    EXPECT_LT(max_abs_diff(sim.output, gold), 0.12)
        << "n=" << n << " bands=" << pattern.bands().size()
        << " globals=" << pattern.global_tokens().size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPattern, ::testing::Range(1, 25));

TEST(PropertyRenormalization, SplitInvariance) {
    // Splitting a row's keys into any number of parts and merging via Eq. 2
    // must reproduce the unsplit softmax (float math, tight tolerance).
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const int m = 4 + static_cast<int>(rng.uniform_index(29));
        std::vector<double> scores, values;
        for (int j = 0; j < m; ++j) {
            scores.push_back(rng.uniform(-3.0, 3.0));
            values.push_back(rng.uniform(-2.0, 2.0));
        }
        // Unsplit reference.
        double w_all = 0.0, num_all = 0.0;
        for (int j = 0; j < m; ++j) {
            const double e = std::exp(scores[static_cast<std::size_t>(j)]);
            w_all += e;
            num_all += e * values[static_cast<std::size_t>(j)];
        }
        const double reference = num_all / w_all;

        // Random split into parts, merged pairwise by Eq. 2.
        double w_acc = 0.0, out_acc = 0.0;
        int j = 0;
        while (j < m) {
            const int take = 1 + static_cast<int>(rng.uniform_index(
                                     static_cast<std::uint64_t>(m - j)));
            double w_part = 0.0, num_part = 0.0;
            for (int t = 0; t < take; ++t, ++j) {
                const double e = std::exp(scores[static_cast<std::size_t>(j)]);
                w_part += e;
                num_part += e * values[static_cast<std::size_t>(j)];
            }
            const double out_part = num_part / w_part;
            const double w_total = w_acc + w_part;
            out_acc = (w_acc / w_total) * out_acc + (w_part / w_total) * out_part;
            w_acc = w_total;
        }
        EXPECT_NEAR(out_acc, reference, 1e-9) << "trial " << trial;
    }
}

}  // namespace
}  // namespace salo
