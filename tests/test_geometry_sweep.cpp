// Parameterized sweep over PE-array geometries: the scheduler's coverage
// invariant and the simulator-vs-golden equivalence must hold for every
// array shape, not just the paper's 32x32.
#include <gtest/gtest.h>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "model/salo_model.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"

namespace salo {
namespace {

struct Geometry {
    int rows;
    int cols;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, LongformerCoverage) {
    ArrayGeometry g;
    g.rows = GetParam().rows;
    g.cols = GetParam().cols;
    const auto pattern = longformer(96, 12, 2);
    const SchedulePlan plan = schedule(pattern, g, 8, {});
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error)) << error;
}

TEST_P(GeometrySweep, Vil2dCoverage) {
    ArrayGeometry g;
    g.rows = GetParam().rows;
    g.cols = GetParam().cols;
    const auto pattern = vil_2d(10, 10, 5, 5, 1);
    const SchedulePlan plan = schedule(pattern, g, 8, {});
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error)) << error;
}

TEST_P(GeometrySweep, EngineMatchesGolden) {
    SaloConfig config;
    config.geometry.rows = GetParam().rows;
    config.geometry.cols = GetParam().cols;
    const SaloEngine engine(config);
    const auto pattern = longformer(64, 10, 1);
    Rng rng(static_cast<std::uint64_t>(GetParam().rows * 100 + GetParam().cols));
    const auto q = random_matrix(64, 8, rng, 0.0, 0.8);
    const auto k = random_matrix(64, 8, rng, 0.0, 0.8);
    const auto v = random_matrix(64, 8, rng, 0.0, 0.8);
    const float scale = 0.35f;
    const auto sim = engine.run_head(pattern, q, k, v, scale);
    Matrix<float> qs = q;
    for (auto& x : qs.data()) x *= scale;
    const auto gold = masked_attention(quantize_roundtrip<InputFx>(qs),
                                       quantize_roundtrip<InputFx>(k),
                                       quantize_roundtrip<InputFx>(v), 1.0f,
                                       pattern.attend_fn());
    EXPECT_LT(max_abs_diff(sim.output, gold), 0.12);
}

TEST_P(GeometrySweep, OccupancyConsistentBetweenPlanAndModel) {
    SaloConfig config;
    config.geometry.rows = GetParam().rows;
    config.geometry.cols = GetParam().cols;
    const auto pattern = longformer(128, 16, 1);
    const SchedulePlan plan = schedule(pattern, config.geometry, 8, {});
    const SimStats stats = estimate_head_stats(plan, config);
    EXPECT_DOUBLE_EQ(plan.stats.slot_occupancy(), stats.activity.occupancy());
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeometrySweep,
                         ::testing::Values(Geometry{4, 4}, Geometry{4, 16},
                                           Geometry{16, 4}, Geometry{8, 8},
                                           Geometry{8, 12}, Geometry{12, 8},
                                           Geometry{16, 16}, Geometry{32, 8}),
                         [](const ::testing::TestParamInfo<Geometry>& info) {
                             return std::to_string(info.param.rows) + "x" +
                                    std::to_string(info.param.cols);
                         });

}  // namespace
}  // namespace salo
