// Single-array co-simulation parity: an uncontended ArrayComponent fed a
// plan's tile costs must reproduce the TileCostAccountant recurrence (the
// engine's analytic cycle model) bit-for-bit — per tile, not just in total
// — across array geometries, patterns, and the double-buffer/pipelining
// configuration space. Also ties the replayed stage breakdowns back to the
// cycle-accurate datapath's measured counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cosim/system.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_accurate.hpp"
#include "sim/tile_costs.hpp"

namespace salo {
namespace {

struct Geometry {
    int rows;
    int cols;
};

TileCostParams make_params(int head_dim, bool double_buffer, bool tile_pipelining) {
    TileCostParams params;
    params.head_dim = head_dim;
    params.double_buffer = double_buffer;
    params.tile_pipelining = tile_pipelining;
    return params;
}

/// Run `plan` on a 1-array system and check every per-tile finish time and
/// every stall counter against the sequential accountant.
void expect_parity(const SchedulePlan& plan, const TileCostParams& params) {
    ASSERT_FALSE(plan.tiles.empty());
    TileCostAccountant accountant(params);
    std::vector<std::int64_t> expected_finish;
    std::int64_t elapsed = 0;
    std::int64_t expected_stalls = 0;
    CycleBreakdown expected_stages;
    for (const TileTask& tile : plan.tiles) {
        const TileCostAccountant::Step step = accountant.account(tile);
        elapsed += step.cycles;
        expected_finish.push_back(elapsed - 1);  // finish cycle of this tile
        expected_stalls += step.stall_cycles;
        for (int s = 0; s < 5; ++s)
            expected_stages.stage[s] += step.cost.breakdown.stage[s];
    }

    cosim::CosimConfig config;
    config.num_arrays = 1;
    config.costs = params;
    cosim::MultiArraySystem system(config);
    for (const TileTask& tile : plan.tiles)
        system.enqueue(0, tile_cost(tile, params));
    const cosim::CosimReport report = system.run();

    ASSERT_EQ(report.final_state, cosim::RunState::kIdle)
        << "full tile run must quiesce, never deadlock";
    const cosim::ArrayComponent::Stats& a = report.arrays[0];
    EXPECT_EQ(a.tiles, static_cast<std::int64_t>(plan.tiles.size()));
    EXPECT_EQ(a.total_cycles, accountant.total_cycles());
    EXPECT_EQ(a.tile_finish_cycles, expected_finish);
    // An uncontended array never stalls on the memory ports or the bus; its
    // only waits are the exposed load cycles the recurrence predicts.
    EXPECT_EQ(a.fetch_stall_cycles, 0);
    EXPECT_EQ(a.wb_stall_cycles, 0);
    EXPECT_EQ(a.mem_wait_cycles, expected_stalls);
    for (int s = 0; s < 5; ++s)
        EXPECT_EQ(a.stage_totals.stage[s], expected_stages.stage[s]);
}

class CosimParitySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CosimParitySweep, MatchesAccountantAcrossPatterns) {
    ArrayGeometry g;
    g.rows = GetParam().rows;
    g.cols = GetParam().cols;
    const struct {
        HybridPattern pattern;
        int head_dim;
    } cases[] = {
        {longformer(96, 12, 2), 8},
        {vil_2d(10, 10, 5, 5, 1), 8},
        {longformer(64, 10, 1), 16},
    };
    for (const auto& c : cases) {
        const SchedulePlan plan = schedule(c.pattern, g, c.head_dim, {});
        expect_parity(plan, make_params(c.head_dim, true, false));
    }
}

TEST_P(CosimParitySweep, MatchesAccountantWithoutDoubleBuffer) {
    ArrayGeometry g;
    g.rows = GetParam().rows;
    g.cols = GetParam().cols;
    const SchedulePlan plan = schedule(longformer(96, 12, 2), g, 8, {});
    expect_parity(plan, make_params(8, false, false));
}

TEST_P(CosimParitySweep, MatchesAccountantWithTilePipelining) {
    ArrayGeometry g;
    g.rows = GetParam().rows;
    g.cols = GetParam().cols;
    const SchedulePlan plan = schedule(longformer(96, 12, 2), g, 8, {});
    expect_parity(plan, make_params(8, true, true));
    expect_parity(plan, make_params(8, false, true));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CosimParitySweep,
                         ::testing::Values(Geometry{4, 4}, Geometry{4, 16},
                                           Geometry{16, 4}, Geometry{8, 8},
                                           Geometry{8, 12}, Geometry{12, 8},
                                           Geometry{16, 16}, Geometry{32, 8}),
                         [](const ::testing::TestParamInfo<Geometry>& info) {
                             return std::to_string(info.param.rows) + "x" +
                                    std::to_string(info.param.cols);
                         });

// The replayed stage totals are not synthetic numbers: they equal what the
// cycle-accurate datapath measures tile by tile on real (quantized) inputs.
TEST(CosimParity, StageTotalsMatchCycleAccurateMeasurement) {
    ArrayGeometry g;
    g.rows = 8;
    g.cols = 8;
    const auto pattern = longformer(64, 10, 1);
    const int d = 8;
    const SchedulePlan plan = schedule(pattern, g, d, {});
    Rng rng(7);
    const auto q = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
    const auto k = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
    const auto v = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
    PwlExp exp_unit;
    Reciprocal recip_unit;
    const CycleAccurateArray array(g, CycleConfig{}, exp_unit, recip_unit, q, k, v);
    CycleBreakdown measured;
    ActivityStats activity;
    std::vector<TilePart> parts;
    for (const TileTask& tile : plan.tiles) {
        const CycleBreakdown b = array.run(tile, parts, activity);
        for (int s = 0; s < 5; ++s) measured.stage[s] += b.stage[s];
    }

    cosim::CosimConfig config;
    const TileCostParams params = make_params(d, true, false);
    config.costs = params;
    cosim::MultiArraySystem system(config);
    for (const TileTask& tile : plan.tiles) system.enqueue(0, tile_cost(tile, params));
    const cosim::CosimReport report = system.run();
    for (int s = 0; s < 5; ++s)
        EXPECT_EQ(report.arrays[0].stage_totals.stage[s], measured.stage[s]);
}

}  // namespace
}  // namespace salo
