#include "workload/workloads.hpp"

#include <gtest/gtest.h>

namespace salo {
namespace {

TEST(Workload, LongformerMatchesTable2) {
    const auto w = longformer_base_4096();
    EXPECT_EQ(w.n(), 4096);
    EXPECT_EQ(w.window, 512);
    EXPECT_EQ(w.hidden(), 768);
    EXPECT_EQ(w.pattern.global_tokens().size(), 1u);
    EXPECT_NEAR(w.pattern.sparsity(), w.paper_sparsity, 0.01);
}

TEST(Workload, VilStage1MatchesTable2) {
    const auto w = vil_stage1();
    EXPECT_EQ(w.n(), 56 * 56);
    EXPECT_EQ(w.window, 225);
    EXPECT_EQ(w.hidden(), 192);
    EXPECT_EQ(w.pattern.grid_width(), 56);
    // Paper quotes 0.072 (= 225/3136, edges ignored); our exact sparsity is
    // lower because the window clips at image borders.
    EXPECT_NEAR(w.pattern.sparsity(), w.paper_sparsity, 0.015);
}

TEST(Workload, VilStage2MatchesTable2) {
    const auto w = vil_stage2();
    EXPECT_EQ(w.n(), 28 * 28);
    EXPECT_EQ(w.hidden(), 384);
    // Paper quotes 225/784 = 0.288, which ignores edge clipping; on a 28x28
    // grid a 15x15 window clips heavily, so the exact sparsity is lower.
    EXPECT_NEAR(w.paper_sparsity, 225.0 / 784.0, 0.002);
    EXPECT_LT(w.pattern.sparsity(), w.paper_sparsity);
    EXPECT_GT(w.pattern.sparsity(), 0.19);
}

TEST(Workload, PaperWorkloadsOrdering) {
    const auto all = paper_workloads();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "Longformer");
    EXPECT_EQ(all[1].name, "ViL-stage1");
    EXPECT_EQ(all[2].name, "ViL-stage2");
}

TEST(Workload, BertIsDense) {
    const auto w = bert_base(64);
    for (int i = 0; i < 64; i += 7)
        for (int j = 0; j < 64; j += 5) EXPECT_TRUE(w.pattern.attends(i, j));
    EXPECT_NEAR(w.pattern.sparsity(), 1.0, 1e-9);
    EXPECT_EQ(w.hidden(), 768);
}

TEST(Workload, ScaleIsInverseSqrtD) {
    const auto w = longformer_base_4096();
    EXPECT_NEAR(w.scale(), 1.0 / 8.0, 1e-6);
}

TEST(Workload, MakeQkvShapesAndDeterminism) {
    const auto w = longformer_small(32, 8, 2, 16, 1);
    const auto a = make_qkv(w, 5);
    const auto b = make_qkv(w, 5);
    const auto c = make_qkv(w, 6);
    EXPECT_EQ(a.q.count(), 2);
    EXPECT_EQ(a.q.rows(), 32);
    EXPECT_EQ(a.q.cols(), 16);
    EXPECT_TRUE(a.q[0] == b.q[0]);
    EXPECT_TRUE(a.v[1] == b.v[1]);
    EXPECT_FALSE(a.q[0] == c.q[0]);
}

}  // namespace
}  // namespace salo
