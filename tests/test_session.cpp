// SaloSession: the batched request-serving front end. Locks in the
// determinism guarantee (concurrent mixed submissions are bit-identical to
// the sequential engine run for every thread count), plan-cache behavior
// under serving traffic, per-request fidelity overrides, error propagation
// through futures, and the close/drain lifecycle.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/salo.hpp"
#include "transformer/encoder.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

SaloConfig serving_config(int threads) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.num_threads = threads;
    return c;
}

void expect_identical_layer(const LayerResult& a, const LayerResult& b,
                            const char* what) {
    ASSERT_EQ(a.output.count(), b.output.count()) << what;
    for (int h = 0; h < a.output.count(); ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(a.output[h], b.output[h]), 0.0)
            << what << ", head " << h;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.tiles, b.stats.tiles) << what;
    EXPECT_EQ(a.stats.activity.mac_ops, b.stats.activity.mac_ops) << what;
    EXPECT_EQ(a.stats.activity.pe_cycles, b.stats.activity.pe_cycles) << what;
}

/// A mixed Longformer + ViL request stream (the paper's two workload
/// families) with per-request seeds.
struct Stream {
    std::vector<AttentionWorkload> workloads;
    std::vector<QkvSet> inputs;

    static Stream mixed(int requests) {
        Stream s;
        const AttentionWorkload longf = longformer_small(96, 16, 2, 16, 1);
        AttentionWorkload vil = vil_stage1();
        vil.pattern = vil_2d(10, 10, 5, 5, 1);
        vil.heads = 2;
        vil.head_dim = 16;
        const AttentionWorkload longf_wide = longformer_small(64, 24, 3, 16, 2);
        for (int i = 0; i < requests; ++i) {
            const AttentionWorkload& w =
                i % 3 == 0 ? longf : (i % 3 == 1 ? vil : longf_wide);
            s.workloads.push_back(w);
            s.inputs.push_back(make_qkv(w, 1000 + static_cast<std::uint64_t>(i)));
        }
        return s;
    }
};

// -------------------------------------------------------------------------
// Determinism: >= 8 concurrent mixed requests, bit-identical to the
// sequential engine for every session thread count.
// -------------------------------------------------------------------------

TEST(Session, ConcurrentMixedStreamBitIdenticalToSequentialRun) {
    const int kRequests = 12;
    const Stream stream = Stream::mixed(kRequests);

    // Sequential ground truth: one engine, one thread, one-shot calls.
    const SaloEngine sequential(serving_config(1));
    std::vector<LayerResult> expected;
    for (int i = 0; i < kRequests; ++i)
        expected.push_back(sequential.run(stream.workloads[static_cast<std::size_t>(i)].pattern,
                                          stream.inputs[static_cast<std::size_t>(i)].q,
                                          stream.inputs[static_cast<std::size_t>(i)].k,
                                          stream.inputs[static_cast<std::size_t>(i)].v,
                                          stream.workloads[static_cast<std::size_t>(i)].scale()));

    for (int threads : {1, 2, 8}) {
        SaloSession session(serving_config(threads));
        // Submit the full burst from several caller threads so requests are
        // genuinely in flight together.
        std::vector<std::future<LayerResult>> futures(kRequests);
        std::vector<std::thread> submitters;
        for (int t = 0; t < 4; ++t)
            submitters.emplace_back([&, t] {
                for (int i = t; i < kRequests; i += 4) {
                    const auto idx = static_cast<std::size_t>(i);
                    futures[idx] = session.submit(stream.workloads[idx].pattern,
                                                  stream.inputs[idx].q, stream.inputs[idx].k,
                                                  stream.inputs[idx].v,
                                                  stream.workloads[idx].scale());
                }
            });
        for (std::thread& t : submitters) t.join();
        for (int i = 0; i < kRequests; ++i) {
            const LayerResult got = futures[static_cast<std::size_t>(i)].get();
            expect_identical_layer(got, expected[static_cast<std::size_t>(i)],
                                   ("threads=" + std::to_string(threads) + " request " +
                                    std::to_string(i))
                                       .c_str());
        }
        // Futures resolve before the dispatcher's batch accounting lands;
        // drain() is the synchronization point for stats readers.
        session.drain();
        const SessionStats stats = session.stats();
        EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
        EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kRequests));
        EXPECT_EQ(stats.failed, 0u);
    }
}

TEST(Session, RepeatedLayerWorkloadHitsPlanCache) {
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    SaloSession session(serving_config(2));
    const CompiledPlanPtr plan = session.compile(w.pattern, w.head_dim);

    const int kRequests = 32;
    std::vector<std::future<LayerResult>> futures;
    for (int i = 0; i < kRequests; ++i) {
        const QkvSet qkv = make_qkv(w, static_cast<std::uint64_t>(i));
        // Alternate between the precompiled-plan and pattern flavours; both
        // must resolve to the one cached artifact.
        if (i % 2 == 0)
            futures.push_back(session.submit(plan, qkv.q, qkv.k, qkv.v, w.scale()));
        else
            futures.push_back(session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()));
    }
    for (auto& f : futures) f.get();

    const PlanCacheStats cache = session.stats().plan_cache;
    EXPECT_EQ(cache.misses, 1u);  // the explicit compile()
    EXPECT_GE(cache.hits, static_cast<std::uint64_t>(kRequests / 2));
    EXPECT_GT(cache.hit_rate(), 0.9);
}

TEST(Session, PrecompiledPlanSubmissionMatchesPatternSubmission) {
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    const QkvSet qkv = make_qkv(w, 77);
    SaloSession session(serving_config(2));
    const CompiledPlanPtr plan = session.compile(w.pattern, w.head_dim);
    const LayerResult via_plan =
        session.submit(plan, qkv.q, qkv.k, qkv.v, w.scale()).get();
    const LayerResult via_pattern =
        session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()).get();
    expect_identical_layer(via_plan, via_pattern, "plan vs pattern submission");
}

// -------------------------------------------------------------------------
// Per-request fidelity
// -------------------------------------------------------------------------

TEST(Session, FidelityOverridePerRequest) {
    const AttentionWorkload w = longformer_small(64, 8, 1, 16, 1);
    const QkvSet qkv = make_qkv(w, 3);
    SaloSession session(serving_config(2));

    AttentionRequest golden_req =
        make_request(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    golden_req.fidelity = Fidelity::kGolden;
    const LayerResult golden = session.submit(std::move(golden_req)).get();
    const LayerResult functional =
        session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()).get();

    const Matrix<float> oracle =
        SaloEngine::golden(w.pattern, qkv.q[0], qkv.k[0], qkv.v[0], w.scale());
    EXPECT_DOUBLE_EQ(max_abs_diff(golden.output[0], oracle), 0.0);
    // The functional (quantized) arm differs from the oracle but is close.
    const double err = max_abs_diff(functional.output[0], oracle);
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err, 0.5);
    // Golden requests do no accelerator work.
    EXPECT_EQ(golden.stats.cycles, 0);
    EXPECT_GT(functional.stats.cycles, 0);
}

// -------------------------------------------------------------------------
// Errors, lifecycle
// -------------------------------------------------------------------------

TEST(Session, ExecutionErrorsPropagateThroughTheFuture) {
    SaloSession session(serving_config(2));
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    const QkvSet qkv = make_qkv(w, 9);
    // Pattern of a different sequence length than Q/K/V: compiles fine,
    // fails the engine's shape contract at execution time.
    auto bad = session.submit(longformer(128, 16, 1), qkv.q, qkv.k, qkv.v, w.scale());
    EXPECT_THROW(bad.get(), ContractViolation);

    // The session stays healthy and serves subsequent requests.
    const LayerResult good =
        session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()).get();
    EXPECT_EQ(good.output.count(), w.heads);
    session.drain();
    const SessionStats stats = session.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 1u);
}

TEST(Session, StructurallyInvalidSubmitThrowsSynchronously) {
    SaloSession session(serving_config(1));
    AttentionRequest empty;  // no plan, no pattern, zero heads
    EXPECT_THROW(session.submit(std::move(empty)), ContractViolation);
}

TEST(Session, SubmitAfterCloseThrowsSessionClosed) {
    const AttentionWorkload w = longformer_small(64, 8, 1, 16, 1);
    const QkvSet qkv = make_qkv(w, 4);
    SaloSession session(serving_config(1));
    auto pending = session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    session.close();
    // Queued work was served before the dispatcher exited.
    EXPECT_EQ(pending.get().output.count(), 1);
    try {
        session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
        FAIL() << "submit() after close() must throw SessionClosed";
    } catch (const SessionClosed& e) {
        // The message must name the session state, not just "error".
        EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos) << e.what();
    }
    // SessionClosed stays catchable as std::runtime_error for legacy callers.
    EXPECT_THROW(session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()),
                 std::runtime_error);
}

TEST(Session, DrainWaitsForAllSubmitted) {
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    SaloSession session(serving_config(2));
    std::vector<std::future<LayerResult>> futures;
    for (int i = 0; i < 6; ++i) {
        const QkvSet qkv = make_qkv(w, static_cast<std::uint64_t>(i));
        futures.push_back(session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()));
    }
    session.drain();
    for (auto& f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
        f.get();
    }
    EXPECT_EQ(session.stats().completed, 6u);
}

TEST(Session, BoundedQueueBlocksAndRecovers) {
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    SessionOptions opts;
    opts.max_queue = 2;
    SaloSession session(serving_config(2), opts);
    std::vector<std::future<LayerResult>> futures;
    for (int i = 0; i < 8; ++i) {
        const QkvSet qkv = make_qkv(w, static_cast<std::uint64_t>(i));
        futures.push_back(session.submit(w.pattern, qkv.q, qkv.k, qkv.v, w.scale()));
    }
    for (auto& f : futures) f.get();
    session.drain();
    EXPECT_EQ(session.stats().completed, 8u);
}

TEST(Session, EncoderForwardThroughSessionMatchesEngine) {
    const int n = 64, hidden = 32, heads = 2, layers = 2;
    const HybridPattern pattern = longformer(n, 8, 1);
    Rng rng(21);
    const Encoder encoder(layers, hidden, heads, 4 * hidden, pattern, rng);
    const Matrix<float> input = random_matrix(n, hidden, rng, 0.0, 0.5);

    const SaloConfig config = serving_config(2);
    const SaloEngine engine(config);
    SaloSession session(config);
    SimStats engine_stats, session_stats;
    const Matrix<float> via_engine = encoder.forward(input, engine, &engine_stats);
    const Matrix<float> via_session = encoder.forward(input, session, &session_stats);
    EXPECT_DOUBLE_EQ(max_abs_diff(via_engine, via_session), 0.0);
    EXPECT_EQ(engine_stats.cycles, session_stats.cycles);
    // One pattern/head_dim across the stack: a single compile serves all
    // layers of both the engine and the session.
    EXPECT_EQ(engine.plan_cache_stats().misses, 1u);
    EXPECT_EQ(session.stats().plan_cache.misses, 1u);
}

}  // namespace
}  // namespace salo
