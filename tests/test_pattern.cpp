#include "pattern/pattern.hpp"

#include <gtest/gtest.h>

namespace salo {
namespace {

TEST(Band, OffsetsAndContainment) {
    const Band b{-4, 3, 2, 0};  // offsets -4, -2, 0
    EXPECT_EQ(b.hi(), 0);
    EXPECT_TRUE(b.contains_offset(-4));
    EXPECT_TRUE(b.contains_offset(-2));
    EXPECT_TRUE(b.contains_offset(0));
    EXPECT_FALSE(b.contains_offset(-3));
    EXPECT_FALSE(b.contains_offset(2));
    EXPECT_FALSE(b.contains_offset(-6));
}

TEST(SlidingWindow, SymmetricCoverage) {
    const auto p = sliding_window(16, 4);  // offsets -2..1
    EXPECT_TRUE(p.attends(8, 6));
    EXPECT_TRUE(p.attends(8, 9));
    EXPECT_FALSE(p.attends(8, 10));
    EXPECT_FALSE(p.attends(8, 5));
    EXPECT_TRUE(p.attends(8, 8));
}

TEST(SlidingWindow, ClipsAtSequenceEdges) {
    const auto p = sliding_window(8, 6);  // offsets -3..2
    EXPECT_FALSE(p.attends(0, -1));
    EXPECT_TRUE(p.attends(0, 0));
    EXPECT_TRUE(p.attends(0, 2));
    EXPECT_TRUE(p.attends(7, 4));
    EXPECT_FALSE(p.attends(7, 8));
}

TEST(SlidingWindowRange, PaperDefinition) {
    // Paper §2.3: given [a, b], q_i attends k_j iff a <= j - i <= b.
    const auto p = sliding_window_range(32, -1, 3);
    for (int i = 4; i < 28; ++i)
        for (int j = 0; j < 32; ++j)
            EXPECT_EQ(p.attends(i, j), j - i >= -1 && j - i <= 3) << i << "," << j;
}

TEST(DilatedWindow, OnlyMultiplesOfDilation) {
    // a=-2, b=2, d=3: offsets -6, -3, 0, 3, 6.
    const auto p = dilated_window(32, -2, 2, 3);
    EXPECT_TRUE(p.attends(15, 9));
    EXPECT_TRUE(p.attends(15, 12));
    EXPECT_TRUE(p.attends(15, 15));
    EXPECT_TRUE(p.attends(15, 18));
    EXPECT_TRUE(p.attends(15, 21));
    EXPECT_FALSE(p.attends(15, 14));
    EXPECT_FALSE(p.attends(15, 16));
    EXPECT_FALSE(p.attends(15, 10));
}

TEST(Longformer, GlobalTokensAttendEverywhere) {
    const auto p = longformer(64, 8, 2);
    for (int j = 0; j < 64; ++j) {
        EXPECT_TRUE(p.attends(0, j));
        EXPECT_TRUE(p.attends(1, j));
        EXPECT_TRUE(p.attends(j, 0));
        EXPECT_TRUE(p.attends(j, 1));
    }
    EXPECT_TRUE(p.is_global(0));
    EXPECT_TRUE(p.is_global(1));
    EXPECT_FALSE(p.is_global(2));
    // Non-global far pair is not attended.
    EXPECT_FALSE(p.attends(10, 40));
}

TEST(Longformer, SparsityNearPaperValue) {
    // Table 2: w/n = 512/4096 = 0.125 (paper ignores edge clipping and the
    // global token; our exact count must be close).
    const auto p = longformer(1024, 128, 1);
    EXPECT_NEAR(p.sparsity(), 128.0 / 1024.0, 0.01);
}

TEST(StarTransformer, RingPlusRelay) {
    const auto p = star_transformer(32);
    EXPECT_TRUE(p.attends(10, 9));
    EXPECT_TRUE(p.attends(10, 10));
    EXPECT_TRUE(p.attends(10, 11));
    EXPECT_FALSE(p.attends(10, 12));
    EXPECT_TRUE(p.attends(10, 0));   // relay column
    EXPECT_TRUE(p.attends(0, 20));   // relay row
}

TEST(SparseTransformerStrided, LocalPlusStride) {
    const int l = 4;
    const auto p = sparse_transformer_strided(64, l);
    // Local band.
    EXPECT_TRUE(p.attends(20, 17));
    EXPECT_TRUE(p.attends(20, 23));
    // Strided column band: offsets multiple of l.
    EXPECT_TRUE(p.attends(20, 12));
    EXPECT_TRUE(p.attends(20, 36));
    EXPECT_FALSE(p.attends(20, 26));
    EXPECT_FALSE(p.attends(20, 37));
}

TEST(SparseTransformerFixed, GlobalColumnsAtBlockEnds) {
    const auto p = sparse_transformer_fixed(32, 8);
    EXPECT_TRUE(p.is_global(7));
    EXPECT_TRUE(p.is_global(15));
    EXPECT_TRUE(p.is_global(31));
    EXPECT_FALSE(p.is_global(8));
    EXPECT_TRUE(p.attends(2, 7));    // everyone sees block summaries
    EXPECT_FALSE(p.attends(2, 12));  // outside local band, not global
}

TEST(Vil2d, WindowIsTwoDimensional) {
    const auto p = vil_2d(8, 8, 3, 3, 0);
    const auto at = [&](int yi, int xi, int yj, int xj) {
        return p.attends(yi * 8 + xi, yj * 8 + xj);
    };
    EXPECT_TRUE(at(4, 4, 3, 3));
    EXPECT_TRUE(at(4, 4, 5, 5));
    EXPECT_TRUE(at(4, 4, 4, 4));
    EXPECT_FALSE(at(4, 4, 2, 4));  // dy = -2 outside 3x3
    EXPECT_FALSE(at(4, 4, 4, 6));  // dx = +2 outside 3x3
}

TEST(Vil2d, NoWrapAcrossImageRows) {
    const auto p = vil_2d(8, 8, 3, 3, 0);
    // Patch (2, 7) is at the right edge; its flattened neighbour (3, 0)
    // must NOT be attended even though the flattened offset matches dx=+1.
    EXPECT_FALSE(p.attends(2 * 8 + 7, 2 * 8 + 8));  // = (3,0)
    // And the left-edge mirror case.
    EXPECT_FALSE(p.attends(3 * 8 + 0, 3 * 8 - 1));  // = (2,7)
}

TEST(Vil2d, SparsityNearPaperValue) {
    // Table 2 quotes 15^2/56^2 = 0.072 for stage 1 (edge effects ignored).
    const auto p = vil_2d(28, 28, 7, 7, 1);
    EXPECT_NEAR(p.sparsity(), 49.0 / 784.0, 0.02);
}

TEST(Pattern, NnzCountsGlobalRowsAndCols) {
    const int n = 16;
    const auto p = sliding_window(n, 2, {5});
    // Window offsets: -1, 0. Expected nnz: count pairs explicitly.
    std::int64_t expected = 0;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (p.attends(i, j)) ++expected;
    EXPECT_EQ(p.nnz(), expected);
}

TEST(Pattern, FirstBandIndexDedupsOverlaps) {
    // Two overlapping bands: offsets {0,1} and {1,2}. Offset 1 belongs to
    // the first band only.
    const HybridPattern p(16, {Band{0, 2, 1, 0}, Band{1, 2, 1, 0}});
    EXPECT_EQ(p.first_band_index(5, 6), 0);
    EXPECT_EQ(p.first_band_index(5, 5), 0);
    EXPECT_EQ(p.first_band_index(5, 7), 1);
    EXPECT_EQ(p.first_band_index(5, 8), -1);
}

TEST(Pattern, AsciiArtShape) {
    const auto p = sliding_window(16, 4);
    const auto art = p.ascii_art(16);
    // 16 lines of 16 chars.
    int lines = 0;
    for (char c : art)
        if (c == '\n') ++lines;
    EXPECT_EQ(lines, 16);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Pattern, DenseMaskMatchesAttends) {
    const auto p = longformer(24, 6, 1);
    const auto mask = p.dense_mask();
    for (int i = 0; i < 24; ++i)
        for (int j = 0; j < 24; ++j)
            EXPECT_EQ(mask(i, j) != 0, p.attends(i, j)) << i << "," << j;
}

TEST(Pattern, RejectsBadArguments) {
    EXPECT_THROW(HybridPattern(0, {}), ContractViolation);
    EXPECT_THROW(HybridPattern(8, {Band{0, 0, 1, 0}}), ContractViolation);
    EXPECT_THROW(HybridPattern(8, {Band{0, 1, 0, 0}}), ContractViolation);
    EXPECT_THROW(HybridPattern(8, {}, {9}), ContractViolation);
    EXPECT_THROW(HybridPattern(9, {}, {}, 2), ContractViolation);  // n % grid
}

TEST(Pattern, GlobalTokensDeduplicatedAndSorted) {
    const HybridPattern p(16, {Band{0, 1, 1, 0}}, {7, 3, 7, 3});
    ASSERT_EQ(p.global_tokens().size(), 2u);
    EXPECT_EQ(p.global_tokens()[0], 3);
    EXPECT_EQ(p.global_tokens()[1], 7);
}

}  // namespace
}  // namespace salo
