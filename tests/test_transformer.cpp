#include "transformer/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "transformer/layers.hpp"

namespace salo {
namespace {

SaloConfig small_config(Fidelity fidelity = Fidelity::kFunctional) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.fidelity = fidelity;
    return c;
}

TEST(Linear, IdentityWeightPassesThrough) {
    Linear layer(3, 3);
    for (int i = 0; i < 3; ++i) layer.weight()(i, i) = 1.0f;
    Matrix<float> x(2, 3);
    float v = 1.0f;
    for (auto& e : x.data()) e = v++;
    const auto y = layer.forward(x);
    EXPECT_LT(max_abs_diff(x, y), 1e-6);
}

TEST(Linear, BiasIsAdded) {
    Linear layer(2, 2);
    layer.bias()[0] = 1.5f;
    layer.bias()[1] = -0.5f;
    Matrix<float> x(1, 2, 0.0f);
    const auto y = layer.forward(x);
    EXPECT_FLOAT_EQ(y(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(y(0, 1), -0.5f);
}

TEST(Linear, KnownMatrixVectorProduct) {
    Linear layer(2, 3);
    // W = [[1,2],[3,4],[5,6]], x = [1, -1] -> y = [-1, -1, -1]
    float w = 1.0f;
    for (auto& e : layer.weight().data()) e = w++;
    Matrix<float> x(1, 2);
    x(0, 0) = 1.0f;
    x(0, 1) = -1.0f;
    const auto y = layer.forward(x);
    EXPECT_FLOAT_EQ(y(0, 0), -1.0f);
    EXPECT_FLOAT_EQ(y(0, 1), -1.0f);
    EXPECT_FLOAT_EQ(y(0, 2), -1.0f);
}

TEST(Linear, RejectsShapeMismatch) {
    Linear layer(4, 2);
    EXPECT_THROW(layer.forward(Matrix<float>(3, 5)), ContractViolation);
}

TEST(LayerNorm, NormalizesToZeroMeanUnitVar) {
    LayerNorm norm(8);
    Rng rng(1);
    const auto x = random_matrix(4, 8, rng, 3.0, 2.5);
    const auto y = norm.forward(x);
    for (int i = 0; i < y.rows(); ++i) {
        double mean = 0.0, var = 0.0;
        for (float v : y.row(i)) mean += v;
        mean /= 8;
        for (float v : y.row(i)) var += (v - mean) * (v - mean);
        var /= 8;
        EXPECT_NEAR(mean, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LayerNorm, GammaBetaApplied) {
    LayerNorm norm(4);
    for (auto& g : norm.gamma()) g = 2.0f;
    for (auto& b : norm.beta()) b = 1.0f;
    Rng rng(2);
    const auto x = random_matrix(2, 4, rng);
    const auto y = norm.forward(x);
    for (int i = 0; i < y.rows(); ++i) {
        double mean = 0.0;
        for (float v : y.row(i)) mean += v;
        EXPECT_NEAR(mean / 4, 1.0, 1e-5);  // beta shifts the mean
    }
}

TEST(Gelu, KnownValues) {
    Matrix<float> x(1, 3);
    x(0, 0) = 0.0f;
    x(0, 1) = 100.0f;   // saturates to identity
    x(0, 2) = -100.0f;  // saturates to zero
    const auto y = gelu(x);
    EXPECT_NEAR(y(0, 0), 0.0f, 1e-6);
    EXPECT_NEAR(y(0, 1), 100.0f, 1e-3);
    EXPECT_NEAR(y(0, 2), 0.0f, 1e-3);
}

TEST(Relu, ClampsNegatives) {
    Matrix<float> x(1, 2);
    x(0, 0) = -3.0f;
    x(0, 1) = 2.0f;
    const auto y = relu(x);
    EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y(0, 1), 2.0f);
}

TEST(Add, ResidualAndShapeCheck) {
    Matrix<float> a(2, 2, 1.0f), b(2, 2, 0.5f);
    EXPECT_FLOAT_EQ(add(a, b)(1, 1), 1.5f);
    EXPECT_THROW(add(a, Matrix<float>(2, 3)), ContractViolation);
}

TEST(FeedForward, ShapesAndNonlinearity) {
    Rng rng(3);
    FeedForward ffn(8, 32, rng);
    const auto x = random_matrix(5, 8, rng);
    const auto y = ffn.forward(x);
    EXPECT_EQ(y.rows(), 5);
    EXPECT_EQ(y.cols(), 8);
    // Non-degenerate output.
    double mag = 0.0;
    for (float v : y.data()) mag += std::abs(v);
    EXPECT_GT(mag, 0.0);
}

TEST(MultiHeadAttention, GoldenVsFunctionalClose) {
    Rng rng(4);
    const auto pattern = longformer(32, 8, 1);
    MultiHeadAttention mha(32, 4, pattern, rng);
    const auto x = random_matrix(32, 32, rng, 0.0, 0.5);
    const SaloEngine quantized(small_config(Fidelity::kFunctional));
    const SaloEngine golden(small_config(Fidelity::kGolden));
    const auto a = mha.forward(x, quantized);
    const auto b = mha.forward(x, golden);
    EXPECT_EQ(a.rows(), 32);
    EXPECT_EQ(a.cols(), 32);
    // Output projection mixes quantization error; stays small.
    EXPECT_LT(max_abs_diff(a, b), 0.5);
    EXPECT_GT(max_abs_diff(a, b), 0.0);  // fixed point really differs
}

TEST(MultiHeadAttention, StatsAccumulate) {
    Rng rng(5);
    const auto pattern = longformer(32, 8, 1);
    MultiHeadAttention mha(16, 2, pattern, rng);
    const auto x = random_matrix(32, 16, rng, 0.0, 0.5);
    const SaloEngine engine(small_config());
    SimStats stats;
    (void)mha.forward(x, engine, &stats);
    EXPECT_GT(stats.cycles, 0);
    EXPECT_GT(stats.tiles, 0);
}

TEST(MultiHeadAttention, RejectsBadHiddenSplit) {
    Rng rng(6);
    EXPECT_THROW(MultiHeadAttention(10, 3, longformer(8, 2, 0), rng),
                 ContractViolation);
}

TEST(EncoderBlock, ForwardShapesAndFiniteness) {
    Rng rng(7);
    const auto pattern = longformer(24, 6, 1);
    EncoderBlock block(16, 2, 64, pattern, rng);
    const auto x = random_matrix(24, 16, rng, 0.0, 0.5);
    const SaloEngine engine(small_config());
    const auto y = block.forward(x, engine);
    EXPECT_EQ(y.rows(), 24);
    EXPECT_EQ(y.cols(), 16);
    for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Encoder, StacksLayersAndAccumulatesStats) {
    Rng rng(8);
    const auto pattern = longformer(24, 6, 1);
    Encoder encoder(3, 16, 2, 32, pattern, rng);
    const auto x = random_matrix(24, 16, rng, 0.0, 0.5);
    const SaloEngine engine(small_config());
    SimStats stats;
    const auto y = encoder.forward(x, engine, &stats);
    EXPECT_EQ(y.rows(), 24);
    EXPECT_EQ(encoder.num_layers(), 3);
    // Three layers' worth of accelerator work.
    SimStats one_layer;
    EncoderBlock block(16, 2, 32, pattern, rng);
    (void)block.forward(x, engine, &one_layer);
    EXPECT_EQ(stats.tiles % one_layer.tiles, 0);
    EXPECT_EQ(stats.tiles / one_layer.tiles, 3);
}

TEST(Encoder, QuantizedStaysCloseToGoldenThroughDepth) {
    Rng rng(9);
    const auto pattern = longformer(24, 8, 1);
    Encoder encoder(2, 16, 2, 32, pattern, rng);
    const auto x = random_matrix(24, 16, rng, 0.0, 0.5);
    const SaloEngine quantized(small_config(Fidelity::kFunctional));
    const SaloEngine golden(small_config(Fidelity::kGolden));
    const auto a = encoder.forward(x, quantized);
    const auto b = encoder.forward(x, golden);
    // LayerNorm re-centers each layer, keeping quantization error bounded.
    EXPECT_LT(max_abs_diff(a, b), 1.0);
}

}  // namespace
}  // namespace salo
