#include "numeric/pwl_exp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace salo {
namespace {

TEST(PwlExp, ExactAtZero) {
    const PwlExp unit;
    // exp(0) = 1: the chord interpolation is exact at segment endpoints.
    EXPECT_DOUBLE_EQ(unit.exp_value(0.0), 1.0);
}

TEST(PwlExp, ExactAtIntegerPowersOfTwoExponent) {
    const PwlExp unit;
    // Inputs x = k*ln2 give y = k exactly representable -> result 2^k, up to
    // the Q.8 input quantization of x itself.
    for (int k = -6; k <= 6; ++k) {
        const double x = k * std::log(2.0);
        const double got = unit.exp_value(x);
        const double ref = std::exp2(k);
        EXPECT_NEAR(got / ref, 1.0, 0.02) << "k=" << k;
    }
}

TEST(PwlExp, RelativeErrorBoundDefaultConfig) {
    const PwlExp unit;  // 8 segments
    // Over the score range that matters after 1/sqrt(d) scaling. The error
    // budget includes Q.8 input quantization (about 2^-8 relative) plus the
    // PWL chord error.
    EXPECT_LT(unit.max_rel_error(-4.0, 8.0), 0.015);
    // Very negative inputs hit the Q.14 output resolution floor: exp(-8) is
    // only ~5.5 output LSBs, so the relative error is dominated by output
    // quantization (up to half an LSB on a ~5-LSB value, ~10 %). Such terms
    // carry almost no softmax mass, so this does not affect outputs.
    EXPECT_LT(unit.max_rel_error(-8.0, 8.0), 0.10);
}

TEST(PwlExp, MoreSegmentsReduceError) {
    double prev = 1.0;
    for (int seg_bits : {1, 3, 5}) {
        PwlExp::Config cfg;
        cfg.seg_bits = seg_bits;
        const PwlExp unit(cfg);
        // Measure pure PWL error on [0, ln2) where the shift is constant
        // and input quantization is mild.
        const double err = unit.max_rel_error(0.01, 0.69);
        EXPECT_LT(err, prev) << "seg_bits=" << seg_bits;
        prev = err;
    }
}

TEST(PwlExp, MonotoneNondecreasingOnGrid) {
    const PwlExp unit;
    ExpRaw prev = 0;
    for (ScoreRaw raw = -2048; raw <= 2048; raw += 8) {
        const ExpRaw cur = unit.exp_raw(raw);
        EXPECT_GE(cur, prev) << "raw=" << raw;
        prev = cur;
    }
}

TEST(PwlExp, UnderflowsToZeroForVeryNegative) {
    const PwlExp unit;
    // x = -25: y ~ -36 < y_min clamp -> result essentially 0 at Q.14.
    EXPECT_EQ(unit.exp_raw(static_cast<ScoreRaw>(-25 * 256)), 0u);
}

TEST(PwlExp, SaturatesForVeryPositive) {
    const PwlExp unit;
    // Clamped at y_max = 15 -> 2^15 at Q.14 = 2^29.
    const ExpRaw top = unit.exp_raw(static_cast<ScoreRaw>(30 * 256));
    EXPECT_GE(top, (1u << 29));
    // And monotone saturation: even larger input gives the same value.
    EXPECT_EQ(unit.exp_raw(static_cast<ScoreRaw>(100 * 256)), top);
}

TEST(PwlExp, ContinuousAcrossSegmentBoundaries) {
    const PwlExp unit;
    // The chord construction is exact at both segment endpoints, so values
    // just left/right of a boundary must be close.
    for (int seg = 1; seg < unit.segments(); ++seg) {
        const double f = static_cast<double>(seg) / unit.segments();
        const double x = f * std::log(2.0);
        const double left = unit.exp_value(x - 1e-3);
        const double right = unit.exp_value(x + 1e-3);
        EXPECT_NEAR(left, right, 0.02) << "segment " << seg;
    }
}

TEST(PwlExp, RejectsBadConfig) {
    PwlExp::Config cfg;
    cfg.seg_bits = -1;
    EXPECT_THROW(PwlExp{cfg}, ContractViolation);
    cfg = {};
    cfg.y_max = 40;  // shifter would overflow 32-bit exp values
    EXPECT_THROW(PwlExp{cfg}, ContractViolation);
}

TEST(PwlExp, ErrorScalesWithLutPrecision) {
    PwlExp::Config coarse;
    coarse.lut_frac = 6;
    PwlExp::Config fine;
    fine.lut_frac = 14;
    EXPECT_GT(PwlExp(coarse).max_rel_error(0.01, 0.69),
              PwlExp(fine).max_rel_error(0.01, 0.69));
}

}  // namespace
}  // namespace salo
