// Cycle-accurate array model: bit-exact agreement with the functional
// executor, and measured cycle counts matching the closed-form formulas.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_accurate.hpp"
#include "sim/tile_executor.hpp"

namespace salo {
namespace {

struct Fixture {
    ArrayGeometry geometry;
    SchedulePlan plan;
    Matrix<std::int8_t> q, k, v;
    PwlExp exp_unit;
    Reciprocal recip_unit;

    Fixture(const HybridPattern& pattern, int d, std::uint64_t seed, int rows = 8,
            int cols = 8) {
        geometry.rows = rows;
        geometry.cols = cols;
        plan = schedule(pattern, geometry, d, {});
        Rng rng(seed);
        q = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
        k = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
        v = quantize<InputFx>(random_matrix(pattern.n(), d, rng, 0.0, 0.8));
    }
};

void expect_bit_exact(const HybridPattern& pattern, int d, std::uint64_t seed) {
    Fixture f(pattern, d, seed);
    const TileExecutor exec(f.exp_unit, f.recip_unit, f.q, f.k, f.v);
    const CycleAccurateArray array(f.geometry, CycleConfig{}, f.exp_unit, f.recip_unit,
                                   f.q, f.k, f.v);
    for (const TileTask& tile : f.plan.tiles) {
        std::vector<TilePart> fast, slow;
        ActivityStats a1, a2;
        exec.run(tile, fast, a1);
        array.run(tile, slow, a2);
        ASSERT_EQ(fast.size(), slow.size());
        for (std::size_t i = 0; i < fast.size(); ++i) {
            EXPECT_EQ(fast[i].query, slow[i].query);
            EXPECT_EQ(fast[i].weight, slow[i].weight) << "part " << i;
            EXPECT_EQ(fast[i].out_q, slow[i].out_q) << "part " << i;
        }
        // Identical useful-work counters (pe_cycles only exists in the
        // cycle-accurate path).
        EXPECT_EQ(a1.mac_ops, a2.mac_ops);
        EXPECT_EQ(a1.exp_ops, a2.exp_ops);
        EXPECT_EQ(a1.valid_slots, a2.valid_slots);
    }
}

TEST(CycleAccurate, BitExactSlidingWindow) {
    expect_bit_exact(sliding_window(64, 8), 16, 1);
}

TEST(CycleAccurate, BitExactLongformer) {
    expect_bit_exact(longformer(64, 8, 1), 8, 2);
}

TEST(CycleAccurate, BitExactDilated) {
    expect_bit_exact(dilated_window(64, -2, 2, 3), 8, 3);
}

TEST(CycleAccurate, BitExactVil2d) {
    expect_bit_exact(vil_2d(8, 8, 3, 3, 1), 8, 4);
}

TEST(CycleAccurate, BitExactManyGlobals) {
    expect_bit_exact(sparse_transformer_fixed(40, 8), 8, 5);
}

TEST(CycleAccurate, MeasuredCyclesMatchFormulas) {
    Fixture f(longformer(64, 8, 1), 16, 6);
    const CycleAccurateArray array(f.geometry, CycleConfig{}, f.exp_unit, f.recip_unit,
                                   f.q, f.k, f.v);
    const CycleConfig ccfg;
    for (const TileTask& tile : f.plan.tiles) {
        std::vector<TilePart> parts;
        ActivityStats activity;
        const CycleBreakdown measured = array.run(tile, parts, activity);
        const CycleBreakdown formula = tile_cycles(tile, 16, ccfg);
        for (int s = 0; s < 5; ++s)
            EXPECT_EQ(measured.stage[s], formula.stage[s]) << "stage " << s;
    }
}

TEST(CycleAccurate, StageBreakdownShape) {
    // For d=16, rows=cols=8 fully used: stage1 = 16+8+8-2 = 30,
    // stage3 = 8 + recip_latency + 1, stage5 = 16+8-1+2 = 25.
    Fixture f(sliding_window(64, 8), 16, 7);
    const CycleAccurateArray array(f.geometry, CycleConfig{}, f.exp_unit, f.recip_unit,
                                   f.q, f.k, f.v);
    std::vector<TilePart> parts;
    ActivityStats activity;
    // Find a full-width interior tile.
    const TileTask* full = nullptr;
    for (const TileTask& tile : f.plan.tiles)
        if (tile.cols_used() == 8) full = &tile;
    ASSERT_NE(full, nullptr);
    const CycleBreakdown b = array.run(*full, parts, activity);
    EXPECT_EQ(b.stage[0], 30);
    EXPECT_EQ(b.stage[1], 3);
    EXPECT_EQ(b.stage[2], 8 + Reciprocal::Config{}.latency() + 1);
    EXPECT_EQ(b.stage[3], 1);
    EXPECT_EQ(b.stage[4], 25);
}

TEST(CycleConfigValidate, DefaultsPassAndBadFieldsAreNamed) {
    EXPECT_NO_THROW(CycleConfig{}.validate());

    CycleConfig c;
    c.exp_cycles = 0;
    try {
        c.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("exp_cycles"), std::string::npos);
    }

    c = CycleConfig{};
    c.broadcast_cycles = -1;
    try {
        c.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("broadcast_cycles"), std::string::npos);
    }

    c = CycleConfig{};
    c.wsm_cycles = -1;
    EXPECT_THROW(c.validate(), ContractViolation);

    c = CycleConfig{};
    c.recip.lut_bits = 0;
    try {
        c.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("lut_bits"), std::string::npos);
    }

    c = CycleConfig{};
    c.recip.nr_iters = 7;
    try {
        c.validate();
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("nr_iters"), std::string::npos);
    }
}

TEST(CycleConfigValidate, CycleAccurateArrayRejectsInvalidConfig) {
    Fixture f(longformer(64, 10, 1), 8, 3);
    CycleConfig bad;
    bad.stage4_cycles = 0;
    EXPECT_THROW(CycleAccurateArray(f.geometry, bad, f.exp_unit, f.recip_unit, f.q,
                                    f.k, f.v),
                 ContractViolation);
}

TEST(CycleAccurate, UtilizationBetweenZeroAndOne) {
    Fixture f(vil_2d(8, 8, 3, 3, 1), 8, 8);
    const CycleAccurateArray array(f.geometry, CycleConfig{}, f.exp_unit, f.recip_unit,
                                   f.q, f.k, f.v);
    ActivityStats activity;
    std::vector<TilePart> parts;
    for (const TileTask& tile : f.plan.tiles) array.run(tile, parts, activity);
    EXPECT_GT(activity.occupancy(), 0.0);
    EXPECT_LE(activity.occupancy(), 1.0);
    EXPECT_GT(activity.mac_utilization(), 0.0);
    EXPECT_LT(activity.mac_utilization(), 1.0);
}

}  // namespace
}  // namespace salo
