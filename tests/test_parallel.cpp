// The parallel tile-graph execution subsystem: determinism across thread
// counts, the sharded weighted-sum merge, query-row shard partitioning, the
// reference-vs-optimized datapath bit-identity, the dispatched kernels, and
// the thread pool itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "common/rng.hpp"
#include "numeric/quantize.hpp"
#include "sim/kernels.hpp"
#include "sim/tile_executor.hpp"
#include "sim/wsm.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

SaloConfig config_with_threads(int threads, Fidelity fidelity = Fidelity::kFunctional) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.fidelity = fidelity;
    c.num_threads = threads;
    return c;
}

void expect_identical(const LayerResult& a, const LayerResult& b, const char* what) {
    ASSERT_EQ(a.output.count(), b.output.count()) << what;
    for (int h = 0; h < a.output.count(); ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(a.output[h], b.output[h]), 0.0)
            << what << ", head " << h;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.tiles, b.stats.tiles) << what;
    EXPECT_EQ(a.stats.stage_totals.total(), b.stats.stage_totals.total()) << what;
    EXPECT_EQ(a.stats.activity.mac_ops, b.stats.activity.mac_ops) << what;
    EXPECT_EQ(a.stats.activity.exp_ops, b.stats.activity.exp_ops) << what;
    EXPECT_EQ(a.stats.activity.valid_slots, b.stats.activity.valid_slots) << what;
    EXPECT_EQ(a.stats.activity.pe_cycles, b.stats.activity.pe_cycles) << what;
}

// -------------------------------------------------------------------------
// Determinism: identical outputs AND identical SimStats for any thread
// count, at both fidelity levels. n and w are chosen so the plan has many
// tiles (the tile-parallel path) and a global token (cross-shard queries).
// -------------------------------------------------------------------------

TEST(ParallelEngine, FunctionalDeterministicAcrossThreadCounts) {
    const auto workload = longformer_small(192, 16, 3, 16, 1);
    const auto qkv = make_qkv(workload, 11);
    const auto base = SaloEngine(config_with_threads(1))
                          .run(workload.pattern, qkv.q, qkv.k, qkv.v, workload.scale());
    for (int threads : {2, 8}) {
        const auto par = SaloEngine(config_with_threads(threads))
                             .run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                  workload.scale());
        expect_identical(base, par, "functional");
    }
}

TEST(ParallelEngine, CycleAccurateDeterministicAcrossThreadCounts) {
    const auto workload = longformer_small(64, 8, 2, 8, 1);
    const auto qkv = make_qkv(workload, 5);
    const auto base =
        SaloEngine(config_with_threads(1, Fidelity::kCycleAccurate))
            .run(workload.pattern, qkv.q, qkv.k, qkv.v, workload.scale());
    for (int threads : {2, 8}) {
        const auto par =
            SaloEngine(config_with_threads(threads, Fidelity::kCycleAccurate))
                .run(workload.pattern, qkv.q, qkv.k, qkv.v, workload.scale());
        expect_identical(base, par, "cycle-accurate");
    }
}

TEST(ParallelEngine, SingleHeadRunUsesTileParallelismDeterministically) {
    const auto pattern = longformer(256, 32, 1);
    Rng rng(7);
    const auto q = random_matrix(256, 16, rng, 0.0, 0.8);
    const auto k = random_matrix(256, 16, rng, 0.0, 0.8);
    const auto v = random_matrix(256, 16, rng, 0.0, 0.8);
    const auto seq = SaloEngine(config_with_threads(1)).run_head(pattern, q, k, v, 0.25f);
    const auto par = SaloEngine(config_with_threads(8)).run_head(pattern, q, k, v, 0.25f);
    EXPECT_DOUBLE_EQ(max_abs_diff(seq.output, par.output), 0.0);
    EXPECT_EQ(seq.stats.cycles, par.stats.cycles);
    EXPECT_EQ(seq.stats.activity.mac_ops, par.stats.activity.mac_ops);
}

// -------------------------------------------------------------------------
// Reference (seed) datapath vs optimized kernels: bit-identical end to end.
// -------------------------------------------------------------------------

TEST(ParallelEngine, ReferenceDatapathBitIdenticalToOptimized) {
    const auto workload = longformer_small(128, 16, 2, 16, 1);
    const auto qkv = make_qkv(workload, 3);
    SaloConfig ref_cfg = config_with_threads(1);
    ref_cfg.reference_datapath = true;
    const auto ref = SaloEngine(ref_cfg).run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                             workload.scale());
    for (int threads : {1, 8}) {
        const auto opt = SaloEngine(config_with_threads(threads))
                             .run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                  workload.scale());
        expect_identical(ref, opt, "reference vs optimized");
    }
}

// -------------------------------------------------------------------------
// Sharded weighted-sum merge.
// -------------------------------------------------------------------------

TilePart make_part(int query, SumRaw weight, std::vector<std::int32_t> out) {
    TilePart p;
    p.query = query;
    p.weight = weight;
    p.out_q = std::move(out);
    return p;
}

TEST(ShardedWsm, ShardRangeFiltersParts) {
    const Reciprocal recip;
    WeightedSumModule wsm(8, 2, recip);
    const TilePart part = make_part(3, 1000, {100, -200});
    EXPECT_FALSE(wsm.merge_shard(part, 0, 3));   // query 3 not in [0, 3)
    EXPECT_FALSE(wsm.merge_shard(part, 4, 8));   // not in [4, 8)
    EXPECT_EQ(wsm.merges(), 0);
    EXPECT_TRUE(wsm.merge_shard(part, 3, 4));    // exactly covered
    EXPECT_EQ(wsm.merges(), 1);
}

TEST(ShardedWsm, ShardedMergeMatchesSequentialMerge) {
    // A realistic part stream: several queries, several parts per query,
    // replayed (a) sequentially and (b) via disjoint shards that each scan
    // the full stream in order. Rounding makes Eq. 2 merges order-sensitive
    // per query, so equality here proves the shard replay preserves order.
    const Reciprocal recip;
    const int n = 16, d = 4;
    Rng rng(99);
    std::vector<TilePart> stream;
    for (int round = 0; round < 6; ++round)
        for (int q = 0; q < n; ++q) {
            if ((q * 7 + round) % 3 == 0) continue;  // ragged coverage
            std::vector<std::int32_t> out(d);
            for (auto& x : out)
                x = static_cast<std::int32_t>(rng.uniform_index(200000)) - 100000;
            stream.push_back(make_part(q, 1 + rng.uniform_index(5000), out));
        }

    WeightedSumModule seq(n, d, recip);
    for (const TilePart& p : stream) seq.merge(p);

    WeightedSumModule sharded(n, d, recip);
    const std::vector<std::pair<int, int>> shards = {{0, 5}, {5, 6}, {6, 16}};
    for (const auto& [lo, hi] : shards)
        for (const TilePart& p : stream) sharded.merge_shard(p, lo, hi);

    EXPECT_EQ(seq.merges(), sharded.merges());
    EXPECT_TRUE(seq.finalize_raw() == sharded.finalize_raw());
}

// -------------------------------------------------------------------------
// Query-row shard partitioning.
// -------------------------------------------------------------------------

TEST(QueryShards, CoverEveryQueryExactlyOnce) {
    const auto workload = longformer_small(200, 16, 1, 8, 2);
    const SaloEngine engine(config_with_threads(1));
    const auto plan = engine.plan(workload.pattern, workload.head_dim);
    for (int shards : {1, 2, 3, 8, 64, 1000}) {
        const auto ranges = partition_query_rows(plan, shards);
        ASSERT_FALSE(ranges.empty()) << shards;
        EXPECT_LE(static_cast<int>(ranges.size()), shards);
        EXPECT_EQ(ranges.front().lo, 0);
        EXPECT_EQ(ranges.back().hi, plan.n);
        for (std::size_t i = 0; i < ranges.size(); ++i) {
            EXPECT_LT(ranges[i].lo, ranges[i].hi) << "empty shard " << i;
            if (i > 0) EXPECT_EQ(ranges[i].lo, ranges[i - 1].hi) << "gap at " << i;
        }
    }
}

TEST(QueryShards, BalancesMergeWork) {
    const auto workload = longformer_small(512, 32, 1, 8, 1);
    const SaloEngine engine(config_with_threads(1));
    const auto plan = engine.plan(workload.pattern, workload.head_dim);
    const auto ranges = partition_query_rows(plan, 4);
    ASSERT_EQ(static_cast<int>(ranges.size()), 4);
    // Uniform window work: shards should be within 2x of each other.
    std::vector<int> sizes;
    for (const auto& r : ranges) sizes.push_back(r.hi - r.lo);
    const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*mx, 2 * *mn);
}

// -------------------------------------------------------------------------
// Dispatched kernels vs scalar reference.
// -------------------------------------------------------------------------

TEST(Kernels, DispatchedDotMatchesScalar) {
    Rng rng(1);
    for (int d : {1, 3, 8, 16, 31, 64, 100, 256}) {
        std::vector<std::int8_t> q(static_cast<std::size_t>(d)), k(q.size());
        for (auto& x : q) x = static_cast<std::int8_t>(rng.uniform_index(256) - 128);
        for (auto& x : k) x = static_cast<std::int8_t>(rng.uniform_index(256) - 128);
        EXPECT_EQ(kernels::dot_i8(q.data(), k.data(), d),
                  kernels::dot_i8_scalar(q.data(), k.data(), d))
            << "d=" << d;
    }
}

TEST(Kernels, DispatchedRowDotAndWaccMatchScalar) {
    Rng rng(2);
    for (int d : {8, 16, 64, 96}) {
        const int n = 50, count = 37;
        std::vector<std::int8_t> q(static_cast<std::size_t>(d));
        std::vector<std::int8_t> base(static_cast<std::size_t>(n) * d);
        for (auto& x : q) x = static_cast<std::int8_t>(rng.uniform_index(256) - 128);
        for (auto& x : base) x = static_cast<std::int8_t>(rng.uniform_index(256) - 128);
        std::vector<int> keys(count);
        std::vector<std::uint32_t> sps(count);
        for (int i = 0; i < count; ++i) {
            keys[i] = static_cast<int>(rng.uniform_index(n));
            sps[i] = i % 5 == 0 ? 0 : rng.uniform_index(1 << 15);
        }
        std::vector<std::int32_t> s1(count), s2(count);
        kernels::dot_i8_rows(q.data(), base.data(), keys.data(), count, d, s1.data());
        kernels::dot_i8_rows_scalar(q.data(), base.data(), keys.data(), count, d,
                                    s2.data());
        EXPECT_EQ(s1, s2) << "dot rows d=" << d;

        std::vector<std::int32_t> a1(static_cast<std::size_t>(d), 7);
        std::vector<std::int32_t> a2(a1);
        kernels::wacc_sp_i8(a1.data(), sps.data(), keys.data(), count, base.data(), d);
        kernels::wacc_sp_i8_scalar(a2.data(), sps.data(), keys.data(), count,
                                   base.data(), d);
        EXPECT_EQ(a1, a2) << "wacc d=" << d;
    }
}

TEST(Kernels, BatchedPwlExpMatchesScalarUnit) {
    const PwlExp unit;  // default: 8 segments — batch-eligible
    ASSERT_EQ(unit.config().seg_bits, 3);
    // Extremes go FIRST so the SIMD lanes (which process a multiple-of-8
    // prefix) cover them rather than leaving them to the scalar tail.
    std::vector<ScoreRaw> xs = {std::numeric_limits<ScoreRaw>::min(),
                                std::numeric_limits<ScoreRaw>::max(), 0, -1, 1,
                                -255, 255, 4096};
    for (int i = -3000; i <= 3000; i += 7) xs.push_back(i);
    std::vector<ExpRaw> batch(xs.size());
    if (kernels::pwl_exp_batch != nullptr) {
        const kernels::PwlExpParams params{unit.slope_data(), unit.icept_data(),
                                           unit.config().lut_frac, unit.config().y_min,
                                           unit.config().y_max};
        const int done = kernels::pwl_exp_batch(params, xs.data(), batch.data(),
                                                static_cast<int>(xs.size()));
        ASSERT_GT(done, 0);
        for (int i = 0; i < done; ++i)
            ASSERT_EQ(batch[static_cast<std::size_t>(i)], unit.exp_raw(xs[static_cast<std::size_t>(i)]))
                << "x=" << xs[static_cast<std::size_t>(i)];
    } else {
        GTEST_SKIP() << "no SIMD batch kernel on this host";
    }
}

TEST(Kernels, RoundShiftAndMixMatchScalar) {
    Rng rng(3);
    std::vector<std::int32_t> v1(100), v2;
    for (auto& x : v1) x = static_cast<std::int32_t>(rng.uniform_index(1 << 24)) - (1 << 23);
    v2 = v1;
    kernels::round_shift_i32(v1.data(), static_cast<int>(v1.size()), 3);
    kernels::round_shift_i32_scalar(v2.data(), static_cast<int>(v2.size()), 3);
    EXPECT_EQ(v1, v2);

    std::vector<std::int32_t> o1(64), in(64);
    for (auto& x : o1) x = static_cast<std::int32_t>(rng.uniform_index(1 << 20)) - (1 << 19);
    for (auto& x : in) x = static_cast<std::int32_t>(rng.uniform_index(1 << 20)) - (1 << 19);
    std::vector<std::int32_t> o2 = o1;
    kernels::mix_i32(o1.data(), in.data(), 20000, 12768, 64);
    kernels::mix_i32_scalar(o2.data(), in.data(), 20000, 12768, 64);
    EXPECT_EQ(o1, o2);
}

// -------------------------------------------------------------------------
// The pool itself.
// -------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.lanes(), 4);
    for (int chunk : {1, 7}) {
        std::vector<std::atomic<int>> hits(257);
        for (auto& h : hits) h.store(0);
        pool.parallel_for(
            257, [&](int i, int lane) {
                ASSERT_GE(lane, 0);
                ASSERT_LT(lane, 4);
                hits[static_cast<std::size_t>(i)].fetch_add(1);
            },
            chunk);
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.lanes(), 1);
    int sum = 0;
    pool.parallel_for(10, [&](int i, int lane) {
        EXPECT_EQ(lane, 0);
        sum += i;
    });
    EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](int i, int) {
                              if (i == 31) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool survives and is reusable after a failed run.
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](int, int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ThrowingTaskDoesNotAbandonSiblings) {
    // Fault isolation: one throwing index must not stop the region — every
    // other index still runs exactly once, and the first exception is
    // rethrown to the caller after the region completes. (The old pool
    // abandoned unclaimed indices on the first throw, which would let one
    // faulted request in a served batch starve its batch siblings.)
    for (int lanes : {1, 4}) {
        ThreadPool pool(lanes);
        std::vector<std::atomic<int>> hits(97);
        for (auto& h : hits) h.store(0);
        bool threw = false;
        try {
            pool.parallel_for(97, [&](int i, int) {
                hits[static_cast<std::size_t>(i)].fetch_add(1);
                if (i == 13) throw std::runtime_error("injected");
            });
        } catch (const std::runtime_error& e) {
            threw = true;
            EXPECT_STREQ(e.what(), "injected");
        }
        EXPECT_TRUE(threw) << "lanes=" << lanes;
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "lanes=" << lanes;
    }
}

TEST(ThreadPool, EngineDefaultsToHardwareConcurrency) {
    SaloConfig c;
    EXPECT_EQ(c.num_threads, default_num_threads());
    EXPECT_GE(c.num_threads, 1);
}

}  // namespace
}  // namespace salo
