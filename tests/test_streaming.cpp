#include "attention/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "pattern/pattern.hpp"

namespace salo {
namespace {

class StreamingBlockSize : public ::testing::TestWithParam<int> {};

TEST_P(StreamingBlockSize, EqualsBatchMaskedAttention) {
    // The renormalization identity (paper Eq. 2 / Appendix A): streaming
    // over any block size equals the one-shot masked softmax.
    Rng rng(17);
    const int n = 48;
    const int d = 16;
    const auto q = random_matrix(n, d, rng);
    const auto k = random_matrix(n, d, rng);
    const auto v = random_matrix(n, d, rng);
    const auto pattern = longformer(n, 8, 1);
    const auto batch = masked_attention(q, k, v, 0.25f, pattern.attend_fn());
    const auto streamed = streaming_masked_attention(q, k, v, 0.25f,
                                                     pattern.attend_fn(), GetParam());
    EXPECT_LT(max_abs_diff(batch, streamed), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, StreamingBlockSize,
                         ::testing::Values(1, 3, 8, 17, 48, 100));

TEST(Streaming, DenseMaskMatchesDenseAttention) {
    Rng rng(18);
    const auto q = random_matrix(24, 8, rng);
    const auto k = random_matrix(24, 8, rng);
    const auto v = random_matrix(24, 8, rng);
    const auto dense = dense_attention(q, k, v, 0.35f);
    const auto streamed = streaming_masked_attention(
        q, k, v, 0.35f, [](int, int) { return true; }, 7);
    EXPECT_LT(max_abs_diff(dense, streamed), 1e-5);
}

TEST(Streaming, EmptyRowsStayZero) {
    Rng rng(19);
    const auto q = random_matrix(8, 4, rng);
    const auto k = random_matrix(8, 4, rng);
    const auto v = random_matrix(8, 4, rng);
    const auto out = streaming_masked_attention(
        q, k, v, 1.0f, [](int i, int) { return i != 2; }, 3);
    for (int t = 0; t < 4; ++t) EXPECT_FLOAT_EQ(out(2, t), 0.0f);
}

TEST(Streaming, StableUnderLargeScores) {
    // Online max-rebasing keeps exp() in range even for huge scores.
    Matrix<float> q(2, 2, 0.0f), k(4, 2, 0.0f), v(4, 2, 0.0f);
    q(0, 0) = 40.0f;
    q(1, 0) = -40.0f;
    for (int j = 0; j < 4; ++j) {
        k(j, 0) = static_cast<float>(j - 1);
        v(j, 1) = static_cast<float>(j);
    }
    const auto out = streaming_masked_attention(
        q, k, v, 1.0f, [](int, int) { return true; }, 2);
    for (float x : out.data()) EXPECT_TRUE(std::isfinite(x));
    // Row 0's softmax concentrates on the largest key (j=3).
    EXPECT_NEAR(out(0, 1), 3.0f, 1e-3);
    // Row 1 concentrates on the smallest (j=0).
    EXPECT_NEAR(out(1, 1), 0.0f, 1e-3);
}

TEST(Streaming, RejectsBadBlockSize) {
    Matrix<float> m(2, 2);
    EXPECT_THROW(streaming_masked_attention(m, m, m, 1.0f,
                                            [](int, int) { return true; }, 0),
                 ContractViolation);
}

// ---------------------------------------------------------------------------
// DecodeState: the per-stream running K/V of autoregressive decode. Each
// test drives the state against the plain row store it abstracts (append
// all rows, keep everything) and checks the retention contract at the
// edges: ring eviction at the window boundary, global pinning at the very
// first step and long after eviction, and dilated windows whose reachable
// keys straddle the ring.
// ---------------------------------------------------------------------------

Matrix<float> state_row(const Tensor3<float>& all, int p, int heads, int d) {
    Matrix<float> row(heads, d, 0.0f);
    for (int h = 0; h < heads; ++h)
        for (int x = 0; x < d; ++x) row(h, x) = all[h](p, x);
    return row;
}

TEST(DecodeState, WindowBoundaryEvictionKeepsExactlyTheLastSpanRows) {
    Rng rng(23);
    const int heads = 2, d = 4, span = 4, steps = 7;
    const auto k_all = random_tensor3(heads, steps, d, rng);
    const auto v_all = random_tensor3(heads, steps, d, rng);
    DecodeState state(heads, d, span, {});
    for (int p = 0; p < steps; ++p) {
        state.append(state_row(k_all, p, heads, d), state_row(v_all, p, heads, d));
        EXPECT_EQ(state.length(), p + 1);
        EXPECT_EQ(state.window_lo(), std::max(0, p + 1 - span));
        EXPECT_EQ(state.compact_rows(), std::min(p + 1, span));
    }
    // Positions below window_lo are gone — the append overwrote their slot.
    for (int j = 0; j < state.window_lo(); ++j)
        EXPECT_THROW(state.compact_index(j), ContractViolation);
    // The surviving window is bit-identical to the rows as appended.
    const auto [k_c, v_c] = state.assemble();
    for (int j = state.window_lo(); j < steps; ++j) {
        const int idx = state.compact_index(j);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x) {
                EXPECT_EQ(k_c[h](idx, x), k_all[h](j, x));
                EXPECT_EQ(v_c[h](idx, x), v_all[h](j, x));
            }
    }
}

TEST(DecodeState, GlobalTokenAtStepOneIsPinnedAndRingResident) {
    // Step 1 edge: position 0 is global; right after the first append it is
    // both pinned and inside the ring, and the two copies are identical.
    Rng rng(29);
    const int heads = 1, d = 4, span = 3;
    const auto k_all = random_tensor3(heads, 1, d, rng);
    const auto v_all = random_tensor3(heads, 1, d, rng);
    DecodeState state(heads, d, span, {0});
    state.append(state_row(k_all, 0, heads, d), state_row(v_all, 0, heads, d));
    EXPECT_EQ(state.num_pinned(), 1);
    EXPECT_EQ(state.compact_rows(), 2);  // pinned copy + ring copy
    const auto [k_c, v_c] = state.assemble();
    for (int x = 0; x < d; ++x) {
        EXPECT_EQ(k_c[0](0, x), k_all[0](0, x));  // pinned section
        EXPECT_EQ(k_c[0](1, x), k_all[0](0, x));  // ring section
        EXPECT_EQ(v_c[0](0, x), v_all[0](0, x));
        EXPECT_EQ(v_c[0](1, x), v_all[0](0, x));
    }
}

TEST(DecodeState, GlobalTokenSurvivesRingEvictionAtStepN) {
    // Step n edge: long after position 0 left the ring, its pinned copy
    // still serves compact_index(0) with the original bits.
    Rng rng(31);
    const int heads = 2, d = 4, span = 3, steps = 9;
    const auto k_all = random_tensor3(heads, steps, d, rng);
    const auto v_all = random_tensor3(heads, steps, d, rng);
    DecodeState state(heads, d, span, {0});
    for (int p = 0; p < steps; ++p)
        state.append(state_row(k_all, p, heads, d), state_row(v_all, p, heads, d));
    ASSERT_GT(state.window_lo(), 0);  // 0 was evicted from the ring
    const int idx = state.compact_index(0);
    EXPECT_LT(idx, state.num_pinned());
    const auto [k_c, v_c] = state.assemble();
    for (int h = 0; h < heads; ++h)
        for (int x = 0; x < d; ++x) {
            EXPECT_EQ(k_c[h](idx, x), k_all[h](0, x));
            EXPECT_EQ(v_c[h](idx, x), v_all[h](0, x));
        }
    // A non-global evicted position still throws.
    EXPECT_THROW(state.compact_index(1), ContractViolation);
}

TEST(DecodeState, DilatedWindowKeysAreAllRetainedAtEveryStep) {
    // Band {-6, 4, dilation 2}: row t attends t-6, t-4, t-2, t — span 7.
    // At every step, every key the pattern's own attend_fn references must
    // be resolvable through the state with the bits that were appended.
    Rng rng(37);
    const int heads = 1, d = 4, steps = 12;
    const std::vector<Band> bands = {Band{-6, 4, 2, 0}};
    const int span = decode_window_span(bands);
    ASSERT_EQ(span, 7);
    const HybridPattern pattern(steps, bands);
    const auto attends = pattern.attend_fn();
    const auto k_all = random_tensor3(heads, steps, d, rng);
    const auto v_all = random_tensor3(heads, steps, d, rng);
    DecodeState state(heads, d, span, {});
    for (int t = 0; t < steps; ++t) {
        state.append(state_row(k_all, t, heads, d), state_row(v_all, t, heads, d));
        const auto [k_c, v_c] = state.assemble();
        for (int j = 0; j <= t; ++j) {
            if (!attends(t, j)) continue;
            const int idx = state.compact_index(j);
            for (int x = 0; x < d; ++x) {
                EXPECT_EQ(k_c[0](idx, x), k_all[0](j, x));
                EXPECT_EQ(v_c[0](idx, x), v_all[0](j, x));
            }
        }
    }
}

TEST(DecodeState, CompactAttentionMatchesFullPrefixOracle) {
    // End-to-end float check: masked attention of the newest row computed
    // over the compact layout (keys remapped via compact_index) equals the
    // same computation over the full prefix — the identity the micro-plan
    // execution path relies on, here at float precision with the streaming
    // oracle's own operations.
    Rng rng(41);
    const int d = 6, steps = 10;
    const std::vector<Band> bands = {Band{-3, 4, 1, 0}};
    const int span = decode_window_span(bands);
    const HybridPattern pattern(steps, bands, {1});
    const auto attends = pattern.attend_fn();
    const auto q_all = random_matrix(steps, d, rng);
    const auto k_all = random_matrix(steps, d, rng);
    const auto v_all = random_matrix(steps, d, rng);
    DecodeState state(1, d, span, {1});
    for (int t = 0; t < steps; ++t) {
        Matrix<float> k_row(1, d, 0.0f), v_row(1, d, 0.0f);
        for (int x = 0; x < d; ++x) {
            k_row(0, x) = k_all(t, x);
            v_row(0, x) = v_all(t, x);
        }
        state.append(k_row, v_row);

        // Oracle: row t of masked attention over the full length-(t+1) prefix.
        Matrix<float> qp(t + 1, d, 0.0f), kp(t + 1, d, 0.0f), vp(t + 1, d, 0.0f);
        for (int r = 0; r <= t; ++r)
            for (int x = 0; x < d; ++x) {
                qp(r, x) = q_all(r, x);
                kp(r, x) = k_all(r, x);
                vp(r, x) = v_all(r, x);
            }
        const auto full = masked_attention(qp, kp, vp, 0.4f, attends);

        // Same computation against the compact rows: a 1-row query whose
        // mask routes through compact_index.
        const auto [k_c, v_c] = state.assemble();
        Matrix<float> q1(1, d, 0.0f), kc(state.compact_rows(), d, 0.0f),
            vc(state.compact_rows(), d, 0.0f);
        for (int x = 0; x < d; ++x) q1(0, x) = q_all(t, x);
        for (int r = 0; r < state.compact_rows(); ++r)
            for (int x = 0; x < d; ++x) {
                kc(r, x) = k_c[0](r, x);
                vc(r, x) = v_c[0](r, x);
            }
        std::vector<char> live(static_cast<std::size_t>(state.compact_rows()), 0);
        for (int j = 0; j <= t; ++j)
            if (attends(t, j)) live[static_cast<std::size_t>(state.compact_index(j))] = 1;
        const auto compact = masked_attention(
            q1, kc, vc, 0.4f,
            [&](int, int j) { return live[static_cast<std::size_t>(j)] != 0; });
        for (int x = 0; x < d; ++x) EXPECT_FLOAT_EQ(compact(0, x), full(t, x));
    }
}

}  // namespace
}  // namespace salo
