#include "attention/streaming.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pattern/pattern.hpp"

namespace salo {
namespace {

class StreamingBlockSize : public ::testing::TestWithParam<int> {};

TEST_P(StreamingBlockSize, EqualsBatchMaskedAttention) {
    // The renormalization identity (paper Eq. 2 / Appendix A): streaming
    // over any block size equals the one-shot masked softmax.
    Rng rng(17);
    const int n = 48;
    const int d = 16;
    const auto q = random_matrix(n, d, rng);
    const auto k = random_matrix(n, d, rng);
    const auto v = random_matrix(n, d, rng);
    const auto pattern = longformer(n, 8, 1);
    const auto batch = masked_attention(q, k, v, 0.25f, pattern.attend_fn());
    const auto streamed = streaming_masked_attention(q, k, v, 0.25f,
                                                     pattern.attend_fn(), GetParam());
    EXPECT_LT(max_abs_diff(batch, streamed), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, StreamingBlockSize,
                         ::testing::Values(1, 3, 8, 17, 48, 100));

TEST(Streaming, DenseMaskMatchesDenseAttention) {
    Rng rng(18);
    const auto q = random_matrix(24, 8, rng);
    const auto k = random_matrix(24, 8, rng);
    const auto v = random_matrix(24, 8, rng);
    const auto dense = dense_attention(q, k, v, 0.35f);
    const auto streamed = streaming_masked_attention(
        q, k, v, 0.35f, [](int, int) { return true; }, 7);
    EXPECT_LT(max_abs_diff(dense, streamed), 1e-5);
}

TEST(Streaming, EmptyRowsStayZero) {
    Rng rng(19);
    const auto q = random_matrix(8, 4, rng);
    const auto k = random_matrix(8, 4, rng);
    const auto v = random_matrix(8, 4, rng);
    const auto out = streaming_masked_attention(
        q, k, v, 1.0f, [](int i, int) { return i != 2; }, 3);
    for (int t = 0; t < 4; ++t) EXPECT_FLOAT_EQ(out(2, t), 0.0f);
}

TEST(Streaming, StableUnderLargeScores) {
    // Online max-rebasing keeps exp() in range even for huge scores.
    Matrix<float> q(2, 2, 0.0f), k(4, 2, 0.0f), v(4, 2, 0.0f);
    q(0, 0) = 40.0f;
    q(1, 0) = -40.0f;
    for (int j = 0; j < 4; ++j) {
        k(j, 0) = static_cast<float>(j - 1);
        v(j, 1) = static_cast<float>(j);
    }
    const auto out = streaming_masked_attention(
        q, k, v, 1.0f, [](int, int) { return true; }, 2);
    for (float x : out.data()) EXPECT_TRUE(std::isfinite(x));
    // Row 0's softmax concentrates on the largest key (j=3).
    EXPECT_NEAR(out(0, 1), 3.0f, 1e-3);
    // Row 1 concentrates on the smallest (j=0).
    EXPECT_NEAR(out(1, 1), 0.0f, 1e-3);
}

TEST(Streaming, RejectsBadBlockSize) {
    Matrix<float> m(2, 2);
    EXPECT_THROW(streaming_masked_attention(m, m, m, 1.0f,
                                            [](int, int) { return true; }, 0),
                 ContractViolation);
}

}  // namespace
}  // namespace salo
