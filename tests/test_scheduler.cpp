#include "scheduler/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace salo {
namespace {

ArrayGeometry small_geometry(int rows = 8, int cols = 8) {
    ArrayGeometry g;
    g.rows = rows;
    g.cols = cols;
    return g;
}

void expect_covered(const HybridPattern& pattern, const ArrayGeometry& geometry,
                    int head_dim, PackingMode packing = PackingMode::kPacked) {
    ScheduleOptions options;
    options.packing = packing;
    const SchedulePlan plan = schedule(pattern, geometry, head_dim, options);
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error)) << error;
}

TEST(Scheduler, SlidingWindowExactCoverage) {
    expect_covered(sliding_window(64, 8), small_geometry(), 16);
}

TEST(Scheduler, SlidingWindowWithGlobalsExactCoverage) {
    expect_covered(longformer(64, 8, 1), small_geometry(), 16);
    expect_covered(longformer(64, 8, 2), small_geometry(), 16);
}

TEST(Scheduler, AsymmetricWindowExactCoverage) {
    expect_covered(sliding_window_range(48, 0, 5), small_geometry(), 8);
    expect_covered(sliding_window_range(48, -5, 0), small_geometry(), 8);
    expect_covered(sliding_window_range(48, 2, 9), small_geometry(), 8);
}

TEST(Scheduler, DilatedWindowExactCoverage) {
    expect_covered(dilated_window(64, -2, 2, 3), small_geometry(), 8);
    expect_covered(dilated_window(60, -3, 3, 4), small_geometry(), 8);
}

TEST(Scheduler, DilatedWindowWithGlobalsExactCoverage) {
    expect_covered(dilated_window(64, -2, 2, 3, {0, 10}), small_geometry(), 8);
}

TEST(Scheduler, Vil2dExactCoverage) {
    expect_covered(vil_2d(8, 8, 3, 3, 1), small_geometry(), 8);
    expect_covered(vil_2d(6, 10, 5, 3, 1), small_geometry(), 8);
}

TEST(Scheduler, Vil2dPerBandModeExactCoverage) {
    expect_covered(vil_2d(8, 8, 3, 3, 1), small_geometry(), 8, PackingMode::kPerBand);
}

TEST(Scheduler, StarTransformerExactCoverage) {
    expect_covered(star_transformer(50), small_geometry(), 8);
}

TEST(Scheduler, SparseTransformerStridedExactCoverage) {
    expect_covered(sparse_transformer_strided(48, 4), small_geometry(), 8);
}

TEST(Scheduler, SparseTransformerFixedExactCoverage) {
    // Many global tokens: exercises the catch-up paths.
    expect_covered(sparse_transformer_fixed(40, 8), small_geometry(), 8);
}

TEST(Scheduler, WindowLargerThanSequence) {
    expect_covered(sliding_window(16, 40), small_geometry(), 8);
}

TEST(Scheduler, SequenceNotMultipleOfRows) {
    expect_covered(sliding_window(37, 6, {3}), small_geometry(), 8);
}

TEST(Scheduler, WindowNotMultipleOfCols) {
    expect_covered(sliding_window(40, 11), small_geometry(), 8);
}

TEST(Scheduler, DilationLargerThanRows) {
    expect_covered(dilated_window(64, -1, 1, 11), small_geometry(), 8);
}

TEST(Scheduler, OverlappingBandsComputedOnce) {
    // Bands {0..3} and {2..5} overlap on offsets 2..3.
    const HybridPattern p(40, {Band{0, 4, 1, 0}, Band{2, 4, 1, 0}});
    expect_covered(p, small_geometry(), 8);
}

TEST(Scheduler, MixedDilationBands) {
    const HybridPattern p(48, {Band{-2, 5, 1, 0}, Band{-12, 7, 4, 0}});
    expect_covered(p, small_geometry(), 8);
}

TEST(Scheduler, PackedModePacksNarrowBands) {
    // Two 3-wide bands fit in one 8-column tile.
    const auto p = vil_2d(8, 8, 3, 3, 0);
    const SchedulePlan packed = schedule(p, small_geometry(), 8,
                                         {PackingMode::kPacked});
    const SchedulePlan per_band = schedule(p, small_geometry(), 8,
                                           {PackingMode::kPerBand});
    EXPECT_LT(packed.stats.window_tiles, per_band.stats.window_tiles);
    EXPECT_GT(packed.stats.slot_occupancy(), per_band.stats.slot_occupancy());
}

TEST(Scheduler, LongformerOccupancyIsHigh) {
    // Full-width window segments: interior tiles are fully occupied.
    const SchedulePlan plan = schedule(longformer(256, 32, 1), small_geometry(), 16);
    EXPECT_GT(plan.stats.slot_occupancy(), 0.80);
}

TEST(Scheduler, GlobalAssignmentsUnique) {
    const auto p = longformer(64, 16, 2);
    const SchedulePlan plan = schedule(p, small_geometry(), 8);
    // Each (query, global key) pair served exactly once by the column.
    std::set<std::pair<int, int>> col_pairs;
    std::set<std::pair<int, int>> row_pairs;
    for (const TileTask& tile : plan.tiles) {
        for (int r = 0; r < tile.rows(); ++r) {
            if (tile.global_col_key < 0 || tile.global_col_rows.empty()) continue;
            if (tile.global_col_rows[static_cast<std::size_t>(r)] == 0) continue;
            const auto pair = std::make_pair(tile.query_ids[static_cast<std::size_t>(r)],
                                             static_cast<int>(tile.global_col_key));
            EXPECT_TRUE(col_pairs.insert(pair).second)
                << "duplicate column pair " << pair.first << "," << pair.second;
        }
        if (tile.global_row_query >= 0) {
            int slot = 0;
            for (const TileSegment& seg : tile.segments) {
                for (int s = 0; s < seg.stream_length(tile.rows()); ++s, ++slot) {
                    if (tile.global_fresh[static_cast<std::size_t>(slot)] == 0) continue;
                    const auto pair = std::make_pair(
                        static_cast<int>(tile.global_row_query),
                        static_cast<int>(seg.stream_key(s)));
                    EXPECT_TRUE(row_pairs.insert(pair).second)
                        << "duplicate row pair " << pair.first << "," << pair.second;
                }
            }
        }
    }
    // Global queries see all 64 keys; normal queries see both global keys.
    EXPECT_EQ(row_pairs.size(), 2u * 64u);
    EXPECT_EQ(col_pairs.size(), 2u * 62u);
}

TEST(Scheduler, TileKeysFollowDiagonalStructure) {
    const SchedulePlan plan = schedule(sliding_window(64, 8), small_geometry(), 8);
    for (const TileTask& tile : plan.tiles) {
        for (const TileSegment& seg : tile.segments) {
            for (int r = 0; r + 1 < tile.rows(); ++r)
                for (int c = seg.col_begin; c + 1 < seg.col_end; ++c)
                    EXPECT_EQ(seg.key_at(r, c + 1), seg.key_at(r + 1, c))
                        << "diagonal reuse broken";
        }
    }
}

TEST(Scheduler, QueriesInTileShareResidueClass) {
    const SchedulePlan plan = schedule(dilated_window(64, -2, 2, 3), small_geometry(), 8);
    for (const TileTask& tile : plan.tiles) {
        int residue = -1;
        for (int r = 0; r < tile.rows(); ++r) {
            const int q = tile.query_ids[static_cast<std::size_t>(r)];
            if (q < 0) continue;
            if (residue < 0) residue = q % 3;
            EXPECT_EQ(q % 3, residue);
        }
    }
}

TEST(Scheduler, BufferCapacityEnforced) {
    ArrayGeometry g = small_geometry();
    g.query_buffer_bytes = 16;  // cannot hold 8 queries x 8 dims
    EXPECT_THROW(schedule(sliding_window(64, 8), g, 8), ContractViolation);
}

TEST(Scheduler, ReorderPermutationMatchesPaper) {
    // n=8, d=3 -> [0,3,6,1,4,7,2,5]
    const auto perm = reorder_permutation(8, 3);
    const std::vector<int> expected = {0, 3, 6, 1, 4, 7, 2, 5};
    EXPECT_EQ(perm, expected);
    // d=1 is the identity.
    const auto id = reorder_permutation(5, 1);
    EXPECT_EQ(id, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ReorderPermutationIsBijection) {
    for (int d : {2, 3, 7}) {
        const auto perm = reorder_permutation(29, d);
        std::set<int> seen(perm.begin(), perm.end());
        EXPECT_EQ(seen.size(), 29u);
        EXPECT_EQ(*seen.begin(), 0);
        EXPECT_EQ(*seen.rbegin(), 28);
    }
}

TEST(Scheduler, StatsAccounting) {
    const SchedulePlan plan = schedule(longformer(64, 8, 1), small_geometry(), 8);
    EXPECT_GT(plan.stats.window_tiles, 0);
    EXPECT_EQ(plan.stats.total_tiles(),
              static_cast<int>(plan.tiles.size()));
    EXPECT_GT(plan.stats.slot_occupancy(), 0.0);
    EXPECT_LE(plan.stats.slot_occupancy(), 1.0);
    // Global PE row covered all 64 keys for the single global query.
    EXPECT_EQ(plan.stats.global_row_ops, 64);
    // Global PE column served all 63 normal queries.
    EXPECT_EQ(plan.stats.global_col_ops, 63);
}

TEST(Scheduler, PaperBoundHoldsForPaperWorkload) {
    // n_g <= min{ceil(n/#row), ceil(w/#col)} implies no catch-up tiles.
    const SchedulePlan plan = schedule(longformer(256, 32, 2),
                                       small_geometry(8, 8), 8);
    EXPECT_EQ(plan.stats.catchup_tiles, 0);
}

}  // namespace
}  // namespace salo
