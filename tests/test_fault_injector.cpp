// FaultInjector: deterministic seeded triggers, engine-level installation,
// and the batch-isolation acceptance test — one injected fault fails
// exactly that request's future with EngineFault while the rest of the
// batch completes bit-identical to standalone runs and the session stays
// serviceable.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/salo.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

SaloConfig serving_config(int threads) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.num_threads = threads;
    return c;
}

bool eventually(const std::function<bool()>& pred, milliseconds budget = milliseconds(2000)) {
    const Clock::time_point until = Clock::now() + budget;
    while (Clock::now() < until) {
        if (pred()) return true;
        std::this_thread::sleep_for(milliseconds(1));
    }
    return pred();
}

void expect_identical_layer(const LayerResult& a, const LayerResult& b,
                            const char* what) {
    ASSERT_EQ(a.output.count(), b.output.count()) << what;
    for (int h = 0; h < a.output.count(); ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(a.output[h], b.output[h]), 0.0)
            << what << ", head " << h;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.tiles, b.stats.tiles) << what;
}

// -------------------------------------------------------------------------
// Deterministic triggers.
// -------------------------------------------------------------------------

TEST(FaultInjector, SeededTriggerIsDeterministicPerSeed) {
    FaultInjector::Config c;
    c.seed = 7;
    c.tile_fault_rate = 0.3;
    const FaultInjector a(c), b(c);
    std::set<int> fa, fb;
    for (int t = 0; t < 1000; ++t) {
        if (a.seeded_fault(t)) fa.insert(t);
        if (b.seeded_fault(t)) fb.insert(t);
    }
    EXPECT_EQ(fa, fb);  // same seed, same faults — every run, every instance
    // The rate is honored loosely (hash-uniform over 1000 tiles).
    EXPECT_GT(fa.size(), 150u);
    EXPECT_LT(fa.size(), 450u);

    c.seed = 8;
    const FaultInjector other(c);
    std::set<int> fo;
    for (int t = 0; t < 1000; ++t)
        if (other.seeded_fault(t)) fo.insert(t);
    EXPECT_NE(fa, fo);  // a different seed faults different tiles
}

TEST(FaultInjector, ProbeModeOnlyCounts) {
    const FaultInjector probe;
    for (int t = 0; t < 5; ++t) probe.on_tile(t);
    EXPECT_EQ(probe.tiles_seen(), 5u);
    EXPECT_EQ(probe.faults_injected(), 0u);
    EXPECT_EQ(probe.stalls_injected(), 0u);
}

TEST(FaultInjector, MaxFaultsCapsInjection) {
    FaultInjector::Config c;
    c.fault_tiles = {0, 1, 2};
    c.max_faults = 1;
    const FaultInjector inj(c);
    EXPECT_THROW(inj.on_tile(0), EngineFault);
    inj.on_tile(1);  // cap reached: listed tiles pass through untouched
    inj.on_tile(2);
    EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST(FaultInjector, EngineLevelInjectorFaultsEveryRunUntilCap) {
    const AttentionWorkload w = longformer_small(64, 8, 1, 16, 1);
    const QkvSet qkv = make_qkv(w, 3);
    SaloConfig config = serving_config(1);
    FaultInjector::Config fc;
    fc.fault_tiles = {0};
    fc.max_faults = 1;
    auto injector = std::make_shared<FaultInjector>(fc);
    config.fault_injector = injector;
    const SaloEngine engine(config);
    const CompiledPlanPtr plan = engine.compile(w.pattern, w.head_dim);
    EXPECT_THROW(engine.run(*plan, qkv.q, qkv.k, qkv.v, w.scale()), EngineFault);
    // The cap is spent: the same engine serves the next run normally.
    const LayerResult ok = engine.run(*plan, qkv.q, qkv.k, qkv.v, w.scale());
    EXPECT_EQ(ok.output.count(), 1);
    EXPECT_EQ(injector->faults_injected(), 1u);
}

// -------------------------------------------------------------------------
// Acceptance: one faulted request in a served batch fails alone.
// -------------------------------------------------------------------------

TEST(FaultInjector, FaultedRequestFailsAloneAndBatchStaysBitIdentical) {
    const int kSiblings = 4;
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 1);
    std::vector<QkvSet> inputs;
    for (int i = 0; i < kSiblings + 1; ++i)
        inputs.push_back(make_qkv(w, 500 + static_cast<std::uint64_t>(i)));

    // Ground truth: every request standalone through a sequential engine.
    const SaloEngine sequential(serving_config(1));
    std::vector<LayerResult> expected;
    for (int i = 0; i <= kSiblings; ++i)
        expected.push_back(sequential.run(w.pattern, inputs[static_cast<std::size_t>(i)].q,
                                          inputs[static_cast<std::size_t>(i)].k,
                                          inputs[static_cast<std::size_t>(i)].v,
                                          w.scale()));

    SaloSession session(serving_config(4));

    // Wedge the dispatcher with a stalling first request so the faulty
    // request and its siblings accumulate into one batch.
    FaultInjector::Config sc;
    sc.stall_tiles = {0};
    sc.stall_for = std::chrono::microseconds(200000);
    auto stall = std::make_shared<FaultInjector>(sc);
    AttentionRequest wedge = make_request(w.pattern, inputs[0].q, inputs[0].k,
                                          inputs[0].v, w.scale());
    wedge.fault_injector = stall;
    auto first = session.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    // One batch of kSiblings requests; request 1 carries a fault injector.
    FaultInjector::Config fc;
    fc.fault_tiles = {0};
    auto fault = std::make_shared<FaultInjector>(fc);
    std::vector<std::future<LayerResult>> futures;
    for (int i = 1; i <= kSiblings; ++i) {
        AttentionRequest r = make_request(w.pattern, inputs[static_cast<std::size_t>(i)].q,
                                          inputs[static_cast<std::size_t>(i)].k,
                                          inputs[static_cast<std::size_t>(i)].v,
                                          w.scale());
        if (i == 1) r.fault_injector = fault;
        futures.push_back(session.submit(std::move(r)));
    }

    // The wedge and every non-faulted sibling complete bit-identical to
    // their standalone sequential runs; only the faulted future fails.
    expect_identical_layer(first.get(), expected[0], "wedge request");
    EXPECT_THROW(futures[0].get(), EngineFault);
    EXPECT_GE(fault->faults_injected(), 1u);
    for (int i = 2; i <= kSiblings; ++i)
        expect_identical_layer(futures[static_cast<std::size_t>(i - 1)].get(),
                               expected[static_cast<std::size_t>(i)], "batch sibling");

    // The session stays serviceable after the fault.
    auto after = session.submit(w.pattern, inputs[0].q, inputs[0].k, inputs[0].v,
                                w.scale());
    expect_identical_layer(after.get(), expected[0], "post-fault request");

    session.close();
    const SessionStats s = session.stats();
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kSiblings + 2));
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kSiblings + 1));
    EXPECT_EQ(s.accounted(), s.submitted);
}

}  // namespace
}  // namespace salo
