// FairScheduler (core/fair_queue.hpp): the DWRR state machine, driven
// synchronously with plain cost sequences — no sessions, no threads. The
// integration with ShardedSession (per-tenant queues feeding router
// workers, quota shed, retry billing end to end) is covered in
// tests/test_shard_router.cpp and the noisy-neighbor soak.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/fair_queue.hpp"

namespace salo {
namespace {

/// Drain `n` picks and return the served tenant names in order.
std::vector<std::string> pop_n(FairScheduler& s, int n) {
    std::vector<std::string> served;
    for (int i = 0; i < n; ++i) {
        auto pick = s.pop();
        if (!pick) break;
        served.push_back(pick->tenant);
    }
    return served;
}

int count_of(const std::vector<std::string>& served, const std::string& who) {
    int n = 0;
    for (const auto& s : served)
        if (s == who) ++n;
    return n;
}

TEST(FairScheduler, SingleTenantIsFifo) {
    FairScheduler s;
    s.push("a", Priority::interactive, 10);
    s.push("a", Priority::interactive, 20);
    s.push("a", Priority::interactive, 30);
    EXPECT_EQ(s.queued_total(), 3u);
    EXPECT_EQ(s.queued_cost(), 60u);

    for (std::uint64_t expect : {10u, 20u, 30u}) {
        auto pick = s.pop();
        ASSERT_TRUE(pick.has_value());
        EXPECT_EQ(pick->tenant, "a");
        EXPECT_EQ(pick->cost, expect);
    }
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.pop().has_value());
}

TEST(FairScheduler, InteractiveBandServedBeforeBatch) {
    FairScheduler s;
    // Tenant "bg" floods the batch class first; "fg" arrives later with
    // interactive work. Strict band priority: every interactive request is
    // served before any batch request, regardless of arrival order.
    for (int i = 0; i < 4; ++i) s.push("bg", Priority::batch, 10);
    s.push("fg", Priority::interactive, 10);
    s.push("fg", Priority::interactive, 10);

    auto served = pop_n(s, 6);
    ASSERT_EQ(served.size(), 6u);
    EXPECT_EQ(served[0], "fg");
    EXPECT_EQ(served[1], "fg");
    for (int i = 2; i < 6; ++i) EXPECT_EQ(served[i], "bg");
}

TEST(FairScheduler, EqualWeightsRoundRobin) {
    FairScheduler s;
    for (int i = 0; i < 3; ++i) {
        s.push("a", Priority::interactive, 10);
        s.push("b", Priority::interactive, 10);
        s.push("c", Priority::interactive, 10);
    }
    auto served = pop_n(s, 9);
    ASSERT_EQ(served.size(), 9u);
    // Equal weights, equal costs: strict rotation in ring (arrival) order.
    const std::vector<std::string> expect = {"a", "b", "c", "a", "b",
                                             "c", "a", "b", "c"};
    EXPECT_EQ(served, expect);
}

TEST(FairScheduler, ServiceProportionalToWeight) {
    FairQueueOptions opt;
    opt.tenants["heavy"].weight = 2.0;
    opt.tenants["light"].weight = 1.0;
    FairScheduler s(opt);
    // Both backlogged with identical unit costs: the long-run service
    // ratio must track the 2:1 weights.
    for (int i = 0; i < 40; ++i) {
        s.push("heavy", Priority::interactive, 10);
        s.push("light", Priority::interactive, 10);
    }
    auto served = pop_n(s, 30);
    ASSERT_EQ(served.size(), 30u);
    const int heavy = count_of(served, "heavy");
    const int light = count_of(served, "light");
    EXPECT_EQ(heavy + light, 30);
    // 2:1 → 20 vs 10 exactly on a clean backlog; allow one round of slack.
    EXPECT_NEAR(static_cast<double>(heavy) / static_cast<double>(light), 2.0, 0.25);
}

TEST(FairScheduler, BurstCannotMonopolizeTheBand) {
    FairScheduler s;
    // "noisy" floods 50 requests before "quiet" ever shows up with one.
    for (int i = 0; i < 50; ++i) s.push("noisy", Priority::interactive, 10);
    s.push("quiet", Priority::interactive, 10);
    // Despite the 50-deep head start, "quiet" is served within one DWRR
    // round (equal weights, equal costs): at most one "noisy" pick first.
    auto served = pop_n(s, 3);
    ASSERT_EQ(served.size(), 3u);
    EXPECT_TRUE(served[0] == "quiet" || served[1] == "quiet")
        << served[0] << "," << served[1] << "," << served[2];
}

TEST(FairScheduler, RetryChargeIsPaidBackBeforeNewService) {
    FairScheduler s;
    for (int i = 0; i < 10; ++i) {
        s.push("a", Priority::interactive, 10);
        s.push("b", Priority::interactive, 10);
    }
    // Serve one from each; "a"'s request then fails and is retried 5 times
    // (50 cost units of extra service billed to its deficit).
    auto first = pop_n(s, 2);
    ASSERT_EQ(count_of(first, "a"), 1);
    ASSERT_EQ(count_of(first, "b"), 1);
    for (int i = 0; i < 5; ++i) s.charge("a", 10);

    // "a" must now earn its debt back: the next 5 picks all go to "b".
    auto next = pop_n(s, 5);
    ASSERT_EQ(next.size(), 5u);
    EXPECT_EQ(count_of(next, "b"), 5) << "a was served while in retry debt";
}

TEST(FairScheduler, DrainResetsBankedCredit) {
    FairQueueOptions opt;
    opt.quantum = 100;  // large quantum → big top-ups to bank
    FairScheduler s(opt);
    s.push("a", Priority::interactive, 10);
    auto pick = s.pop();
    ASSERT_TRUE(pick.has_value());
    // The queue drained; banked credit (100 - 10 = 90) must be reset so an
    // idle tenant cannot hoard service for a later burst.
    auto snap = s.tenant_snapshot("a");
    ASSERT_TRUE(snap.has_value());  // still in flight, not yet reclaimed
    EXPECT_EQ(snap->deficit, 0);
    s.release("a", 10);
}

TEST(FairScheduler, IdleTenantIsReclaimed) {
    FairScheduler s;
    s.push("a", Priority::interactive, 10);
    s.push("b", Priority::interactive, 20);
    EXPECT_EQ(s.active_tenants(), 2u);

    auto p1 = s.pop();
    ASSERT_TRUE(p1.has_value());
    // Popped but in flight: the entry must survive until release.
    EXPECT_EQ(s.active_tenants(), 2u);
    s.release(p1->tenant, p1->cost);
    EXPECT_EQ(s.active_tenants(), 1u);
    EXPECT_FALSE(s.tenant_snapshot(p1->tenant).has_value());

    auto p2 = s.pop();
    ASSERT_TRUE(p2.has_value());
    s.release(p2->tenant, p2->cost);
    EXPECT_EQ(s.active_tenants(), 0u);
    EXPECT_TRUE(s.empty());
}

TEST(FairScheduler, PerTenantQuotaShedsOnlyTheOffender) {
    FairQueueOptions opt;
    opt.tenants["noisy"].admission.mode = AdmissionMode::reject_fast;
    opt.tenants["noisy"].admission.max_queue = 2;
    FairScheduler s(opt);

    // The noisy tenant admits up to its own depth, then sheds.
    EXPECT_EQ(s.decide("noisy", Priority::interactive, 10), AdmissionDecision::admit);
    s.push("noisy", Priority::interactive, 10);
    EXPECT_EQ(s.decide("noisy", Priority::interactive, 10), AdmissionDecision::admit);
    s.push("noisy", Priority::interactive, 10);
    EXPECT_EQ(s.decide("noisy", Priority::interactive, 10), AdmissionDecision::reject);

    // Another tenant's admission never sees the noisy queue.
    EXPECT_EQ(s.decide("calm", Priority::interactive, 10), AdmissionDecision::admit);
}

TEST(FairScheduler, QuotaCountsInFlightCost) {
    FairQueueOptions opt;
    opt.tenants["t"].admission.mode = AdmissionMode::reject_fast;
    opt.tenants["t"].admission.max_outstanding_cost = 25;
    FairScheduler s(opt);

    s.push("t", Priority::interactive, 10);
    s.push("t", Priority::interactive, 10);
    auto pick = s.pop();  // 10 moves from queued to in-flight
    ASSERT_TRUE(pick.has_value());
    // queued 10 + in flight 10 = 20; +10 would cross the 25 ceiling, and
    // in-flight work must count — popping is not an admission loophole.
    EXPECT_EQ(s.decide("t", Priority::interactive, 10), AdmissionDecision::reject);
    s.release("t", 10);
    auto pick2 = s.pop();
    ASSERT_TRUE(pick2.has_value());
    s.release("t", 10);
    EXPECT_EQ(s.decide("t", Priority::interactive, 10), AdmissionDecision::admit);
}

TEST(FairScheduler, MixedCostsStillProportional) {
    FairQueueOptions opt;
    opt.tenants["small"].weight = 1.0;
    opt.tenants["big"].weight = 1.0;
    FairScheduler s(opt);
    // "small" sends many cheap requests, "big" few expensive ones. Equal
    // weights must mean equal *cost* service, not equal request counts.
    for (int i = 0; i < 64; ++i) s.push("small", Priority::interactive, 5);
    for (int i = 0; i < 8; ++i) s.push("big", Priority::interactive, 40);

    std::map<std::string, std::uint64_t> served_cost;
    for (int i = 0; i < 48; ++i) {
        auto pick = s.pop();
        ASSERT_TRUE(pick.has_value());
        served_cost[pick->tenant] += pick->cost;
    }
    const double ratio = static_cast<double>(served_cost["small"]) /
                         static_cast<double>(served_cost["big"]);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(FairScheduler, RejectsNonPositiveWeights) {
    FairQueueOptions opt;
    opt.default_quota.weight = 0.0;
    EXPECT_THROW(FairScheduler{opt}, ContractViolation);

    FairQueueOptions opt2;
    opt2.tenants["x"].weight = -1.0;
    EXPECT_THROW(FairScheduler{opt2}, ContractViolation);
}

}  // namespace
}  // namespace salo
