// Self-healing sharded serving tier (core/shard_router.hpp +
// core/health.hpp).
//
// The CircuitBreaker takes every time point explicitly, so the whole
// quarantine state machine — threshold open, cooldown half-open, clean-probe
// reintegration, dirty-probe re-quarantine — is driven here with synthetic
// timestamps and exact outcome sequences, no sleeps and no clock reads.
//
// The ShardedSession tests then exercise the live tier with deterministic
// FaultInjector triggers: serial submission plus per-request/per-shard
// injectors pin which shard every attempt lands on, so retry, failover,
// quarantine and reintegration counts are exact equalities, not eventual
// bounds. Completed results are compared bit-for-bit against the sequential
// engine run — whichever shard or attempt produced them.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/salo.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

SaloConfig serving_config(int threads) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.num_threads = threads;
    return c;
}

void expect_identical_layer(const LayerResult& a, const LayerResult& b,
                            const char* what) {
    ASSERT_EQ(a.output.count(), b.output.count()) << what;
    for (int h = 0; h < a.output.count(); ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(a.output[h], b.output[h]), 0.0)
            << what << ", head " << h;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.tiles, b.stats.tiles) << what;
}

struct Work {
    AttentionWorkload w = longformer_small(64, 8, 1, 16, 1);
    QkvSet qkv;
    explicit Work(std::uint64_t seed = 7) : qkv(make_qkv(w, seed)) {}

    AttentionRequest request() const {
        return make_request(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    }
};

void expect_conserved(const SessionStats& s) {
    EXPECT_EQ(s.accounted(), s.submitted)
        << "completed=" << s.completed << " failed=" << s.failed
        << " rejected=" << s.rejected << " timed_out=" << s.timed_out
        << " cancelled=" << s.cancelled;
}

bool eventually(const std::function<bool()>& pred, milliseconds budget = milliseconds(3000)) {
    const Clock::time_point until = Clock::now() + budget;
    while (Clock::now() < until) {
        if (pred()) return true;
        std::this_thread::sleep_for(milliseconds(1));
    }
    return pred();
}

/// Injector that faults the first tile of the first `faults` attempts it
/// sees, then runs clean — the deterministic transient-fault trigger.
std::shared_ptr<FaultInjector> transient_fault(int faults) {
    FaultInjector::Config c;
    c.fault_tiles = {0};
    c.max_faults = faults;
    return std::make_shared<FaultInjector>(c);
}

/// Injector that wedges the first tile of the first `stalls` attempts for
/// `stall`, then runs clean.
std::shared_ptr<FaultInjector> transient_stall(milliseconds stall, int stalls) {
    FaultInjector::Config c;
    c.stall_tiles = {0};
    c.stall_for = std::chrono::duration_cast<std::chrono::microseconds>(stall);
    c.max_stalls = stalls;
    return std::make_shared<FaultInjector>(c);
}

// -------------------------------------------------------------------------
// CircuitBreaker: the full state machine under synthetic time.
// -------------------------------------------------------------------------

HealthPolicy tight_policy() {
    HealthPolicy p;
    p.window = 4;
    p.min_samples = 4;
    p.failure_threshold = 0.5;
    p.cooldown = milliseconds(25);
    p.reintegrate_after = 2;
    p.max_concurrent_probes = 1;
    return p;
}

Clock::time_point at(int ms) { return Clock::time_point{} + milliseconds(ms); }

TEST(CircuitBreaker, StaysHealthyBelowThresholdAndBeforeMinSamples) {
    // Below min_samples: even a 100% failure streak is not judged yet.
    CircuitBreaker early(tight_policy());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(early.try_acquire(at(i)));
        early.record(CircuitBreaker::Outcome::failure, at(i));
    }
    EXPECT_EQ(early.state(at(3)), ShardState::healthy);
    EXPECT_EQ(early.quarantined_events(), 0u);

    // At and past min_samples: every rolling 4-sample window of this
    // sequence sits at 1/4 = 0.25, under the 0.5 threshold — never opens.
    CircuitBreaker b(tight_policy());
    const CircuitBreaker::Outcome seq[] = {
        CircuitBreaker::Outcome::success, CircuitBreaker::Outcome::failure,
        CircuitBreaker::Outcome::success, CircuitBreaker::Outcome::success,
        CircuitBreaker::Outcome::success, CircuitBreaker::Outcome::failure};
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(seq[i], at(i));
    }
    EXPECT_EQ(b.state(at(6)), ShardState::healthy);
    EXPECT_EQ(b.quarantined_events(), 0u);
    EXPECT_DOUBLE_EQ(b.failure_fraction(), 0.25);  // window [S S S F]
}

TEST(CircuitBreaker, OpensAtThresholdWithMinSamples) {
    CircuitBreaker b(tight_policy());
    const CircuitBreaker::Outcome seq[] = {
        CircuitBreaker::Outcome::success, CircuitBreaker::Outcome::failure,
        CircuitBreaker::Outcome::success, CircuitBreaker::Outcome::failure};
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(seq[i], at(i));
    }
    // 2/4 failures == threshold 0.5 -> open.
    EXPECT_EQ(b.state(at(4)), ShardState::quarantined);
    EXPECT_EQ(b.quarantined_events(), 1u);
    EXPECT_FALSE(b.try_acquire(at(4)));  // no traffic while quarantined
    EXPECT_EQ(b.quarantined_at(), at(3));
}

TEST(CircuitBreaker, NeutralOutcomesNeverJudgeTheShard) {
    CircuitBreaker b(tight_policy());
    // Cancels / caller deadlines / contract bugs release the slot without
    // entering the window: 100 of them must not open the breaker.
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(CircuitBreaker::Outcome::neutral, at(i));
    }
    EXPECT_EQ(b.state(at(100)), ShardState::healthy);
    EXPECT_DOUBLE_EQ(b.failure_fraction(), 0.0);
    EXPECT_EQ(b.quarantined_events(), 0u);
}

TEST(CircuitBreaker, CooldownOpensExactlyOneProbeSlot) {
    CircuitBreaker b(tight_policy());
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(CircuitBreaker::Outcome::failure, at(i));
    }
    ASSERT_EQ(b.state(at(4)), ShardState::quarantined);
    // One tick before the cooldown (25 ms from the open at t=3): still shut.
    EXPECT_FALSE(b.try_acquire(at(3 + 24)));
    // Cooldown elapsed: half-open with max_concurrent_probes = 1.
    EXPECT_EQ(b.state(at(3 + 25)), ShardState::probing);
    EXPECT_TRUE(b.try_acquire(at(3 + 25)));
    EXPECT_FALSE(b.try_acquire(at(3 + 25)));  // second probe refused
}

TEST(CircuitBreaker, CleanProbesReintegrate) {
    CircuitBreaker b(tight_policy());
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(CircuitBreaker::Outcome::failure, at(i));
    }
    const int probe_t = 3 + 25;
    ASSERT_TRUE(b.try_acquire(at(probe_t)));
    b.record(CircuitBreaker::Outcome::success, at(probe_t));
    EXPECT_EQ(b.state(at(probe_t)), ShardState::probing);  // 1 of 2 clean
    ASSERT_TRUE(b.try_acquire(at(probe_t + 1)));
    b.record(CircuitBreaker::Outcome::success, at(probe_t + 1));
    EXPECT_EQ(b.state(at(probe_t + 1)), ShardState::healthy);
    EXPECT_EQ(b.reintegrated_events(), 1u);
    // Reintegration cleared the window: old failures are forgotten.
    EXPECT_DOUBLE_EQ(b.failure_fraction(), 0.0);
}

TEST(CircuitBreaker, DirtyProbeRestartsTheQuarantine) {
    CircuitBreaker b(tight_policy());
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(b.try_acquire(at(i)));
        b.record(CircuitBreaker::Outcome::failure, at(i));
    }
    const int probe_t = 3 + 25;
    ASSERT_TRUE(b.try_acquire(at(probe_t)));
    b.record(CircuitBreaker::Outcome::failure, at(probe_t));
    EXPECT_EQ(b.state(at(probe_t)), ShardState::quarantined);
    EXPECT_EQ(b.quarantined_events(), 2u);
    EXPECT_EQ(b.reintegrated_events(), 0u);
    // The cooldown restarted from the dirty probe, not the first open.
    EXPECT_FALSE(b.try_acquire(at(probe_t + 24)));
    EXPECT_EQ(b.state(at(probe_t + 25)), ShardState::probing);
}

TEST(HealthSupervisor, ForcedProbeKeepsAFullyQuarantinedTierServing) {
    HealthPolicy p = tight_policy();
    p.min_samples = 1;
    p.failure_threshold = 0.5;
    p.cooldown = milliseconds(10000);  // nothing reopens by itself
    HealthSupervisor sup(2, p);

    // Open shard 0 at t=0 and shard 1 at t=1.
    ASSERT_TRUE(sup.try_acquire(0, at(0)));
    sup.record(0, CircuitBreaker::Outcome::failure, at(0));
    ASSERT_TRUE(sup.try_acquire(1, at(1)));
    sup.record(1, CircuitBreaker::Outcome::failure, at(1));
    EXPECT_TRUE(sup.acquirable(at(2)).empty());
    EXPECT_EQ(sup.healthy_count(at(2)), 0);
    EXPECT_EQ(sup.quarantined_events_total(), 2u);

    // Every breaker refuses -> force-probe the oldest quarantine (shard 0).
    EXPECT_EQ(sup.force_acquire_soonest(at(2)), 0);
    sup.record(0, CircuitBreaker::Outcome::success, at(2));
    EXPECT_EQ(sup.force_acquire_soonest(at(3)), 0);
    sup.record(0, CircuitBreaker::Outcome::success, at(3));
    // reintegrate_after = 2 clean forced probes close shard 0's breaker.
    EXPECT_EQ(sup.healthy_count(at(4)), 1);
    EXPECT_EQ(sup.reintegrated_events_total(), 1u);
    EXPECT_EQ(sup.snapshot(at(4))[0].state, ShardState::healthy);
    EXPECT_EQ(sup.snapshot(at(4))[1].state, ShardState::quarantined);
}

// -------------------------------------------------------------------------
// ShardedSession: routing, bit-identity, and the conservation law.
// -------------------------------------------------------------------------

TEST(ShardedSession, MixedStreamBitIdenticalToSequentialEngine) {
    const SaloConfig config = serving_config(1);
    const SaloEngine reference(config);
    std::vector<Work> work;
    for (std::uint64_t s = 0; s < 8; ++s) work.emplace_back(100 + s);
    std::vector<LayerResult> expected;
    expected.reserve(work.size());
    for (const Work& w : work)
        expected.push_back(
            reference.run(w.w.pattern, w.qkv.q, w.qkv.k, w.qkv.v, w.w.scale()));

    ShardedSessionOptions options;
    options.num_shards = 2;
    ShardedSession tier(config, options);
    std::vector<std::future<LayerResult>> futures;
    for (const Work& w : work) futures.push_back(tier.submit(w.request()));
    for (std::size_t i = 0; i < futures.size(); ++i)
        expect_identical_layer(futures[i].get(), expected[i], "sharded request");
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.submitted, work.size());
    EXPECT_EQ(s.completed, work.size());
    EXPECT_EQ(s.retried, 0u);
    EXPECT_EQ(s.failed_over, 0u);
    EXPECT_EQ(s.quarantined_shard_events, 0u);
    expect_conserved(s);
}

TEST(ShardedSession, ConsistentHashKeepsOneShapeInOneShardCache) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 4;
    options.routing = RoutingPolicy::consistent_hash;
    ShardedSession tier(serving_config(1), options);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1);
    tier.close();
    // One shape, rendezvous-hashed: exactly one shard ever compiled it.
    int shards_with_compiles = 0;
    for (int s = 0; s < tier.num_shards(); ++s)
        if (tier.shard_engine(s).plan_cache_stats().misses > 0) ++shards_with_compiles;
    EXPECT_EQ(shards_with_compiles, 1);
    EXPECT_EQ(tier.stats().plan_cache.misses, 1u);
    EXPECT_EQ(tier.stats().completed, 6u);
}

// -------------------------------------------------------------------------
// Retry and failover.
// -------------------------------------------------------------------------

TEST(ShardedSession, TransientFaultFailsOverToAnotherShardAndCompletes) {
    const SaloConfig config = serving_config(1);
    const SaloEngine reference(config);
    const Work work;
    const LayerResult expected =
        reference.run(work.w.pattern, work.qkv.q, work.qkv.k, work.qkv.v,
                      work.w.scale());

    ShardedSessionOptions options;
    options.num_shards = 2;
    ShardedSession tier(config, options);
    auto injector = transient_fault(1);  // first attempt faults, retry clean
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    auto future = tier.submit(std::move(r));
    expect_identical_layer(future.get(), expected, "retried request");
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.retried, 1u);
    EXPECT_EQ(s.failed_over, 1u);  // the retry went to the other shard
    EXPECT_EQ(injector->faults_injected(), 1u);
    expect_conserved(s);
}

TEST(ShardedSession, RetriedIsCountedPerAttempt) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 3;
    ShardedSession tier(serving_config(1), options);
    auto injector = transient_fault(2);  // attempts 1 and 2 fault, 3rd clean
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    EXPECT_EQ(tier.submit(std::move(r)).get().output.count(), 1);
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.retried, 2u);      // one request, two re-dispatches
    EXPECT_EQ(s.failed_over, 2u);  // each retry preferred the other shard
    expect_conserved(s);
}

TEST(ShardedSession, RetryBudgetExhaustionFailsTyped) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 3;
    ShardedSession tier(serving_config(1), options);
    auto injector = transient_fault(-1);  // every attempt faults
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    auto future = tier.submit(std::move(r));
    EXPECT_THROW(future.get(), EngineFault);
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.completed, 0u);
    EXPECT_EQ(s.retried, 2u);  // attempts 2 and 3
    EXPECT_EQ(injector->faults_injected(), 3u);
    expect_conserved(s);
}

TEST(ShardedSession, StallPastAttemptBoundFailsOverAndCompletes) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.stall_timeout = milliseconds(250);
    ShardedSession tier(serving_config(1), options);
    // First attempt wedges for 5 s — far past the 250 ms attempt bound — so
    // the tier must abandon it as a shard stall and retry, not wait it out.
    auto injector = transient_stall(milliseconds(5000), 1);
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    const Clock::time_point t0 = Clock::now();
    auto future = tier.submit(std::move(r));
    EXPECT_EQ(future.get().output.count(), 1);
    const milliseconds took =
        std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 4000);  // never sat out the 5 s wedge
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.timed_out, 0u);  // a stall bound is not the request deadline
    EXPECT_EQ(s.retried, 1u);
    EXPECT_EQ(s.failed_over, 1u);
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// No wasted retries: cancellation and deadlines between attempts.
// -------------------------------------------------------------------------

TEST(ShardedSession, CancelDuringBackoffAbortsImmediatelyAsCancelled) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 5;
    // A backoff long enough that sitting it out would dominate the test:
    // jitter keeps it in [2.5 s, 5 s].
    options.retry.base_backoff = std::chrono::microseconds(5000000);
    options.retry.max_backoff = std::chrono::microseconds(5000000);
    ShardedSession tier(serving_config(1), options);

    auto injector = transient_fault(-1);
    CancellationToken token = CancellationToken::make();
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    r.cancel = token;
    auto future = tier.submit(std::move(r));
    // Wait for the first fault, then cancel while the worker is in backoff.
    ASSERT_TRUE(eventually([&] { return injector->faults_injected() >= 1; }));
    const Clock::time_point t0 = Clock::now();
    token.request_cancel();
    EXPECT_THROW(future.get(), RequestCancelled);  // not EngineFault
    const milliseconds took =
        std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 1000);  // aborted the 2.5 s+ sleep, did not serve it
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.cancelled, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.retried, 0u);  // the cancelled request never burned a retry
    expect_conserved(s);
}

TEST(ShardedSession, DeadlineDuringBackoffResolvesDeadlineExceeded) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.base_backoff = std::chrono::microseconds(5000000);
    options.retry.max_backoff = std::chrono::microseconds(5000000);
    ShardedSession tier(serving_config(1), options);

    auto injector = transient_fault(-1);
    AttentionRequest r = work.request();
    r.fault_injector = injector;
    r.deadline = Clock::now() + milliseconds(150);
    const Clock::time_point t0 = Clock::now();
    auto future = tier.submit(std::move(r));
    EXPECT_THROW(future.get(), DeadlineExceeded);
    const milliseconds took =
        std::chrono::duration_cast<milliseconds>(Clock::now() - t0);
    EXPECT_LT(took.count(), 2000);  // the deadline cut the 2.5 s+ backoff short
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.retried, 0u);  // expired requests are never retried
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// Quarantine and reintegration on a live tier.
// -------------------------------------------------------------------------

TEST(ShardedSession, FaultingShardIsQuarantinedAndTrafficReroutes) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 2;
    options.health.window = 4;
    options.health.min_samples = 2;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = milliseconds(10000);  // stays out for the test
    // Shard 0 faults every attempt at its first tile; shard 1 is clean.
    FaultInjector::Config bad;
    bad.fault_tiles = {0};
    auto bad_injector = std::make_shared<FaultInjector>(bad);
    options.shard_fault_injectors = {bad_injector, nullptr};
    ShardedSession tier(serving_config(1), options);

    // Serial submission: requests 1-2 land on shard 0 (least-cost tie),
    // fault, fail over to shard 1; the second failure opens the breaker, so
    // requests 3-8 route straight to shard 1 with no further retries.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1) << i;

    const std::vector<ShardHealthSnapshot> health = tier.shard_health();
    EXPECT_EQ(health[0].state, ShardState::quarantined);
    EXPECT_EQ(health[1].state, ShardState::healthy);
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.completed, 8u);
    EXPECT_EQ(s.retried, 2u);
    EXPECT_EQ(s.failed_over, 2u);
    EXPECT_EQ(s.quarantined_shard_events, 1u);
    EXPECT_EQ(s.reintegrated_shard_events, 0u);
    EXPECT_EQ(bad_injector->faults_injected(), 2u);
    expect_conserved(s);
}

TEST(ShardedSession, HealedShardIsProbedAndReintegrated) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 2;
    options.health.window = 4;
    options.health.min_samples = 2;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = milliseconds(20);
    options.health.reintegrate_after = 2;
    // Shard 0 faults its first two attempts, then is healthy again — the
    // transient-incident shape quarantine must recover from.
    FaultInjector::Config bad;
    bad.fault_tiles = {0};
    bad.max_faults = 2;
    auto bad_injector = std::make_shared<FaultInjector>(bad);
    options.shard_fault_injectors = {bad_injector, nullptr};
    ShardedSession tier(serving_config(1), options);

    // Trip the breaker: two serial requests fault on shard 0 and fail over.
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1) << i;
    ASSERT_EQ(tier.stats().quarantined_shard_events, 1u);

    // Keep trickling traffic; once the cooldown elapses the router probes
    // shard 0 (now clean), and two clean probes reintegrate it.
    ASSERT_TRUE(eventually([&] {
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1);
        std::this_thread::sleep_for(milliseconds(5));
        return tier.stats().reintegrated_shard_events >= 1;
    }));
    EXPECT_EQ(tier.shard_health()[0].state, ShardState::healthy);
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.completed, s.submitted);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.quarantined_shard_events, 1u);
    EXPECT_EQ(s.reintegrated_shard_events, 1u);
    expect_conserved(s);
}

// -------------------------------------------------------------------------
// Degradation-aware admission: limits shrink with the healthy fraction.
// -------------------------------------------------------------------------

TEST(ScaledPolicy, ShrinksLimitsProportionallyNeverBelowOne) {
    AdmissionPolicy base;
    base.max_queue = 32;
    base.max_queue_batch = 8;
    base.max_outstanding_cost = 1000;

    const AdmissionPolicy half = scaled_policy(base, 2, 4);
    EXPECT_EQ(half.max_queue, 16u);
    EXPECT_EQ(half.max_queue_batch, 4u);
    EXPECT_EQ(half.max_outstanding_cost, 500u);

    // One healthy shard of four: scaled but clamped at >= 1.
    const AdmissionPolicy quarter = scaled_policy(base, 1, 4);
    EXPECT_EQ(quarter.max_queue, 8u);
    AdmissionPolicy tiny;
    tiny.max_queue = 2;
    EXPECT_EQ(scaled_policy(tiny, 1, 4).max_queue, 1u);

    // Unbounded (0) limits stay unbounded; a fully-healthy tier is a no-op.
    AdmissionPolicy unbounded;
    EXPECT_EQ(scaled_policy(unbounded, 1, 4).max_queue, 0u);
    EXPECT_EQ(scaled_policy(base, 4, 4).max_queue, 32u);
    EXPECT_EQ(scaled_policy(base, 0, 4).max_queue, 1u);
}

TEST(ScaledPolicy, BoundaryHealthCounts) {
    AdmissionPolicy base;
    base.max_queue = 32;
    base.max_queue_batch = 8;
    base.max_outstanding_cost = 1000;

    // Zero healthy shards: every bounded limit clamps to the floor of one —
    // the tier still admits a trickle for the forced health probes.
    const AdmissionPolicy dead = scaled_policy(base, 0, 4);
    EXPECT_EQ(dead.max_queue, 1u);
    EXPECT_EQ(dead.max_queue_batch, 1u);
    EXPECT_EQ(dead.max_outstanding_cost, 1u);

    // One healthy shard: proportional share, still >= 1 everywhere.
    const AdmissionPolicy one = scaled_policy(base, 1, 4);
    EXPECT_EQ(one.max_queue, 8u);
    EXPECT_EQ(one.max_queue_batch, 2u);
    EXPECT_EQ(one.max_outstanding_cost, 250u);

    // Rounding must never shrink admission below one interactive slot:
    // 3 * 1 / 4 truncates to 0 and must clamp to 1, for every limit kind.
    AdmissionPolicy small;
    small.max_queue = 3;
    small.max_queue_batch = 3;
    small.max_outstanding_cost = 3;
    const AdmissionPolicy floored = scaled_policy(small, 1, 4);
    EXPECT_EQ(floored.max_queue, 1u);
    EXPECT_EQ(floored.max_queue_batch, 1u);
    EXPECT_EQ(floored.max_outstanding_cost, 1u);

    // Degenerate inputs: negative healthy behaves like zero; a nonsense
    // total (<= 0) and healthy >= total leave the policy untouched.
    EXPECT_EQ(scaled_policy(base, -3, 4).max_queue, 1u);
    EXPECT_EQ(scaled_policy(base, 2, 0).max_queue, 32u);
    EXPECT_EQ(scaled_policy(base, 9, 4).max_queue, 32u);

    // Unbounded (0) limits are never turned into bounds by scaling.
    AdmissionPolicy unbounded;
    EXPECT_EQ(scaled_policy(unbounded, 0, 4).max_queue, 0u);
    EXPECT_EQ(scaled_policy(unbounded, 0, 4).max_outstanding_cost, 0u);
}

// -------------------------------------------------------------------------
// Tenant fairness layer (core/fair_queue.hpp wired into the router).
// -------------------------------------------------------------------------

TEST(TenantFairness, PerTenantStatsBreakdownSumsToGlobal) {
    ShardedSessionOptions options;
    options.num_shards = 2;
    ShardedSession tier(serving_config(1), options);
    const Work work;

    for (int i = 0; i < 3; ++i) {
        AttentionRequest r = work.request();
        r.tenant_id = "alpha";
        EXPECT_EQ(tier.submit(std::move(r)).get().output.count(), 1);
    }
    for (int i = 0; i < 2; ++i) {
        AttentionRequest r = work.request();
        r.tenant_id = "beta";
        EXPECT_EQ(tier.submit(std::move(r)).get().output.count(), 1);
    }
    EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1);  // default tenant
    tier.close();

    const auto per_tenant = tier.tenant_stats();
    ASSERT_EQ(per_tenant.size(), 3u);
    EXPECT_EQ(per_tenant.at("alpha").submitted, 3u);
    EXPECT_EQ(per_tenant.at("alpha").completed, 3u);
    EXPECT_EQ(per_tenant.at("beta").submitted, 2u);
    EXPECT_EQ(per_tenant.at("beta").completed, 2u);
    EXPECT_EQ(per_tenant.at("").submitted, 1u);

    const SessionStats s = tier.stats();
    expect_conserved(s);
    std::uint64_t submitted = 0, completed = 0;
    for (const auto& [name, t] : per_tenant) {
        EXPECT_EQ(t.accounted(), t.submitted) << "tenant " << name;
        submitted += t.submitted;
        completed += t.completed;
    }
    EXPECT_EQ(submitted, s.submitted);
    EXPECT_EQ(completed, s.completed);
}

TEST(TenantFairness, IdleTenantQueueStateIsReclaimedStatsPersist) {
    ShardedSession tier(serving_config(1), {});
    const Work work;
    AttentionRequest r = work.request();
    r.tenant_id = "ephemeral";
    EXPECT_EQ(tier.submit(std::move(r)).get().output.count(), 1);
    tier.drain();
    // The scheduler entry (queues, deficit) is gone; the stats entry stays.
    ASSERT_TRUE(eventually([&] { return !tier.tenant_queue("ephemeral").has_value(); }));
    EXPECT_EQ(tier.tenant_stats().at("ephemeral").completed, 1u);
    tier.close();
}

TEST(TenantFairness, NoisyTenantShedsAgainstItsOwnQuotaOnly) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 1;
    options.router_workers = 1;  // single lane: queue depths are observable
    options.retry.max_attempts = 1;
    // The noisy tenant gets a 2-deep reject-fast queue quota; everyone
    // else (and the global policy) stays unbounded.
    options.fairness.tenants["noisy"].admission.mode = AdmissionMode::reject_fast;
    options.fairness.tenants["noisy"].admission.max_queue = 2;
    ShardedSession tier(serving_config(1), options);

    // Wedge the single router lane with a stalled noisy request so later
    // submissions pile up in the tenant queues.
    auto stall = transient_stall(milliseconds(400), 1);
    AttentionRequest wedge = work.request();
    wedge.tenant_id = "noisy";
    wedge.fault_injector = stall;
    auto wedged = tier.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    // The flood: 2 admitted into the noisy queue, the rest shed with
    // QueueFull against the tenant's own quota.
    std::vector<std::future<LayerResult>> noisy_admitted;
    std::vector<std::future<LayerResult>> noisy_shed;
    for (int i = 0; i < 5; ++i) {
        AttentionRequest r = work.request();
        r.tenant_id = "noisy";
        if (i < 2)
            noisy_admitted.push_back(tier.submit(std::move(r)));
        else
            noisy_shed.push_back(tier.submit(std::move(r)));
    }
    // A well-behaved tenant is admitted freely at the same moment.
    std::vector<std::future<LayerResult>> calm;
    for (int i = 0; i < 3; ++i) {
        AttentionRequest r = work.request();
        r.tenant_id = "calm";
        calm.push_back(tier.submit(std::move(r)));
    }

    for (auto& f : noisy_shed) EXPECT_THROW(f.get(), QueueFull);
    EXPECT_EQ(wedged.get().output.count(), 1);
    for (auto& f : noisy_admitted) EXPECT_EQ(f.get().output.count(), 1);
    for (auto& f : calm) EXPECT_EQ(f.get().output.count(), 1);
    tier.close();

    const auto per_tenant = tier.tenant_stats();
    EXPECT_EQ(per_tenant.at("noisy").rejected, 3u);
    EXPECT_EQ(per_tenant.at("noisy").completed, 3u);
    EXPECT_EQ(per_tenant.at("calm").rejected, 0u);
    EXPECT_EQ(per_tenant.at("calm").completed, 3u);
    for (const auto& [name, t] : per_tenant)
        EXPECT_EQ(t.accounted(), t.submitted) << "tenant " << name;
    expect_conserved(tier.stats());
}

TEST(TenantFairness, RetryIsBilledToTheTenant) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 3;
    options.retry.base_backoff = std::chrono::microseconds(100);
    ShardedSession tier(serving_config(1), options);

    AttentionRequest r = work.request();
    r.tenant_id = "flaky";
    r.fault_injector = transient_fault(1);  // first attempt faults, retry clean
    EXPECT_EQ(tier.submit(std::move(r)).get().output.count(), 1);
    tier.close();

    const auto per_tenant = tier.tenant_stats();
    EXPECT_EQ(per_tenant.at("flaky").retried, 1u);
    EXPECT_EQ(per_tenant.at("flaky").completed, 1u);
    const SessionStats s = tier.stats();
    EXPECT_EQ(s.retried, 1u);
    expect_conserved(s);
}

TEST(TenantFairness, SharedPlanStoreCompilesOnceTierWide) {
    // Acceptance gate: under least-cost routing across 4 shards, a
    // repeated shape runs the scheduler exactly once tier-wide — the
    // shared store does the single compile, shard-local caches resolve
    // through it and never run the scheduler themselves.
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 4;
    options.routing = RoutingPolicy::least_outstanding_cost;
    options.shared_plan_store = true;
    ShardedSession tier(serving_config(1), options);
    ASSERT_NE(tier.shared_plan_store(), nullptr);

    const SaloEngine seq(serving_config(1));
    const LayerResult expected = seq.run(work.w.pattern, work.qkv.q, work.qkv.k,
                                         work.qkv.v, work.w.scale());

    // A concurrent burst: least-cost routing is free to spread the shape
    // over any subset of shards — the compile count must stay 1 anyway.
    std::vector<std::future<LayerResult>> futures;
    for (int i = 0; i < 16; ++i) futures.push_back(tier.submit(work.request()));
    for (auto& f : futures) expect_identical_layer(f.get(), expected, "shared-store");
    tier.close();

    const PlanCacheStats store = tier.shared_plan_store()->stats();
    EXPECT_EQ(store.compiles, 1u) << "scheduler ran more than once tier-wide";
    const SessionStats s = tier.stats();
    EXPECT_EQ(s.plan_cache.compiles, 0u) << "a shard-local cache ran the scheduler";
    EXPECT_GE(s.plan_cache.shared_resolved, 1u);
    EXPECT_EQ(s.completed, 16u);
    expect_conserved(s);
}

TEST(TenantFairness, WithoutSharedStoreEachShardCompiles) {
    // Control for the test above: least-cost routing without the shared
    // store compiles per shard (the PR 4 status quo the store removes).
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.routing = RoutingPolicy::round_robin;
    ShardedSession tier(serving_config(1), options);
    EXPECT_EQ(tier.shared_plan_store(), nullptr);

    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1);
    tier.close();

    const SessionStats s = tier.stats();
    EXPECT_EQ(s.plan_cache.compiles, 2u);  // one scheduler pass per shard
    EXPECT_EQ(s.plan_cache.shared_resolved, 0u);
}

TEST(ShardedSession, DegradedTierShedsEarlier) {
    const Work work;
    ShardedSessionOptions options;
    options.num_shards = 2;
    options.retry.max_attempts = 2;
    options.health.min_samples = 2;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = milliseconds(10000);
    options.admission.mode = AdmissionMode::reject_fast;
    options.admission.max_queue = 8;
    options.router_workers = 1;  // single lane: queued depth is observable
    FaultInjector::Config bad;
    bad.fault_tiles = {0};
    auto bad_injector = std::make_shared<FaultInjector>(bad);
    options.shard_fault_injectors = {bad_injector, nullptr};
    ShardedSession tier(serving_config(1), options);

    // Quarantine shard 0 (two faulting requests served serially).
    for (int i = 0; i < 2; ++i)
        EXPECT_EQ(tier.submit(work.request()).get().output.count(), 1) << i;
    ASSERT_EQ(tier.stats().quarantined_shard_events, 1u);

    // Wedge the single router lane so submissions stay queued, then fill
    // the scaled queue: 1 of 2 shards healthy halves max_queue to 4.
    auto stall = transient_stall(milliseconds(400), 1);
    AttentionRequest wedge = work.request();
    wedge.fault_injector = stall;
    auto wedged = tier.submit(std::move(wedge));
    ASSERT_TRUE(eventually([&] { return stall->stalls_injected() > 0; }));

    std::vector<std::future<LayerResult>> admitted;
    for (int i = 0; i < 4; ++i) admitted.push_back(tier.submit(work.request()));
    auto shed = tier.submit(work.request());  // 5th queued: over the scaled cap
    EXPECT_THROW(shed.get(), QueueFull);

    EXPECT_EQ(wedged.get().output.count(), 1);
    for (auto& f : admitted) EXPECT_EQ(f.get().output.count(), 1);
    tier.close();
    const SessionStats s = tier.stats();
    EXPECT_EQ(s.rejected, 1u);
    expect_conserved(s);
}

}  // namespace
}  // namespace salo
