#include "numeric/reciprocal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"

namespace salo {
namespace {

double inv_to_double(InvRaw raw) {
    return static_cast<double>(raw) /
           static_cast<double>(std::int64_t{1} << Datapath::inv_frac);
}

TEST(Reciprocal, ExactPowersOfTwo) {
    const Reciprocal unit;
    // W = 2^k has mantissa exactly 1.0; the seed/NR path must be near-exact.
    for (int k = -10; k <= 20; ++k) {
        const double w = std::exp2(k);
        const auto raw = static_cast<SumRaw>(std::llround(w * (1 << Datapath::exp_frac)));
        if (raw == 0) continue;
        EXPECT_NEAR(inv_to_double(unit.inv_raw(raw)) * w, 1.0, 2e-3) << "k=" << k;
    }
}

TEST(Reciprocal, RelativeErrorBoundTwoIterations) {
    const Reciprocal unit;  // 2 NR iterations
    EXPECT_LT(unit.max_rel_error(0.01, 1000.0), 1e-3);
}

TEST(Reciprocal, IterationsImproveAccuracy) {
    double prev = 1.0;
    for (int iters : {0, 1, 2}) {
        Reciprocal::Config cfg;
        cfg.nr_iters = iters;
        const double err = Reciprocal(cfg).max_rel_error(0.5, 500.0);
        EXPECT_LT(err, prev) << "iters=" << iters;
        prev = err;
    }
    EXPECT_LT(prev, 1e-3);
}

TEST(Reciprocal, LatencyGrowsWithIterations) {
    Reciprocal::Config a;
    a.nr_iters = 1;
    Reciprocal::Config b;
    b.nr_iters = 3;
    EXPECT_LT(a.latency(), b.latency());
}

TEST(Reciprocal, RejectsZero) {
    const Reciprocal unit;
    EXPECT_THROW(unit.inv_raw(0), ContractViolation);
}

TEST(Reciprocal, SmallestAndLargeInputs) {
    const Reciprocal unit;
    // Smallest representable sum: raw 1 = 2^-14 -> inverse 2^14.
    EXPECT_NEAR(inv_to_double(unit.inv_raw(1)), 16384.0, 16384.0 * 2e-3);
    // The largest physically reachable sum: 63 saturated exponentials of
    // 2^31 raw each is below 2^37.
    const SumRaw big = (SumRaw{1} << 36) + 12345;
    const double w = static_cast<double>(big) / (1 << Datapath::exp_frac);
    EXPECT_NEAR(inv_to_double(unit.inv_raw(big)) * w, 1.0, 2e-3);
}

TEST(NormalizeProb, FullMassIsOne) {
    // exp == W -> S' == 1.0 in Q.15.
    const ExpRaw e = 1u << Datapath::exp_frac;
    const Reciprocal unit;
    const InvRaw inv = unit.inv_raw(static_cast<SumRaw>(e));
    EXPECT_NEAR(static_cast<double>(normalize_prob(e, inv)) /
                    (1 << Datapath::sprime_frac),
                1.0, 2e-3);
}

TEST(NormalizeProb, HalfMass) {
    const ExpRaw e = 1u << Datapath::exp_frac;
    const Reciprocal unit;
    const InvRaw inv = unit.inv_raw(static_cast<SumRaw>(e) * 2);
    EXPECT_NEAR(static_cast<double>(normalize_prob(e, inv)) /
                    (1 << Datapath::sprime_frac),
                0.5, 2e-3);
}

TEST(NormalizeProb, ProbabilitiesSumToOne) {
    // Random exp values: normalized values must sum to ~1.
    const Reciprocal unit;
    std::vector<ExpRaw> exps = {12, 3444, 987654, 1u << 20, 77, 4096000, 5, 31231};
    SumRaw w = 0;
    for (ExpRaw e : exps) w += e;
    const InvRaw inv = unit.inv_raw(w);
    double total = 0.0;
    for (ExpRaw e : exps)
        total += static_cast<double>(normalize_prob(e, inv)) /
                 (1 << Datapath::sprime_frac);
    EXPECT_NEAR(total, 1.0, 5e-3);
}

}  // namespace
}  // namespace salo
