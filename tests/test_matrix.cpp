#include "tensor/matrix.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "tensor/tensor3.hpp"

namespace salo {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
    Matrix<float> m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_FLOAT_EQ(m(2, 3), 1.5f);
    m(1, 2) = -2.0f;
    EXPECT_FLOAT_EQ(m(1, 2), -2.0f);
}

TEST(Matrix, BoundsChecked) {
    Matrix<int> m(2, 2);
    EXPECT_THROW(m(2, 0), ContractViolation);
    EXPECT_THROW(m(0, -1), ContractViolation);
    EXPECT_THROW(m.row(5), ContractViolation);
}

TEST(Matrix, RowSpanWritesThrough) {
    Matrix<int> m(2, 3, 0);
    auto r = m.row(1);
    r[2] = 42;
    EXPECT_EQ(m(1, 2), 42);
    const auto& cm = m;
    EXPECT_EQ(cm.row(1)[2], 42);
}

TEST(Matrix, MatmulSmallKnown) {
    Matrix<int> a(2, 3);
    Matrix<int> b(3, 2);
    int v = 1;
    for (auto& x : a.data()) x = v++;
    v = 1;
    for (auto& x : b.data()) x = v++;
    const Matrix<int> c = matmul(a, b);
    // a = [1 2 3; 4 5 6], b = [1 2; 3 4; 5 6] -> c = [22 28; 49 64]
    EXPECT_EQ(c(0, 0), 22);
    EXPECT_EQ(c(0, 1), 28);
    EXPECT_EQ(c(1, 0), 49);
    EXPECT_EQ(c(1, 1), 64);
}

TEST(Matrix, MatmulNtMatchesMatmulTranspose) {
    Rng rng(7);
    const Matrix<float> a = random_matrix(5, 8, rng);
    const Matrix<float> b = random_matrix(6, 8, rng);
    const Matrix<float> direct = matmul_nt(a, b);
    const Matrix<float> via_t = matmul(a, transpose(b));
    EXPECT_LT(max_abs_diff(direct, via_t), 1e-5);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
    Matrix<float> a(2, 3);
    Matrix<float> b(4, 2);
    EXPECT_THROW(matmul(a, b), ContractViolation);
    EXPECT_THROW(matmul_nt(a, Matrix<float>(2, 5)), ContractViolation);
}

TEST(Matrix, TransposeRoundTrip) {
    Rng rng(3);
    const Matrix<float> a = random_matrix(4, 7, rng);
    const Matrix<float> tt = transpose(transpose(a));
    EXPECT_TRUE(a == tt);
}

TEST(Matrix, MapChangesTypeAndValue) {
    Matrix<float> m(2, 2, 1.25f);
    const Matrix<int> doubled = m.map<int>([](float v) { return static_cast<int>(v * 4); });
    EXPECT_EQ(doubled(1, 1), 5);
}

TEST(Matrix, MaxAbsDiff) {
    Matrix<float> a(2, 2, 1.0f);
    Matrix<float> b(2, 2, 1.0f);
    b(1, 0) = -2.0f;
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
}

TEST(Tensor3, ShapeAndSlices) {
    Tensor3<float> t(3, 4, 5);
    EXPECT_EQ(t.count(), 3);
    EXPECT_EQ(t.rows(), 4);
    EXPECT_EQ(t.cols(), 5);
    t[2](3, 4) = 9.0f;
    EXPECT_FLOAT_EQ(t[2](3, 4), 9.0f);
    EXPECT_THROW(t[3], ContractViolation);
}

TEST(Tensor3, RandomIsDeterministicPerSeed) {
    Rng rng1(42), rng2(42);
    const auto a = random_tensor3(2, 3, 4, rng1);
    const auto b = random_tensor3(2, 3, 4, rng2);
    for (int h = 0; h < 2; ++h) EXPECT_TRUE(a[h] == b[h]);
}

}  // namespace
}  // namespace salo
