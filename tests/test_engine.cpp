#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

SaloConfig small_config(Fidelity fidelity = Fidelity::kFunctional) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.fidelity = fidelity;
    return c;
}

TEST(Engine, FunctionalMatchesGoldenOnLongformer) {
    const auto pattern = longformer(64, 8, 1);
    Rng rng(1);
    const auto q = random_matrix(64, 16, rng, 0.0, 0.8);
    const auto k = random_matrix(64, 16, rng, 0.0, 0.8);
    const auto v = random_matrix(64, 16, rng, 0.0, 0.8);
    const SaloEngine engine(small_config());
    const auto result = engine.run_head(pattern, q, k, v, 0.25f);
    const auto gold = SaloEngine::golden(pattern, q, k, v, 0.25f);
    // Tolerance includes input quantization (golden runs on float inputs).
    EXPECT_LT(max_abs_diff(result.output, gold), 0.25);
    EXPECT_GT(result.stats.cycles, 0);
    EXPECT_GT(result.stats.tiles, 0);
}

TEST(Engine, GoldenFidelityIsExactOracle) {
    const auto pattern = longformer(32, 6, 1);
    Rng rng(2);
    const auto q = random_matrix(32, 8, rng);
    const auto k = random_matrix(32, 8, rng);
    const auto v = random_matrix(32, 8, rng);
    const SaloEngine engine(small_config(Fidelity::kGolden));
    const auto result = engine.run_head(pattern, q, k, v, 0.35f);
    EXPECT_LT(max_abs_diff(result.output, SaloEngine::golden(pattern, q, k, v, 0.35f)),
              1e-6);
    EXPECT_EQ(result.stats.cycles, 0);  // no hardware involved
}

TEST(Engine, CycleAccurateMatchesFunctionalBitExactly) {
    const auto pattern = vil_2d(6, 6, 3, 3, 1);
    Rng rng(3);
    const auto q = random_matrix(36, 8, rng, 0.0, 0.8);
    const auto k = random_matrix(36, 8, rng, 0.0, 0.8);
    const auto v = random_matrix(36, 8, rng, 0.0, 0.8);
    const SaloEngine fast(small_config(Fidelity::kFunctional));
    const SaloEngine slow(small_config(Fidelity::kCycleAccurate));
    const auto a = fast.run_head(pattern, q, k, v, 0.35f);
    const auto b = slow.run_head(pattern, q, k, v, 0.35f);
    EXPECT_DOUBLE_EQ(max_abs_diff(a.output, b.output), 0.0);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.stage_totals.total(), b.stats.stage_totals.total());
}

TEST(Engine, MultiHeadRunsAllHeads) {
    const auto workload = longformer_small(64, 8, 3, 8, 1);
    const auto qkv = make_qkv(workload, 42);
    const SaloEngine engine(small_config());
    const auto result = engine.run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                   workload.scale());
    EXPECT_EQ(result.output.count(), 3);
    // Heads have different data, so outputs differ.
    EXPECT_GT(max_abs_diff(result.output[0], result.output[1]), 0.0);
    // Stats accumulate across heads: cycles = 3x the single-head run.
    const auto head0 = engine.run_head(workload.pattern, qkv.q[0], qkv.k[0], qkv.v[0],
                                       workload.scale());
    EXPECT_EQ(result.stats.cycles, 3 * head0.stats.cycles);
}

TEST(Engine, PerHeadOutputMatchesHeadRun) {
    const auto workload = longformer_small(48, 8, 2, 8, 1);
    const auto qkv = make_qkv(workload, 7);
    const SaloEngine engine(small_config());
    const auto layer = engine.run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                  workload.scale());
    for (int h = 0; h < 2; ++h) {
        const auto head = engine.run_head(workload.pattern, qkv.q[h], qkv.k[h],
                                          qkv.v[h], workload.scale());
        EXPECT_DOUBLE_EQ(max_abs_diff(layer.output[h], head.output), 0.0) << "head " << h;
    }
}

TEST(Engine, DoubleBufferingHidesLoads) {
    const auto pattern = longformer(128, 16, 1);
    Rng rng(4);
    const auto q = random_matrix(128, 16, rng, 0.0, 0.8);
    const auto k = random_matrix(128, 16, rng, 0.0, 0.8);
    const auto v = random_matrix(128, 16, rng, 0.0, 0.8);
    SaloConfig with = small_config();
    SaloConfig without = small_config();
    without.double_buffer = false;
    const auto a = SaloEngine(with).run_head(pattern, q, k, v, 0.25f);
    const auto b = SaloEngine(without).run_head(pattern, q, k, v, 0.25f);
    EXPECT_LT(a.stats.cycles, b.stats.cycles);
    // Outputs are unaffected by the timing model.
    EXPECT_DOUBLE_EQ(max_abs_diff(a.output, b.output), 0.0);
}

TEST(Engine, NarrowBusStalls) {
    const auto pattern = longformer(64, 16, 1);
    Rng rng(5);
    const auto q = random_matrix(64, 16, rng, 0.0, 0.8);
    const auto k = random_matrix(64, 16, rng, 0.0, 0.8);
    const auto v = random_matrix(64, 16, rng, 0.0, 0.8);
    SaloConfig wide = small_config();
    wide.bus_bytes_per_cycle = 256;
    SaloConfig narrow = small_config();
    narrow.bus_bytes_per_cycle = 2;
    const auto a = SaloEngine(wide).run_head(pattern, q, k, v, 0.25f);
    const auto b = SaloEngine(narrow).run_head(pattern, q, k, v, 0.25f);
    EXPECT_LT(a.stats.cycles, b.stats.cycles);
}

TEST(Engine, MultiThreadedHeadsIdenticalToSequential) {
    const auto workload = longformer_small(64, 8, 5, 8, 1);
    const auto qkv = make_qkv(workload, 21);
    SaloConfig seq_cfg = small_config();
    SaloConfig par_cfg = small_config();
    par_cfg.num_threads = 4;
    const auto seq = SaloEngine(seq_cfg).run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                             workload.scale());
    const auto par = SaloEngine(par_cfg).run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                             workload.scale());
    for (int h = 0; h < workload.heads; ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(seq.output[h], par.output[h]), 0.0) << "head " << h;
    EXPECT_EQ(seq.stats.cycles, par.stats.cycles);
    EXPECT_EQ(seq.stats.activity.mac_ops, par.stats.activity.mac_ops);
}

TEST(Engine, LatencyMsUsesFrequency) {
    SimStats stats;
    stats.cycles = 2'000'000;
    EXPECT_DOUBLE_EQ(stats.latency_ms(1.0), 2.0);
    EXPECT_DOUBLE_EQ(stats.latency_ms(2.0), 1.0);
}

TEST(Engine, RejectsMismatchedShapes) {
    const auto pattern = longformer(32, 8, 1);
    const SaloEngine engine(small_config());
    Matrix<float> q(32, 8), k(16, 8), v(32, 8);
    EXPECT_THROW(engine.run_head(pattern, q, k, v, 1.0f), ContractViolation);
}

TEST(Engine, OccupancyReportedInSchedule) {
    const auto workload = longformer_small(128, 16, 1, 8, 1);
    const auto qkv = make_qkv(workload, 9);
    const SaloEngine engine(small_config());
    const auto result = engine.run(workload.pattern, qkv.q, qkv.k, qkv.v,
                                   workload.scale());
    EXPECT_GT(result.schedule.slot_occupancy(), 0.5);
    EXPECT_LE(result.schedule.slot_occupancy(), 1.0);
}

}  // namespace
}  // namespace salo
