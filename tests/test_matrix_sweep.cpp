// Combinatorial sweep: every pattern family x geometry x packing mode must
// satisfy the scheduler's exact-coverage invariant. This is the widest net
// in the suite — a regression anywhere in splitting, reordering, packing,
// dedup or global assignment fails here first.
#include <gtest/gtest.h>

#include <tuple>

#include "scheduler/scheduler.hpp"

namespace salo {
namespace {

enum class PatternKind {
    kSliding,
    kSlidingGlobals,
    kCausal,
    kDilated,
    kVil2d,
    kStar,
    kStrided,
    kFixed,
};

const char* kind_name(PatternKind k) {
    switch (k) {
        case PatternKind::kSliding: return "Sliding";
        case PatternKind::kSlidingGlobals: return "SlidingGlobals";
        case PatternKind::kCausal: return "Causal";
        case PatternKind::kDilated: return "Dilated";
        case PatternKind::kVil2d: return "Vil2d";
        case PatternKind::kStar: return "Star";
        case PatternKind::kStrided: return "Strided";
        case PatternKind::kFixed: return "Fixed";
    }
    return "?";
}

HybridPattern make_pattern(PatternKind kind) {
    switch (kind) {
        case PatternKind::kSliding: return sliding_window(72, 10);
        case PatternKind::kSlidingGlobals: return longformer(72, 10, 2);
        case PatternKind::kCausal: return sliding_window_range(72, -9, 0, {0});
        case PatternKind::kDilated: return dilated_window(72, -2, 2, 3, {5});
        case PatternKind::kVil2d: return vil_2d(8, 9, 3, 5, 1);
        case PatternKind::kStar: return star_transformer(72);
        case PatternKind::kStrided: return sparse_transformer_strided(72, 6);
        case PatternKind::kFixed: return sparse_transformer_fixed(72, 12);
    }
    SALO_ASSERT(false);
    return sliding_window(8, 2);
}

using SweepParam = std::tuple<PatternKind, int /*rows*/, int /*cols*/, PackingMode>;

class FullSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FullSweep, SchedulerCoversExactly) {
    const auto [kind, rows, cols, packing] = GetParam();
    const HybridPattern pattern = make_pattern(kind);
    ArrayGeometry geometry;
    geometry.rows = rows;
    geometry.cols = cols;
    ScheduleOptions options;
    options.packing = packing;
    const SchedulePlan plan = schedule(pattern, geometry, 8, options);
    std::string error;
    EXPECT_TRUE(verify_coverage(pattern, plan, &error)) << error;
    // Structural invariants on every tile.
    for (const TileTask& tile : plan.tiles) {
        EXPECT_EQ(tile.rows(), rows);
        EXPECT_EQ(tile.cols(), cols);
        EXPECT_LE(tile.cols_used(), cols);
        int prev_end = 0;
        for (const TileSegment& seg : tile.segments) {
            EXPECT_GE(seg.col_begin, prev_end);  // non-overlapping, ordered
            EXPECT_GT(seg.col_end, seg.col_begin);
            prev_end = seg.col_end;
        }
        EXPECT_EQ(static_cast<int>(tile.global_fresh.size()),
                  tile.global_row_query >= 0 ? tile.total_stream_length() :
                  static_cast<int>(tile.global_fresh.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, FullSweep,
    ::testing::Combine(::testing::Values(PatternKind::kSliding,
                                         PatternKind::kSlidingGlobals,
                                         PatternKind::kCausal, PatternKind::kDilated,
                                         PatternKind::kVil2d, PatternKind::kStar,
                                         PatternKind::kStrided, PatternKind::kFixed),
                       ::testing::Values(4, 8), ::testing::Values(4, 8, 12),
                       ::testing::Values(PackingMode::kPacked, PackingMode::kPerBand)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
        // Note: no structured bindings here — their brackets do not protect
        // commas from the INSTANTIATE_TEST_SUITE_P macro's argument split.
        return std::string(kind_name(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param)) + "x" +
               std::to_string(std::get<2>(info.param)) +
               (std::get<3>(info.param) == PackingMode::kPacked ? "_packed"
                                                                : "_perband");
    });

}  // namespace
}  // namespace salo
