// Cross-module integration tests: full paper workloads at reduced size
// through every fidelity level, plus pinned regression values that guard
// the cycle model against accidental changes (any intentional change to the
// timing model must update these numbers consciously).
#include <gtest/gtest.h>

#include "attention/streaming.hpp"
#include "model/salo_model.hpp"
#include "model/synthesis.hpp"
#include "numeric/error_stats.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

SaloConfig small_config(Fidelity fidelity = Fidelity::kFunctional) {
    SaloConfig c;
    c.geometry.rows = 8;
    c.geometry.cols = 8;
    c.fidelity = fidelity;
    return c;
}

TEST(Integration, MiniLongformerAllFidelities) {
    const AttentionWorkload w = longformer_small(96, 16, 2, 16, 2);
    const QkvSet qkv = make_qkv(w, 77);
    const SaloEngine golden(small_config(Fidelity::kGolden));
    const SaloEngine functional(small_config(Fidelity::kFunctional));
    const SaloEngine cycle(small_config(Fidelity::kCycleAccurate));

    const auto g = golden.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    const auto f = functional.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    const auto c = cycle.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());

    for (int h = 0; h < w.heads; ++h) {
        // Functional == cycle-accurate bit-exactly.
        EXPECT_DOUBLE_EQ(max_abs_diff(f.output[h], c.output[h]), 0.0) << "head " << h;
        // Both close to golden (quantization-bounded).
        const ErrorStats err = compare(g.output[h], f.output[h]);
        EXPECT_LT(err.max_abs, 0.25) << "head " << h;
        EXPECT_GT(err.cosine, 0.99) << "head " << h;
        EXPECT_GT(err.snr_db, 15.0) << "head " << h;
    }
    EXPECT_EQ(f.stats.cycles, c.stats.cycles);
}

TEST(Integration, MiniVilAllFidelities) {
    AttentionWorkload w{
        .name = "mini-vil",
        .pattern = vil_2d(10, 10, 5, 5, 1),
        .heads = 2,
        .head_dim = 16,
        .window = 25,
        .paper_sparsity = 0.25,
    };
    const QkvSet qkv = make_qkv(w, 88);
    const SaloEngine functional(small_config(Fidelity::kFunctional));
    const SaloEngine cycle(small_config(Fidelity::kCycleAccurate));
    const auto f = functional.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    const auto c = cycle.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    for (int h = 0; h < w.heads; ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(f.output[h], c.output[h]), 0.0);
    for (int h = 0; h < w.heads; ++h) {
        const auto g = SaloEngine::golden(w.pattern, qkv.q[h], qkv.k[h], qkv.v[h],
                                          w.scale());
        EXPECT_LT(max_abs_diff(f.output[h], g), 0.25);
    }
}

TEST(Integration, RegressionPinnedCycleCounts) {
    // Pinned values for the paper-sized workloads on the 32x32 array.
    // These guard the timing model: if you change the cycle formulas, the
    // reciprocal latency, the bus model or the scheduler's tiling, these
    // numbers move and this test forces a conscious update (and a matching
    // EXPERIMENTS.md refresh).
    const SaloConfig config;
    EXPECT_EQ(estimate_layer(longformer_base_4096(), config).stats.cycles, 6384288);
    EXPECT_EQ(estimate_layer(vil_stage1(), config).stats.cycles, 567414);
    EXPECT_EQ(estimate_layer(vil_stage2(), config).stats.cycles, 273588);
}

TEST(Integration, RegressionPinnedOccupancy) {
    const SaloConfig config;
    EXPECT_NEAR(estimate_layer(longformer_base_4096(), config).schedule.slot_occupancy(),
                0.9957, 1e-3);
    EXPECT_NEAR(estimate_layer(vil_stage1(), config).schedule.slot_occupancy(), 0.8129,
                1e-3);
    EXPECT_NEAR(estimate_layer(vil_stage2(), config).schedule.slot_occupancy(), 0.7300,
                1e-3);
}

TEST(Integration, RegressionPinnedSynthesis) {
    const auto report = synthesize(ArrayGeometry{});
    EXPECT_NEAR(report.total_power_mw(), 532.67, 0.05);
    EXPECT_NEAR(report.total_area_mm2(), 4.56, 0.005);
}

TEST(Integration, SchedulePlanIsDeterministic) {
    const auto w = longformer_small(128, 16, 1, 16, 2);
    const SaloConfig config = small_config();
    const SaloEngine engine(config);
    const auto p1 = engine.plan(w.pattern, w.head_dim);
    const auto p2 = engine.plan(w.pattern, w.head_dim);
    ASSERT_EQ(p1.tiles.size(), p2.tiles.size());
    for (std::size_t t = 0; t < p1.tiles.size(); ++t) {
        EXPECT_EQ(p1.tiles[t].query_ids, p2.tiles[t].query_ids);
        EXPECT_EQ(p1.tiles[t].valid, p2.tiles[t].valid);
        EXPECT_EQ(p1.tiles[t].global_fresh, p2.tiles[t].global_fresh);
    }
}

TEST(Integration, EngineAgreesWithStreamingOracle) {
    // Two fully independent implementations of the same mathematics: the
    // fixed-point engine (hardware split + WSM merges) and the float
    // online-softmax oracle. Agreement within quantization tolerance ties
    // the whole renormalization story together.
    const auto w = longformer_small(80, 12, 1, 16, 1);
    const QkvSet qkv = make_qkv(w, 55);
    const SaloEngine engine(small_config());
    const auto run = engine.run_head(w.pattern, qkv.q[0], qkv.k[0], qkv.v[0], w.scale());
    const auto oracle = streaming_masked_attention(qkv.q[0], qkv.k[0], qkv.v[0],
                                                   w.scale(), w.pattern.attend_fn(), 7);
    EXPECT_LT(max_abs_diff(run.output, oracle), 0.25);
}

TEST(Integration, EndToEndDeterminism) {
    const auto w = longformer_small(64, 8, 2, 16, 1);
    const QkvSet qkv = make_qkv(w, 5);
    const SaloEngine engine(small_config());
    const auto a = engine.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    const auto b = engine.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
    for (int h = 0; h < w.heads; ++h)
        EXPECT_DOUBLE_EQ(max_abs_diff(a.output[h], b.output[h]), 0.0);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

}  // namespace
}  // namespace salo
