#include "numeric/error_stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace salo {
namespace {

TEST(ErrorStats, IdenticalTensors) {
    Rng rng(1);
    const auto a = random_matrix(4, 5, rng);
    const auto s = compare(a, a);
    EXPECT_DOUBLE_EQ(s.max_abs, 0.0);
    EXPECT_DOUBLE_EQ(s.mse, 0.0);
    EXPECT_NEAR(s.cosine, 1.0, 1e-12);
    EXPECT_TRUE(std::isinf(s.snr_db));
}

TEST(ErrorStats, KnownDifference) {
    Matrix<float> a(1, 2), b(1, 2);
    a(0, 0) = 3.0f;
    a(0, 1) = 4.0f;
    b(0, 0) = 3.0f;
    b(0, 1) = 3.0f;  // error 1 in one of two entries
    const auto s = compare(a, b);
    EXPECT_DOUBLE_EQ(s.max_abs, 1.0);
    EXPECT_DOUBLE_EQ(s.mse, 0.5);
    EXPECT_NEAR(s.rmse(), std::sqrt(0.5), 1e-12);
    // SNR = 10 log10(|a|^2 / |a-b|^2) = 10 log10(25 / 1).
    EXPECT_NEAR(s.snr_db, 10.0 * std::log10(25.0), 1e-9);
}

TEST(ErrorStats, OppositeVectorsHaveCosineMinusOne) {
    Matrix<float> a(1, 3, 1.0f);
    Matrix<float> b(1, 3, -1.0f);
    EXPECT_NEAR(compare(a, b).cosine, -1.0, 1e-12);
}

TEST(ErrorStats, SmallPerturbationHighSnr) {
    Rng rng(2);
    const auto a = random_matrix(16, 16, rng);
    auto b = a;
    for (auto& v : b.data()) v += static_cast<float>(rng.normal(0.0, 1e-3));
    const auto s = compare(a, b);
    EXPECT_GT(s.snr_db, 40.0);
    EXPECT_GT(s.cosine, 0.999);
}

TEST(ErrorStats, RejectsShapeMismatch) {
    Matrix<float> a(2, 2), b(2, 3);
    EXPECT_THROW(compare(a, b), ContractViolation);
}

}  // namespace
}  // namespace salo
