// Streaming decode: micro-plan derivation and fingerprinting, the engine's
// incremental run_step path (bit-identity against full-prefix encode at
// every step), and the DecodeSession serving layer (stream lifecycle,
// batching, eviction semantics, conservation).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <vector>

#include "attention/streaming.hpp"
#include "core/compiled_plan.hpp"
#include "core/decode_session.hpp"
#include "core/engine.hpp"
#include "core/errors.hpp"
#include "core/plan_cache.hpp"
#include "tensor/tensor3.hpp"

namespace salo {
namespace {

// The prefix pattern at length L: same bands, globals clipped to [0, L).
HybridPattern prefix_pattern(int length, const std::vector<Band>& bands,
                             const std::vector<int>& globals) {
    std::vector<int> g;
    for (int x : globals)
        if (x < length) g.push_back(x);
    return HybridPattern(length, bands, std::move(g));
}

// Drive `steps` decode steps of one stream through run_step and compare
// every step's output, bitwise, against row t of the full-prefix encode of
// length t+1 (the only correct reference: later globals would change row
// t's attended set).
void expect_stepwise_bit_identity(const SaloConfig& config, const std::vector<Band>& bands,
                                  const std::vector<int>& globals, int heads, int d,
                                  int steps, Fidelity fidelity, unsigned seed) {
    SaloEngine engine(config);
    const float scale = 0.25f;
    Rng rng(seed);
    const Tensor3<float> q_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> k_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> v_all = random_tensor3(heads, steps, d, rng);

    DecodeState state(heads, d, decode_window_span(bands), globals);
    RunOptions options;
    options.fidelity = fidelity;
    options.thread_budget = 1;

    for (int t = 0; t < steps; ++t) {
        Matrix<float> q_row(heads, d, 0.0f);
        Matrix<float> k_row(heads, d, 0.0f);
        Matrix<float> v_row(heads, d, 0.0f);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x) {
                q_row(h, x) = q_all[h](t, x);
                k_row(h, x) = k_all[h](t, x);
                v_row(h, x) = v_all[h](t, x);
            }
        state.append(k_row, v_row);

        const HybridPattern prefix = prefix_pattern(t + 1, bands, globals);
        const CompiledPlanPtr micro = engine.compile_step(prefix, d);
        ASSERT_TRUE(micro->is_step());
        EXPECT_EQ(micro->step().position, t);
        auto [kc, vc] = state.assemble();
        const StepResult step = engine.run_step(*micro, q_row, kc, vc, scale, options);

        // Full-prefix reference: whole-sequence encode of the same t+1 rows.
        Tensor3<float> q_pre(heads, t + 1, d), k_pre(heads, t + 1, d),
            v_pre(heads, t + 1, d);
        for (int h = 0; h < heads; ++h)
            for (int r = 0; r <= t; ++r)
                for (int x = 0; x < d; ++x) {
                    q_pre[h](r, x) = q_all[h](r, x);
                    k_pre[h](r, x) = k_all[h](r, x);
                    v_pre[h](r, x) = v_all[h](r, x);
                }
        const CompiledPlanPtr full = engine.compile(prefix, d);
        const LayerResult ref = engine.run(*full, q_pre, k_pre, v_pre, scale, options);

        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x)
                ASSERT_EQ(step.output[h](0, x), ref.output[h](t, x))
                    << "fidelity=" << static_cast<int>(fidelity) << " step=" << t
                    << " head=" << h << " dim=" << x;
    }
}

// -------------------------------------------------------------------------
// Pattern-level decode helpers
// -------------------------------------------------------------------------

TEST(DecodeHelpers, CausalityAndSpan) {
    EXPECT_TRUE(is_causal({Band{-7, 8, 1, 0}}));
    EXPECT_FALSE(is_causal({Band{-2, 4, 1, 0}}));  // hi = +1 looks ahead
    EXPECT_TRUE(is_causal({}));
    EXPECT_EQ(decode_window_span({}), 1);
    EXPECT_EQ(decode_window_span({Band{-7, 8, 1, 0}}), 8);
    EXPECT_EQ(decode_window_span({Band{-6, 4, 2, 0}}), 7);  // dilated reach
}

TEST(DecodeHelpers, DecodeCompatibility) {
    EXPECT_TRUE(decode_compatible(HybridPattern(32, {Band{-7, 8, 1, 0}}, {0, 1})));
    // Non-causal band.
    EXPECT_FALSE(decode_compatible(sliding_window(32, 8)));
    // Global beyond the ring span would reference evicted rows.
    EXPECT_FALSE(decode_compatible(HybridPattern(32, {Band{-7, 8, 1, 0}}, {16})));
    // 2D grids have no streaming order.
    EXPECT_FALSE(decode_compatible(vil_2d(4, 8, 3, 3, 0)));
}

// -------------------------------------------------------------------------
// DecodeState: ring eviction, pinned globals, dilated windows
// -------------------------------------------------------------------------

TEST(DecodeState, WindowBoundaryEviction) {
    const int span = 4;
    DecodeState state(1, 2, span, {});
    for (int p = 0; p < 7; ++p) {
        Matrix<float> kr(1, 2, 0.0f), vr(1, 2, 0.0f);
        kr(0, 0) = static_cast<float>(p);
        vr(0, 0) = static_cast<float>(100 + p);
        state.append(kr, vr);
        EXPECT_EQ(state.length(), p + 1);
        EXPECT_EQ(state.window_lo(), std::max(0, p + 1 - span));
        EXPECT_EQ(state.compact_rows(), std::min(p + 1, span));
    }
    // Positions 0..2 are evicted; 3..6 live at compact rows 0..3.
    auto [k, v] = state.assemble();
    ASSERT_EQ(k.rows(), span);
    for (int j = 3; j < 7; ++j) {
        EXPECT_EQ(k[0](state.compact_index(j), 0), static_cast<float>(j));
        EXPECT_EQ(v[0](state.compact_index(j), 0), static_cast<float>(100 + j));
    }
}

TEST(DecodeState, GlobalsSurviveEvictionViaPinning) {
    const int span = 3;
    DecodeState state(2, 2, span, {0, 1});
    for (int p = 0; p < 8; ++p) {
        Matrix<float> kr(2, 2, 0.0f), vr(2, 2, 0.0f);
        for (int h = 0; h < 2; ++h) kr(h, 0) = static_cast<float>(10 * h + p);
        state.append(kr, vr);
    }
    EXPECT_EQ(state.num_pinned(), 2);
    EXPECT_EQ(state.window_lo(), 5);
    EXPECT_EQ(state.compact_rows(), 2 + 3);
    auto [k, v] = state.assemble();
    (void)v;
    // Globals 0 and 1 left the ring long ago but stay addressable.
    EXPECT_EQ(state.compact_index(0), 0);
    EXPECT_EQ(state.compact_index(1), 1);
    for (int h = 0; h < 2; ++h) {
        EXPECT_EQ(k[h](0, 0), static_cast<float>(10 * h + 0));
        EXPECT_EQ(k[h](1, 0), static_cast<float>(10 * h + 1));
    }
    // Step 1 view (length 2): both sections still overlap — num_pinned
    // counts only appended globals.
    DecodeState young(1, 2, span, {0, 1});
    Matrix<float> kr(1, 2, 0.0f), vr(1, 2, 0.0f);
    young.append(kr, vr);
    EXPECT_EQ(young.num_pinned(), 1);
    EXPECT_EQ(young.compact_rows(), 1 + 1);
}

TEST(DecodeState, EvictedNonGlobalRejected) {
    DecodeState state(1, 2, 2, {});
    Matrix<float> kr(1, 2, 0.0f), vr(1, 2, 0.0f);
    for (int p = 0; p < 5; ++p) state.append(kr, vr);
    EXPECT_THROW((void)state.compact_index(0), ContractViolation);
    EXPECT_NO_THROW((void)state.compact_index(3));
}

// -------------------------------------------------------------------------
// Micro-plan fingerprints: never alias full plans
// -------------------------------------------------------------------------

TEST(MicroPlanFingerprint, DistinctFromFullPlanAndPerPosition) {
    const std::uint64_t full = 0x1234'5678'9abc'def0ull;
    EXPECT_NE(step_plan_fingerprint(full, 7), full);
    EXPECT_NE(step_plan_fingerprint(full, 7), step_plan_fingerprint(full, 8));
    EXPECT_NE(step_plan_fingerprint(full, 7), step_plan_fingerprint(full ^ 1, 7));
}

TEST(MicroPlanFingerprint, FullAndMicroCoexistInOneCache) {
    const SaloConfig config;
    const HybridPattern pattern(24, {Band{-7, 8, 1, 0}}, {0});
    PlanCache cache(16);
    const CompiledPlanPtr full = cache.get_or_compile(pattern, 16, config);
    const CompiledPlanPtr micro = cache.get_or_derive_step(pattern, 16, config);
    EXPECT_FALSE(full->is_step());
    ASSERT_TRUE(micro->is_step());
    EXPECT_NE(full->fingerprint(), micro->fingerprint());
    EXPECT_EQ(micro->fingerprint(), step_plan_fingerprint(full->fingerprint(), 23));

    // Both entries live under their own keys; repeat lookups are hits and
    // return the same shared artifacts.
    EXPECT_EQ(cache.get_or_compile(pattern, 16, config).get(), full.get());
    EXPECT_EQ(cache.get_or_derive_step(pattern, 16, config).get(), micro.get());
    const PlanCacheStats s = cache.stats();
    EXPECT_EQ(s.size, 2u);
    EXPECT_EQ(s.compiles, 1u);
    EXPECT_EQ(s.step_derives, 1u);
    EXPECT_EQ(s.hits, 3u);  // repeat full + repeat step + derive's full hit... no:
    // get_or_derive_step's miss resolves the full plan via get_or_compile,
    // which hits the already-cached full entry — 1 hit there, plus the two
    // repeat lookups above.
}

TEST(MicroPlanFingerprint, StepDerivationSharedStoreTierWide) {
    const SaloConfig config;
    const HybridPattern pattern(16, {Band{-3, 4, 1, 0}}, {});
    auto store = std::make_shared<PlanCache>(16);
    PlanCache a(8), b(8);
    a.attach_shared_store(store);
    b.attach_shared_store(store);
    const CompiledPlanPtr ma = a.get_or_derive_step(pattern, 8, config);
    const CompiledPlanPtr mb = b.get_or_derive_step(pattern, 8, config);
    EXPECT_EQ(ma.get(), mb.get());  // one tier-wide derivation
    EXPECT_EQ(store->stats().step_derives, 1u);
    EXPECT_EQ(a.stats().step_derives, 0u);
    EXPECT_EQ(b.stats().step_derives, 0u);
}

TEST(MicroPlan, GeometryAndTileShape) {
    const SaloConfig config;
    const std::vector<Band> bands{Band{-7, 8, 1, 0}};
    const std::vector<int> globals{0, 1};
    SaloEngine engine(config);
    // Deep steady state: window full, globals evicted from the ring.
    const HybridPattern prefix = prefix_pattern(40, bands, globals);
    const CompiledPlanPtr micro = engine.compile_step(prefix, 16);
    const StepGeometry& sg = micro->step();
    EXPECT_EQ(sg.position, 39);
    EXPECT_EQ(sg.window_span, 8);
    EXPECT_EQ(sg.window_lo, 32);
    EXPECT_EQ(sg.num_globals, 2);
    EXPECT_EQ(sg.compact_rows, 2 + 8);
    EXPECT_EQ(micro->n(), sg.compact_rows);
    // Micro tiles serve exactly one query (id 0) plus global work.
    for (const TileTask& tile : micro->plan().tiles) {
        for (std::int32_t qid : tile.query_ids) EXPECT_TRUE(qid == -1 || qid == 0);
        EXPECT_TRUE(tile.has_window_work() || tile.has_global_work());
    }
    // The micro schedule is much smaller than the full one.
    const CompiledPlanPtr full = engine.compile(prefix, 16);
    EXPECT_LT(micro->plan().tiles.size(), full->plan().tiles.size());
}

// -------------------------------------------------------------------------
// run_step bit-identity against full-prefix encode
// -------------------------------------------------------------------------

TEST(RunStep, SlidingWindowBitIdentity) {
    const SaloConfig config;
    for (const Fidelity f : {Fidelity::kFunctional, Fidelity::kGolden})
        expect_stepwise_bit_identity(config, {Band{-7, 8, 1, 0}}, {}, 2, 16, 24, f, 11u);
}

TEST(RunStep, GlobalsBitIdentityIncludingStepOnGlobal) {
    // Globals at 0, 1 and 3: steps 0..3 include steps ON global positions
    // (the global PE row path), later steps exercise the global PE column
    // against pinned rows after ring eviction.
    const SaloConfig config;
    for (const Fidelity f : {Fidelity::kFunctional, Fidelity::kGolden})
        expect_stepwise_bit_identity(config, {Band{-5, 6, 1, 0}}, {0, 1, 3}, 2, 16, 20,
                                     f, 23u);
}

TEST(RunStep, DilatedWindowBitIdentity) {
    const SaloConfig config;
    for (const Fidelity f : {Fidelity::kFunctional, Fidelity::kGolden})
        expect_stepwise_bit_identity(config, {Band{-6, 4, 2, 0}}, {0}, 2, 16, 20, f, 37u);
}

TEST(RunStep, MultiBandBitIdentity) {
    // Two bands (a tight recent window plus a sparser dilated reach), the
    // shape SALO's column packing exists for.
    const SaloConfig config;
    expect_stepwise_bit_identity(config, {Band{-3, 4, 1, 0}, Band{-9, 3, 3, 0}}, {0}, 2,
                                 16, 24, Fidelity::kFunctional, 41u);
}

TEST(RunStep, ReferenceDatapathBitIdentity) {
    SaloConfig config;
    config.reference_datapath = true;
    expect_stepwise_bit_identity(config, {Band{-7, 8, 1, 0}}, {0, 1}, 2, 16, 16,
                                 Fidelity::kFunctional, 53u);
}

TEST(RunStep, CycleAccurateBitIdentity) {
    // Small case: the cycle-accurate array is slow but must agree too.
    const SaloConfig config;
    expect_stepwise_bit_identity(config, {Band{-3, 4, 1, 0}}, {0}, 1, 8, 8,
                                 Fidelity::kCycleAccurate, 61u);
}

TEST(RunStep, ParallelHeadsMatchSequential) {
    const SaloConfig config;
    SaloEngine engine(config);
    const std::vector<Band> bands{Band{-7, 8, 1, 0}};
    const std::vector<int> globals{0};
    const int heads = 4, d = 16, steps = 12;
    Rng rng(71u);
    const Tensor3<float> k_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> v_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> q_all = random_tensor3(heads, steps, d, rng);
    DecodeState state(heads, d, decode_window_span(bands), globals);
    for (int t = 0; t < steps; ++t) {
        Matrix<float> q_row(heads, d, 0.0f), k_row(heads, d, 0.0f), v_row(heads, d, 0.0f);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x) {
                q_row(h, x) = q_all[h](t, x);
                k_row(h, x) = k_all[h](t, x);
                v_row(h, x) = v_all[h](t, x);
            }
        state.append(k_row, v_row);
        const CompiledPlanPtr micro =
            engine.compile_step(prefix_pattern(t + 1, bands, globals), d);
        auto [kc, vc] = state.assemble();
        RunOptions seq, par;
        seq.thread_budget = 1;
        par.thread_budget = 0;  // engine's configured pool
        const StepResult a = engine.run_step(*micro, q_row, kc, vc, 0.25f, seq);
        const StepResult b = engine.run_step(*micro, q_row, kc, vc, 0.25f, par);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x) ASSERT_EQ(a.output[h](0, x), b.output[h](0, x));
    }
}

// -------------------------------------------------------------------------
// DecodeSession: stream lifecycle, batching, eviction, conservation
// -------------------------------------------------------------------------

Matrix<float> head_row(const Tensor3<float>& all, int t, int heads, int d) {
    Matrix<float> row(heads, d, 0.0f);
    for (int h = 0; h < heads; ++h)
        for (int x = 0; x < d; ++x) row(h, x) = all[h](t, x);
    return row;
}

TEST(DecodeSession, StepwiseBitIdentityVsFullEncode) {
    const SaloConfig config;
    const std::vector<Band> bands = {Band{-7, 8, 1, 0}};
    const std::vector<int> globals = {0, 1};
    const int heads = 2, d = 16, steps = 12;
    const HybridPattern pattern(steps, bands, globals);

    DecodeSession session(config);
    SaloEngine ref(config);
    Rng rng(77u);
    const Tensor3<float> q_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> k_all = random_tensor3(heads, steps, d, rng);
    const Tensor3<float> v_all = random_tensor3(heads, steps, d, rng);

    const StreamId s = session.open_stream(pattern, heads, d, 0.25f);
    for (int t = 0; t < steps; ++t) {
        StepRequest req;
        req.q_row = head_row(q_all, t, heads, d);
        req.k_row = head_row(k_all, t, heads, d);
        req.v_row = head_row(v_all, t, heads, d);
        const StepResult step = session.step(s, std::move(req)).get();
        EXPECT_EQ(step.position, t);

        Tensor3<float> q_pre(heads, t + 1, d), k_pre(heads, t + 1, d),
            v_pre(heads, t + 1, d);
        for (int h = 0; h < heads; ++h)
            for (int r = 0; r <= t; ++r)
                for (int x = 0; x < d; ++x) {
                    q_pre[h](r, x) = q_all[h](r, x);
                    k_pre[h](r, x) = k_all[h](r, x);
                    v_pre[h](r, x) = v_all[h](r, x);
                }
        const HybridPattern prefix = prefix_pattern(t + 1, bands, globals);
        const LayerResult full =
            ref.run(*ref.compile(prefix, d), q_pre, k_pre, v_pre, 0.25f);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x)
                ASSERT_EQ(step.output[h](0, x), full.output[h](t, x))
                    << "t=" << t << " h=" << h << " x=" << x;
    }
    session.close_stream(s);
    session.close();

    const SessionStats st = session.stats();
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(steps));
    EXPECT_EQ(st.steps, st.submitted);
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_EQ(st.accounted(), st.submitted);
    EXPECT_EQ(st.evicted_streams, 0u);
}

TEST(DecodeSession, ConcurrentStreamsBitIdenticalAndConserved) {
    const SaloConfig config;
    const std::vector<Band> bands = {Band{-5, 6, 1, 0}};
    const std::vector<int> globals = {0};
    const int heads = 2, d = 8, steps = 10, num_streams = 8;
    const HybridPattern pattern(steps, bands, globals);

    DecodeSessionOptions options;
    options.num_shards = 2;
    DecodeSession session(config, options);
    SaloEngine ref(config);

    std::vector<Tensor3<float>> q_all, k_all, v_all;
    std::vector<StreamId> ids;
    for (int i = 0; i < num_streams; ++i) {
        Rng rng(1000u + static_cast<unsigned>(i));
        q_all.push_back(random_tensor3(heads, steps, d, rng));
        k_all.push_back(random_tensor3(heads, steps, d, rng));
        v_all.push_back(random_tensor3(heads, steps, d, rng));
        ids.push_back(session.open_stream(pattern, heads, d, 0.5f,
                                          i % 2 == 0 ? "alice" : "bob"));
    }

    // All streams step in lockstep so the dispatcher actually batches.
    std::vector<std::vector<Tensor3<float>>> outputs(
        static_cast<std::size_t>(num_streams));
    for (int t = 0; t < steps; ++t) {
        std::vector<std::future<StepResult>> futures;
        for (int i = 0; i < num_streams; ++i) {
            StepRequest req;
            req.q_row = head_row(q_all[static_cast<std::size_t>(i)], t, heads, d);
            req.k_row = head_row(k_all[static_cast<std::size_t>(i)], t, heads, d);
            req.v_row = head_row(v_all[static_cast<std::size_t>(i)], t, heads, d);
            futures.push_back(session.step(ids[static_cast<std::size_t>(i)],
                                           std::move(req)));
        }
        for (int i = 0; i < num_streams; ++i)
            outputs[static_cast<std::size_t>(i)].push_back(
                futures[static_cast<std::size_t>(i)].get().output);
    }
    session.close();

    // Bitwise identical to the full-prefix encode of each stream's inputs.
    // The reference for step t is the length-(t+1) prefix encode: a global
    // row attends every later key, so rows of a longer encode are not a
    // valid reference for the step that produced them.
    for (int i = 0; i < num_streams; ++i) {
        const auto& q = q_all[static_cast<std::size_t>(i)];
        const auto& k = k_all[static_cast<std::size_t>(i)];
        const auto& v = v_all[static_cast<std::size_t>(i)];
        for (int t = 0; t < steps; ++t) {
            Tensor3<float> q_pre(heads, t + 1, d), k_pre(heads, t + 1, d),
                v_pre(heads, t + 1, d);
            for (int h = 0; h < heads; ++h)
                for (int r = 0; r <= t; ++r)
                    for (int x = 0; x < d; ++x) {
                        q_pre[h](r, x) = q[h](r, x);
                        k_pre[h](r, x) = k[h](r, x);
                        v_pre[h](r, x) = v[h](r, x);
                    }
            const HybridPattern prefix = prefix_pattern(t + 1, bands, globals);
            const LayerResult full =
                ref.run(*ref.compile(prefix, d), q_pre, k_pre, v_pre, 0.5f);
            for (int h = 0; h < heads; ++h)
                for (int x = 0; x < d; ++x)
                    ASSERT_EQ(outputs[static_cast<std::size_t>(i)]
                                     [static_cast<std::size_t>(t)][h](0, x),
                              full.output[h](t, x))
                        << "stream=" << i << " t=" << t;
        }
    }

    const SessionStats st = session.stats();
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(num_streams * steps));
    EXPECT_EQ(st.steps, st.submitted);
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_EQ(st.accounted(), st.submitted);

    const auto tenants = session.tenant_stats();
    ASSERT_EQ(tenants.size(), 2u);
    std::uint64_t total = 0;
    for (const auto& [name, ts] : tenants) {
        EXPECT_EQ(ts.accounted(), ts.submitted) << name;
        EXPECT_EQ(ts.steps, ts.submitted) << name;
        total += ts.submitted;
    }
    EXPECT_EQ(total, st.submitted);
}

TEST(DecodeSession, InjectedFaultEvictsStreamAndLaterStepsFailTyped) {
    const SaloConfig config;
    const HybridPattern pattern(8, {Band{-3, 4, 1, 0}}, {});
    const int heads = 1, d = 8;

    DecodeSession session(config);
    Rng rng(5u);
    const Tensor3<float> rows = random_tensor3(heads, 8, d, rng);

    const StreamId s = session.open_stream(pattern, heads, d, 0.5f, "t0");
    auto make_req = [&](int t) {
        StepRequest req;
        req.q_row = head_row(rows, t, heads, d);
        req.k_row = head_row(rows, t, heads, d);
        req.v_row = head_row(rows, t, heads, d);
        return req;
    };

    // Step 0 completes clean.
    EXPECT_NO_THROW(session.step(s, make_req(0)).get());

    // Step 1 carries a per-step injector that faults the first tile.
    FaultInjector::Config fc;
    fc.fault_tiles = {0};
    StepRequest faulted = make_req(1);
    faulted.fault_injector = std::make_shared<FaultInjector>(fc);
    EXPECT_THROW(session.step(s, std::move(faulted)).get(), EngineFault);

    // The stream is now evicted: later steps fail fast with StreamEvicted
    // and never execute.
    EXPECT_THROW(session.step(s, make_req(2)).get(), StreamEvicted);
    EXPECT_THROW(session.step(s, make_req(3)).get(), StreamEvicted);
    session.close_stream(s);
    session.close();

    const SessionStats st = session.stats();
    EXPECT_EQ(st.submitted, 4u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 3u);  // EngineFault + 2x StreamEvicted
    EXPECT_EQ(st.steps, st.submitted);
    EXPECT_EQ(st.accounted(), st.submitted);
    EXPECT_EQ(st.evicted_streams, 1u);
}

TEST(DecodeSession, QuarantinedShardEvictsItsStreams) {
    const SaloConfig config;
    const HybridPattern pattern(4, {Band{-3, 4, 1, 0}}, {});
    const int heads = 1, d = 8;

    // One shard, always faulting: every executed step records a breaker
    // failure, so the shard quarantines after min_samples outcomes.
    DecodeSessionOptions options;
    options.num_shards = 1;
    FaultInjector::Config fc;
    fc.tile_fault_rate = 1.0;
    options.shard_fault_injectors = {std::make_shared<FaultInjector>(fc)};
    options.health.window = 4;
    options.health.min_samples = 2;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = std::chrono::milliseconds(60000);
    DecodeSession session(config, options);

    Rng rng(9u);
    const Tensor3<float> rows = random_tensor3(heads, 4, d, rng);
    auto make_req = [&](int t) {
        StepRequest req;
        req.q_row = head_row(rows, t, heads, d);
        req.k_row = head_row(rows, t, heads, d);
        req.v_row = head_row(rows, t, heads, d);
        return req;
    };

    // Two streams fault (two breaker failures -> quarantine)...
    const StreamId a = session.open_stream(pattern, heads, d, 0.5f);
    const StreamId b = session.open_stream(pattern, heads, d, 0.5f);
    EXPECT_THROW(session.step(a, make_req(0)).get(), EngineFault);
    EXPECT_THROW(session.step(b, make_req(0)).get(), EngineFault);

    // ...so the third stream's step is refused by the pinned shard: the
    // stream fails with the typed StreamEvicted, never silently migrating.
    const StreamId c = session.open_stream(pattern, heads, d, 0.5f);
    EXPECT_THROW(session.step(c, make_req(0)).get(), StreamEvicted);
    session.close();

    const SessionStats st = session.stats();
    EXPECT_GE(st.quarantined_shard_events, 1u);
    EXPECT_EQ(st.evicted_streams, 3u);
    EXPECT_EQ(st.failed, 3u);
    EXPECT_EQ(st.accounted(), st.submitted);
}

TEST(DecodeSession, ExpiredDeadlineShedsStepAndEvictsStream) {
    const SaloConfig config;
    const HybridPattern pattern(4, {Band{-3, 4, 1, 0}}, {});
    DecodeSession session(config);
    Rng rng(13u);
    const Tensor3<float> rows = random_tensor3(1, 4, 8, rng);

    const StreamId s = session.open_stream(pattern, 1, 8, 0.5f);
    StepRequest req;
    req.q_row = head_row(rows, 0, 1, 8);
    req.k_row = head_row(rows, 0, 1, 8);
    req.v_row = head_row(rows, 0, 1, 8);
    req.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
    EXPECT_THROW(session.step(s, std::move(req)).get(), DeadlineExceeded);

    StepRequest next;
    next.q_row = head_row(rows, 1, 1, 8);
    next.k_row = head_row(rows, 1, 1, 8);
    next.v_row = head_row(rows, 1, 1, 8);
    EXPECT_THROW(session.step(s, std::move(next)).get(), StreamEvicted);
    session.close();

    const SessionStats st = session.stats();
    EXPECT_EQ(st.timed_out, 1u);
    EXPECT_EQ(st.shed_expired, 1u);
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.evicted_streams, 1u);
    EXPECT_EQ(st.accounted(), st.submitted);
}

TEST(DecodeSession, LifecycleContracts) {
    const SaloConfig config;
    const HybridPattern pattern(2, {Band{-1, 2, 1, 0}}, {});
    DecodeSession session(config);
    Rng rng(17u);
    const Tensor3<float> rows = random_tensor3(1, 3, 8, rng);
    auto make_req = [&](int t) {
        StepRequest req;
        req.q_row = head_row(rows, t, 1, 8);
        req.k_row = head_row(rows, t, 1, 8);
        req.v_row = head_row(rows, t, 1, 8);
        return req;
    };

    // Non-causal and over-span-global patterns are rejected at open.
    EXPECT_THROW(session.open_stream(HybridPattern(8, {Band{-1, 3, 1, 0}}, {}), 1, 8,
                                     0.5f),
                 ContractViolation);
    EXPECT_THROW(session.open_stream(HybridPattern(8, {Band{-1, 2, 1, 0}}, {5}), 1, 8,
                                     0.5f),
                 ContractViolation);

    const StreamId s = session.open_stream(pattern, 1, 8, 0.5f);
    EXPECT_NO_THROW(session.step(s, make_req(0)).get());
    EXPECT_NO_THROW(session.step(s, make_req(1)).get());
    // The pattern's horizon is n = 2: a third step is a caller bug.
    EXPECT_THROW(session.step(s, make_req(2)), ContractViolation);
    // Shape mismatches are synchronous caller bugs too.
    {
        StepRequest bad = make_req(0);
        bad.q_row = Matrix<float>(1, 4, 0.0f);
        EXPECT_THROW(session.step(s, std::move(bad)), ContractViolation);
    }
    // Unknown stream ids are rejected.
    EXPECT_THROW(session.step(s + 1000, make_req(0)), ContractViolation);

    session.close_stream(s);
    EXPECT_THROW(session.stream_shard(s), ContractViolation);  // id is gone

    session.close();
    EXPECT_THROW(session.open_stream(pattern, 1, 8, 0.5f), SessionClosed);
    EXPECT_THROW(session.step(s, make_req(0)), SessionClosed);
}

TEST(DecodeSession, SharedPlanStoreDerivesEachPositionOnceTierWide) {
    const SaloConfig config;
    const std::vector<Band> bands = {Band{-5, 6, 1, 0}};
    const HybridPattern pattern(6, bands, {0});
    const int heads = 1, d = 8, steps = 6;

    DecodeSessionOptions options;
    options.num_shards = 2;
    options.shared_plan_store = true;
    DecodeSession session(config, options);

    Rng rng(21u);
    const Tensor3<float> rows = random_tensor3(heads, steps, d, rng);
    std::vector<StreamId> ids = {session.open_stream(pattern, heads, d, 0.5f),
                                 session.open_stream(pattern, heads, d, 0.5f)};
    for (int t = 0; t < steps; ++t)
        for (const StreamId id : ids) {
            StepRequest req;
            req.q_row = head_row(rows, t, heads, d);
            req.k_row = head_row(rows, t, heads, d);
            req.v_row = head_row(rows, t, heads, d);
            EXPECT_NO_THROW(session.step(id, std::move(req)).get());
        }
    session.close();

    // Both streams walked positions 0..5; with the shared store each
    // micro-plan was derived exactly once tier-wide no matter which shard
    // each stream landed on.
    const SessionStats st = session.stats();
    EXPECT_EQ(st.plan_cache.step_derives, static_cast<std::uint64_t>(steps));
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(2 * steps));
}

}  // namespace
}  // namespace salo
