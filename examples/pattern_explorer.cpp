// Survey of the sparse attention mechanisms from the paper's Figure 2,
// rendered as ASCII masks with their sparsity and schedule statistics.
// Usage: pattern_explorer [n]   (default n = 64)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/salo.hpp"

int main(int argc, char** argv) {
    using namespace salo;
    const int n = argc > 1 ? std::atoi(argv[1]) : 64;
    if (n < 8 || n > 1024) {
        std::cerr << "usage: pattern_explorer [n in 8..1024]\n";
        return 1;
    }

    struct Entry {
        std::string name;
        HybridPattern pattern;
    };
    const int w = std::max(4, n / 8);
    const int grid = 1;  // silence unused warnings on some configs
    (void)grid;
    const int side = [] (int nn) {
        int s = 1;
        while ((s + 1) * (s + 1) <= nn) ++s;
        return s;
    }(n);
    std::vector<Entry> entries;
    entries.push_back({"Sliding window (paper 2.3)", sliding_window(n, w)});
    entries.push_back({"Dilated window d=2 (paper 2.3)", dilated_window(n, -w / 4, w / 4, 2)});
    entries.push_back({"Longformer (Fig 2a)", longformer(n, w, 2)});
    entries.push_back({"Star-Transformer (Fig 2b)", star_transformer(n)});
    entries.push_back({"Sparse-Transformer strided (Fig 2c)",
                       sparse_transformer_strided(n, std::max(2, w / 2))});
    entries.push_back({"Sparse-Transformer fixed",
                       sparse_transformer_fixed(n, std::max(2, w / 2))});
    entries.push_back({"ViL 2D window (" + std::to_string(side) + "x" +
                           std::to_string(side) + " grid)",
                       vil_2d(side, side, 5, 5, 1)});

    const SaloConfig config;  // 32x32 geometry
    AsciiTable summary(
        {"Pattern", "n", "nnz", "Sparsity", "Tiles", "Occupancy", "Fingerprint"});
    for (const Entry& e : entries) {
        std::cout << "=== " << e.name << " ===\n"
                  << e.pattern.ascii_art(40) << "\n";
        // compile() = scheduler pass + content fingerprint; the fingerprint
        // is the PlanCache key a serving deployment shares plans under.
        const CompiledPlan plan = compile(e.pattern, 64, config);
        char fp[20];
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(plan.fingerprint()));
        summary.add_row({e.name, std::to_string(e.pattern.n()),
                         std::to_string(e.pattern.nnz()),
                         fmt(e.pattern.sparsity(), 3),
                         std::to_string(plan.schedule_stats().total_tiles()),
                         fmt(plan.schedule_stats().slot_occupancy(), 3), fp});
    }
    summary.print();
    std::cout << "\nAll of these run on SALO unmodified: the data scheduler maps\n"
                 "each pattern's bands and global tokens onto the PE array\n"
                 "(sequence splitting, window splitting, dilation reordering).\n";
    return 0;
}
