// salo_estimate: command-line what-if tool for SALO deployments.
//
// Usage:
//   salo_estimate <n> <window> <heads> <head_dim> [globals=1] [rows=32] [cols=32]
//
// Prints the schedule, cycle profile, latency, synthesis estimate and
// modeled CPU/GPU speedups for a Longformer-style workload of that shape —
// the sizing loop a deployment engineer would run before committing to an
// array geometry.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "model/baseline.hpp"
#include "model/salo_model.hpp"
#include "model/synthesis.hpp"
#include "sim/trace.hpp"
#include "workload/workloads.hpp"

int main(int argc, char** argv) {
    using namespace salo;
    if (argc < 5) {
        std::cerr << "usage: salo_estimate <n> <window> <heads> <head_dim>"
                     " [globals=1] [rows=32] [cols=32]\n"
                     "e.g.:  salo_estimate 4096 512 12 64 1 32 32   (Longformer-Base)\n";
        return 1;
    }
    const int n = std::atoi(argv[1]);
    const int window = std::atoi(argv[2]);
    const int heads = std::atoi(argv[3]);
    const int head_dim = std::atoi(argv[4]);
    const int globals = argc > 5 ? std::atoi(argv[5]) : 1;
    SaloConfig config;
    if (argc > 6) config.geometry.rows = std::atoi(argv[6]);
    if (argc > 7) config.geometry.cols = std::atoi(argv[7]);

    if (n < 1 || window < 1 || heads < 1 || head_dim < 1 || globals < 0) {
        std::cerr << "all sizes must be positive\n";
        return 1;
    }

    const AttentionWorkload workload =
        longformer_small(n, window, heads, head_dim, globals);
    const auto estimate = estimate_layer(workload, config);
    const auto synth = synthesize(config.geometry);

    std::cout << "=== SALO estimate: n=" << n << " w=" << window << " heads=" << heads
              << " d=" << head_dim << " globals=" << globals << " array "
              << config.geometry.rows << "x" << config.geometry.cols << " ===\n\n";

    AsciiTable table({"Metric", "Value"});
    table.add_row({"pattern sparsity", fmt(workload.pattern.sparsity(), 4)});
    table.add_row({"tiles per head", std::to_string(estimate.schedule.total_tiles())});
    table.add_row({"catch-up tiles", std::to_string(estimate.schedule.catchup_tiles)});
    table.add_row({"PE occupancy", fmt(estimate.schedule.slot_occupancy(), 3)});
    table.add_row({"cycles (layer)", std::to_string(estimate.stats.cycles)});
    table.add_row({"latency @" + fmt(config.geometry.frequency_ghz, 1) + "GHz",
                   fmt(estimate.latency_ms, 3) + " ms"});
    table.add_row({"synthesized area", fmt(synth.total_area_mm2(), 2) + " mm^2"});
    table.add_row({"synthesized power", fmt(synth.total_power_mw(), 1) + " mW"});
    table.add_row({"energy per layer",
                   fmt(synth.total_power_w() * estimate.latency_ms, 4) + " mJ"});
    const auto cpu = xeon_e5_2630_v3();
    const auto gpu = gtx_1080ti();
    table.add_row({"speedup vs modeled Xeon",
                   fmt(sparse_attention_ms(cpu, workload).total_ms() /
                           estimate.latency_ms, 1) + "x"});
    table.add_row({"speedup vs modeled 1080Ti",
                   fmt(sparse_attention_ms(gpu, workload).total_ms() /
                           estimate.latency_ms, 1) + "x"});
    table.print();

    std::cout << "\n";
    const CompiledPlan plan = compile(workload.pattern, head_dim, config);
    std::cout << render_cycle_profile(plan.plan(), config.cycle_config()) << "\n";
    std::cout << render_plan(plan.plan(), 8);
    return 0;
}
