// Quickstart: compile a hybrid sparse attention pattern, run it through
// SALO and compare against the float golden model.
//
//   1. describe the pattern (sliding window + a global token),
//   2. compile it once (the expensive scheduler pass, cached by content),
//   3. make Q/K/V and run the engine on the compiled plan,
//   4. inspect the output, the cycle count and the PE-array occupancy.
#include <cstdio>
#include <iostream>

#include "core/salo.hpp"

int main() {
    using namespace salo;

    // A Longformer-style pattern: 64 tokens, each attending to a 16-wide
    // window plus one global token (token 0 attends/is attended everywhere).
    const HybridPattern pattern = longformer(/*n=*/64, /*w=*/16, /*num_global=*/1);
    std::cout << "Attention pattern (64 tokens, 16-wide window + 1 global):\n"
              << pattern.ascii_art(32) << "\n";

    // Random Q/K/V for one head of dimension 32.
    Rng rng(7);
    const int d = 32;
    const Matrix<float> q = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const Matrix<float> k = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const Matrix<float> v = random_matrix(pattern.n(), d, rng, 0.0, 0.8);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Default engine: 32x32 PE array, Q3.4 inputs, functional fidelity.
    // compile() runs the data scheduler once; the engine caches the plan by
    // content fingerprint, so recompiling the same shape is a cache hit.
    const SaloEngine engine;
    const CompiledPlanPtr plan = engine.compile(pattern, d);
    std::printf("compiled plan: %d tiles, fingerprint %016llx\n\n",
                plan->schedule_stats().total_tiles(),
                static_cast<unsigned long long>(plan->fingerprint()));
    const HeadResult result = engine.run_head(*plan, q, k, v, scale);

    // Golden float reference for comparison.
    const Matrix<float> reference = SaloEngine::golden(pattern, q, k, v, scale);
    std::cout << "max |SALO - golden| = " << max_abs_diff(result.output, reference)
              << "  (inputs are quantized to 8-bit Q3.4, so ~0.1 is expected)\n\n";

    std::cout << "simulated cycles   : " << result.stats.cycles << "\n"
              << "tiles executed     : " << result.stats.tiles << "\n"
              << "PE occupancy       : " << result.stats.activity.occupancy() << "\n"
              << "latency @ 1 GHz    : " << result.stats.latency_ms(1.0) << " ms\n\n";

    std::cout << "first output row (token 0, first 8 dims):\n  SALO  :";
    for (int t = 0; t < 8; ++t) std::cout << " " << result.output(0, t);
    std::cout << "\n  golden:";
    for (int t = 0; t < 8; ++t) std::cout << " " << reference(0, t);
    std::cout << "\n";
    return 0;
}
