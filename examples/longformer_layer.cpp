// Longformer-Base-4096 attention layer on SALO (the paper's NLP workload).
//
// Demonstrates the two ways to work with a full-size workload:
//   * the analytic cycle model for the real 4096-token layer (instant), and
//   * a bit-accurate functional simulation of a scaled-down slice, verified
//     against the golden model.
#include <iostream>

#include "common/table.hpp"
#include "core/salo.hpp"
#include "model/baseline.hpp"
#include "model/salo_model.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;

    std::cout << "=== Longformer-Base-4096 on SALO ===\n\n";
    const AttentionWorkload workload = longformer_base_4096();
    const SaloConfig config;  // the paper's 32x32 geometry

    // --- Full-size layer through the analytic model -----------------------
    const auto estimate = estimate_layer(workload, config);
    AsciiTable table({"Metric", "Value"});
    table.add_row({"sequence length", std::to_string(workload.n())});
    table.add_row({"window size", std::to_string(workload.window)});
    table.add_row({"heads x head_dim",
                   std::to_string(workload.heads) + " x " +
                       std::to_string(workload.head_dim)});
    table.add_row({"tiles per head", std::to_string(estimate.schedule.total_tiles())});
    table.add_row({"PE occupancy", fmt(estimate.schedule.slot_occupancy(), 3)});
    table.add_row({"layer latency @1GHz", fmt(estimate.latency_ms, 3) + " ms"});
    const auto gpu = gtx_1080ti();
    const auto cpu = xeon_e5_2630_v3();
    table.add_row({"modeled GTX-1080Ti latency",
                   fmt(sparse_attention_ms(gpu, workload).total_ms(), 1) + " ms"});
    table.add_row({"modeled Xeon latency",
                   fmt(sparse_attention_ms(cpu, workload).total_ms(), 1) + " ms"});
    table.print();

    // --- Scaled-down slice, bit-accurately simulated ----------------------
    std::cout << "\nBit-accurate simulation of a scaled-down slice "
                 "(n=256, w=32, 2 heads):\n";
    const AttentionWorkload small = longformer_small(256, 32, 2, 64, 1);
    const QkvSet qkv = make_qkv(small, /*seed=*/11);
    const SaloEngine engine(config);
    // Compile once, run many times: the plan is the reusable artifact a
    // serving deployment would keep per layer shape.
    const CompiledPlanPtr plan = compile_workload(small, config);
    const LayerResult run = engine.run(*plan, qkv.q, qkv.k, qkv.v, small.scale());

    double worst = 0.0;
    for (int h = 0; h < small.heads; ++h) {
        const auto golden =
            SaloEngine::golden(small.pattern, qkv.q[h], qkv.k[h], qkv.v[h], small.scale());
        worst = std::max(worst, max_abs_diff(run.output[h], golden));
    }
    std::cout << "  max |SALO - golden| over " << small.heads << " heads: " << worst
              << "\n  simulated cycles: " << run.stats.cycles
              << "  (occupancy " << fmt(run.schedule.slot_occupancy(), 3) << ")\n";
    return 0;
}
