// End-to-end transformer encoder with SALO-accelerated attention.
//
// Builds a 2-layer Longformer-style encoder (paper Fig. 1: attention +
// Add&Norm + FFN + Add&Norm), runs it once with the float golden attention
// and once with the bit-accurate fixed-point accelerator, and reports the
// divergence plus the accelerator work per layer.
#include <iostream>

#include "common/table.hpp"
#include "core/salo.hpp"
#include "transformer/encoder.hpp"

int main() {
    using namespace salo;

    const int n = 128;        // sequence length
    const int hidden = 64;    // model width
    const int heads = 4;      // 16-dim heads
    const int layers = 2;
    const HybridPattern pattern = longformer(n, /*w=*/16, /*num_global=*/1);

    Rng rng(2024);
    Encoder encoder(layers, hidden, heads, /*intermediate=*/4 * hidden, pattern, rng);
    const Matrix<float> input = random_matrix(n, hidden, rng, 0.0, 0.5);

    std::cout << "=== Transformer encoder on SALO ===\n"
              << layers << " layers, n=" << n << ", hidden=" << hidden << ", "
              << heads << " heads, window 16 + 1 global token\n\n";

    const SaloEngine accelerated;                 // fixed-point simulation
    SaloConfig golden_cfg;
    golden_cfg.fidelity = Fidelity::kGolden;
    const SaloEngine oracle(golden_cfg);          // float attention

    SimStats stats;
    const Matrix<float> out_accel = encoder.forward(input, accelerated, &stats);
    const Matrix<float> out_gold = encoder.forward(input, oracle);

    // The same stack through a serving session: each layer's attention is
    // submitted as a request. Bit-identical to the synchronous engine run.
    SaloSession session;
    const Matrix<float> out_session = encoder.forward(input, session);
    session.drain();  // stats readers synchronize on drain()
    const SessionStats sstats = session.stats();

    AsciiTable table({"Metric", "Value"});
    table.add_row({"max |accelerated - golden|",
                   fmt(max_abs_diff(out_accel, out_gold), 4)});
    table.add_row({"max |session - engine| (must be 0)",
                   fmt(max_abs_diff(out_session, out_accel), 4)});
    table.add_row({"session requests served",
                   std::to_string(sstats.completed)});
    table.add_row({"plan-cache hits / misses",
                   std::to_string(sstats.plan_cache.hits) + " / " +
                       std::to_string(sstats.plan_cache.misses)});
    table.add_row({"attention cycles (all layers/heads)",
                   std::to_string(stats.cycles)});
    table.add_row({"tiles executed", std::to_string(stats.tiles)});
    table.add_row({"attention latency @1GHz", fmt(stats.latency_ms(1.0), 4) + " ms"});
    table.add_row({"PE occupancy", fmt(stats.activity.occupancy(), 3)});
    table.print();

    std::cout << "\nThe hardware output is gathered per head, projected, and flows\n"
                 "into the FFN — the integration path described in paper Section 3.\n";
    return 0;
}
