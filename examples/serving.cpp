// Serving quickstart: the compile -> cache -> submit lifecycle.
//
// Builds a SaloSession, compiles two heterogeneous workloads (a 1D
// Longformer slice and a 2D ViL grid), fires a mixed stream of asynchronous
// requests at the session, and shows that
//   * futures resolve as requests are served,
//   * every result is bit-identical to the synchronous engine run,
//   * the PlanCache compiled each distinct shape exactly once.
#include <future>
#include <iostream>
#include <vector>

#include "core/salo.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;

    SaloConfig config;  // functional fidelity, hardware-threads lanes
    SaloSession session(config);

    // Two request shapes a mixed NLP + vision deployment would serve.
    AttentionWorkload longf = longformer_small(256, 32, 4, 64, 1);
    AttentionWorkload vil = vil_stage2();
    vil.pattern = vil_2d(14, 14, 7, 7, 1);  // scaled-down grid for the demo
    vil.heads = 2;
    vil.window = 7 * 7;

    const CompiledPlanPtr longf_plan = session.compile(longf.pattern, longf.head_dim);
    const CompiledPlanPtr vil_plan = session.compile(vil.pattern, vil.head_dim);

    std::cout << "=== SaloSession serving demo ===\n"
              << "Longformer plan: " << longf_plan->schedule_stats().total_tiles()
              << " tiles;  ViL plan: " << vil_plan->schedule_stats().total_tiles()
              << " tiles\n\n";

    // A burst of 12 interleaved requests, submitted before any completes.
    const int kRequests = 12;
    std::vector<std::future<LayerResult>> futures;
    std::vector<const AttentionWorkload*> kinds;
    for (int i = 0; i < kRequests; ++i) {
        const bool is_longformer = i % 2 == 0;
        const AttentionWorkload& w = is_longformer ? longf : vil;
        const CompiledPlanPtr& plan = is_longformer ? longf_plan : vil_plan;
        const QkvSet qkv = make_qkv(w, /*seed=*/100 + i);
        futures.push_back(session.submit(plan, qkv.q, qkv.k, qkv.v, w.scale()));
        kinds.push_back(&w);
    }

    // Await all futures and spot-check against the synchronous engine.
    const SaloEngine& engine = session.engine();
    double worst = 0.0;
    for (int i = 0; i < kRequests; ++i) {
        const LayerResult served = futures[static_cast<std::size_t>(i)].get();
        const AttentionWorkload& w = *kinds[static_cast<std::size_t>(i)];
        const QkvSet qkv = make_qkv(w, /*seed=*/100 + i);
        const LayerResult sync = engine.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
        for (int h = 0; h < served.output.count(); ++h)
            worst = std::max(worst, max_abs_diff(served.output[h], sync.output[h]));
    }

    session.drain();  // stats readers synchronize on drain()
    const SessionStats stats = session.stats();
    std::cout << "requests served      : " << stats.completed << " in " << stats.batches
              << " batches (largest " << stats.max_batch << ")\n"
              << "plan-cache hit rate  : " << stats.plan_cache.hits << "/"
              << (stats.plan_cache.hits + stats.plan_cache.misses) << " lookups\n"
              << "max |session - sync| : " << worst << "  (0 = bit-identical)\n";
    return worst == 0.0 ? 0 : 1;
}
