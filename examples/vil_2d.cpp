// ViL-style 2D windowed attention on SALO (the paper's vision workload).
//
// Shows how a 15x15 window over an H x W patch grid maps onto the
// accelerator: each window row becomes a band at a y-offset, narrow bands
// are column-packed to keep the 32-wide array busy, and the scheduler's
// dilation grouping is the paper's data-reordering in action.
#include <iostream>

#include "common/table.hpp"
#include "core/salo.hpp"
#include "model/salo_model.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;

    std::cout << "=== 2D windowed attention (ViL) on SALO ===\n\n";

    // A small 12x12 patch grid with a 5x5 window so the structure is visible.
    const HybridPattern small2d = vil_2d(12, 12, 5, 5, 1);
    std::cout << "12x12 grid, 5x5 window, 1 global token — flattened pattern:\n"
              << small2d.ascii_art(48) << "\n";
    std::cout << "bands (each window row is a band at offset dy*W):\n";
    for (const Band& b : small2d.bands())
        std::cout << "  dy=" << b.dy << ": offsets [" << b.lo << ", " << b.hi()
                  << "], width " << b.count << "\n";

    // Bit-accurate run vs golden on the small grid.
    Rng rng(3);
    const int d = 32;
    const Matrix<float> q = random_matrix(small2d.n(), d, rng, 0.0, 0.8);
    const Matrix<float> k = random_matrix(small2d.n(), d, rng, 0.0, 0.8);
    const Matrix<float> v = random_matrix(small2d.n(), d, rng, 0.0, 0.8);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const SaloEngine engine;
    const CompiledPlanPtr plan = engine.compile(small2d, d);
    const HeadResult run = engine.run_head(*plan, q, k, v, scale);
    const Matrix<float> gold = SaloEngine::golden(small2d, q, k, v, scale);
    std::cout << "\nmax |SALO - golden| on the 12x12 grid: "
              << max_abs_diff(run.output, gold) << "\n\n";

    // The paper's two ViL stages through the analytic model, with and
    // without column packing (the utilization story of §6.3).
    AsciiTable table({"Stage", "Grid", "Occupancy packed", "Occupancy per-band",
                      "Latency packed (ms)", "Latency per-band (ms)"});
    for (const auto& w : {vil_stage1(), vil_stage2()}) {
        SaloConfig packed;
        SaloConfig per_band;
        per_band.schedule_options.packing = PackingMode::kPerBand;
        const auto ep = estimate_layer(w, packed);
        const auto eb = estimate_layer(w, per_band);
        const int gw = w.pattern.grid_width();
        table.add_row({w.name, std::to_string(w.n() / gw) + "x" + std::to_string(gw),
                       fmt(ep.schedule.slot_occupancy(), 3),
                       fmt(eb.schedule.slot_occupancy(), 3), fmt(ep.latency_ms, 3),
                       fmt(eb.latency_ms, 3)});
    }
    table.print();
    std::cout << "\nPacking two 15-wide window rows per 32-column tile nearly\n"
                 "doubles occupancy — this is how SALO sustains >75% utilization\n"
                 "on ViL while the literal one-band-per-tile mapping cannot.\n";
    return 0;
}
