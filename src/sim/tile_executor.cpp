#include "sim/tile_executor.hpp"

#include "common/assert.hpp"
#include "sim/kernels.hpp"

namespace salo {

TileExecutor::TileExecutor(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                           const Matrix<std::int8_t>& q, const Matrix<std::int8_t>& k,
                           const Matrix<std::int8_t>& v)
    : exp_unit_(&exp_unit), recip_unit_(&recip_unit), q_(&q), k_(&k), v_(&v) {
    SALO_EXPECTS(q.cols() == k.cols() && k.rows() == v.rows() && k.cols() == v.cols());
}

ScoreRaw TileExecutor::score(int qi, int ki) const {
    const auto qrow = q_->row(qi);
    const auto krow = k_->row(ki);
    std::int32_t acc = 0;  // Q.(2*in_frac) = Q.8 = Q.acc_frac
    for (std::size_t t = 0; t < qrow.size(); ++t)
        acc += static_cast<std::int32_t>(qrow[t]) * static_cast<std::int32_t>(krow[t]);
    return acc;
}

// ---------------------------------------------------------------------------
// Hot path: segment-wise streaming, dispatched SIMD dot products, arena parts.
// ---------------------------------------------------------------------------
void TileExecutor::run(const TileTask& tile, PartArena& arena, ActivityStats& activity,
                       PartScratch& scratch) const {
    const int rows = tile.rows();
    const int cols = tile.cols();
    const int d = q_->cols();
    // Keys index K/V, whose row count differs from q's in the decode-step
    // path (one query row against the compact K/V layout).
    const int nn = k_->rows();
    const std::int8_t* qbase = q_->data().data();
    const std::int8_t* kbase = k_->data().data();
    const std::uint8_t* valid = tile.valid.data();

    // Worst-case keys in one row: the full column budget (window) or the
    // whole key stream (global row); reserve once, then use raw pointers.
    const int stream_len = tile.total_stream_length();
    const std::size_t max_keys =
        static_cast<std::size_t>(std::max(cols, stream_len) + 1);
    if (scratch.scores.size() < max_keys) {
        scratch.scores.resize(max_keys);
        scratch.keys.resize(max_keys);
    }
    ScoreRaw* scores = scratch.scores.data();
    int* keys = scratch.keys.data();

    auto emit = [&](int query, int count) {
        TilePart& part = arena.alloc(d);
        build_part_into(*exp_unit_, *recip_unit_, *v_, query, scores, keys, count,
                        activity, part, scratch);
        if (part.weight == 0) arena.drop_last();
    };

    // PE-array rows: the window part of the pattern. Keys are gathered
    // first, then the whole row's dots run in one batched kernel call (the
    // widened query row stays in registers across the row's K vectors).
    for (int r = 0; r < rows; ++r) {
        const int qi = tile.query_ids[static_cast<std::size_t>(r)];
        int count = 0;
        if (qi >= 0) {
            const std::uint8_t* vrow = valid + static_cast<std::size_t>(r) *
                                                   static_cast<std::size_t>(cols);
            for (const TileSegment& seg : tile.segments) {
                std::int64_t key = seg.key_base +
                                   static_cast<std::int64_t>(r) * seg.dilation;
                for (int c = seg.col_begin; c < seg.col_end;
                     ++c, key += seg.dilation) {
                    if (vrow[c] == 0) continue;
                    SALO_ASSERT(key >= 0 && key < nn);
                    keys[count++] = static_cast<int>(key);
                }
            }
            kernels::dot_i8_rows(qbase + static_cast<std::size_t>(qi) *
                                             static_cast<std::size_t>(d),
                                 kbase, keys, count, d, scores);
            activity.mac_ops += static_cast<std::int64_t>(count) * d;
        }
        if (count > 0) emit(qi, count);

        // Global PE column: q_i against the global key (single-element part:
        // its normalized output is v_g itself, with weight exp(q_i . k_g)).
        if (tile.global_col_key >= 0 && !tile.global_col_rows.empty() &&
            tile.global_col_rows[static_cast<std::size_t>(r)] != 0) {
            SALO_ASSERT(qi >= 0);
            const int g = tile.global_col_key;
            scores[0] = kernels::dot_i8(
                qbase + static_cast<std::size_t>(qi) * static_cast<std::size_t>(d),
                kbase + static_cast<std::size_t>(g) * static_cast<std::size_t>(d), d);
            keys[0] = g;
            activity.mac_ops += d;
            emit(qi, 1);
        }
    }

    // Global PE row: the global query against this tile's fresh keys.
    if (tile.global_row_query >= 0) {
        const int g = tile.global_row_query;
        int count = 0;
        int slot = 0;
        for (const TileSegment& seg : tile.segments) {
            const int len = seg.stream_length(rows);
            std::int64_t key = seg.key_base;
            for (int s = 0; s < len; ++s, ++slot, key += seg.dilation) {
                if (tile.global_fresh[static_cast<std::size_t>(slot)] == 0) continue;
                SALO_ASSERT(key >= 0 && key < nn);
                keys[count++] = static_cast<int>(key);
            }
        }
        if (count > 0) {
            kernels::dot_i8_rows(qbase + static_cast<std::size_t>(g) *
                                             static_cast<std::size_t>(d),
                                 kbase, keys, count, d, scores);
            activity.mac_ops += static_cast<std::int64_t>(count) * d;
            emit(g, count);
        }
    }

    activity.valid_slots += tile.num_valid_slots();
    activity.array_slots += static_cast<std::int64_t>(rows) * cols;
}

// ---------------------------------------------------------------------------
// Reference path: the original scalar implementation, kept for baseline
// benchmarking and bit-identity tests.
// ---------------------------------------------------------------------------
void TileExecutor::run(const TileTask& tile, std::vector<TilePart>& parts,
                       ActivityStats& activity) const {
    const int rows = tile.rows();
    const int cols = tile.cols();
    const int nn = k_->rows();

    std::vector<ScoreRaw> scores;
    std::vector<int> keys;

    // PE-array rows: the window part of the pattern.
    for (int r = 0; r < rows; ++r) {
        const int qi = tile.query_ids[static_cast<std::size_t>(r)];
        scores.clear();
        keys.clear();
        if (qi >= 0) {
            for (int c = 0; c < cols; ++c) {
                if (!tile.is_valid(r, c)) continue;
                const std::int64_t key = tile.key_at(r, c);
                SALO_ASSERT(key >= 0 && key < nn);
                const int ki = static_cast<int>(key);
                scores.push_back(score(qi, ki));
                keys.push_back(ki);
            }
            activity.mac_ops += static_cast<std::int64_t>(scores.size()) * head_dim();
        }
        if (!scores.empty()) {
            TilePart part = build_part(*exp_unit_, *recip_unit_, *v_, qi, scores, keys,
                                       activity);
            if (part.weight > 0) parts.push_back(std::move(part));
        }

        // Global PE column: q_i against the global key (single-element part:
        // its normalized output is v_g itself, with weight exp(q_i . k_g)).
        if (tile.global_col_key >= 0 && !tile.global_col_rows.empty() &&
            tile.global_col_rows[static_cast<std::size_t>(r)] != 0) {
            SALO_ASSERT(qi >= 0);
            const int g = tile.global_col_key;
            scores.assign(1, score(qi, g));
            keys.assign(1, g);
            activity.mac_ops += head_dim();
            TilePart part = build_part(*exp_unit_, *recip_unit_, *v_, qi, scores, keys,
                                       activity);
            if (part.weight > 0) parts.push_back(std::move(part));
        }
    }

    // Global PE row: the global query against this tile's fresh keys.
    if (tile.global_row_query >= 0) {
        const int g = tile.global_row_query;
        scores.clear();
        keys.clear();
        int slot = 0;
        for (const TileSegment& seg : tile.segments) {
            const int len = seg.stream_length(rows);
            for (int s = 0; s < len; ++s, ++slot) {
                if (tile.global_fresh[static_cast<std::size_t>(slot)] == 0) continue;
                const std::int64_t key = seg.stream_key(s);
                SALO_ASSERT(key >= 0 && key < nn);
                scores.push_back(score(g, static_cast<int>(key)));
                keys.push_back(static_cast<int>(key));
            }
        }
        if (!scores.empty()) {
            activity.mac_ops += static_cast<std::int64_t>(scores.size()) * head_dim();
            TilePart part = build_part(*exp_unit_, *recip_unit_, *v_, g, scores, keys,
                                       activity);
            if (part.weight > 0) parts.push_back(std::move(part));
        }
    }

    activity.valid_slots += tile.num_valid_slots();
    activity.array_slots += static_cast<std::int64_t>(rows) * cols;
}

}  // namespace salo
