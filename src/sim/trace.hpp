// Human-readable rendering of schedules, tiles and cycle profiles — the
// debugging lens for the data scheduler and the timing model. Used by the
// pattern-explorer example and by anyone extending the scheduler.
#pragma once

#include <string>

#include "scheduler/scheduler.hpp"
#include "sim/cycle_formulas.hpp"

namespace salo {

/// ASCII view of one tile: query ids per row, segment boundaries, and the
/// valid mask ('#' active, '.' masked; segments separated by '|').
std::string render_tile(const TileTask& tile);

/// One-line-per-tile summary of a plan (segments, valid slots, global
/// work), capped at `max_tiles` lines.
std::string render_plan(const SchedulePlan& plan, int max_tiles = 32);

/// Aggregate per-stage cycle breakdown of the whole plan, as percentages —
/// where the time goes across the 5-stage datapath.
std::string render_cycle_profile(const SchedulePlan& plan, const CycleConfig& config);

}  // namespace salo
