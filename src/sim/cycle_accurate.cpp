#include "sim/cycle_accurate.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "sim/part_builder.hpp"

namespace salo {

CycleAccurateArray::CycleAccurateArray(const ArrayGeometry& geometry,
                                       const CycleConfig& cycle_config,
                                       const PwlExp& exp_unit, const Reciprocal& recip_unit,
                                       const Matrix<std::int8_t>& q,
                                       const Matrix<std::int8_t>& k,
                                       const Matrix<std::int8_t>& v)
    : geometry_(geometry), cycle_config_(cycle_config), exp_unit_(&exp_unit),
      recip_unit_(&recip_unit), q_(&q), k_(&k), v_(&v) {
    geometry_.validate();
    cycle_config_.validate();
    SALO_EXPECTS(q.cols() == k.cols() && k.rows() == v.rows() && k.cols() == v.cols());
}

CycleBreakdown CycleAccurateArray::run(const TileTask& tile, std::vector<TilePart>& parts,
                                       ActivityStats& activity) const {
    const int rows = tile.rows();
    const int cols = tile.cols();
    const int d = q_->cols();
    // Keys index K/V, whose row count differs from q's in the decode-step
    // path (one query row against the compact K/V layout).
    const int nn = k_->rows();
    const int cu = std::max(1, tile.cols_used());
    SALO_EXPECTS(rows == geometry_.rows && cols == geometry_.cols);

    auto dot = [&](int qi, int ki) {
        const auto qrow = q_->row(qi);
        const auto krow = k_->row(ki);
        std::int32_t acc = 0;
        for (std::size_t t = 0; t < qrow.size(); ++t)
            acc += static_cast<std::int32_t>(qrow[t]) * static_cast<std::int32_t>(krow[t]);
        return acc;
    };

    // Cache per-slot key ids (-1: inactive slot).
    Matrix<std::int32_t> slot_key(rows, cols, -1);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            if (tile.is_valid(r, c)) {
                const std::int64_t key = tile.key_at(r, c);
                SALO_ASSERT(key >= 0 && key < nn);
                slot_key(r, c) = static_cast<std::int32_t>(key);
            }

    CycleBreakdown measured = tile_cycles(tile, d, cycle_config_);

    // ------------------------------------------------------------------
    // Stage 1: skewed output-stationary systolic MACs. PE(r, c) fires in
    // cycle window [r+c, r+c+d); element index t = cycle - r - c.
    // ------------------------------------------------------------------
    Matrix<std::int32_t> acc(rows, cols, 0);
    const std::int64_t dur1 = measured.stage[0];
    for (std::int64_t cyc = 0; cyc < dur1; ++cyc) {
        for (int r = 0; r < rows; ++r) {
            const int qi = tile.query_ids[static_cast<std::size_t>(r)];
            if (qi < 0) continue;
            for (int c = 0; c < cu; ++c) {
                const int ki = slot_key(r, c);
                if (ki < 0) continue;
                const std::int64_t t = cyc - r - c;
                if (t < 0 || t >= d) continue;
                acc(r, c) += static_cast<std::int32_t>(q_->row(qi)[static_cast<std::size_t>(t)]) *
                             static_cast<std::int32_t>(k_->row(ki)[static_cast<std::size_t>(t)]);
                ++activity.mac_ops;
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: PWL exponential in every active PE (parallel, fixed latency).
    // ------------------------------------------------------------------
    Matrix<ExpRaw> expv(rows, cols, 0);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cu; ++c)
            if (slot_key(r, c) >= 0) {
                expv(r, c) = exp_unit_->exp_raw(acc(r, c));
                ++activity.exp_ops;
            }

    // ------------------------------------------------------------------
    // Stage 3: ripple accumulation left->right (one column per cycle),
    // then the reciprocal unit, then broadcast.
    // ------------------------------------------------------------------
    std::vector<SumRaw> weight(static_cast<std::size_t>(rows), 0);
    for (int c = 0; c < cu; ++c)  // each column hop is one cycle
        for (int r = 0; r < rows; ++r)
            if (slot_key(r, c) >= 0) weight[static_cast<std::size_t>(r)] += expv(r, c);
    std::vector<InvRaw> inv(static_cast<std::size_t>(rows), 0);
    for (int r = 0; r < rows; ++r)
        if (weight[static_cast<std::size_t>(r)] > 0)
            inv[static_cast<std::size_t>(r)] =
                recip_unit_->inv_raw(weight[static_cast<std::size_t>(r)]);

    // ------------------------------------------------------------------
    // Stage 4: S' = exp * (1/W) in every active PE.
    // ------------------------------------------------------------------
    Matrix<SprimeRaw> sprime(rows, cols, 0);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cu; ++c)
            if (slot_key(r, c) >= 0 && weight[static_cast<std::size_t>(r)] > 0)
                sprime(r, c) = normalize_prob(expv(r, c), inv[static_cast<std::size_t>(r)]);

    // ------------------------------------------------------------------
    // Stage 5: weight-stationary S'*V; output element t leaves the row at
    // cycle t + cu - 1. Accumulate at Q.19, renormalize to Q.wsm_frac.
    // ------------------------------------------------------------------
    constexpr int shift = Datapath::sprime_frac + Datapath::in_frac - Datapath::wsm_frac;
    Matrix<std::int64_t> psum(rows, d, 0);
    const std::int64_t dur5 = d + cu - 1;
    for (std::int64_t cyc = 0; cyc < dur5; ++cyc) {
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cu; ++c) {
                const int ki = slot_key(r, c);
                if (ki < 0) continue;  // the MAC fires even for S' == 0
                const std::int64_t t = cyc - c;
                if (t < 0 || t >= d) continue;
                psum(r, static_cast<int>(t)) +=
                    static_cast<std::int64_t>(sprime(r, c)) *
                    static_cast<std::int64_t>(
                        v_->row(ki)[static_cast<std::size_t>(t)]);
                ++activity.mac_ops;
            }
        }
    }

    // Emit parts in the same order as the functional executor: per row the
    // window part then the global-column part, then the global-row part.
    std::vector<ScoreRaw> scores;
    std::vector<int> keys;
    for (int r = 0; r < rows; ++r) {
        const int qi = tile.query_ids[static_cast<std::size_t>(r)];
        bool any = false;
        for (int c = 0; c < cu && !any; ++c) any = slot_key(r, c) >= 0;
        if (any && weight[static_cast<std::size_t>(r)] > 0) {
            TilePart part;
            part.query = qi;
            part.weight = weight[static_cast<std::size_t>(r)];
            part.out_q.resize(static_cast<std::size_t>(d));
            for (int t = 0; t < d; ++t)
                part.out_q[static_cast<std::size_t>(t)] =
                    static_cast<std::int32_t>(round_shift(psum(r, t), shift));
            parts.push_back(std::move(part));
        }
        if (tile.global_col_key >= 0 && !tile.global_col_rows.empty() &&
            tile.global_col_rows[static_cast<std::size_t>(r)] != 0) {
            SALO_ASSERT(qi >= 0);
            scores.assign(1, dot(qi, tile.global_col_key));
            keys.assign(1, tile.global_col_key);
            activity.mac_ops += d;
            TilePart part =
                build_part(*exp_unit_, *recip_unit_, *v_, qi, scores, keys, activity);
            if (part.weight > 0) parts.push_back(std::move(part));
        }
    }
    if (tile.global_row_query >= 0) {
        const int g = tile.global_row_query;
        scores.clear();
        keys.clear();
        int slot = 0;
        for (const TileSegment& seg : tile.segments) {
            const int len = seg.stream_length(rows);
            for (int s = 0; s < len; ++s, ++slot) {
                if (tile.global_fresh[static_cast<std::size_t>(slot)] == 0) continue;
                const std::int64_t key = seg.stream_key(s);
                SALO_ASSERT(key >= 0 && key < nn);
                scores.push_back(dot(g, static_cast<int>(key)));
                keys.push_back(static_cast<int>(key));
            }
        }
        if (!scores.empty()) {
            activity.mac_ops += static_cast<std::int64_t>(scores.size()) * d;
            TilePart part =
                build_part(*exp_unit_, *recip_unit_, *v_, g, scores, keys, activity);
            if (part.weight > 0) parts.push_back(std::move(part));
        }
    }

    activity.valid_slots += tile.num_valid_slots();
    activity.array_slots += static_cast<std::int64_t>(rows) * cols;
    activity.pe_cycles += static_cast<std::int64_t>(rows) * cols * measured.total();
    return measured;
}

}  // namespace salo
