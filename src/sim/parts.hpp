// Result and statistics types shared by the functional tile executor, the
// cycle-accurate array model and the weighted-sum module.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "numeric/datapath.hpp"

namespace salo {

/// One renormalizable output part (paper §4.2 / Eq. 2): a query's softmax
/// weight W over some subset of its keys, and the already-normalized output
/// vector for that subset, held at Q.wsm_frac precision.
struct TilePart {
    int query = -1;
    SumRaw weight = 0;                  ///< W = sum of exp terms (Q.exp_frac)
    std::vector<std::int32_t> out_q;    ///< normalized output, Q.wsm_frac
};

/// Recycling allocator for TileParts. A worker lane executes many tiles per
/// layer; allocating each part's out_q vector fresh dominated the original
/// profile, so the arena keeps every part (and its out_q capacity) alive
/// across reset() and hands out cleared slots in order. Parts are addressed
/// by stable indices — the backing vector may reallocate while spans are
/// being recorded, so callers hold indices, not pointers.
class PartArena {
public:
    /// Forget all parts but keep their buffers for reuse.
    void reset() { used_ = 0; }

    /// Next cleared part with out_q sized to d. Valid until the next reset().
    TilePart& alloc(int d) {
        if (used_ == parts_.size()) parts_.emplace_back();
        TilePart& p = parts_[used_++];
        p.query = -1;
        p.weight = 0;
        p.out_q.assign(static_cast<std::size_t>(d), 0);
        return p;
    }

    /// Discard the most recently alloc()ed part (e.g. a massless part that
    /// carries no contribution); its buffers stay pooled for reuse.
    void drop_last() {
        SALO_ASSERT(used_ > 0);
        --used_;
    }

    std::size_t used() const { return used_; }
    const TilePart& at(std::size_t i) const { return parts_[i]; }

private:
    std::vector<TilePart> parts_;
    std::size_t used_ = 0;
};

/// Where one tile's output parts live: a contiguous index range in the
/// arena of the worker lane that executed the tile. Recording spans per tile
/// lets the merge phase replay parts in schedule order regardless of which
/// lane ran which tile.
struct PartSpan {
    int lane = -1;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
};

/// Per-stage cycle counts for one tile pass (paper Fig. 6's five stages).
struct CycleBreakdown {
    std::int64_t stage[5] = {0, 0, 0, 0, 0};

    std::int64_t total() const {
        std::int64_t t = 0;
        for (std::int64_t s : stage) t += s;
        return t;
    }
};

/// Activity counters for utilization analysis.
struct ActivityStats {
    std::int64_t mac_ops = 0;        ///< useful MAC operations (stages 1 & 5)
    std::int64_t exp_ops = 0;        ///< PWL exponential evaluations
    std::int64_t valid_slots = 0;    ///< pattern elements computed
    std::int64_t array_slots = 0;    ///< rows*cols per tile, summed
    std::int64_t pe_cycles = 0;      ///< rows*cols*cycles, summed

    /// Spatial occupancy: fraction of array slots holding useful work —
    /// the utilization figure compared against Sanger in paper §6.3.
    double occupancy() const {
        return array_slots == 0 ? 0.0
                                : static_cast<double>(valid_slots) /
                                      static_cast<double>(array_slots);
    }
    /// Temporal MAC utilization: useful MAC ops over all PE-cycles (stricter;
    /// includes skew fill/drain and the softmax stages).
    double mac_utilization() const {
        return pe_cycles == 0 ? 0.0
                              : static_cast<double>(mac_ops) /
                                    static_cast<double>(pe_cycles);
    }

    void operator+=(const ActivityStats& other) {
        mac_ops += other.mac_ops;
        exp_ops += other.exp_ops;
        valid_slots += other.valid_slots;
        array_slots += other.array_slots;
        pe_cycles += other.pe_cycles;
    }
};

/// Aggregated simulation statistics for a whole attention layer run.
struct SimStats {
    std::int64_t cycles = 0;
    std::int64_t tiles = 0;
    CycleBreakdown stage_totals;
    ActivityStats activity;

    double latency_ms(double frequency_ghz) const {
        return static_cast<double>(cycles) / (frequency_ghz * 1e6);
    }

    void operator+=(const SimStats& other) {
        cycles += other.cycles;
        tiles += other.tiles;
        for (int s = 0; s < 5; ++s) stage_totals.stage[s] += other.stage_totals.stage[s];
        activity += other.activity;
    }
};

}  // namespace salo
