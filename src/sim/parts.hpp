// Result and statistics types shared by the functional tile executor, the
// cycle-accurate array model and the weighted-sum module.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "numeric/datapath.hpp"

namespace salo {

/// One renormalizable output part (paper §4.2 / Eq. 2): a query's softmax
/// weight W over some subset of its keys, and the already-normalized output
/// vector for that subset, held at Q.wsm_frac precision.
struct TilePart {
    int query = -1;
    SumRaw weight = 0;                  ///< W = sum of exp terms (Q.exp_frac)
    std::vector<std::int32_t> out_q;    ///< normalized output, Q.wsm_frac
};

/// Per-stage cycle counts for one tile pass (paper Fig. 6's five stages).
struct CycleBreakdown {
    std::int64_t stage[5] = {0, 0, 0, 0, 0};

    std::int64_t total() const {
        std::int64_t t = 0;
        for (std::int64_t s : stage) t += s;
        return t;
    }
};

/// Activity counters for utilization analysis.
struct ActivityStats {
    std::int64_t mac_ops = 0;        ///< useful MAC operations (stages 1 & 5)
    std::int64_t exp_ops = 0;        ///< PWL exponential evaluations
    std::int64_t valid_slots = 0;    ///< pattern elements computed
    std::int64_t array_slots = 0;    ///< rows*cols per tile, summed
    std::int64_t pe_cycles = 0;      ///< rows*cols*cycles, summed

    /// Spatial occupancy: fraction of array slots holding useful work —
    /// the utilization figure compared against Sanger in paper §6.3.
    double occupancy() const {
        return array_slots == 0 ? 0.0
                                : static_cast<double>(valid_slots) /
                                      static_cast<double>(array_slots);
    }
    /// Temporal MAC utilization: useful MAC ops over all PE-cycles (stricter;
    /// includes skew fill/drain and the softmax stages).
    double mac_utilization() const {
        return pe_cycles == 0 ? 0.0
                              : static_cast<double>(mac_ops) /
                                    static_cast<double>(pe_cycles);
    }

    void operator+=(const ActivityStats& other) {
        mac_ops += other.mac_ops;
        exp_ops += other.exp_ops;
        valid_slots += other.valid_slots;
        array_slots += other.array_slots;
        pe_cycles += other.pe_cycles;
    }
};

/// Aggregated simulation statistics for a whole attention layer run.
struct SimStats {
    std::int64_t cycles = 0;
    std::int64_t tiles = 0;
    CycleBreakdown stage_totals;
    ActivityStats activity;

    double latency_ms(double frequency_ghz) const {
        return static_cast<double>(cycles) / (frequency_ghz * 1e6);
    }

    void operator+=(const SimStats& other) {
        cycles += other.cycles;
        tiles += other.tiles;
        for (int s = 0; s < 5; ++s) stage_totals.stage[s] += other.stage_totals.stage[s];
        activity += other.activity;
    }
};

}  // namespace salo
