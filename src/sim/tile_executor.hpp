// Functional (bit-accurate, untimed) execution of TileTasks.
//
// Runs the exact integer datapath of the PE array — stage-1 MAC
// accumulation, PWL exponential, reciprocal broadcast, stage-4 normalize,
// stage-5 weighted sum — plus the global PE row and global PE column, and
// emits renormalizable TileParts. The cycle-accurate model produces
// bit-identical values (it calls the same numeric kernels in a timed loop);
// this class is the fast path used for full-layer runs.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "scheduler/tile.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

class TileExecutor {
public:
    /// q/k/v hold raw Q3.4 int8 values for one attention head (n x d).
    TileExecutor(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                 const Matrix<std::int8_t>& q, const Matrix<std::int8_t>& k,
                 const Matrix<std::int8_t>& v);

    /// Execute one tile; appends the tile's output parts (PE-array rows,
    /// global-column contributions, global-row contribution) to `parts` and
    /// updates activity counters.
    void run(const TileTask& tile, std::vector<TilePart>& parts,
             ActivityStats& activity) const;

    /// Stage-1 dot product: sum_t q[qi][t]*k[ki][t], raw Q.acc_frac.
    ScoreRaw score(int qi, int ki) const;

    int head_dim() const { return q_->cols(); }
    int n() const { return q_->rows(); }

private:
    const PwlExp* exp_unit_;
    const Reciprocal* recip_unit_;
    const Matrix<std::int8_t>* q_;
    const Matrix<std::int8_t>* k_;
    const Matrix<std::int8_t>* v_;
};

}  // namespace salo
