// Functional (bit-accurate, untimed) execution of TileTasks.
//
// Runs the exact integer datapath of the PE array — stage-1 MAC
// accumulation, PWL exponential, reciprocal broadcast, stage-4 normalize,
// stage-5 weighted sum — plus the global PE row and global PE column, and
// emits renormalizable TileParts. The cycle-accurate model produces
// bit-identical values (it calls the same numeric kernels in a timed loop);
// this class is the fast path used for full-layer runs.
//
// Two entry points with bit-identical outputs:
//   * run(tile, arena, activity, scratch) — the hot path: dispatched SIMD
//     dot products, segment-wise key streaming (no per-column segment
//     lookups), and arena-recycled parts with zero per-tile heap traffic.
//     Thread-safe: concurrent calls on one executor are fine as long as each
//     worker lane owns its arena and scratch.
//   * run(tile, parts, activity) — the original scalar implementation,
//     preserved verbatim as the reference baseline for bench_throughput and
//     for the bit-identity tests.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "scheduler/tile.hpp"
#include "sim/part_builder.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

class TileExecutor {
public:
    /// q/k/v hold raw Q3.4 int8 values for one attention head (n x d).
    TileExecutor(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                 const Matrix<std::int8_t>& q, const Matrix<std::int8_t>& k,
                 const Matrix<std::int8_t>& v);

    /// Hot path: execute one tile, appending its output parts (PE-array
    /// rows, global-column contributions, global-row contribution, in that
    /// order) to `arena` and updating activity counters. `scratch` is reused
    /// across calls; use one arena + scratch per worker lane.
    void run(const TileTask& tile, PartArena& arena, ActivityStats& activity,
             PartScratch& scratch) const;

    /// Reference path: identical results into a plain vector (the original
    /// per-tile implementation; scalar, allocation-heavy).
    void run(const TileTask& tile, std::vector<TilePart>& parts,
             ActivityStats& activity) const;

    /// Stage-1 dot product: sum_t q[qi][t]*k[ki][t], raw Q.acc_frac.
    /// (Reference scalar form; the hot path uses kernels::dot_i8.)
    ScoreRaw score(int qi, int ki) const;

    int head_dim() const { return q_->cols(); }
    int n() const { return q_->rows(); }

private:
    const PwlExp* exp_unit_;
    const Reciprocal* recip_unit_;
    const Matrix<std::int8_t>* q_;
    const Matrix<std::int8_t>* k_;
    const Matrix<std::int8_t>* v_;
};

}  // namespace salo
