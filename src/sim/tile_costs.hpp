// Per-tile cost extraction and sequential cycle accounting — the contract
// shared by the execution engine, the analytic performance model and the
// event-driven co-simulation kernel (src/cosim/).
//
// tile_cost() reduces one TileTask to the numbers every cycle model needs:
// the closed-form stage breakdown, the input-load footprint, and a
// structural writeback estimate. TileCostAccountant then applies the
// sequential double-buffered load-overlap recurrence the engine has always
// used:
//
//   cycles_0 = load_0 + compute_0
//   cycles_i = compute_i + max(0, load_i - compute_{i-1})   (double-buffered)
//
// The co-simulation ArrayComponent reproduces exactly this recurrence from
// first principles (a fetch process streaming chunks from memory overlapped
// with a compute process), so a single uncontended array's co-simulated
// total must equal TileCostAccountant's total bit-for-bit — the parity gate
// of bench_multiarray and tests/test_cosim_parity.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "scheduler/scheduler.hpp"
#include "scheduler/tile.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/parts.hpp"

namespace salo {

/// Everything the sequential cycle accounting depends on, decoupled from
/// SaloConfig so src/sim and src/cosim need not see the core layer.
struct TileCostParams {
    CycleConfig cycle;
    int head_dim = 64;
    int bus_bytes_per_cycle = 64;  ///< fill-port width of the double-buffered SRAMs
    bool double_buffer = true;
    bool tile_pipelining = false;

    void validate() const {
        cycle.validate();
        if (head_dim < 1)
            throw ContractViolation("TileCostParams: head_dim must be positive (got " +
                                    std::to_string(head_dim) + ")");
        if (bus_bytes_per_cycle < 1)
            throw ContractViolation(
                "TileCostParams: bus_bytes_per_cycle must be positive (got " +
                std::to_string(bus_bytes_per_cycle) + ")");
    }
};

/// Context-free costs of one tile: no sequential (overlap) state.
struct TileCost {
    CycleBreakdown breakdown;        ///< closed-form tile_cycles()
    std::int64_t compute_cycles = 0; ///< breakdown.total()
    std::int64_t load_bytes = 0;     ///< tile_load_bytes()
    std::int64_t load_cycles = 0;    ///< ceil(load_bytes / bus_bytes_per_cycle)
    std::int64_t writeback_bytes = 0;///< structural upper bound, see below
};

/// Structural writeback footprint of one tile: every active window row, every
/// served global-column row and a non-empty global-row pass each emit one
/// TilePart of d int32 output words plus one int32 weight. This is an upper
/// bound (a masslass part — all-zero exponentials — is dropped by the
/// datapath), used only for bus-occupancy modeling, never for results.
inline std::int64_t tile_writeback_bytes(const TileTask& tile, int head_dim) {
    const std::int64_t part_bytes = static_cast<std::int64_t>(head_dim + 1) * 4;
    std::int64_t parts = 0;
    for (int r = 0; r < tile.rows(); ++r) {
        if (tile.query_ids[static_cast<std::size_t>(r)] < 0) continue;
        bool any = false;
        for (int c = 0; c < tile.cols_used() && !any; ++c) any = tile.is_valid(r, c);
        if (any) ++parts;
    }
    if (tile.global_col_key >= 0)
        for (auto served : tile.global_col_rows) parts += served ? 1 : 0;
    for (auto fresh : tile.global_fresh)
        if (fresh) { ++parts; break; }
    return parts * part_bytes;
}

/// Context-free per-tile costs under `params`.
inline TileCost tile_cost(const TileTask& tile, const TileCostParams& params) {
    TileCost cost;
    cost.breakdown = tile_cycles(tile, params.head_dim, params.cycle);
    cost.compute_cycles = cost.breakdown.total();
    cost.load_bytes = tile_load_bytes(tile, params.head_dim);
    cost.load_cycles = (cost.load_bytes + params.bus_bytes_per_cycle - 1) /
                       params.bus_bytes_per_cycle;
    cost.writeback_bytes = tile_writeback_bytes(tile, params.head_dim);
    return cost;
}

/// Sequential cycle accounting over a tile stream. Tiles must be accounted
/// strictly in execution order: both the double-buffered load overlap and
/// the inter-tile stage-3 pipelining depend on the previous tile.
class TileCostAccountant {
public:
    explicit TileCostAccountant(const TileCostParams& params) : params_(params) {}

    struct Step {
        TileCost cost;
        std::int64_t compute_cycles = 0; ///< after the pipelining adjustment
        std::int64_t stall_cycles = 0;   ///< exposed (non-overlapped) load cycles
        std::int64_t cycles = 0;         ///< this tile's contribution to the total
    };

    Step account(const TileCost& cost) {
        Step step;
        step.cost = cost;
        step.compute_cycles = cost.compute_cycles;
        // Inter-tile pipelining: stage 3 (row ripple + reciprocal +
        // broadcast) of the previous tile overlaps this tile's systolic
        // stages, so it is hidden for every tile but the first.
        if (params_.tile_pipelining && !first_tile_)
            step.compute_cycles -= cost.breakdown.stage[2];
        if (!params_.double_buffer || first_tile_) {
            step.stall_cycles = cost.load_cycles;  // nothing to overlap with yet
        } else {
            // The load overlapped the previous tile's compute; stall only
            // for the remainder.
            step.stall_cycles = std::max<std::int64_t>(0, cost.load_cycles - prev_compute_);
        }
        step.cycles = step.compute_cycles + step.stall_cycles;
        prev_compute_ = step.compute_cycles;
        first_tile_ = false;
        total_ += step.cycles;
        return step;
    }

    Step account(const TileTask& tile) { return account(tile_cost(tile, params_)); }

    std::int64_t total_cycles() const { return total_; }
    const TileCostParams& params() const { return params_; }

private:
    TileCostParams params_;
    std::int64_t prev_compute_ = 0;
    std::int64_t total_ = 0;
    bool first_tile_ = true;
};

/// Context-free costs for every tile of a plan, in schedule order — the
/// replay feed for the co-simulation kernel.
inline std::vector<TileCost> plan_tile_costs(const SchedulePlan& plan,
                                             const TileCostParams& params) {
    std::vector<TileCost> costs;
    costs.reserve(plan.tiles.size());
    for (const TileTask& tile : plan.tiles) costs.push_back(tile_cost(tile, params));
    return costs;
}

/// Sequential closed-form total for a tile-cost stream — the single-array
/// parity reference of bench_multiarray.
inline std::int64_t closed_form_cycles(const std::vector<TileCost>& costs,
                                       const TileCostParams& params) {
    TileCostAccountant accountant(params);
    for (const TileCost& cost : costs) accountant.account(cost);
    return accountant.total_cycles();
}

}  // namespace salo
