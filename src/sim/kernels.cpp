#include "sim/kernels.hpp"

#include <cstddef>

#include "numeric/reciprocal.hpp"  // normalize_prob (stage-4 scalar form)

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SALO_X86_DISPATCH 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's AVX-512 intrinsic wrappers pass an undefined vector as the
// ignored merge operand of maskless builtins, tripping -Wuninitialized
// false positives when inlined. Nothing in this TU reads uninitialized data.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

namespace salo {
namespace kernels {

namespace {
inline const std::int8_t* row_ptr(const std::int8_t* base, int key, int d) {
    return base + static_cast<std::size_t>(key) * static_cast<std::size_t>(d);
}
}  // namespace

// ---------------------------------------------------------------------------
// Scalar fallbacks: 4-way unrolled so the accumulator chains don't serialize.
// ---------------------------------------------------------------------------

std::int32_t dot_i8_scalar(const std::int8_t* q, const std::int8_t* k, int d) {
    std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    int t = 0;
    for (; t + 4 <= d; t += 4) {
        a0 += static_cast<std::int32_t>(q[t]) * k[t];
        a1 += static_cast<std::int32_t>(q[t + 1]) * k[t + 1];
        a2 += static_cast<std::int32_t>(q[t + 2]) * k[t + 2];
        a3 += static_cast<std::int32_t>(q[t + 3]) * k[t + 3];
    }
    for (; t < d; ++t) a0 += static_cast<std::int32_t>(q[t]) * k[t];
    return a0 + a1 + a2 + a3;
}

void dot_i8_rows_scalar(const std::int8_t* q, const std::int8_t* kbase, const int* keys,
                        int count, int d, std::int32_t* scores) {
    for (int i = 0; i < count; ++i) scores[i] = dot_i8_scalar(q, row_ptr(kbase, keys[i], d), d);
}

static void axpy_sp_i8_scalar(std::int32_t* acc, std::uint32_t sp, const std::int8_t* v,
                              int d) {
    const std::int32_t s = static_cast<std::int32_t>(sp);
    int t = 0;
    for (; t + 4 <= d; t += 4) {
        acc[t] += s * v[t];
        acc[t + 1] += s * v[t + 1];
        acc[t + 2] += s * v[t + 2];
        acc[t + 3] += s * v[t + 3];
    }
    for (; t < d; ++t) acc[t] += s * v[t];
}

void wacc_sp_i8_scalar(std::int32_t* acc, const std::uint32_t* sps, const int* keys,
                       int count, const std::int8_t* vbase, int d) {
    for (int i = 0; i < count; ++i) {
        if (sps[i] == 0) continue;  // zero weight contributes nothing
        axpy_sp_i8_scalar(acc, sps[i], row_ptr(vbase, keys[i], d), d);
    }
}

void normalize_probs_scalar(const ExpRaw* exps, int count, InvRaw inv,
                            std::uint32_t* sps) {
    for (int i = 0; i < count; ++i) sps[i] = normalize_prob(exps[i], inv);
}

void round_shift_i32_scalar(std::int32_t* v, int count, int shift) {
    for (int i = 0; i < count; ++i)
        v[i] = static_cast<std::int32_t>(round_shift(v[i], shift));
}

void mix_i32_scalar(std::int32_t* out, const std::int32_t* in, std::uint32_t a,
                    std::uint32_t b, int d) {
    constexpr int sf = Datapath::sprime_frac;
    for (int t = 0; t < d; ++t)
        out[t] = static_cast<std::int32_t>(
            round_shift(static_cast<std::int64_t>(a) * out[t] +
                            static_cast<std::int64_t>(b) * in[t],
                        sf));
}

#if defined(SALO_X86_DISPATCH)

// ---------------------------------------------------------------------------
// AVX2. vpmaddwd multiplies int16 lanes pairwise into int32 sums; products of
// two int8 values (|x| <= 128) can never hit the -32768*-32768 edge case, so
// widening to int16 and using madd is exact.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) static inline std::int32_t hsum_epi32_avx2(__m256i acc) {
    __m128i lo = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
    lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
    lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(lo);
}

__attribute__((target("avx2"))) static std::int32_t dot_i8_avx2(const std::int8_t* q,
                                                                const std::int8_t* k,
                                                                int d) {
    __m256i acc = _mm256_setzero_si256();
    int t = 0;
    for (; t + 16 <= d; t += 16) {
        const __m256i qw = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + t)));
        const __m256i kw = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + t)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(qw, kw));
    }
    std::int32_t sum = hsum_epi32_avx2(acc);
    for (; t < d; ++t) sum += static_cast<std::int32_t>(q[t]) * k[t];
    return sum;
}

/// Register-cached query row: widen q once, then stream each key row
/// through madd. d up to 128 keeps the q cache within 8 ymm registers.
__attribute__((target("avx2"))) static void dot_i8_rows_avx2(const std::int8_t* q,
                                                             const std::int8_t* kbase,
                                                             const int* keys, int count,
                                                             int d, std::int32_t* scores) {
    if (d % 16 != 0 || d > 128) {
        for (int i = 0; i < count; ++i)
            scores[i] = dot_i8_avx2(q, row_ptr(kbase, keys[i], d), d);
        return;
    }
    const int nb = d / 16;
    __m256i qv[8];
    for (int b = 0; b < nb; ++b)
        qv[b] = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + 16 * b)));
    for (int i = 0; i < count; ++i) {
        const std::int8_t* k = row_ptr(kbase, keys[i], d);
        __m256i acc = _mm256_setzero_si256();
        for (int b = 0; b < nb; ++b) {
            const __m256i kw = _mm256_cvtepi8_epi16(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + 16 * b)));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(qv[b], kw));
        }
        scores[i] = hsum_epi32_avx2(acc);
    }
}

__attribute__((target("avx2"))) static void axpy_sp_i8_avx2(std::int32_t* acc,
                                                            std::uint32_t sp,
                                                            const std::int8_t* v, int d) {
    const __m256i s = _mm256_set1_epi32(static_cast<std::int32_t>(sp));
    int t = 0;
    for (; t + 8 <= d; t += 8) {
        const __m256i vw = _mm256_cvtepi8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(v + t)));
        const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + t));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + t),
                            _mm256_add_epi32(a, _mm256_mullo_epi32(s, vw)));
    }
    const std::int32_t ss = static_cast<std::int32_t>(sp);
    for (; t < d; ++t) acc[t] += ss * v[t];
}

/// Register-cached accumulator: the row's output vector stays in registers
/// while every weighted V row streams through. d up to 64 keeps it within
/// 8 ymm registers.
__attribute__((target("avx2"))) static void wacc_sp_i8_avx2(std::int32_t* acc,
                                                            const std::uint32_t* sps,
                                                            const int* keys, int count,
                                                            const std::int8_t* vbase,
                                                            int d) {
    if (d % 8 != 0 || d > 64) {
        for (int i = 0; i < count; ++i)
            if (sps[i] != 0) axpy_sp_i8_avx2(acc, sps[i], row_ptr(vbase, keys[i], d), d);
        return;
    }
    const int nb = d / 8;
    __m256i av[8];
    for (int b = 0; b < nb; ++b)
        av[b] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + 8 * b));
    for (int i = 0; i < count; ++i) {
        if (sps[i] == 0) continue;
        const __m256i s = _mm256_set1_epi32(static_cast<std::int32_t>(sps[i]));
        const std::int8_t* v = row_ptr(vbase, keys[i], d);
        for (int b = 0; b < nb; ++b) {
            const __m256i vw = _mm256_cvtepi8_epi32(
                _mm_loadl_epi64(reinterpret_cast<const __m128i*>(v + 8 * b)));
            av[b] = _mm256_add_epi32(av[b], _mm256_mullo_epi32(s, vw));
        }
    }
    for (int b = 0; b < nb; ++b)
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 8 * b), av[b]);
}

// ---------------------------------------------------------------------------
// AVX-512BW: same structure at 512-bit width (32 int8 products per madd).
// ---------------------------------------------------------------------------

__attribute__((target("avx512bw"))) static std::int32_t dot_i8_avx512(
    const std::int8_t* q, const std::int8_t* k, int d) {
    __m512i acc = _mm512_setzero_si512();
    int t = 0;
    for (; t + 32 <= d; t += 32) {
        const __m512i qw = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + t)));
        const __m512i kw = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k + t)));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(qw, kw));
    }
    std::int32_t sum = _mm512_reduce_add_epi32(acc);
    for (; t < d; ++t) sum += static_cast<std::int32_t>(q[t]) * k[t];
    return sum;
}

__attribute__((target("avx512bw"))) static void dot_i8_rows_avx512(
    const std::int8_t* q, const std::int8_t* kbase, const int* keys, int count, int d,
    std::int32_t* scores) {
    if (d % 32 != 0 || d > 256) {
        for (int i = 0; i < count; ++i)
            scores[i] = dot_i8_avx512(q, row_ptr(kbase, keys[i], d), d);
        return;
    }
    const int nb = d / 32;
    __m512i qv[8];
    for (int b = 0; b < nb; ++b)
        qv[b] = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + 32 * b)));
    for (int i = 0; i < count; ++i) {
        const std::int8_t* k = row_ptr(kbase, keys[i], d);
        __m512i acc = _mm512_setzero_si512();
        for (int b = 0; b < nb; ++b) {
            const __m512i kw = _mm512_cvtepi8_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k + 32 * b)));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(qv[b], kw));
        }
        scores[i] = _mm512_reduce_add_epi32(acc);
    }
}

__attribute__((target("avx512bw"))) static void axpy_sp_i8_avx512(std::int32_t* acc,
                                                                  std::uint32_t sp,
                                                                  const std::int8_t* v,
                                                                  int d) {
    const __m512i s = _mm512_set1_epi32(static_cast<std::int32_t>(sp));
    int t = 0;
    for (; t + 16 <= d; t += 16) {
        const __m512i vw = _mm512_cvtepi8_epi32(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + t)));
        const __m512i a = _mm512_loadu_si512(acc + t);
        _mm512_storeu_si512(acc + t, _mm512_add_epi32(a, _mm512_mullo_epi32(s, vw)));
    }
    const std::int32_t ss = static_cast<std::int32_t>(sp);
    for (; t < d; ++t) acc[t] += ss * v[t];
}

__attribute__((target("avx512bw"))) static void wacc_sp_i8_avx512(std::int32_t* acc,
                                                                  const std::uint32_t* sps,
                                                                  const int* keys,
                                                                  int count,
                                                                  const std::int8_t* vbase,
                                                                  int d) {
    if (d % 16 != 0 || d > 128) {
        for (int i = 0; i < count; ++i)
            if (sps[i] != 0)
                axpy_sp_i8_avx512(acc, sps[i], row_ptr(vbase, keys[i], d), d);
        return;
    }
    const int nb = d / 16;
    __m512i av[8];
    for (int b = 0; b < nb; ++b) av[b] = _mm512_loadu_si512(acc + 16 * b);
    for (int i = 0; i < count; ++i) {
        if (sps[i] == 0) continue;
        const __m512i s = _mm512_set1_epi32(static_cast<std::int32_t>(sps[i]));
        const std::int8_t* v = row_ptr(vbase, keys[i], d);
        for (int b = 0; b < nb; ++b) {
            const __m512i vw = _mm512_cvtepi8_epi32(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + 16 * b)));
            av[b] = _mm512_add_epi32(av[b], _mm512_mullo_epi32(s, vw));
        }
    }
    for (int b = 0; b < nb; ++b) _mm512_storeu_si512(acc + 16 * b, av[b]);
}

// ---------------------------------------------------------------------------
// Batched stage-2/3/4 and Eq.2 kernels: 64-bit lanes (AVX-512F/DQ), every
// operation the exact integer op of the scalar code. The data-dependent
// branches of the scalar forms (clamps, rounding direction, saturation)
// become mask/min/max operations — same results, no branch misses.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f,avx512dq"))) static int pwl_exp_batch_avx512(
    const PwlExpParams& p, const ScoreRaw* x, ExpRaw* out, int count) {
    // y = x * log2(e): Q.8 * Q.16 -> Q.24 >> 8 -> Q.16.
    const __m512i log2e = _mm512_set1_epi64(94548);
    const __m512i y_lo = _mm512_set1_epi64(static_cast<std::int64_t>(p.y_min) << 16);
    const __m512i y_hi = _mm512_set1_epi64(static_cast<std::int64_t>(p.y_max) << 16);
    // The 8-segment chord LUTs, one int64 lane per segment.
    const __m512i slope_lut = _mm512_cvtepi32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.slope)));
    const __m512i icept_lut = _mm512_cvtepi32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.icept)));
    const __m512i shift_bias = _mm512_set1_epi64(Datapath::exp_frac - p.lut_frac);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i one64 = _mm512_set1_epi64(1);
    const __m512i u32max = _mm512_set1_epi64(0xFFFFFFFFll);

    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m512i xv = _mm512_cvtepi32_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
        __m512i y = _mm512_srai_epi64(_mm512_mullo_epi64(xv, log2e), 8);
        y = _mm512_max_epi64(y, y_lo);
        y = _mm512_min_epi64(y, y_hi);
        const __m512i yi = _mm512_srai_epi64(y, 16);
        const __m512i yf = _mm512_sub_epi64(y, _mm512_slli_epi64(yi, 16));
        const __m512i seg = _mm512_srli_epi64(yf, 16 - 3);  // 8 segments
        const __m512i slope = _mm512_permutexvar_epi64(seg, slope_lut);
        const __m512i icept = _mm512_permutexvar_epi64(seg, icept_lut);
        __m512i m = _mm512_add_epi64(
            _mm512_srai_epi64(_mm512_mullo_epi64(slope, yf), 16), icept);
        m = _mm512_max_epi64(m, zero);
        const __m512i shift = _mm512_add_epi64(yi, shift_bias);
        // shift >= 0: m << shift (cannot overflow int64 under the caller's
        // parameter bounds; see PwlExp::exp_raw_batch). Lanes with negative
        // shift produce garbage here and are blended away.
        const __m512i pos = _mm512_sllv_epi64(m, shift);
        // shift < 0: (m + (1 << (-shift-1))) >> -shift, m >= 0 so srl == sra.
        const __m512i ns = _mm512_sub_epi64(zero, shift);
        const __m512i half = _mm512_sllv_epi64(one64, _mm512_sub_epi64(ns, one64));
        const __m512i neg = _mm512_srlv_epi64(_mm512_add_epi64(m, half), ns);
        const __mmask8 is_neg = _mm512_cmplt_epi64_mask(shift, zero);
        __m512i res = _mm512_mask_blend_epi64(is_neg, pos, neg);
        res = _mm512_min_epu64(res, u32max);  // ExpRaw saturation
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm512_cvtepi64_epi32(res));
    }
    return i;
}

__attribute__((target("avx512f,avx512dq"))) static void normalize_probs_avx512(
    const ExpRaw* exps, int count, InvRaw inv, std::uint32_t* sps) {
    constexpr int shift = Datapath::exp_frac + Datapath::inv_frac - Datapath::sprime_frac;
    const __m512i invv = _mm512_set1_epi64(static_cast<std::int64_t>(inv));
    const __m512i half = _mm512_set1_epi64(std::int64_t{1} << (shift - 1));
    const __m512i satmax = _mm512_set1_epi64(0xFFFF);
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m512i e = _mm512_cvtepu32_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(exps + i)));
        // exp*inv <= 2^44: the 64-bit product is exact (same as scalar).
        __m512i q = _mm512_srli_epi64(
            _mm512_add_epi64(_mm512_mullo_epi64(e, invv), half), shift);
        q = _mm512_min_epu64(q, satmax);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(sps + i),
                            _mm512_cvtepi64_epi32(q));
    }
    for (; i < count; ++i) sps[i] = normalize_prob(exps[i], inv);
}

__attribute__((target("avx512f"))) static void round_shift_i32_avx512(std::int32_t* v,
                                                                      int count,
                                                                      int shift) {
    const __m512i half = _mm512_set1_epi32(std::int32_t{1} << (shift - 1));
    const __m512i zero = _mm512_setzero_si512();
    int i = 0;
    for (; i + 16 <= count; i += 16) {
        const __m512i x = _mm512_loadu_si512(v + i);
        const __m512i r = _mm512_srli_epi32(
            _mm512_add_epi32(_mm512_abs_epi32(x), half), static_cast<unsigned>(shift));
        const __mmask16 neg = _mm512_cmplt_epi32_mask(x, zero);
        _mm512_storeu_si512(v + i, _mm512_mask_sub_epi32(r, neg, zero, r));
    }
    for (; i < count; ++i) {
        const std::int32_t x = v[i];
        const std::int32_t mag = (x >= 0 ? x : -x);
        const std::int32_t r = (mag + (std::int32_t{1} << (shift - 1))) >> shift;
        v[i] = x >= 0 ? r : -r;
    }
}

__attribute__((target("avx512f,avx512dq"))) static void mix_i32_avx512(
    std::int32_t* out, const std::int32_t* in, std::uint32_t a, std::uint32_t b, int d) {
    constexpr int sf = Datapath::sprime_frac;
    const __m512i av = _mm512_set1_epi64(static_cast<std::int64_t>(a));
    const __m512i bv = _mm512_set1_epi64(static_cast<std::int64_t>(b));
    const __m512i half = _mm512_set1_epi64(std::int64_t{1} << (sf - 1));
    const __m512i zero = _mm512_setzero_si512();
    int t = 0;
    for (; t + 8 <= d; t += 8) {
        const __m512i o = _mm512_cvtepi32_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + t)));
        const __m512i p = _mm512_cvtepi32_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + t)));
        const __m512i mixed = _mm512_add_epi64(_mm512_mullo_epi64(av, o),
                                               _mm512_mullo_epi64(bv, p));
        const __m512i r = _mm512_srli_epi64(
            _mm512_add_epi64(_mm512_abs_epi64(mixed), half), sf);
        const __mmask8 neg = _mm512_cmplt_epi64_mask(mixed, zero);
        const __m512i res = _mm512_mask_sub_epi64(r, neg, zero, r);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t),
                            _mm512_cvtepi64_epi32(res));
    }
    if (t < d) mix_i32_scalar(out + t, in + t, a, b, d - t);
}

static DotI8Fn pick_dot() {
    if (__builtin_cpu_supports("avx512bw")) return dot_i8_avx512;
    if (__builtin_cpu_supports("avx2")) return dot_i8_avx2;
    return dot_i8_scalar;
}
static RowDotFn pick_row_dot() {
    if (__builtin_cpu_supports("avx512bw")) return dot_i8_rows_avx512;
    if (__builtin_cpu_supports("avx2")) return dot_i8_rows_avx2;
    return dot_i8_rows_scalar;
}
static WaccFn pick_wacc() {
    if (__builtin_cpu_supports("avx512bw")) return wacc_sp_i8_avx512;
    if (__builtin_cpu_supports("avx2")) return wacc_sp_i8_avx2;
    return wacc_sp_i8_scalar;
}
static bool avx512_dq_ok() {
    return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq");
}
static PwlExpBatchFn pick_pwl_batch() {
    return avx512_dq_ok() ? pwl_exp_batch_avx512 : nullptr;
}
static NormProbsFn pick_norm() {
    return avx512_dq_ok() ? normalize_probs_avx512 : normalize_probs_scalar;
}
static RoundShiftFn pick_round_shift() {
    return __builtin_cpu_supports("avx512f") ? round_shift_i32_avx512
                                             : round_shift_i32_scalar;
}
static MixFn pick_mix() { return avx512_dq_ok() ? mix_i32_avx512 : mix_i32_scalar; }
static const char* pick_name() {
    if (__builtin_cpu_supports("avx512bw")) return "avx512bw";
    if (__builtin_cpu_supports("avx2")) return "avx2";
    return "scalar";
}

const DotI8Fn dot_i8 = pick_dot();
const RowDotFn dot_i8_rows = pick_row_dot();
const WaccFn wacc_sp_i8 = pick_wacc();
const PwlExpBatchFn pwl_exp_batch = pick_pwl_batch();
const NormProbsFn normalize_probs = pick_norm();
const RoundShiftFn round_shift_i32 = pick_round_shift();
const MixFn mix_i32 = pick_mix();
const char* isa_name() { return pick_name(); }

#else  // !SALO_X86_DISPATCH

const DotI8Fn dot_i8 = dot_i8_scalar;
const RowDotFn dot_i8_rows = dot_i8_rows_scalar;
const WaccFn wacc_sp_i8 = wacc_sp_i8_scalar;
const PwlExpBatchFn pwl_exp_batch = nullptr;
const NormProbsFn normalize_probs = normalize_probs_scalar;
const RoundShiftFn round_shift_i32 = round_shift_i32_scalar;
const MixFn mix_i32 = mix_i32_scalar;
const char* isa_name() { return "scalar"; }

#endif

}  // namespace kernels
}  // namespace salo
