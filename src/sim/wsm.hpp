// Weighted-sum module (paper §5.3).
//
// Postprocesses the per-part outputs produced by window splitting: given a
// running (W_prev, out_prev) and a new part (W_new, out_new), it computes
//
//   out = W_prev/(W_prev+W_new) * out_prev + W_new/(W_prev+W_new) * out_new
//
// which is exactly Eq. 2 / Appendix A — the renormalization that recovers
// the unsplit softmax. Hardware cost per PE row: two multipliers and an
// adder, plus one reciprocal evaluation shared with the stage-3 unit. The
// running output is held with wsm_frac guard bits; the final emission
// quantizes to the paper's 16-bit output format.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "numeric/fixed.hpp"
#include "numeric/reciprocal.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

class WeightedSumModule {
public:
    /// n queries, head dimension d.
    WeightedSumModule(int n, int d, const Reciprocal& recip_unit);

    /// Merge one part into the running output of part.query (Eq. 2).
    ///
    /// All merge state is per-query, so concurrent merges are safe whenever
    /// the callers' query sets are disjoint — the property the parallel
    /// engine exploits by sharding queries across worker lanes. The merge
    /// *order within one query* still determines the rounded result; the
    /// engine replays each shard's parts in schedule order to stay
    /// bit-identical to the sequential pass.
    void merge(const TilePart& part);

    /// Sharded merge: apply `part` only if its query falls in [q_lo, q_hi).
    /// Returns true if the part was merged. One worker lane per shard, with
    /// disjoint ranges covering [0, n), merges a full part stream in
    /// parallel while preserving the per-query merge order.
    bool merge_shard(const TilePart& part, int q_lo, int q_hi);

    /// Number of parts merged so far (diagnostics).
    std::int64_t merges() const { return merges_.load(std::memory_order_relaxed); }

    /// Final outputs as raw 16-bit Q7.8 (the accelerator's output format).
    Matrix<std::int16_t> finalize_raw() const;

    /// Final outputs dequantized to float.
    Matrix<float> finalize() const;

private:
    const Reciprocal* recip_unit_;
    int n_;
    int d_;
    std::vector<SumRaw> weight_;                ///< running W per query
    std::vector<std::int32_t> out_q_;           ///< running outputs, Q.wsm_frac
    std::vector<std::uint8_t> initialized_;
    std::atomic<std::int64_t> merges_{0};       ///< relaxed; exact after join
};

}  // namespace salo
