// Closed-form per-tile cycle counts for the 5-stage datapath (paper Fig. 6).
//
// These formulas are the contract between the cycle-accurate array model
// (which derives the same numbers from an explicit per-cycle simulation) and
// the analytic performance model used for full-size workloads; tests assert
// they agree.
#pragma once

#include <string>

#include "common/assert.hpp"
#include "numeric/reciprocal.hpp"
#include "scheduler/geometry.hpp"
#include "scheduler/tile.hpp"
#include "sim/parts.hpp"

namespace salo {

struct CycleConfig {
    int exp_cycles = 3;      ///< stage 2: y = x*log2e MAC, PWL MAC, shift
    int broadcast_cycles = 1;///< stage 3: bus broadcast of 1/W back to the row
    int stage4_cycles = 1;   ///< stage 4: parallel multiply
    int wsm_cycles = 2;      ///< stage 5 tail: weighted-sum module pipeline
    Reciprocal::Config recip;///< stage 3: reciprocal unit latency

    /// Reject non-physical stage latencies with a ContractViolation naming
    /// the offending field. A zero or negative stage count silently deflates
    /// every cycle total downstream (formulas, engine accounting, co-sim),
    /// so every consumer of a CycleConfig validates at construction.
    void validate() const {
        auto at_least = [](const char* field, int value, int min) {
            if (value < min)
                throw ContractViolation("CycleConfig: " + std::string(field) +
                                        " must be >= " + std::to_string(min) + " (got " +
                                        std::to_string(value) + ")");
        };
        at_least("exp_cycles", exp_cycles, 1);
        at_least("broadcast_cycles", broadcast_cycles, 1);
        at_least("stage4_cycles", stage4_cycles, 1);
        at_least("wsm_cycles", wsm_cycles, 0);
        // Mirror the Reciprocal unit's own construction bounds so a bad
        // latency config fails here, by name, not in the unit's assert.
        if (recip.nr_iters < 0 || recip.nr_iters > 6)
            throw ContractViolation("CycleConfig: recip.nr_iters must be in [0, 6] (got " +
                                    std::to_string(recip.nr_iters) + ")");
        if (recip.lut_bits < 1 || recip.lut_bits > 12)
            throw ContractViolation("CycleConfig: recip.lut_bits must be in [1, 12] (got " +
                                    std::to_string(recip.lut_bits) + ")");
    }
};

/// Cycle counts for one tile with head dimension d.
///
///   stage 1: output-stationary systolic Q*K^T — d MACs per PE, skewed by
///            row+column position: d + rows + cols_used - 2 cycles;
///   stage 2: PWL exponential, all PEs in parallel;
///   stage 3: row-ripple accumulation (cols_used) + reciprocal + broadcast;
///   stage 4: one multiply;
///   stage 5: weight-stationary S'*V — output elements exit the row after
///            d + cols_used - 1 cycles, plus the weighted-sum pipeline.
inline CycleBreakdown tile_cycles(const TileTask& tile, int head_dim,
                                  const CycleConfig& cfg) {
    const int rows = tile.rows();
    const int cu = tile.cols_used() > 0 ? tile.cols_used() : 1;
    CycleBreakdown b;
    b.stage[0] = head_dim + rows + cu - 2;
    b.stage[1] = cfg.exp_cycles;
    b.stage[2] = cu + cfg.recip.latency() + cfg.broadcast_cycles;
    b.stage[3] = cfg.stage4_cycles;
    b.stage[4] = head_dim + cu - 1 + cfg.wsm_cycles;
    return b;
}

/// Input bytes one tile loads into the double-buffered SRAMs: the query
/// block (8-bit), the diagonal K and V streams, and the global column's
/// key/value vectors. Shared by the engine and the analytic model.
inline std::int64_t tile_load_bytes(const TileTask& tile, int head_dim) {
    std::int64_t active_rows = 0;
    for (auto qid : tile.query_ids) active_rows += qid >= 0 ? 1 : 0;
    std::int64_t bytes = active_rows * head_dim;  // queries
    bytes += static_cast<std::int64_t>(tile.total_stream_length()) * head_dim * 2;  // K+V
    if (tile.global_col_key >= 0) bytes += 2 * head_dim;  // k_g + v_g
    return bytes;
}

}  // namespace salo
