// Shared construction of a normalized TilePart from raw scores — the
// stage 2-5 datapath applied to one PE row (or to the global PE row/column).
// Both the functional TileExecutor and the cycle-accurate array model call
// this, so their outputs agree bit-for-bit by construction on the shared
// stages; the cycle-accurate model re-derives stages 1/3/5 per cycle and is
// cross-checked against this path by tests.
#pragma once

#include <vector>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Build the normalized output part for `query` given its raw scores and
/// the key ids they belong to. Updates exp/MAC activity counters.
TilePart build_part(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                    const Matrix<std::int8_t>& v, int query,
                    const std::vector<ScoreRaw>& scores, const std::vector<int>& key_ids,
                    ActivityStats& activity);

}  // namespace salo
