// Shared construction of a normalized TilePart from raw scores — the
// stage 2-5 datapath applied to one PE row (or to the global PE row/column).
// Both the functional TileExecutor and the cycle-accurate array model call
// this, so their outputs agree bit-for-bit by construction on the shared
// stages; the cycle-accurate model re-derives stages 1/3/5 per cycle and is
// cross-checked against this path by tests.
#pragma once

#include <vector>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Build the normalized output part for `query` given its raw scores and
/// the key ids they belong to. Updates exp/MAC activity counters.
/// Reference implementation: allocates the part and accumulates stage 5 in
/// int64, exactly as the original datapath model did. Kept as the baseline
/// for bench_throughput and for bit-identity tests against the fast path.
TilePart build_part(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                    const Matrix<std::int8_t>& v, int query,
                    const std::vector<ScoreRaw>& scores, const std::vector<int>& key_ids,
                    ActivityStats& activity);

/// Scratch buffers reused across build_part_into calls (no per-part heap
/// traffic). One instance per worker lane.
struct PartScratch {
    std::vector<ScoreRaw> scores;
    std::vector<int> keys;
    std::vector<ExpRaw> exps;
    std::vector<std::uint32_t> sps;  ///< stage-4 probabilities (Q.15)
};

/// Fast path: same computation as build_part, written into an arena-owned
/// part. Stage 5 accumulates sp * v directly into part.out_q in int32 —
/// exact, because the Q.15 probabilities of a row sum to ~1.0 (bounded by
/// 1 + the reciprocal unit's relative error), keeping |acc| < 2^23 — and
/// the final Q.19 -> Q.wsm_frac renormalization happens in place.
/// Bit-identical to build_part for every input (tested).
void build_part_into(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                     const Matrix<std::int8_t>& v, int query, const ScoreRaw* scores,
                     const int* key_ids, int count, ActivityStats& activity,
                     TilePart& part, PartScratch& scratch);

}  // namespace salo
