// Hot-path integer kernels of the functional simulator.
//
// The loops that dominate full-layer runs are the stage-1 dot products
// (int8 x int8 -> int32) and the stage-5 weighted accumulation (Q.15
// probability x int8 value -> int32). Both are pure integer, so any
// vectorization or reassociation is bit-exact: integer addition is
// associative, and every intermediate fits its lane width (see the proofs
// at the declarations).
//
// Besides plain element kernels, row-batched forms amortize per-call cost
// across a PE row's keys: dot_i8_rows holds the query row widened in
// registers while streaming the row's K vectors; wacc_sp_i8 holds the
// output accumulator in registers while streaming the row's V vectors.
//
// Kernels are dispatched at load time to the widest ISA the host CPU
// supports (AVX-512BW > AVX2 > unrolled scalar) via GCC/Clang target
// attributes — no special compile flags needed, and the binary stays
// runnable on any x86-64. Non-x86 builds get the unrolled scalar kernels.
#pragma once

#include <cstdint>

#include "numeric/datapath.hpp"

namespace salo {
namespace kernels {

/// sum_t q[t]*k[t] over d int8 elements, accumulated in int32.
/// Exact: |product| <= 2^14, d <= 2^16 in practice => |sum| < 2^31.
using DotI8Fn = std::int32_t (*)(const std::int8_t* q, const std::int8_t* k, int d);

/// scores[i] = sum_t q[t] * kbase[keys[i]*d + t] for i in [0, count):
/// one query row against a gathered set of key rows.
using RowDotFn = void (*)(const std::int8_t* q, const std::int8_t* kbase,
                          const int* keys, int count, int d, std::int32_t* scores);

/// acc[t] += sum_i sps[i] * vbase[keys[i]*d + t]: a whole row's stage-5
/// weighted sum in one call (sps entries may be zero; they contribute 0).
using WaccFn = void (*)(std::int32_t* acc, const std::uint32_t* sps, const int* keys,
                        int count, const std::int8_t* vbase, int d);

/// LUT pointers and bit-layout of one PwlExp instance, passed to the
/// batched stage-2 kernel (kernels must not depend on the numeric classes).
struct PwlExpParams {
    const std::int32_t* slope;  ///< 2^seg_bits chord slopes, Q.lut_frac
    const std::int32_t* icept;  ///< 2^seg_bits chord intercepts, Q.lut_frac
    int lut_frac = 0;
    int y_min = 0;
    int y_max = 0;
};

/// Batched PWL exponential: out[i] = exp_raw(x[i]) for a *fixed 8-segment
/// LUT* (seg_bits == 3, the paper's configuration). Returns the number of
/// leading elements processed (a multiple of the lane width; the caller
/// finishes the tail with the scalar evaluation). Bit-identical to
/// PwlExp::exp_raw by construction — every step is the same integer op, and
/// the scalar saturation branches are unreachable under the parameter
/// bounds the caller checks (see exp_batch in src/sim/part_builder.cpp).
using PwlExpBatchFn = int (*)(const PwlExpParams& p, const ScoreRaw* x, ExpRaw* out,
                              int count);

/// sps[i] = normalize_prob(exps[i], inv) for i in [0, count).
using NormProbsFn = void (*)(const ExpRaw* exps, int count, InvRaw inv,
                             std::uint32_t* sps);

/// In-place round-to-nearest (ties away from zero) right shift:
/// v[i] = round_shift(v[i], shift) with shift in (0, 31).
/// Contract: |v[i]| + 2^(shift-1) must fit int32 (callers pass stage-5
/// accumulators bounded by 2^23); values near INT32_MAX would overflow the
/// 32-bit magnitude-plus-half step.
using RoundShiftFn = void (*)(std::int32_t* v, int count, int shift);

/// Eq. 2 mix: out[t] = round_shift(a*out[t] + b*in[t], Datapath::sprime_frac)
/// with a, b <= 2^sprime_frac — the weighted-sum module's inner loop.
using MixFn = void (*)(std::int32_t* out, const std::int32_t* in, std::uint32_t a,
                       std::uint32_t b, int d);

/// Dispatched entry points (resolved once, before main()).
extern const DotI8Fn dot_i8;
extern const RowDotFn dot_i8_rows;
extern const WaccFn wacc_sp_i8;
extern const PwlExpBatchFn pwl_exp_batch;  ///< nullptr when no SIMD support
extern const NormProbsFn normalize_probs;
extern const RoundShiftFn round_shift_i32;
extern const MixFn mix_i32;

/// Portable unrolled-scalar implementations (always available; used as the
/// dispatch fallback and by tests to pin down bit-identity).
std::int32_t dot_i8_scalar(const std::int8_t* q, const std::int8_t* k, int d);
void dot_i8_rows_scalar(const std::int8_t* q, const std::int8_t* kbase, const int* keys,
                        int count, int d, std::int32_t* scores);
void wacc_sp_i8_scalar(std::int32_t* acc, const std::uint32_t* sps, const int* keys,
                       int count, const std::int8_t* vbase, int d);
void normalize_probs_scalar(const ExpRaw* exps, int count, InvRaw inv,
                            std::uint32_t* sps);
void round_shift_i32_scalar(std::int32_t* v, int count, int shift);
void mix_i32_scalar(std::int32_t* out, const std::int32_t* in, std::uint32_t a,
                    std::uint32_t b, int d);

/// Name of the ISA level the dispatcher selected ("avx512bw", "avx2",
/// "scalar"); surfaced by bench_throughput's JSON output.
const char* isa_name();

}  // namespace kernels
}  // namespace salo
