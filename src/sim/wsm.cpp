#include "sim/wsm.hpp"

#include "common/assert.hpp"
#include "sim/kernels.hpp"

namespace salo {

namespace {
/// w/(W_total) as Q.sprime_frac, given inv = 1/W_total at Q.inv_frac.
/// Same renormalization shape as normalize_prob but for wide weights.
std::uint32_t normalize_weight(SumRaw w, InvRaw inv) {
    // w <= W_total and inv ~= 2^(exp+inv frac)/W_total, so the product is
    // bounded by 2^(exp_frac+inv_frac) = 2^44: no 64-bit overflow.
    const std::uint64_t prod = w * inv;
    const int shift = Datapath::exp_frac + Datapath::inv_frac - Datapath::sprime_frac;
    std::uint64_t q = (prod + (std::uint64_t{1} << (shift - 1))) >> shift;
    const std::uint64_t one = std::uint64_t{1} << Datapath::sprime_frac;
    if (q > one) q = one;  // rounding can nudge just past 1.0
    return static_cast<std::uint32_t>(q);
}
}  // namespace

WeightedSumModule::WeightedSumModule(int n, int d, const Reciprocal& recip_unit)
    : recip_unit_(&recip_unit), n_(n), d_(d),
      weight_(static_cast<std::size_t>(n), 0),
      out_q_(static_cast<std::size_t>(n) * static_cast<std::size_t>(d), 0),
      initialized_(static_cast<std::size_t>(n), 0) {
    SALO_EXPECTS(n >= 1 && d >= 1);
}

bool WeightedSumModule::merge_shard(const TilePart& part, int q_lo, int q_hi) {
    if (part.query < q_lo || part.query >= q_hi) return false;
    merge(part);
    return true;
}

void WeightedSumModule::merge(const TilePart& part) {
    SALO_EXPECTS(part.query >= 0 && part.query < n_);
    SALO_EXPECTS(static_cast<int>(part.out_q.size()) == d_);
    if (part.weight == 0) return;  // massless part: no contribution
    merges_.fetch_add(1, std::memory_order_relaxed);
    const auto qi = static_cast<std::size_t>(part.query);
    std::int32_t* out = &out_q_[qi * static_cast<std::size_t>(d_)];
    if (!initialized_[qi]) {
        initialized_[qi] = 1;
        weight_[qi] = part.weight;
        for (int t = 0; t < d_; ++t) out[t] = part.out_q[static_cast<std::size_t>(t)];
        return;
    }
    const SumRaw w_prev = weight_[qi];
    const SumRaw w_new = part.weight;
    const SumRaw w_total = w_prev + w_new;
    const InvRaw inv = recip_unit_->inv_raw(w_total);
    const std::uint32_t a = normalize_weight(w_prev, inv);  // Q.15
    const std::uint32_t b = normalize_weight(w_new, inv);   // Q.15
    // out[t] = round_shift(a*out[t] + b*part[t], sprime_frac), vectorized.
    kernels::mix_i32(out, part.out_q.data(), a, b, d_);
    weight_[qi] = w_total;
}

Matrix<std::int16_t> WeightedSumModule::finalize_raw() const {
    Matrix<std::int16_t> out(n_, d_, 0);
    constexpr int shift = Datapath::wsm_frac - Datapath::out_frac;  // 8
    for (int i = 0; i < n_; ++i) {
        if (!initialized_[static_cast<std::size_t>(i)]) continue;
        const std::int32_t* src =
            &out_q_[static_cast<std::size_t>(i) * static_cast<std::size_t>(d_)];
        for (int t = 0; t < d_; ++t)
            out(i, t) = static_cast<std::int16_t>(
                OutputFx::from_raw(round_shift(src[t], shift)).raw());
    }
    return out;
}

Matrix<float> WeightedSumModule::finalize() const {
    const Matrix<std::int16_t> raw = finalize_raw();
    return raw.map<float>(
        [](std::int16_t r) { return OutputFx::from_raw(r).to_float(); });
}

}  // namespace salo
