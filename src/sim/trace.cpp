#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace salo {

std::string render_tile(const TileTask& tile) {
    std::ostringstream os;
    const int rows = tile.rows();
    const int cols = tile.cols();
    os << "tile: " << tile.segments.size() << " segment(s)";
    for (const TileSegment& s : tile.segments)
        os << " [band " << s.band << ": cols " << s.col_begin << ".." << s.col_end - 1
           << ", key_base " << s.key_base << ", dilation " << s.dilation << "]";
    if (tile.global_row_query >= 0) os << " global_row_q=" << tile.global_row_query;
    if (tile.global_col_key >= 0) os << " global_col_k=" << tile.global_col_key;
    os << "\n";
    for (int r = 0; r < rows; ++r) {
        const int q = tile.query_ids[static_cast<std::size_t>(r)];
        os << (q >= 0 ? "q" + std::to_string(q) : std::string("--"));
        os << "\t";
        for (int c = 0; c < cols; ++c) {
            // Mark segment boundaries for readability.
            for (const TileSegment& s : tile.segments)
                if (c == s.col_begin && c != 0) os << '|';
            os << (tile.is_valid(r, c) ? '#' : '.');
        }
        if (!tile.global_col_rows.empty() &&
            tile.global_col_rows[static_cast<std::size_t>(r)] != 0)
            os << "  +g";
        os << "\n";
    }
    return os.str();
}

std::string render_plan(const SchedulePlan& plan, int max_tiles) {
    std::ostringstream os;
    os << "plan: n=" << plan.n << " head_dim=" << plan.head_dim << " tiles="
       << plan.tiles.size() << " (window " << plan.stats.window_tiles << ", catch-up "
       << plan.stats.catchup_tiles << "), occupancy "
       << plan.stats.slot_occupancy() << "\n";
    const int limit = std::min<int>(max_tiles, static_cast<int>(plan.tiles.size()));
    for (int t = 0; t < limit; ++t) {
        const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
        int q_lo = -1, q_hi = -1;
        for (auto q : tile.query_ids) {
            if (q < 0) continue;
            if (q_lo < 0) q_lo = q;
            q_hi = q;
        }
        os << "  #" << t << ": q[" << q_lo << ".." << q_hi << "]";
        for (const TileSegment& s : tile.segments)
            os << " band" << s.band << "@" << s.key_base << "x" << s.width()
               << (s.dilation > 1 ? "/d" + std::to_string(s.dilation) : "");
        os << " valid=" << tile.num_valid_slots();
        if (tile.global_row_query >= 0) os << " gr=" << tile.global_row_query;
        if (tile.global_col_key >= 0) os << " gc=" << tile.global_col_key;
        os << "\n";
    }
    if (limit < static_cast<int>(plan.tiles.size()))
        os << "  ... " << plan.tiles.size() - static_cast<std::size_t>(limit)
           << " more tiles\n";
    return os.str();
}

std::string render_cycle_profile(const SchedulePlan& plan, const CycleConfig& config) {
    CycleBreakdown total;
    for (const TileTask& tile : plan.tiles) {
        const CycleBreakdown b = tile_cycles(tile, plan.head_dim, config);
        for (int s = 0; s < 5; ++s) total.stage[s] += b.stage[s];
    }
    const double sum = static_cast<double>(std::max<std::int64_t>(1, total.total()));
    static const char* kNames[5] = {"stage1 Q*K^T", "stage2 exp", "stage3 sum+recip",
                                    "stage4 normalize", "stage5 S'*V"};
    std::ostringstream os;
    os << "cycle profile (" << total.total() << " cycles/head over " << plan.tiles.size()
       << " tiles):\n";
    for (int s = 0; s < 5; ++s) {
        const double frac = total.stage[s] / sum;
        os << "  " << kNames[s] << ": " << total.stage[s] << " ("
           << static_cast<int>(frac * 100.0 + 0.5) << "%) ";
        os << std::string(static_cast<std::size_t>(frac * 40.0 + 0.5), '#') << "\n";
    }
    return os.str();
}

}  // namespace salo
