// Cycle-accurate model of the spatial accelerator (paper §5, Fig. 5/6).
//
// Executes one TileTask by marching through the five datapath stages with
// explicit per-cycle loops and per-PE architectural state:
//
//   stage 1 — output-stationary systolic Q*K^T: PE(r,c) fires its MAC in the
//             cycle window [r+c, r+c+d), exactly the skew of diagonal K/V
//             streams meeting horizontally-flowing queries;
//   stage 2 — PWL exponential in every PE (parallel; fixed latency);
//   stage 3 — row-ripple accumulation left->right (one column per cycle),
//             reciprocal-unit latency, one broadcast cycle;
//   stage 4 — S' = exp * (1/W) multiply;
//   stage 5 — weight-stationary S'*V: output element t leaves the row at
//             cycle t + cols_used - 1; weighted-sum pipeline tail.
//
// Numeric results are bit-identical to the functional TileExecutor (they
// share the integer kernels); what this model adds is *measured* cycle
// counts and PE-activity traces that validate the closed-form formulas in
// cycle_formulas.hpp and feed the utilization comparison of paper §6.3.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "scheduler/tile.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/parts.hpp"
#include "tensor/matrix.hpp"

namespace salo {

class CycleAccurateArray {
public:
    CycleAccurateArray(const ArrayGeometry& geometry, const CycleConfig& cycle_config,
                       const PwlExp& exp_unit, const Reciprocal& recip_unit,
                       const Matrix<std::int8_t>& q, const Matrix<std::int8_t>& k,
                       const Matrix<std::int8_t>& v);

    /// Execute one tile cycle-by-cycle. Appends output parts, accumulates
    /// activity (including pe_cycles) and returns the measured breakdown.
    CycleBreakdown run(const TileTask& tile, std::vector<TilePart>& parts,
                       ActivityStats& activity) const;

private:
    ArrayGeometry geometry_;
    CycleConfig cycle_config_;
    const PwlExp* exp_unit_;
    const Reciprocal* recip_unit_;
    const Matrix<std::int8_t>* q_;
    const Matrix<std::int8_t>* k_;
    const Matrix<std::int8_t>* v_;
};

}  // namespace salo
