#include "sim/part_builder.hpp"

#include "common/assert.hpp"

namespace salo {

TilePart build_part(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                    const Matrix<std::int8_t>& v, int query,
                    const std::vector<ScoreRaw>& scores, const std::vector<int>& key_ids,
                    ActivityStats& activity) {
    SALO_EXPECTS(scores.size() == key_ids.size());
    const int d = v.cols();
    TilePart part;
    part.query = query;
    part.out_q.assign(static_cast<std::size_t>(d), 0);

    // Stage 2: PWL exponential per element; stage 3: row accumulation.
    std::vector<ExpRaw> exps(scores.size());
    SumRaw weight = 0;
    for (std::size_t c = 0; c < scores.size(); ++c) {
        exps[c] = exp_unit.exp_raw(scores[c]);
        weight += exps[c];
    }
    activity.exp_ops += static_cast<std::int64_t>(scores.size());
    part.weight = weight;
    if (weight == 0) return part;  // all terms underflowed; part carries no mass

    // Stage 3: broadcast 1/W; stage 4: S' = exp * inv.
    const InvRaw inv = recip_unit.inv_raw(weight);

    // Stage 5: out = sum_c S'_c * v_c at Q.(sprime+in) = Q.19, renormalized
    // to the weighted-sum module's Q.wsm_frac.
    constexpr int acc_frac = Datapath::sprime_frac + Datapath::in_frac;  // 19
    constexpr int shift = acc_frac - Datapath::wsm_frac;                 // 3
    std::vector<std::int64_t> acc(static_cast<std::size_t>(d), 0);
    for (std::size_t c = 0; c < scores.size(); ++c) {
        const SprimeRaw sp = normalize_prob(exps[c], inv);
        if (sp == 0) continue;
        const auto vrow = v.row(key_ids[c]);
        for (int t = 0; t < d; ++t)
            acc[static_cast<std::size_t>(t)] +=
                static_cast<std::int64_t>(sp) *
                static_cast<std::int64_t>(vrow[static_cast<std::size_t>(t)]);
    }
    activity.mac_ops += static_cast<std::int64_t>(scores.size()) * d;
    for (int t = 0; t < d; ++t)
        part.out_q[static_cast<std::size_t>(t)] = static_cast<std::int32_t>(
            round_shift(acc[static_cast<std::size_t>(t)], shift));
    return part;
}

}  // namespace salo
