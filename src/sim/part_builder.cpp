#include "sim/part_builder.hpp"

#include "common/assert.hpp"
#include "sim/kernels.hpp"

namespace salo {

namespace {

/// Batched stage-2 evaluation: the SIMD kernel when the exponential unit
/// matches its fixed 8-segment layout AND the bounds that make the scalar
/// code's saturation branches unreachable hold (y_max < 17 is enforced by
/// the unit, so m_q << shift < 2^(y_max + exp_frac + 2) <= 2^33 never
/// overflows; y_min >= -40 keeps the down-shift below 64). Scalar loop
/// otherwise. Bit-identical either way.
inline void exp_batch(const PwlExp& exp_unit, const ScoreRaw* scores, ExpRaw* out,
                      int count) {
    int done = 0;
    const PwlExp::Config& cfg = exp_unit.config();
    if (kernels::pwl_exp_batch && cfg.seg_bits == 3 && cfg.y_min >= -40) {
        const kernels::PwlExpParams params{exp_unit.slope_data(), exp_unit.icept_data(),
                                           cfg.lut_frac, cfg.y_min, cfg.y_max};
        done = kernels::pwl_exp_batch(params, scores, out, count);
    }
    for (; done < count; ++done) out[done] = exp_unit.exp_raw(scores[done]);
}

}  // namespace

TilePart build_part(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                    const Matrix<std::int8_t>& v, int query,
                    const std::vector<ScoreRaw>& scores, const std::vector<int>& key_ids,
                    ActivityStats& activity) {
    SALO_EXPECTS(scores.size() == key_ids.size());
    const int d = v.cols();
    TilePart part;
    part.query = query;
    part.out_q.assign(static_cast<std::size_t>(d), 0);

    // Stage 2: PWL exponential per element; stage 3: row accumulation.
    std::vector<ExpRaw> exps(scores.size());
    SumRaw weight = 0;
    for (std::size_t c = 0; c < scores.size(); ++c) {
        exps[c] = exp_unit.exp_raw(scores[c]);
        weight += exps[c];
    }
    activity.exp_ops += static_cast<std::int64_t>(scores.size());
    part.weight = weight;
    if (weight == 0) return part;  // all terms underflowed; part carries no mass

    // Stage 3: broadcast 1/W; stage 4: S' = exp * inv.
    const InvRaw inv = recip_unit.inv_raw(weight);

    // Stage 5: out = sum_c S'_c * v_c at Q.(sprime+in) = Q.19, renormalized
    // to the weighted-sum module's Q.wsm_frac.
    constexpr int acc_frac = Datapath::sprime_frac + Datapath::in_frac;  // 19
    constexpr int shift = acc_frac - Datapath::wsm_frac;                 // 3
    std::vector<std::int64_t> acc(static_cast<std::size_t>(d), 0);
    for (std::size_t c = 0; c < scores.size(); ++c) {
        const SprimeRaw sp = normalize_prob(exps[c], inv);
        if (sp == 0) continue;
        const auto vrow = v.row(key_ids[c]);
        for (int t = 0; t < d; ++t)
            acc[static_cast<std::size_t>(t)] +=
                static_cast<std::int64_t>(sp) *
                static_cast<std::int64_t>(vrow[static_cast<std::size_t>(t)]);
    }
    activity.mac_ops += static_cast<std::int64_t>(scores.size()) * d;
    for (int t = 0; t < d; ++t)
        part.out_q[static_cast<std::size_t>(t)] = static_cast<std::int32_t>(
            round_shift(acc[static_cast<std::size_t>(t)], shift));
    return part;
}

void build_part_into(const PwlExp& exp_unit, const Reciprocal& recip_unit,
                     const Matrix<std::int8_t>& v, int query, const ScoreRaw* scores,
                     const int* key_ids, int count, ActivityStats& activity,
                     TilePart& part, PartScratch& scratch) {
    const int d = v.cols();
    part.query = query;  // out_q arrives zeroed and sized d from the arena

    // Stage 2: PWL exponential per element; stage 3: row accumulation.
    scratch.exps.resize(static_cast<std::size_t>(count));
    ExpRaw* exps = scratch.exps.data();
    exp_batch(exp_unit, scores, exps, count);
    SumRaw weight = 0;
    for (int c = 0; c < count; ++c) weight += exps[c];
    activity.exp_ops += count;
    part.weight = weight;
    if (weight == 0) return;  // all terms underflowed; part carries no mass

    // Stage 3: broadcast 1/W; stage 4: S' = exp * inv.
    const InvRaw inv = recip_unit.inv_raw(weight);
    scratch.sps.resize(static_cast<std::size_t>(count));
    std::uint32_t* sps = scratch.sps.data();
    kernels::normalize_probs(exps, count, inv, sps);

    // Stage 5: out = sum_c S'_c * v_c at Q.(sprime+in) = Q.19, accumulated
    // in int32 directly in part.out_q (exact: the S' of one row sum to ~1.0,
    // so |acc| < 2^23), then renormalized in place to Q.wsm_frac.
    constexpr int acc_frac = Datapath::sprime_frac + Datapath::in_frac;  // 19
    constexpr int shift = acc_frac - Datapath::wsm_frac;                 // 3
    std::int32_t* out = part.out_q.data();
    kernels::wacc_sp_i8(out, sps, key_ids, count, v.data().data(), d);
    activity.mac_ops += static_cast<std::int64_t>(count) * d;
    kernels::round_shift_i32(out, d, shift);
}

}  // namespace salo
