// PlanCache: a thread-safe LRU cache of CompiledPlans keyed by the plan
// fingerprint, so repeated layers/workloads never re-run the data
// scheduler.
//
// Concurrency: lookups and insertions take one mutex; the expensive
// compile of a miss runs *outside* the lock, so a slow compilation never
// blocks other threads' hits. Concurrent misses on one key are
// deduplicated: the first thread registers the key as in flight and
// compiles (one miss); later arrivals wait for the in-flight compile and
// adopt its artifact (counted as hits — they never run the scheduler). If
// the leader's compile throws, waiters wake, find no entry, and the next
// one becomes the new leader, so a failed compile never wedges the key.
//
// Shared tier: a cache may be attached to a shared read-mostly store —
// another PlanCache, typically owned by a ShardedSession and attached to
// every shard's local cache. A local miss then resolves through the shared
// store (which dedups in-flight compiles tier-wide) instead of running the
// scheduler locally, so N shards compiling one shape cost one scheduler
// pass, not N. Lock order is strictly local → shared (the local lock is
// dropped before the shared call), so hits on either cache never block on
// the other's compile. stats().compiles counts scheduler passes executed
// by *this* cache — with a shared store attached, a shard cache's compiles
// stays 0 and the shared store's compiles is the tier-wide pass count.
//
// Collisions: the fingerprint hashes the full scheduling input, but a
// 64-bit hash can in principle collide. Every hit re-checks structural
// equality (pattern, head_dim, geometry, options) against the cached plan;
// a true collision is treated as a miss and replaces the entry rather than
// serving the wrong schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/compiled_plan.hpp"

namespace salo {

struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< includes fingerprint collisions
    std::uint64_t compiles = 0;    ///< scheduler passes run by THIS cache
    /// Decode micro-plan derivations run by THIS cache (get_or_derive_step
    /// misses resolved locally; like compiles, 0 with a shared store).
    std::uint64_t step_derives = 0;
    /// Of misses: resolved by the attached shared store (no local compile).
    std::uint64_t shared_resolved = 0;
    std::uint64_t evictions = 0;   ///< LRU capacity evictions
    std::size_t size = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// The compile step a cache runs on a miss. Defaults to compile_shared;
/// tests substitute throwing/counting fakes to exercise the dedup paths.
using PlanCompileFn =
    std::function<CompiledPlanPtr(const HybridPattern&, int, const SaloConfig&)>;

class PlanCache {
public:
    explicit PlanCache(std::size_t capacity = 64, PlanCompileFn compile_fn = {});

    /// The cached plan for (pattern, head_dim, config geometry/options),
    /// compiling and inserting it on a miss. Never returns null.
    CompiledPlanPtr get_or_compile(const HybridPattern& pattern, int head_dim,
                                   const SaloConfig& config);

    /// The decode micro-plan for the last row of `pattern` (a prefix
    /// pattern of length L; the step position is L-1). A miss resolves the
    /// full plan through get_or_compile (so full and micro plans share this
    /// cache and the tier-wide dedup) and derives the micro-plan from it.
    /// The step key is step_plan_fingerprint(full key, position) — a
    /// distinct type tag, so micro-plans never alias full plans in one
    /// cache. Never returns null.
    CompiledPlanPtr get_or_derive_step(const HybridPattern& pattern, int head_dim,
                                       const SaloConfig& config);

    /// Route this cache's misses through `store` (tier-wide compile dedup).
    /// Passing nullptr detaches. Not thread-safe against concurrent
    /// get_or_compile — attach at wiring time, before traffic.
    void attach_shared_store(std::shared_ptr<PlanCache> store);

    /// The cached plan for `fingerprint`, or null. Does not touch LRU order
    /// or the hit/miss counters (introspection only).
    CompiledPlanPtr peek(std::uint64_t fingerprint) const;

    PlanCacheStats stats() const;
    void clear();

private:
    /// Most-recently-used at the front.
    using LruList = std::list<CompiledPlanPtr>;

    /// `step_position` set: the lookup wants a micro-plan for that query
    /// position; unset: it wants a full plan. A cached entry of the other
    /// kind never matches, even on a fingerprint collision.
    bool matches(const CompiledPlan& cached, const HybridPattern& pattern, int head_dim,
                 const SaloConfig& config,
                 std::optional<int> step_position = std::nullopt) const;
    void insert_locked(CompiledPlanPtr plan);

    mutable std::mutex m_;
    std::condition_variable cv_compiled_;  ///< an in-flight compile finished
    std::size_t capacity_;
    PlanCompileFn compile_fn_;
    std::shared_ptr<PlanCache> shared_;  ///< optional tier-wide store
    LruList lru_;
    std::unordered_map<std::uint64_t, LruList::iterator> by_key_;
    std::unordered_set<std::uint64_t> inflight_;  ///< keys being compiled now
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t compiles_ = 0;
    std::uint64_t step_derives_ = 0;
    std::uint64_t shared_resolved_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace salo
