// PlanCache: a thread-safe LRU cache of CompiledPlans keyed by the plan
// fingerprint, so repeated layers/workloads never re-run the data
// scheduler.
//
// Concurrency: lookups and insertions take one mutex; the expensive
// compile of a miss runs *outside* the lock, so a slow compilation never
// blocks other threads' hits. Concurrent misses on one key are
// deduplicated: the first thread registers the key as in flight and
// compiles (one miss); later arrivals wait for the in-flight compile and
// adopt its artifact (counted as hits — they never run the scheduler). If
// the leader's compile throws, waiters wake, find no entry, and the next
// one becomes the new leader, so a failed compile never wedges the key.
//
// Collisions: the fingerprint hashes the full scheduling input, but a
// 64-bit hash can in principle collide. Every hit re-checks structural
// equality (pattern, head_dim, geometry, options) against the cached plan;
// a true collision is treated as a miss and replaces the entry rather than
// serving the wrong schedule.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/compiled_plan.hpp"

namespace salo {

struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< includes fingerprint collisions
    std::uint64_t evictions = 0;   ///< LRU capacity evictions
    std::size_t size = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class PlanCache {
public:
    explicit PlanCache(std::size_t capacity = 64);

    /// The cached plan for (pattern, head_dim, config geometry/options),
    /// compiling and inserting it on a miss. Never returns null.
    CompiledPlanPtr get_or_compile(const HybridPattern& pattern, int head_dim,
                                   const SaloConfig& config);

    /// The cached plan for `fingerprint`, or null. Does not touch LRU order
    /// or the hit/miss counters (introspection only).
    CompiledPlanPtr peek(std::uint64_t fingerprint) const;

    PlanCacheStats stats() const;
    void clear();

private:
    /// Most-recently-used at the front.
    using LruList = std::list<CompiledPlanPtr>;

    bool matches(const CompiledPlan& cached, const HybridPattern& pattern, int head_dim,
                 const SaloConfig& config) const;
    void insert_locked(CompiledPlanPtr plan);

    mutable std::mutex m_;
    std::condition_variable cv_compiled_;  ///< an in-flight compile finished
    std::size_t capacity_;
    LruList lru_;
    std::unordered_map<std::uint64_t, LruList::iterator> by_key_;
    std::unordered_set<std::uint64_t> inflight_;  ///< keys being compiled now
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace salo
