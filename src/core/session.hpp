// SaloSession: the request-serving front end of the engine.
//
// A session turns the one-shot, synchronous engine into a queue-centric
// server: callers submit AttentionRequests (a compiled plan or a pattern,
// plus Q/K/V) and immediately receive a std::future<LayerResult>. A
// dispatcher thread drains the queue in arrival order and batches all
// currently-queued requests onto the engine's persistent worker pool:
//
//   * a batch of one (an idle server) executes with the full lane budget —
//     tile-level parallelism inside the single request;
//   * a batch of many heterogeneous requests (different patterns, sequence
//     lengths, fidelities) executes request-parallel — each request runs
//     the pure sequential path on one pool lane, so the pool is busy with
//     real work instead of fork/join barriers.
//
// Determinism: both shapes are bit-identical to the sequential
// SaloEngine::run of the same request (the engine guarantee), so a serving
// deployment can replay any request standalone and get the same bits.
//
// Plans are resolved through the engine's PlanCache: a request that carries
// only a pattern compiles it on first sight and hits the cache afterwards —
// repeated layers never re-run the scheduler.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/engine.hpp"

namespace salo {

/// One unit of serving work: a multi-head attention layer.
struct AttentionRequest {
    /// Pre-compiled plan (preferred: shareable, zero scheduler work). May
    /// be null if `pattern` is set, in which case the session compiles the
    /// pattern through the engine's PlanCache.
    CompiledPlanPtr plan;
    std::optional<HybridPattern> pattern;

    Tensor3<float> q, k, v;  ///< [heads][n][head_dim]
    float scale = 1.0f;      ///< typically 1/sqrt(head_dim)

    /// Per-request fidelity override (e.g. a golden-oracle request on a
    /// functional-fidelity session). Defaults to the engine's fidelity.
    std::optional<Fidelity> fidelity;
};

/// Convenience builders for the two request flavours.
AttentionRequest make_request(CompiledPlanPtr plan, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale);
AttentionRequest make_request(HybridPattern pattern, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale);

struct SessionOptions {
    /// Maximum queued (not yet dispatched) requests; submit() blocks when
    /// the queue is full. 0 = unbounded.
    std::size_t max_queue = 0;
    /// Maximum requests dispatched as one batch. 0 = drain everything
    /// queued (latency-oriented streams may prefer a small bound).
    std::size_t max_batch = 0;
};

struct SessionStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< futures fulfilled with a result
    std::uint64_t failed = 0;     ///< futures fulfilled with an exception
    std::uint64_t batches = 0;    ///< dispatcher wake-ups that served work
    std::size_t max_batch = 0;    ///< largest batch observed
    PlanCacheStats plan_cache;    ///< the engine cache serving this session
};

class SaloSession {
public:
    explicit SaloSession(const SaloConfig& config = {}, SessionOptions options = {});
    ~SaloSession();  // close()

    SaloSession(const SaloSession&) = delete;
    SaloSession& operator=(const SaloSession&) = delete;

    /// Enqueue a request; the future resolves when it has been executed
    /// (or failed — errors propagate through the future). Thread-safe;
    /// blocks while the queue is at max_queue. Throws ContractViolation on
    /// a structurally invalid request and std::runtime_error after close().
    std::future<LayerResult> submit(AttentionRequest request);

    /// submit(make_request(...)) shorthands.
    std::future<LayerResult> submit(CompiledPlanPtr plan, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);
    std::future<LayerResult> submit(const HybridPattern& pattern, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);

    /// Compile through the session engine's PlanCache (shared artifact).
    CompiledPlanPtr compile(const HybridPattern& pattern, int head_dim) const;

    /// Block until every submitted request has been served.
    void drain();

    /// Stop accepting requests, serve what is queued, join the dispatcher.
    /// Idempotent; the destructor calls it.
    void close();

    SessionStats stats() const;
    const SaloEngine& engine() const { return engine_; }
    const SaloConfig& config() const { return engine_.config(); }

private:
    struct Pending {
        AttentionRequest request;
        std::promise<LayerResult> promise;
    };

    void serve_loop();
    /// Serve one batch; returns how many promises got a value vs an error.
    void serve_batch(std::vector<Pending>& batch, std::uint64_t& ok,
                     std::uint64_t& err);

    SaloEngine engine_;
    SessionOptions options_;

    mutable std::mutex m_;
    std::condition_variable cv_work_;   ///< queue became non-empty / closing
    std::condition_variable cv_space_;  ///< queue dropped below max_queue
    std::condition_variable cv_idle_;   ///< queue empty and nothing in flight
    std::deque<Pending> queue_;
    std::size_t in_flight_ = 0;
    bool closed_ = false;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t batches_ = 0;
    std::size_t max_batch_seen_ = 0;

    std::thread dispatcher_;  ///< last member: joined by close()
};

}  // namespace salo
