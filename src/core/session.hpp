// SaloSession: the request-serving front end of the engine.
//
// A session turns the one-shot, synchronous engine into a queue-centric
// server: callers submit AttentionRequests (a compiled plan or a pattern,
// plus Q/K/V) and immediately receive a std::future<LayerResult>. A
// dispatcher thread drains the queues in arrival order (interactive class
// before batch class) and batches all currently-queued requests onto the
// engine's persistent worker pool:
//
//   * a batch of one (an idle server) executes with the full lane budget —
//     tile-level parallelism inside the single request;
//   * a batch of many heterogeneous requests (different patterns, sequence
//     lengths, fidelities) executes request-parallel — each request runs
//     the pure sequential path on one pool lane, so the pool is busy with
//     real work instead of fork/join barriers.
//
// Determinism: both shapes are bit-identical to the sequential
// SaloEngine::run of the same request (the engine guarantee), so a serving
// deployment can replay any request standalone and get the same bits.
//
// Robustness (docs/API.md "Failure semantics"):
//
//   * every asynchronous failure is a typed SaloError delivered through
//     the future; submit() itself throws only SessionClosed (lifecycle)
//     and ContractViolation (malformed request);
//   * requests may carry an absolute deadline and a CancellationToken; the
//     dispatcher sheds already-expired/cancelled requests before batching
//     (DeadlineExceeded / RequestCancelled, never touching the engine),
//     and in-flight runs check the token at tile boundaries so cancelled
//     work stops early — completed requests keep bit-identity;
//   * admission control (core/admission.hpp) bounds the queue by depth,
//     batch-class depth and outstanding cost; over-limit submits block,
//     block-with-timeout, or reject fast with QueueFull per the policy;
//   * one faulted request (see common/fault_injector.hpp) fails only its
//     own future — the rest of the batch completes and the session keeps
//     serving.
//
// Plans are resolved through the engine's PlanCache: a request that carries
// only a pattern compiles it on first sight and hits the cache afterwards —
// repeated layers never re-run the scheduler, and concurrent first sights
// of one shape run the scheduler exactly once.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/engine.hpp"

namespace salo {

/// One unit of serving work: a multi-head attention layer.
struct AttentionRequest {
    /// Pre-compiled plan (preferred: shareable, zero scheduler work). May
    /// be null if `pattern` is set, in which case the session compiles the
    /// pattern through the engine's PlanCache.
    CompiledPlanPtr plan;
    std::optional<HybridPattern> pattern;

    Tensor3<float> q, k, v;  ///< [heads][n][head_dim]
    float scale = 1.0f;      ///< typically 1/sqrt(head_dim)

    /// Per-request fidelity override (e.g. a golden-oracle request on a
    /// functional-fidelity session). Defaults to the engine's fidelity.
    std::optional<Fidelity> fidelity;

    /// Admission class: interactive requests dispatch first and get the
    /// full queue budget; batch requests shed first under overload.
    Priority priority = Priority::interactive;

    /// Owning tenant for fair scheduling and per-tenant quotas in the
    /// sharded tier (core/fair_queue.hpp). Empty = the default tenant;
    /// single-tenant sessions and plain SaloSession ignore it entirely.
    std::string tenant_id;

    /// Absolute deadline. Expired requests never reach the engine pool:
    /// they are shed at dispatch and their future fails with
    /// DeadlineExceeded; mid-flight expiry stops at the next tile boundary.
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /// Shareable cancel flag (CancellationToken::make()); fires
    /// RequestCancelled. Inert by default.
    CancellationToken cancel;

    /// Per-request fault injection (tests); overrides the engine-level
    /// SaloConfig::fault_injector for this request only.
    std::shared_ptr<const FaultInjector> fault_injector;
};

/// Convenience builders for the two request flavours.
AttentionRequest make_request(CompiledPlanPtr plan, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale);
AttentionRequest make_request(HybridPattern pattern, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale);

struct SessionOptions {
    /// Legacy bound: maximum queued (not yet dispatched) requests with the
    /// block-forever policy. Ignored when `admission.max_queue` is set.
    /// 0 = unbounded.
    std::size_t max_queue = 0;
    /// Maximum requests dispatched as one batch. 0 = drain everything
    /// queued (latency-oriented streams may prefer a small bound).
    std::size_t max_batch = 0;
    /// Admission control policy (depth/cost/per-class limits and what to
    /// do when they are hit). Default: unbounded, block mode — exactly the
    /// legacy behavior.
    AdmissionPolicy admission;
};

struct SessionStats {
    std::uint64_t submitted = 0;  ///< accepted submit() calls (everything below)
    std::uint64_t completed = 0;  ///< futures fulfilled with a result
    std::uint64_t failed = 0;     ///< futures failed with EngineFault/ContractViolation
    std::uint64_t rejected = 0;   ///< futures failed with QueueFull (admission shed)
    std::uint64_t timed_out = 0;  ///< futures failed with DeadlineExceeded
    std::uint64_t cancelled = 0;  ///< futures failed with RequestCancelled
    /// Of timed_out: requests shed while queued, before any execution (the
    /// remainder expired at a tile boundary mid-flight).
    std::uint64_t shed_expired = 0;
    std::uint64_t batches = 0;    ///< dispatcher wake-ups that served work
    std::size_t max_batch = 0;    ///< largest batch observed
    PlanCacheStats plan_cache;    ///< the engine cache serving this session

    // Sharded-tier counters (core/shard_router.hpp); always 0 on a plain
    // single-engine SaloSession. retried/failed_over count *attempts* (one
    // request retried twice contributes 2) and live outside the
    // conservation law by construction.
    std::uint64_t retried = 0;      ///< re-dispatches after a retryable shard failure
    std::uint64_t failed_over = 0;  ///< of retried: attempts routed to a different shard
    std::uint64_t quarantined_shard_events = 0;   ///< breaker healthy -> quarantined
    std::uint64_t reintegrated_shard_events = 0;  ///< breaker probing -> healthy

    // Decode-tier counters (core/decode_session.hpp); always 0 on the
    // whole-sequence sessions. `steps` counts accepted stream steps, so the
    // conservation law distinguishes incremental decode traffic (where
    // every submission is a step: steps == submitted) from whole-sequence
    // requests (steps == 0).
    std::uint64_t steps = 0;            ///< accepted decode stream steps
    std::uint64_t evicted_streams = 0;  ///< streams lost to quarantine/failed steps

    /// Every accepted submit() resolves exactly one way; this is the
    /// conservation law tests assert.
    std::uint64_t accounted() const {
        return completed + failed + rejected + timed_out + cancelled;
    }
};

/// Per-tenant slice of the serving counters (core/shard_router.hpp:
/// ShardedSession::tenant_stats()). Obeys the same conservation law as
/// SessionStats; summing every tenant's counters reproduces the global
/// stats for the fields below.
struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;   ///< shed against this tenant's own quota or the global one
    std::uint64_t timed_out = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t retried = 0;    ///< extra attempts billed to this tenant's deficit
    std::uint64_t failed_over = 0;
    /// Of submitted: decode stream steps (core/decode_session.hpp). 0 for
    /// whole-sequence traffic; == submitted on a pure decode tier.
    std::uint64_t steps = 0;

    std::uint64_t accounted() const {
        return completed + failed + rejected + timed_out + cancelled;
    }
};

class SaloSession {
public:
    explicit SaloSession(const SaloConfig& config = {}, SessionOptions options = {});
    ~SaloSession();  // close()

    SaloSession(const SaloSession&) = delete;
    SaloSession& operator=(const SaloSession&) = delete;

    /// Enqueue a request; the future resolves when it has been executed
    /// (or failed — every asynchronous failure is a typed SaloError
    /// delivered through the future, see core/errors.hpp). Thread-safe.
    /// Blocking behavior under a full queue follows the admission policy
    /// (block / block-with-timeout / reject-fast). Throws ContractViolation
    /// on a structurally invalid request and SessionClosed after close().
    std::future<LayerResult> submit(AttentionRequest request);

    /// submit(make_request(...)) shorthands.
    std::future<LayerResult> submit(CompiledPlanPtr plan, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);
    std::future<LayerResult> submit(const HybridPattern& pattern, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);

    /// Compile through the session engine's PlanCache (shared artifact).
    CompiledPlanPtr compile(const HybridPattern& pattern, int head_dim) const;

    /// Block until every submitted request has been served.
    void drain();

    /// Stop accepting requests, serve what is queued, join the dispatcher.
    /// Idempotent; the destructor calls it.
    void close();

    SessionStats stats() const;
    const SaloEngine& engine() const { return engine_; }
    const SaloConfig& config() const { return engine_.config(); }

private:
    using Clock = std::chrono::steady_clock;

    struct Pending {
        AttentionRequest request;
        std::promise<LayerResult> promise;
        std::uint64_t cost = 0;  ///< admission cost units (heads x rows)
    };

    /// Per-batch outcome tallies, merged into the counters by serve_loop.
    struct BatchTally {
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t timed_out = 0;
    };

    void serve_loop();
    void serve_batch(std::vector<Pending>& batch, BatchTally& tally);
    AdmissionSnapshot snapshot_locked() const;

    SaloEngine engine_;
    SessionOptions options_;
    AdmissionController admission_;

    mutable std::mutex m_;
    std::condition_variable cv_work_;   ///< queue became non-empty / closing
    std::condition_variable cv_space_;  ///< admission state changed
    std::condition_variable cv_idle_;   ///< queue empty and nothing in flight
    std::deque<Pending> queue_interactive_;
    std::deque<Pending> queue_batch_;
    std::uint64_t queued_cost_ = 0;
    std::uint64_t in_flight_cost_ = 0;
    std::size_t in_flight_ = 0;
    /// Submitters parked in an admission wait (counted in submitted_ but
    /// not yet resolved); close() skips the conservation debug-assert
    /// while any exist, since their accounting is legitimately in flight.
    std::size_t waiting_submits_ = 0;
    bool closed_ = false;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t timed_out_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t shed_expired_ = 0;
    std::uint64_t batches_ = 0;
    std::size_t max_batch_seen_ = 0;
    /// Decode steps served by this session: always 0 (SaloSession has no
    /// step path); reported through stats() and asserted at close() so the
    /// conservation law separates steps from whole-sequence requests.
    std::uint64_t stats_steps_ = 0;

    std::thread dispatcher_;  ///< last member: joined by close()
};

}  // namespace salo
