#include "core/session.hpp"

#include <stdexcept>
#include <utility>

namespace salo {

AttentionRequest make_request(CompiledPlanPtr plan, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale) {
    AttentionRequest r;
    r.plan = std::move(plan);
    r.q = std::move(q);
    r.k = std::move(k);
    r.v = std::move(v);
    r.scale = scale;
    return r;
}

AttentionRequest make_request(HybridPattern pattern, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale) {
    AttentionRequest r;
    r.pattern = std::move(pattern);
    r.q = std::move(q);
    r.k = std::move(k);
    r.v = std::move(v);
    r.scale = scale;
    return r;
}

SaloSession::SaloSession(const SaloConfig& config, SessionOptions options)
    : engine_(config), options_(options) {
    dispatcher_ = std::thread([this] { serve_loop(); });
}

SaloSession::~SaloSession() { close(); }

CompiledPlanPtr SaloSession::compile(const HybridPattern& pattern, int head_dim) const {
    return engine_.compile(pattern, head_dim);
}

std::future<LayerResult> SaloSession::submit(AttentionRequest request) {
    // Structural checks that are cheap and certainly caller bugs happen
    // here, synchronously; shape/pattern mismatches surface through the
    // future like any other execution error.
    SALO_EXPECTS(request.plan != nullptr || request.pattern.has_value());
    SALO_EXPECTS(request.q.count() >= 1);
    SALO_EXPECTS(request.q.count() == request.k.count() &&
                 request.k.count() == request.v.count());

    Pending pending;
    pending.request = std::move(request);
    std::future<LayerResult> future = pending.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(m_);
        if (options_.max_queue > 0)
            cv_space_.wait(lock, [this] {
                return closed_ || queue_.size() < options_.max_queue;
            });
        if (closed_) throw std::runtime_error("SaloSession: submit() after close()");
        queue_.push_back(std::move(pending));
        ++submitted_;
    }
    cv_work_.notify_one();
    return future;
}

std::future<LayerResult> SaloSession::submit(CompiledPlanPtr plan, Tensor3<float> q,
                                             Tensor3<float> k, Tensor3<float> v,
                                             float scale) {
    return submit(
        make_request(std::move(plan), std::move(q), std::move(k), std::move(v), scale));
}

std::future<LayerResult> SaloSession::submit(const HybridPattern& pattern,
                                             Tensor3<float> q, Tensor3<float> k,
                                             Tensor3<float> v, float scale) {
    return submit(make_request(pattern, std::move(q), std::move(k), std::move(v), scale));
}

void SaloSession::serve_batch(std::vector<Pending>& batch, std::uint64_t& ok,
                              std::uint64_t& err) {
    // Resolve every request's plan first (through the engine's PlanCache)
    // so compilation cost is paid once per distinct shape, not once per
    // lane, and so execution below touches no shared mutable state.
    std::vector<CompiledPlanPtr> plans(batch.size());
    std::vector<bool> dead(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Pending& p = batch[i];
        try {
            plans[i] = p.request.plan != nullptr
                           ? p.request.plan
                           : engine_.compile(*p.request.pattern, p.request.q.cols());
        } catch (...) {
            p.promise.set_exception(std::current_exception());
            dead[i] = true;
            ++err;
        }
    }

    // Returns 1 on success, 0 on failure; never throws. Exceptions must not
    // escape into the pool's rethrow path — that would abandon the other
    // requests of the batch with broken promises.
    auto execute = [&](std::size_t i, int thread_budget) -> int {
        Pending& p = batch[i];
        const Fidelity fidelity =
            p.request.fidelity.value_or(engine_.config().fidelity);
        try {
            p.promise.set_value(engine_.run(*plans[i], p.request.q, p.request.k,
                                            p.request.v, p.request.scale, fidelity,
                                            thread_budget));
            return 1;
        } catch (...) {
            p.promise.set_exception(std::current_exception());
            return 0;
        }
    };

    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!dead[i]) live.push_back(i);

    if (live.size() == 1) {
        // Idle server: give the lone request the whole pool (tile-level
        // parallelism inside the request, budget 0 = configured lanes).
        if (execute(live.front(), /*thread_budget=*/0)) ++ok; else ++err;
        return;
    }
    // Busy server: request-level parallelism. Each request runs the pure
    // sequential path on one lane (budget 1) — no nested pool use,
    // bit-identical to its standalone sequential run. Outcomes land in a
    // per-request slot; the shared tallies are summed after the barrier.
    std::vector<int> outcome(live.size(), 0);
    engine_.pool().parallel_for(static_cast<int>(live.size()), [&](int i, int) {
        outcome[static_cast<std::size_t>(i)] =
            execute(live[static_cast<std::size_t>(i)], /*thread_budget=*/1);
    });
    for (int v : outcome) {
        if (v) ++ok; else ++err;
    }
}

void SaloSession::serve_loop() {
    std::vector<Pending> batch;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_work_.wait(lock, [this] { return closed_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (closed_) return;
                continue;
            }
            std::size_t take = queue_.size();
            if (options_.max_batch > 0 && take > options_.max_batch)
                take = options_.max_batch;
            batch.clear();
            batch.reserve(take);
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            in_flight_ = batch.size();
        }
        cv_space_.notify_all();

        std::uint64_t ok = 0, err = 0;
        serve_batch(batch, ok, err);

        {
            std::lock_guard<std::mutex> lock(m_);
            completed_ += ok;
            failed_ += err;
            ++batches_;
            if (batch.size() > max_batch_seen_) max_batch_seen_ = batch.size();
            in_flight_ = 0;
        }
        cv_idle_.notify_all();
    }
}

void SaloSession::drain() {
    std::unique_lock<std::mutex> lock(m_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void SaloSession::close() {
    std::thread to_join;
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
        // Only the first closer takes the thread handle; a concurrent
        // close() sees a default-constructed (non-joinable) thread.
        to_join = std::move(dispatcher_);
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (to_join.joinable()) to_join.join();
}

SessionStats SaloSession::stats() const {
    std::lock_guard<std::mutex> lock(m_);
    SessionStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.batches = batches_;
    s.max_batch = max_batch_seen_;
    s.plan_cache = engine_.plan_cache_stats();
    return s;
}

}  // namespace salo
