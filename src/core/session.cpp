#include "core/session.hpp"

#include <limits>
#include <string>
#include <utility>

namespace salo {

namespace {

/// Admission cost proxy: head-rows. Execution time scales with the number
/// of scheduled tiles, which scales with heads x rows for a given pattern
/// family; this keeps a few huge requests from hiding behind a small queue
/// depth.
std::uint64_t request_cost(const AttentionRequest& r) {
    return static_cast<std::uint64_t>(r.q.count()) *
           static_cast<std::uint64_t>(r.q.rows());
}

template <typename Error>
void fail_promise(std::promise<LayerResult>& promise, Error error) {
    promise.set_exception(std::make_exception_ptr(std::move(error)));
}

}  // namespace

AttentionRequest make_request(CompiledPlanPtr plan, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale) {
    AttentionRequest r;
    r.plan = std::move(plan);
    r.q = std::move(q);
    r.k = std::move(k);
    r.v = std::move(v);
    r.scale = scale;
    return r;
}

AttentionRequest make_request(HybridPattern pattern, Tensor3<float> q, Tensor3<float> k,
                              Tensor3<float> v, float scale) {
    AttentionRequest r;
    r.pattern = std::move(pattern);
    r.q = std::move(q);
    r.k = std::move(k);
    r.v = std::move(v);
    r.scale = scale;
    return r;
}

SaloSession::SaloSession(const SaloConfig& config, SessionOptions options)
    : engine_(config), options_(options) {
    // The legacy max_queue bound folds into the admission policy (block
    // mode, depth-only) unless the caller configured admission explicitly.
    AdmissionPolicy policy = options_.admission;
    if (policy.max_queue == 0 && options_.max_queue > 0)
        policy.max_queue = options_.max_queue;
    admission_ = AdmissionController(policy);
    dispatcher_ = std::thread([this] { serve_loop(); });
}

SaloSession::~SaloSession() { close(); }

CompiledPlanPtr SaloSession::compile(const HybridPattern& pattern, int head_dim) const {
    return engine_.compile(pattern, head_dim);
}

AdmissionSnapshot SaloSession::snapshot_locked() const {
    AdmissionSnapshot s;
    s.queued_interactive = queue_interactive_.size();
    s.queued_batch = queue_batch_.size();
    s.outstanding_cost = queued_cost_ + in_flight_cost_;
    return s;
}

std::future<LayerResult> SaloSession::submit(AttentionRequest request) {
    // Structural checks that are cheap and certainly caller bugs happen
    // here, synchronously; shape/pattern mismatches surface through the
    // future like any other execution error.
    SALO_EXPECTS(request.plan != nullptr || request.pattern.has_value());
    SALO_EXPECTS(request.q.count() >= 1);
    SALO_EXPECTS(request.q.count() == request.k.count() &&
                 request.k.count() == request.v.count());

    Pending pending;
    pending.cost = request_cost(request);
    pending.request = std::move(request);
    std::future<LayerResult> future = pending.promise.get_future();
    const Priority priority = pending.request.priority;

    {
        std::unique_lock<std::mutex> lock(m_);
        if (closed_)
            throw SessionClosed(
                "SaloSession: submit() after close() — the session is closed and no "
                "longer accepts requests");
        ++submitted_;

        const AdmissionPolicy& policy = admission_.policy();
        const Clock::time_point admission_deadline =
            Clock::now() + policy.block_timeout;
        for (;;) {
            if (closed_) {
                // Closed while waiting for space: the request was accepted
                // (counted) but can no longer be served.
                ++rejected_;
                fail_promise(pending.promise,
                             SessionClosed("SaloSession: session closed while the "
                                           "request waited for admission"));
                return future;
            }
            if (pending.request.deadline && Clock::now() > *pending.request.deadline) {
                // The request's own deadline expired while blocked on
                // admission — it never reaches the queue or the engine.
                ++timed_out_;
                ++shed_expired_;
                fail_promise(pending.promise,
                             DeadlineExceeded("request deadline expired while waiting "
                                              "for admission"));
                return future;
            }
            const AdmissionDecision decision =
                admission_.decide(snapshot_locked(), priority, pending.cost);
            if (decision == AdmissionDecision::admit) break;
            if (decision == AdmissionDecision::reject) {
                ++rejected_;
                fail_promise(pending.promise,
                             QueueFull(std::string("admission control rejected ") +
                                       priority_name(priority) +
                                       "-class request: queue limits reached"));
                return future;
            }
            // decision == wait
            if (policy.mode == AdmissionMode::block_with_timeout) {
                ++waiting_submits_;
                const std::cv_status wait_status =
                    cv_space_.wait_until(lock, admission_deadline);
                --waiting_submits_;
                if (wait_status == std::cv_status::timeout) {
                    if (admission_.decide(snapshot_locked(), priority, pending.cost) ==
                        AdmissionDecision::admit)
                        break;
                    ++rejected_;
                    fail_promise(pending.promise,
                                 QueueFull(std::string("admission wait timed out for ") +
                                           priority_name(priority) +
                                           "-class request"));
                    return future;
                }
            } else {
                ++waiting_submits_;
                cv_space_.wait(lock);
                --waiting_submits_;
            }
        }

        queued_cost_ += pending.cost;
        (priority == Priority::interactive ? queue_interactive_ : queue_batch_)
            .push_back(std::move(pending));
    }
    cv_work_.notify_one();
    return future;
}

std::future<LayerResult> SaloSession::submit(CompiledPlanPtr plan, Tensor3<float> q,
                                             Tensor3<float> k, Tensor3<float> v,
                                             float scale) {
    return submit(
        make_request(std::move(plan), std::move(q), std::move(k), std::move(v), scale));
}

std::future<LayerResult> SaloSession::submit(const HybridPattern& pattern,
                                             Tensor3<float> q, Tensor3<float> k,
                                             Tensor3<float> v, float scale) {
    return submit(make_request(pattern, std::move(q), std::move(k), std::move(v), scale));
}

void SaloSession::serve_batch(std::vector<Pending>& batch, BatchTally& tally) {
    // Resolve every request's plan first (through the engine's PlanCache)
    // so compilation cost is paid once per distinct shape, not once per
    // lane, and so execution below touches no shared mutable state.
    std::vector<CompiledPlanPtr> plans(batch.size());
    std::vector<bool> dead(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Pending& p = batch[i];
        try {
            plans[i] = p.request.plan != nullptr
                           ? p.request.plan
                           : engine_.compile(*p.request.pattern, p.request.q.cols());
        } catch (...) {
            p.promise.set_exception(std::current_exception());
            dead[i] = true;
            ++tally.failed;
        }
    }

    enum class Outcome { ok, failed, cancelled, timed_out };

    // Classifies and never throws. Exceptions must not escape into the
    // pool's rethrow path — each request's outcome belongs to its own
    // future, and a faulted lane must leave its batch siblings untouched.
    auto execute = [&](std::size_t i, int thread_budget) -> Outcome {
        Pending& p = batch[i];
        RunOptions run_options;
        run_options.fidelity = p.request.fidelity;
        run_options.thread_budget = thread_budget;
        run_options.cancel = p.request.cancel;
        run_options.deadline = p.request.deadline;
        run_options.fault_injector = p.request.fault_injector.get();
        try {
            p.promise.set_value(engine_.run(*plans[i], p.request.q, p.request.k,
                                            p.request.v, p.request.scale, run_options));
            return Outcome::ok;
        } catch (const RequestCancelled&) {
            p.promise.set_exception(std::current_exception());
            return Outcome::cancelled;
        } catch (const DeadlineExceeded&) {
            p.promise.set_exception(std::current_exception());
            return Outcome::timed_out;
        } catch (const SaloError&) {
            // EngineFault and friends pass through typed.
            p.promise.set_exception(std::current_exception());
            return Outcome::failed;
        } catch (const ContractViolation&) {
            // Caller bug (shape/pattern mismatch): never wrapped.
            p.promise.set_exception(std::current_exception());
            return Outcome::failed;
        } catch (const std::exception& e) {
            p.promise.set_exception(std::make_exception_ptr(EngineFault(
                std::string("engine worker threw: ") + e.what())));
            return Outcome::failed;
        } catch (...) {
            p.promise.set_exception(std::make_exception_ptr(
                EngineFault("engine worker threw a non-std exception")));
            return Outcome::failed;
        }
    };

    auto tally_one = [&tally](Outcome o) {
        switch (o) {
            case Outcome::ok: ++tally.ok; break;
            case Outcome::failed: ++tally.failed; break;
            case Outcome::cancelled: ++tally.cancelled; break;
            case Outcome::timed_out: ++tally.timed_out; break;
        }
    };

    std::vector<std::size_t> live;
    live.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!dead[i]) live.push_back(i);

    if (live.empty()) return;
    if (live.size() == 1) {
        // Idle server: give the lone request the whole pool (tile-level
        // parallelism inside the request, budget 0 = configured lanes).
        tally_one(execute(live.front(), /*thread_budget=*/0));
        return;
    }
    // Busy server: request-level parallelism. Each request runs the pure
    // sequential path on one lane (budget 1) — no nested pool use,
    // bit-identical to its standalone sequential run. Outcomes land in a
    // per-request slot; the shared tallies are summed after the barrier.
    std::vector<Outcome> outcome(live.size(), Outcome::ok);
    engine_.pool().parallel_for(static_cast<int>(live.size()), [&](int i, int) {
        outcome[static_cast<std::size_t>(i)] =
            execute(live[static_cast<std::size_t>(i)], /*thread_budget=*/1);
    });
    for (Outcome o : outcome) tally_one(o);
}

void SaloSession::serve_loop() {
    std::vector<Pending> batch;
    std::vector<Pending> shed_cancelled;
    std::vector<Pending> shed_expired;
    for (;;) {
        std::uint64_t batch_cost = 0;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_work_.wait(lock, [this] {
                return closed_ || !queue_interactive_.empty() || !queue_batch_.empty();
            });
            if (queue_interactive_.empty() && queue_batch_.empty()) {
                if (closed_) return;
                continue;
            }
            const std::size_t take = options_.max_batch > 0
                                         ? options_.max_batch
                                         : std::numeric_limits<std::size_t>::max();
            batch.clear();
            shed_cancelled.clear();
            shed_expired.clear();
            const Clock::time_point now = Clock::now();
            // Interactive class drains first, arrival order within class.
            // Cancelled and expired requests are shed here — before
            // batching — so they never reach the engine pool; shedding does
            // not consume batch slots.
            while (batch.size() < take &&
                   !(queue_interactive_.empty() && queue_batch_.empty())) {
                std::deque<Pending>& q =
                    queue_interactive_.empty() ? queue_batch_ : queue_interactive_;
                Pending p = std::move(q.front());
                q.pop_front();
                queued_cost_ -= p.cost;
                if (p.request.cancel.cancelled()) {
                    ++cancelled_;
                    shed_cancelled.push_back(std::move(p));
                } else if (p.request.deadline && now > *p.request.deadline) {
                    ++timed_out_;
                    ++shed_expired_;
                    shed_expired.push_back(std::move(p));
                } else {
                    batch_cost += p.cost;
                    in_flight_cost_ += p.cost;
                    batch.push_back(std::move(p));
                }
            }
            in_flight_ = batch.size();
        }
        cv_space_.notify_all();
        for (Pending& p : shed_cancelled)
            fail_promise(p.promise,
                         RequestCancelled("request cancelled while queued; shed "
                                          "before dispatch"));
        for (Pending& p : shed_expired)
            fail_promise(p.promise,
                         DeadlineExceeded("request deadline expired while queued; "
                                          "shed before dispatch"));

        BatchTally tally;
        if (!batch.empty()) serve_batch(batch, tally);

        {
            std::lock_guard<std::mutex> lock(m_);
            completed_ += tally.ok;
            failed_ += tally.failed;
            cancelled_ += tally.cancelled;
            timed_out_ += tally.timed_out;
            if (!batch.empty()) {
                ++batches_;
                if (batch.size() > max_batch_seen_) max_batch_seen_ = batch.size();
            }
            in_flight_cost_ -= batch_cost;
            in_flight_ = 0;
        }
        cv_space_.notify_all();
        cv_idle_.notify_all();
    }
}

void SaloSession::drain() {
    std::unique_lock<std::mutex> lock(m_);
    cv_idle_.wait(lock, [this] {
        return queue_interactive_.empty() && queue_batch_.empty() && in_flight_ == 0;
    });
}

void SaloSession::close() {
    std::thread to_join;
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
        // Only the first closer takes the thread handle; a concurrent
        // close() sees a default-constructed (non-joinable) thread.
        to_join = std::move(dispatcher_);
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (to_join.joinable()) {
        to_join.join();
#ifndef NDEBUG
        // Conservation law at the source: with the dispatcher joined and no
        // submitter parked in an admission wait, every accepted request must
        // have resolved exactly one way. Debug/sanitizer builds fail loudly
        // here so an accounting bug dies in the test that caused it instead
        // of surfacing as a bench-gate failure later.
        std::lock_guard<std::mutex> lock(m_);
        if (waiting_submits_ == 0) {
            SALO_DEBUG_ASSERT(completed_ + failed_ + rejected_ + timed_out_ +
                                  cancelled_ ==
                              submitted_);
            // Whole-sequence sessions serve no decode steps; the steps
            // counter exists so decode tiers (core/decode_session.hpp) can
            // assert steps == submitted at their own close().
            SALO_DEBUG_ASSERT(stats_steps_ == 0);
        }
#endif
    }
}

SessionStats SaloSession::stats() const {
    std::lock_guard<std::mutex> lock(m_);
    SessionStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected = rejected_;
    s.timed_out = timed_out_;
    s.cancelled = cancelled_;
    s.shed_expired = shed_expired_;
    s.batches = batches_;
    s.max_batch = max_batch_seen_;
    s.steps = stats_steps_;
    s.plan_cache = engine_.plan_cache_stats();
    return s;
}

}  // namespace salo
