// SaloEngine: the end-to-end public API of the SALO reproduction.
//
// Drives the full pipeline of the paper's Figure 3: the hybrid sparse
// attention pattern and hardware metadata go to the data scheduler; the
// quantized Query/Key/Value stream through the spatial accelerator
// (functional or cycle-accurate model); per-part outputs are merged by the
// weighted-sum module (Eq. 2); the result is dequantized back to float.
//
// Fidelity levels:
//   kGolden        — float masked attention, no hardware at all (oracle);
//   kFunctional    — bit-accurate fixed-point datapath, analytic cycles;
//   kCycleAccurate — bit-accurate datapath driven cycle-by-cycle (slow;
//                    validates the analytic cycle model).
#pragma once

#include <memory>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/parts.hpp"
#include "tensor/tensor3.hpp"

namespace salo {

enum class Fidelity {
    kGolden,
    kFunctional,
    kCycleAccurate,
};

struct SaloConfig {
    ArrayGeometry geometry;
    PwlExp::Config exp_config;
    Reciprocal::Config recip_config;
    ScheduleOptions schedule_options;
    Fidelity fidelity = Fidelity::kFunctional;

    /// Off-chip bandwidth model: bytes transferred per cycle into the
    /// double-buffered SRAMs. Tile loads overlap compute; a tile stalls only
    /// when its input load is longer than the previous tile's compute.
    int bus_bytes_per_cycle = 64;
    bool double_buffer = true;

    /// Inter-tile stage overlap: stage 3 (row ripple + reciprocal +
    /// broadcast) uses the adder tree and the shared reciprocal unit, not
    /// the PE MACs, so the next tile's stage-1 systolic pass can run under
    /// it. When enabled, every tile after the first hides its stage-3
    /// latency. Off by default (the paper does not describe the overlap);
    /// quantified in bench_ablation.
    bool tile_pipelining = false;

    /// Host-side parallelism for multi-head runs (simulation speed only;
    /// heads are independent, so results are identical for any value).
    int num_threads = 1;

    CycleConfig cycle_config() const {
        CycleConfig c;
        c.recip = recip_config;
        return c;
    }
};

struct HeadResult {
    Matrix<float> output;  ///< n x d attention output
    SimStats stats;
};

struct LayerResult {
    Tensor3<float> output;  ///< per-head n x d attention outputs
    SimStats stats;         ///< summed over heads
    ScheduleStats schedule; ///< the (head-independent) schedule statistics
};

class SaloEngine {
public:
    SaloEngine();  // default configuration
    explicit SaloEngine(const SaloConfig& config);

    const SaloConfig& config() const { return config_; }

    /// Run one attention head. `scale` (typically 1/sqrt(d)) is folded into
    /// Q before quantization, as the hardware driver would do.
    HeadResult run_head(const HybridPattern& pattern, const Matrix<float>& q,
                        const Matrix<float>& k, const Matrix<float>& v, float scale) const;

    /// Run a multi-head attention layer; the schedule is built once and
    /// reused across heads.
    LayerResult run(const HybridPattern& pattern, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v, float scale) const;

    /// The schedule this engine would use for `pattern` with head dim `d`.
    SchedulePlan plan(const HybridPattern& pattern, int head_dim) const;

    /// Float oracle for the same computation (no quantization, no hardware).
    static Matrix<float> golden(const HybridPattern& pattern, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v, float scale);

private:
    HeadResult run_head_on_plan(const SchedulePlan& plan, const HybridPattern& pattern,
                                const Matrix<float>& q, const Matrix<float>& k,
                                const Matrix<float>& v, float scale) const;

    SaloConfig config_;
    PwlExp exp_unit_;
    Reciprocal recip_unit_;
};

}  // namespace salo
