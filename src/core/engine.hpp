// SaloEngine: the end-to-end public API of the SALO reproduction.
//
// Drives the full pipeline of the paper's Figure 3: the hybrid sparse
// attention pattern and hardware metadata go to the data scheduler; the
// quantized Query/Key/Value stream through the spatial accelerator
// (functional or cycle-accurate model); per-part outputs are merged by the
// weighted-sum module (Eq. 2); the result is dequantized back to float.
//
// Fidelity levels:
//   kGolden        — float masked attention, no hardware at all (oracle);
//   kFunctional    — bit-accurate fixed-point datapath, analytic cycles;
//   kCycleAccurate — bit-accurate datapath driven cycle-by-cycle (slow;
//                    validates the analytic cycle model).
//
// Execution: the engine owns a persistent worker pool and parallelizes at
// two levels — across heads when there are many small plans, and across the
// tiles of a single plan otherwise (per-lane part arenas, then a sharded
// ordered merge into the weighted-sum module). Both levels are bit-identical
// to the sequential path for every thread count: tile outputs are replayed
// in schedule order per query shard, and all datapath arithmetic is integer.
#pragma once

#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_pool.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/part_builder.hpp"
#include "sim/parts.hpp"
#include "tensor/tensor3.hpp"

namespace salo {

enum class Fidelity {
    kGolden,
    kFunctional,
    kCycleAccurate,
};

/// One simulation lane per hardware thread (>= 1).
inline int default_num_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

struct SaloConfig {
    ArrayGeometry geometry;
    PwlExp::Config exp_config;
    Reciprocal::Config recip_config;
    ScheduleOptions schedule_options;
    Fidelity fidelity = Fidelity::kFunctional;

    /// Off-chip bandwidth model: bytes transferred per cycle into the
    /// double-buffered SRAMs. Tile loads overlap compute; a tile stalls only
    /// when its input load is longer than the previous tile's compute.
    int bus_bytes_per_cycle = 64;
    bool double_buffer = true;

    /// Inter-tile stage overlap: stage 3 (row ripple + reciprocal +
    /// broadcast) uses the adder tree and the shared reciprocal unit, not
    /// the PE MACs, so the next tile's stage-1 systolic pass can run under
    /// it. When enabled, every tile after the first hides its stage-3
    /// latency. Off by default (the paper does not describe the overlap);
    /// quantified in bench_ablation.
    bool tile_pipelining = false;

    /// Host-side parallelism for simulation speed only: results are
    /// bit-identical for every value. Defaults to all hardware threads; an
    /// explicit 1 forces the plain sequential path (no pool involved), and
    /// values <= 0 mean "auto" (hardware concurrency).
    int num_threads = default_num_threads();

    /// Run the original scalar datapath loops (per-tile allocations, span
    /// indexing, int64 stage-5 accumulation) instead of the optimized
    /// kernels. Same results bit-for-bit; kept as the measured baseline for
    /// bench_throughput and for bit-identity tests.
    bool reference_datapath = false;

    CycleConfig cycle_config() const {
        CycleConfig c;
        c.recip = recip_config;
        return c;
    }
};

struct HeadResult {
    Matrix<float> output;  ///< n x d attention output
    SimStats stats;
};

struct LayerResult {
    Tensor3<float> output;  ///< per-head n x d attention outputs
    SimStats stats;         ///< summed over heads
    ScheduleStats schedule; ///< the (head-independent) schedule statistics
};

class SaloEngine {
public:
    SaloEngine();  // default configuration
    explicit SaloEngine(const SaloConfig& config);

    const SaloConfig& config() const { return config_; }

    /// Run one attention head. `scale` (typically 1/sqrt(d)) is folded into
    /// Q before quantization, as the hardware driver would do.
    HeadResult run_head(const HybridPattern& pattern, const Matrix<float>& q,
                        const Matrix<float>& k, const Matrix<float>& v, float scale) const;

    /// Run a multi-head attention layer; the schedule is built once and
    /// reused across heads.
    LayerResult run(const HybridPattern& pattern, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v, float scale) const;

    /// The schedule this engine would use for `pattern` with head dim `d`.
    SchedulePlan plan(const HybridPattern& pattern, int head_dim) const;

    /// Float oracle for the same computation (no quantization, no hardware).
    static Matrix<float> golden(const HybridPattern& pattern, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v, float scale);

private:
    /// Per-lane buffers of the tile-parallel path, reused across the heads
    /// of one layer so arenas keep their capacity (allocating ~parts-per-
    /// head of fresh vectors per head costs more than the merge itself).
    struct ParallelWorkspace {
        std::vector<PartArena> arenas;
        std::vector<PartScratch> scratch;
        std::vector<PartSpan> spans;
        std::vector<ActivityStats> lane_activity;
        std::vector<std::vector<TilePart>> tile_parts;  ///< cycle-accurate path
        std::vector<CycleBreakdown> breakdowns;         ///< cycle-accurate path
        std::vector<QueryShard> shards;       ///< merge shards, shared across heads
        std::vector<QueryShard> tile_bounds;  ///< per-tile part query range [lo, hi)
    };

    HeadResult run_head_on_plan(const SchedulePlan& plan, const HybridPattern& pattern,
                                const Matrix<float>& q, const Matrix<float>& k,
                                const Matrix<float>& v, float scale) const;

    /// `threads` is the lane budget for THIS head (1 = sequential; callers
    /// running heads in parallel pass 1 so levels never nest). `ws` may be
    /// null (a scratch workspace is created when needed).
    HeadResult run_head_impl(const SchedulePlan& plan, const HybridPattern& pattern,
                             const Matrix<float>& q, const Matrix<float>& k,
                             const Matrix<float>& v, float scale, int threads,
                             ParallelWorkspace* ws = nullptr) const;

    HeadResult run_head_sequential(const SchedulePlan& plan,
                                   const Matrix<std::int8_t>& qq,
                                   const Matrix<std::int8_t>& kq,
                                   const Matrix<std::int8_t>& vq) const;

    HeadResult run_head_parallel(const SchedulePlan& plan, const Matrix<std::int8_t>& qq,
                                 const Matrix<std::int8_t>& kq,
                                 const Matrix<std::int8_t>& vq,
                                 ParallelWorkspace& ws) const;

    /// The persistent worker pool (built on first use, sized num_threads).
    ThreadPool& pool() const;

    SaloConfig config_;
    PwlExp exp_unit_;
    Reciprocal recip_unit_;
    mutable std::once_flag pool_once_;
    mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace salo
