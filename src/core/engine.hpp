// SaloEngine: the execution back end of the SALO reproduction.
//
// Drives the full pipeline of the paper's Figure 3: the hybrid sparse
// attention pattern and hardware metadata go to the data scheduler; the
// quantized Query/Key/Value stream through the spatial accelerator
// (functional or cycle-accurate model); per-part outputs are merged by the
// weighted-sum module (Eq. 2); the result is dequantized back to float.
//
// API lifecycle (see docs/API.md):
//
//   compile(pattern, head_dim, config) -> CompiledPlan   // once per shape
//   engine.run(plan, q, k, v, scale)   -> LayerResult    // many times
//
// The engine also keeps an internal PlanCache, so the legacy one-shot
// run_head(pattern, ...)/run(pattern, ...) calls — now thin shims over the
// compiled-plan API — no longer re-run the scheduler on every invocation.
// For request-level serving (many in-flight layers batched onto one worker
// pool) use SaloSession (core/session.hpp).
//
// Fidelity levels:
//   kGolden        — float masked attention, no hardware at all (oracle);
//   kFunctional    — bit-accurate fixed-point datapath, analytic cycles;
//   kCycleAccurate — bit-accurate datapath driven cycle-by-cycle (slow;
//                    validates the analytic cycle model).
//
// Execution: the engine owns a persistent worker pool and parallelizes at
// two levels — across heads when there are many small plans, and across the
// tiles of a single plan otherwise (per-lane part arenas, then a sharded
// ordered merge into the weighted-sum module). Both levels are bit-identical
// to the sequential path for every thread count: tile outputs are replayed
// in schedule order per query shard, and all datapath arithmetic is integer.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>

#include "common/fault_injector.hpp"
#include "common/thread_pool.hpp"
#include "core/cancellation.hpp"
#include "core/config.hpp"
#include "core/errors.hpp"
#include "core/plan_cache.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/part_builder.hpp"
#include "sim/parts.hpp"
#include "tensor/tensor3.hpp"

namespace salo {

struct HeadResult {
    Matrix<float> output;  ///< n x d attention output
    SimStats stats;
};

struct LayerResult {
    Tensor3<float> output;  ///< per-head n x d attention outputs
    SimStats stats;         ///< summed over heads
    ScheduleStats schedule; ///< the (head-independent) schedule statistics
};

/// One decode step's output: the attention row of the newly appended
/// position, per head (run_step).
struct StepResult {
    Tensor3<float> output;  ///< [heads][1][head_dim]
    SimStats stats;         ///< summed over heads
    int position = 0;       ///< query row in the full sequence
};

/// Per-run robustness controls (all optional; the zero-value runs exactly
/// like the plain overloads). Checked at tile boundaries, so an in-flight
/// run stops early on cancellation or deadline expiry by throwing the
/// typed error — results that do complete are untouched and keep the
/// bit-identity guarantee.
struct RunOptions {
    /// Execution fidelity; defaults to the engine's configured fidelity.
    std::optional<Fidelity> fidelity;
    /// See run(plan, q, k, v, scale, fidelity, thread_budget): <= 0 means
    /// the configured thread count, 1 forces the sequential path.
    int thread_budget = 0;
    /// Checked at every tile boundary; fires RequestCancelled.
    CancellationToken cancel;
    /// Absolute deadline; past-due tile boundaries fire DeadlineExceeded.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Fault/stall injection hook (tests, overload experiments). Not
    /// owned; must outlive the run. Overrides SaloConfig::fault_injector.
    const FaultInjector* fault_injector = nullptr;
};

class SaloEngine {
public:
    SaloEngine();  // default configuration
    explicit SaloEngine(const SaloConfig& config);

    const SaloConfig& config() const { return config_; }

    // --- Compiled-plan API -------------------------------------------------

    /// Compile `pattern` for `head_dim` through the engine's PlanCache:
    /// repeated shapes return the shared cached artifact without re-running
    /// the scheduler. Thread-safe.
    CompiledPlanPtr compile(const HybridPattern& pattern, int head_dim) const;

    /// Run one attention head on a compiled plan. `scale` (typically
    /// 1/sqrt(d)) is folded into Q before quantization, as the hardware
    /// driver would do. The plan must have been compiled for this engine's
    /// geometry and schedule options.
    HeadResult run_head(const CompiledPlan& plan, const Matrix<float>& q,
                        const Matrix<float>& k, const Matrix<float>& v,
                        float scale) const;

    /// Run a multi-head attention layer on a compiled plan; the schedule is
    /// shared across heads.
    LayerResult run(const CompiledPlan& plan, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v,
                    float scale) const;

    /// Advanced overload (SaloSession batching): per-call fidelity and
    /// execution shape. `thread_budget` <= 0 means the configured thread
    /// count; 1 forces the pure sequential path with no pool involvement,
    /// so many such calls can run concurrently. Values > 1 are NOT a lane
    /// bound: they select the parallel path, which always runs on the
    /// engine's full pool, and concurrent parallel regions serialize on
    /// that pool — callers building their own batchers should pass 1 per
    /// request (as SaloSession does) and parallelize across calls. Results
    /// are bit-identical for every value.
    LayerResult run(const CompiledPlan& plan, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v, float scale,
                    Fidelity fidelity, int thread_budget) const;

    /// Full-control overload: fidelity/thread budget plus the robustness
    /// hooks (cancellation, deadline, fault injection) checked at tile
    /// boundaries. Throws RequestCancelled / DeadlineExceeded / EngineFault
    /// from the calling thread when a hook fires mid-run.
    LayerResult run(const CompiledPlan& plan, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v, float scale,
                    const RunOptions& options) const;

    // --- Incremental decode API --------------------------------------------

    /// The decode micro-plan for the last row of `pattern` (a prefix
    /// pattern: n = prefix length, step position = n - 1), resolved through
    /// the engine's PlanCache — the full plan is compiled at most once per
    /// shape and every step derivation is cached under its own
    /// step_plan_fingerprint key. Requires decode_compatible(pattern).
    CompiledPlanPtr compile_step(const HybridPattern& pattern, int head_dim) const;

    /// Execute one decode step: query row `position` of the micro-plan's
    /// pattern against the compact K/V layout DecodeState::assemble()
    /// produces. `q_row` is heads x head_dim (one query row per head);
    /// `k`/`v` are [heads][compact_rows][head_dim]. Bit-identical to row
    /// `position` of run() over the full prefix at the same fidelity:
    /// the micro-plan replays exactly the tiles/parts the full schedule
    /// emits for that row, in the same order, through the same integer
    /// datapath. Robustness hooks behave as in run().
    StepResult run_step(const CompiledPlan& micro, const Matrix<float>& q_row,
                        const Tensor3<float>& k, const Tensor3<float>& v, float scale,
                        const RunOptions& options = {}) const;

    /// Cumulative statistics of the internal PlanCache serving compile()
    /// and the legacy shims.
    PlanCacheStats plan_cache_stats() const;

    // --- Legacy one-shot API (shims over compile + run) --------------------

    /// Equivalent to run_head(*compile(pattern, q.cols()), ...).
    HeadResult run_head(const HybridPattern& pattern, const Matrix<float>& q,
                        const Matrix<float>& k, const Matrix<float>& v, float scale) const;

    /// Equivalent to run(*compile(pattern, q.cols()), ...).
    LayerResult run(const HybridPattern& pattern, const Tensor3<float>& q,
                    const Tensor3<float>& k, const Tensor3<float>& v, float scale) const;

    /// The schedule this engine would use for `pattern` with head dim `d`
    /// (uncached direct scheduler invocation; prefer compile()).
    SchedulePlan plan(const HybridPattern& pattern, int head_dim) const;

    /// Float oracle for the same computation (no quantization, no hardware).
    static Matrix<float> golden(const HybridPattern& pattern, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v, float scale);

private:
    friend class SaloSession;    ///< batches requests onto the engine's pool
    friend class DecodeSession;  ///< batches decode steps onto the engine's pool

    /// Resolved robustness hooks for one run; null pointer = none active,
    /// which keeps the hot path free of per-tile clock reads and atomics.
    struct RunControl {
        const CancellationToken* cancel = nullptr;  ///< non-null iff cancellable
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline{};
        const FaultInjector* fault = nullptr;

        bool active() const { return cancel != nullptr || has_deadline || fault != nullptr; }

        /// Called before executing tile `tile` (schedule order; -1 marks a
        /// head boundary on paths without a tile loop).
        void check(int tile) const {
            if (cancel != nullptr && cancel->cancelled())
                throw RequestCancelled("request cancelled at tile boundary " +
                                       std::to_string(tile));
            if (has_deadline && std::chrono::steady_clock::now() > deadline)
                throw DeadlineExceeded("deadline exceeded at tile boundary " +
                                       std::to_string(tile));
            // The injector gets the deadline and token so an injected stall
            // is bounded by them (it throws instead of sleeping past either).
            if (fault != nullptr)
                fault->on_tile(tile,
                               has_deadline ? std::optional<std::chrono::steady_clock::
                                                                time_point>(deadline)
                                            : std::nullopt,
                               cancel);
        }
    };

    /// Per-lane buffers of the tile-parallel path, reused across the heads
    /// of one layer so arenas keep their capacity (allocating ~parts-per-
    /// head of fresh vectors per head costs more than the merge itself).
    struct ParallelWorkspace {
        std::vector<PartArena> arenas;
        std::vector<PartScratch> scratch;
        std::vector<PartSpan> spans;
        std::vector<ActivityStats> lane_activity;
        std::vector<std::vector<TilePart>> tile_parts;  ///< cycle-accurate path
        std::vector<QueryShard> shards;       ///< merge shards, shared across heads
        std::vector<QueryShard> tile_bounds;  ///< per-tile part query range [lo, hi)
    };

    /// The plan must match this engine's geometry/options (checked).
    void check_compatible(const CompiledPlan& plan) const;

    /// `threads` is the lane budget for THIS head (1 = sequential; callers
    /// running heads in parallel pass 1 so levels never nest). `ws` may be
    /// null (a scratch workspace is created when needed). `ctl` may be null
    /// (no robustness hooks active).
    HeadResult run_head_impl(const SchedulePlan& plan, const HybridPattern& pattern,
                             const Matrix<float>& q, const Matrix<float>& k,
                             const Matrix<float>& v, float scale, Fidelity fidelity,
                             int threads, ParallelWorkspace* ws = nullptr,
                             const RunControl* ctl = nullptr) const;

    HeadResult run_head_sequential(const SchedulePlan& plan, Fidelity fidelity,
                                   const Matrix<std::int8_t>& qq,
                                   const Matrix<std::int8_t>& kq,
                                   const Matrix<std::int8_t>& vq,
                                   const RunControl* ctl = nullptr) const;

    HeadResult run_head_parallel(const SchedulePlan& plan, Fidelity fidelity,
                                 const Matrix<std::int8_t>& qq,
                                 const Matrix<std::int8_t>& kq,
                                 const Matrix<std::int8_t>& vq,
                                 ParallelWorkspace& ws,
                                 const RunControl* ctl = nullptr) const;

    /// One head of one decode step (sequential tile loop; micro-plans are
    /// a handful of tiles, so there is nothing to fork over inside a head).
    HeadResult run_step_head(const CompiledPlan& micro, const Matrix<float>& q_row,
                             int head, const Matrix<float>& k, const Matrix<float>& v,
                             float scale, Fidelity fidelity,
                             const RunControl* ctl) const;

    /// The persistent worker pool (built on first use, sized num_threads).
    ThreadPool& pool() const;

    SaloConfig config_;
    PwlExp exp_unit_;
    Reciprocal recip_unit_;
    mutable PlanCache plan_cache_;
    mutable std::once_flag pool_once_;
    mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace salo
