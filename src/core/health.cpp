#include "core/health.hpp"

#include "common/assert.hpp"

namespace salo {

CircuitBreaker::CircuitBreaker(HealthPolicy policy) : policy_(policy) {
    SALO_EXPECTS(policy_.window >= 1);
    SALO_EXPECTS(policy_.min_samples >= 1);
    SALO_EXPECTS(policy_.failure_threshold > 0.0 && policy_.failure_threshold <= 1.0);
    SALO_EXPECTS(policy_.reintegrate_after >= 1);
    SALO_EXPECTS(policy_.max_concurrent_probes >= 1);
    ring_.assign(policy_.window, 0);
}

ShardState CircuitBreaker::state(Clock::time_point now) {
    if (state_ == ShardState::quarantined && now - quarantined_at_ >= policy_.cooldown) {
        state_ = ShardState::probing;
        clean_probes_ = 0;
        inflight_probes_ = 0;
    }
    return state_;
}

bool CircuitBreaker::try_acquire(Clock::time_point now) {
    switch (state(now)) {
        case ShardState::healthy:
            return true;
        case ShardState::probing:
            if (inflight_probes_ >= policy_.max_concurrent_probes) return false;
            ++inflight_probes_;
            return true;
        case ShardState::quarantined:
            return false;
    }
    return false;
}

void CircuitBreaker::force_probe(Clock::time_point now) {
    // Only the quarantined -> probing transition restarts the clean-probe
    // count: consecutive forced probes must accumulate progress toward
    // reintegration exactly like cooldown-opened probes do.
    if (state(now) == ShardState::quarantined) {
        state_ = ShardState::probing;
        clean_probes_ = 0;
        inflight_probes_ = 0;
    }
    if (state_ == ShardState::probing) ++inflight_probes_;
    // healthy needs no slot accounting; the matching record() handles both.
}

double CircuitBreaker::failure_fraction() const {
    return ring_count_ == 0
               ? 0.0
               : static_cast<double>(ring_failures_) / static_cast<double>(ring_count_);
}

void CircuitBreaker::open(Clock::time_point now) {
    state_ = ShardState::quarantined;
    quarantined_at_ = now;
    ++quarantined_events_;
    // A fresh quarantine judges the shard anew after reintegration: the
    // window restarts so stale history neither hides nor amplifies the
    // next incident.
    ring_.assign(policy_.window, 0);
    ring_next_ = 0;
    ring_count_ = 0;
    ring_failures_ = 0;
    inflight_probes_ = 0;
    clean_probes_ = 0;
}

void CircuitBreaker::record(Outcome outcome, Clock::time_point now) {
    if (outcome == Outcome::success) ++successes_;
    if (outcome == Outcome::failure) ++failures_;

    switch (state(now)) {
        case ShardState::healthy: {
            if (outcome == Outcome::neutral) return;
            const unsigned char fail = outcome == Outcome::failure ? 1 : 0;
            ring_failures_ += fail;
            if (ring_count_ == ring_.size())
                ring_failures_ -= ring_[ring_next_];
            else
                ++ring_count_;
            ring_[ring_next_] = fail;
            ring_next_ = (ring_next_ + 1) % ring_.size();
            if (ring_count_ >= policy_.min_samples &&
                failure_fraction() >= policy_.failure_threshold)
                open(now);
            return;
        }
        case ShardState::probing: {
            if (inflight_probes_ > 0) --inflight_probes_;
            if (outcome == Outcome::neutral) return;
            if (outcome == Outcome::failure) {
                open(now);  // a dirty probe restarts the whole quarantine
                return;
            }
            if (++clean_probes_ >= policy_.reintegrate_after) {
                state_ = ShardState::healthy;
                ++reintegrated_events_;
                clean_probes_ = 0;
                inflight_probes_ = 0;
            }
            return;
        }
        case ShardState::quarantined:
            // An attempt acquired before the quarantine finishing now: its
            // outcome already informed (or caused) the open — nothing more
            // to judge.
            return;
    }
}

// ---------------------------------------------------------------------------

HealthSupervisor::HealthSupervisor(int shards, HealthPolicy policy) {
    SALO_EXPECTS(shards >= 1);
    breakers_.assign(static_cast<std::size_t>(shards), CircuitBreaker(policy));
}

std::vector<int> HealthSupervisor::acquirable(Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    std::vector<int> out;
    out.reserve(breakers_.size());
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
        CircuitBreaker& b = breakers_[i];
        const ShardState s = b.state(now);
        if (s == ShardState::healthy)
            out.push_back(static_cast<int>(i));
        else if (s == ShardState::probing && b.try_acquire(now)) {
            // Peeking probe capacity without consuming it would race the
            // later acquire; instead release immediately and let the real
            // try_acquire claim the slot.
            b.record(CircuitBreaker::Outcome::neutral, now);
            out.push_back(static_cast<int>(i));
        }
    }
    return out;
}

bool HealthSupervisor::try_acquire(int shard, Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    return breakers_[static_cast<std::size_t>(shard)].try_acquire(now);
}

int HealthSupervisor::force_acquire_soonest(Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    // Oldest quarantine first: its cooldown is closest to expiring, so it
    // is the least-bad shard to press back into service.
    int best = 0;
    Clock::time_point best_at = Clock::time_point::max();
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
        const Clock::time_point at = breakers_[i].quarantined_at();
        if (at < best_at) {
            best_at = at;
            best = static_cast<int>(i);
        }
    }
    breakers_[static_cast<std::size_t>(best)].force_probe(now);
    return best;
}

void HealthSupervisor::record(int shard, CircuitBreaker::Outcome outcome,
                              Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    breakers_[static_cast<std::size_t>(shard)].record(outcome, now);
}

int HealthSupervisor::healthy_count(Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    int healthy = 0;
    for (CircuitBreaker& b : breakers_)
        if (b.state(now) == ShardState::healthy) ++healthy;
    return healthy;
}

std::vector<ShardHealthSnapshot> HealthSupervisor::snapshot(Clock::time_point now) {
    std::lock_guard<std::mutex> lock(m_);
    std::vector<ShardHealthSnapshot> out(breakers_.size());
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
        CircuitBreaker& b = breakers_[i];
        out[i].state = b.state(now);
        out[i].failure_fraction = b.failure_fraction();
        out[i].successes = b.successes();
        out[i].failures = b.failures();
        out[i].quarantined_events = b.quarantined_events();
        out[i].reintegrated_events = b.reintegrated_events();
    }
    return out;
}

std::uint64_t HealthSupervisor::quarantined_events_total() const {
    std::lock_guard<std::mutex> lock(m_);
    std::uint64_t total = 0;
    for (const CircuitBreaker& b : breakers_) total += b.quarantined_events();
    return total;
}

std::uint64_t HealthSupervisor::reintegrated_events_total() const {
    std::lock_guard<std::mutex> lock(m_);
    std::uint64_t total = 0;
    for (const CircuitBreaker& b : breakers_) total += b.reintegrated_events();
    return total;
}

}  // namespace salo
