#include "core/admission.hpp"

namespace salo {

AdmissionDecision AdmissionController::decide(const AdmissionSnapshot& s,
                                              Priority priority,
                                              std::uint64_t cost) const {
    bool over = false;
    if (policy_.max_queue > 0 && s.queued_total() >= policy_.max_queue) over = true;
    if (priority == Priority::batch && policy_.max_queue_batch > 0 &&
        s.queued_batch >= policy_.max_queue_batch)
        over = true;
    // The cost gate admits a request that is alone in the system even if it
    // exceeds the threshold by itself — otherwise an oversized request
    // could never be served at all.
    if (policy_.max_outstanding_cost > 0 && s.outstanding_cost > 0 &&
        s.outstanding_cost + cost > policy_.max_outstanding_cost)
        over = true;
    if (!over) return AdmissionDecision::admit;
    return policy_.mode == AdmissionMode::reject_fast ? AdmissionDecision::reject
                                                      : AdmissionDecision::wait;
}

}  // namespace salo
