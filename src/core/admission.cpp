#include "core/admission.hpp"

namespace salo {

AdmissionDecision AdmissionController::decide(const AdmissionSnapshot& s,
                                              Priority priority,
                                              std::uint64_t cost) const {
    bool over = false;
    if (policy_.max_queue > 0 && s.queued_total() >= policy_.max_queue) over = true;
    if (priority == Priority::batch && policy_.max_queue_batch > 0 &&
        s.queued_batch >= policy_.max_queue_batch)
        over = true;
    // The cost gate admits a request that is alone in the system even if it
    // exceeds the threshold by itself — otherwise an oversized request
    // could never be served at all.
    if (policy_.max_outstanding_cost > 0 && s.outstanding_cost > 0 &&
        s.outstanding_cost + cost > policy_.max_outstanding_cost)
        over = true;
    if (!over) return AdmissionDecision::admit;
    return policy_.mode == AdmissionMode::reject_fast ? AdmissionDecision::reject
                                                      : AdmissionDecision::wait;
}

AdmissionPolicy scaled_policy(const AdmissionPolicy& base, int healthy_shards,
                              int total_shards) {
    if (total_shards <= 0) return base;
    if (healthy_shards < 0) healthy_shards = 0;
    if (healthy_shards >= total_shards) return base;
    const auto h = static_cast<std::uint64_t>(healthy_shards);
    const auto t = static_cast<std::uint64_t>(total_shards);
    auto scale_size = [&](std::size_t limit) -> std::size_t {
        if (limit == 0) return 0;  // unbounded stays unbounded
        const std::uint64_t scaled = static_cast<std::uint64_t>(limit) * h / t;
        return static_cast<std::size_t>(scaled > 0 ? scaled : 1);
    };
    auto scale_cost = [&](std::uint64_t limit) -> std::uint64_t {
        if (limit == 0) return 0;
        const std::uint64_t scaled = limit * h / t;
        return scaled > 0 ? scaled : 1;
    };
    AdmissionPolicy p = base;
    p.max_queue = scale_size(base.max_queue);
    p.max_queue_batch = scale_size(base.max_queue_batch);
    p.max_outstanding_cost = scale_cost(base.max_outstanding_cost);
    return p;
}

}  // namespace salo
