#include "core/config.hpp"

#include <cmath>
#include <string>

#include "common/assert.hpp"

namespace salo {

namespace {

[[noreturn]] void reject(const std::string& field, const std::string& requirement,
                         const std::string& got) {
    throw ContractViolation("SaloConfig: " + field + " " + requirement + " (got " + got +
                            ")");
}

void check_positive(const char* field, int value) {
    if (value <= 0) reject(field, "must be positive", std::to_string(value));
}

}  // namespace

void SaloConfig::validate() const {
    check_positive("geometry.rows", geometry.rows);
    check_positive("geometry.cols", geometry.cols);
    if (geometry.num_global_rows < 0)
        reject("geometry.num_global_rows", "must be >= 0",
               std::to_string(geometry.num_global_rows));
    if (geometry.num_global_cols < 0)
        reject("geometry.num_global_cols", "must be >= 0",
               std::to_string(geometry.num_global_cols));
    check_positive("geometry.query_buffer_bytes", geometry.query_buffer_bytes);
    check_positive("geometry.key_buffer_bytes", geometry.key_buffer_bytes);
    check_positive("geometry.value_buffer_bytes", geometry.value_buffer_bytes);
    check_positive("geometry.output_buffer_bytes", geometry.output_buffer_bytes);
    if (!(geometry.frequency_ghz > 0.0) || !std::isfinite(geometry.frequency_ghz))
        reject("geometry.frequency_ghz", "must be a positive finite value",
               std::to_string(geometry.frequency_ghz));
    check_positive("bus_bytes_per_cycle", bus_bytes_per_cycle);
    check_positive("plan_cache_capacity", plan_cache_capacity);
    // num_threads is deliberately unconstrained: <= 0 means "auto".
    cycle_config().validate();  // stage latencies, named-field rejects
}

}  // namespace salo
