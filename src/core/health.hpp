// Shard health supervision: per-shard circuit breakers for the sharded
// serving tier (core/shard_router.hpp).
//
// Each engine shard gets a CircuitBreaker tracking a rolling window of
// attempt outcomes. The state machine (docs/RELIABILITY.md):
//
//   healthy ──(failure fraction over the window >= threshold,
//              with at least min_samples outcomes)──> quarantined
//   quarantined ──(cooldown elapsed)──> probing (half-open)
//   probing ──(reintegrate_after consecutive clean probes)──> healthy
//   probing ──(any probe failure)──> quarantined (fresh cooldown)
//
// While quarantined a shard receives no traffic; while probing it receives
// at most max_concurrent_probes in-flight requests (real traffic doubles as
// the probe — there is no synthetic ping, so a probe exercises the exact
// faulting path). The router counts every healthy->quarantined transition
// as a quarantined_shard_event and every probing->healthy transition as a
// reintegrated_shard_event.
//
// Determinism: the breaker never reads the clock itself — every method
// takes an explicit time point — so tests drive the whole state machine
// with synthetic timestamps and exact outcome sequences
// (tests/test_shard_router.cpp). CircuitBreaker is single-threaded by
// design; HealthSupervisor adds the mutex and the multi-shard view the
// router uses.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace salo {

enum class ShardState {
    healthy,      ///< breaker closed: full traffic
    quarantined,  ///< breaker open: no traffic until cooldown elapses
    probing,      ///< breaker half-open: limited probe traffic
};

inline const char* shard_state_name(ShardState s) {
    switch (s) {
        case ShardState::healthy: return "healthy";
        case ShardState::quarantined: return "quarantined";
        case ShardState::probing: return "probing";
    }
    return "?";
}

struct HealthPolicy {
    /// Rolling outcome window per shard (last `window` attempts).
    std::size_t window = 16;
    /// Never judge a shard before this many outcomes are in the window.
    std::size_t min_samples = 4;
    /// Quarantine when failures / outcomes-in-window >= this fraction.
    double failure_threshold = 0.5;
    /// Quarantine duration before the first half-open probe is allowed.
    std::chrono::milliseconds cooldown{25};
    /// Consecutive clean probes required to reintegrate (close the breaker).
    int reintegrate_after = 3;
    /// In-flight probe requests allowed while probing.
    int max_concurrent_probes = 1;
};

/// One shard's breaker. Not thread-safe; see HealthSupervisor.
class CircuitBreaker {
public:
    using Clock = std::chrono::steady_clock;

    /// How one dispatched attempt on the shard ended, from the breaker's
    /// point of view. `neutral` releases the acquisition without judging
    /// the shard (the request was cancelled, hit its own deadline, or was
    /// a caller bug — none of which say anything about shard health).
    enum class Outcome { success, failure, neutral };

    explicit CircuitBreaker(HealthPolicy policy = {});

    /// Current state, applying the quarantined -> probing transition if the
    /// cooldown has elapsed by `now`.
    ShardState state(Clock::time_point now);

    /// Try to take one dispatch slot. healthy: always granted. probing:
    /// granted while fewer than max_concurrent_probes are in flight.
    /// quarantined: refused. Every granted acquire must be released by
    /// exactly one record() call.
    bool try_acquire(Clock::time_point now);

    /// Last-resort acquisition when every shard of the tier refuses: force
    /// the breaker into probing (even mid-cooldown) and take a probe slot.
    /// Keeps a fully-faulting tier degraded-but-serving instead of dead.
    void force_probe(Clock::time_point now);

    /// Release the slot taken by try_acquire/force_probe and record how the
    /// attempt ended. May transition the state machine (see file comment).
    void record(Outcome outcome, Clock::time_point now);

    // Introspection (counters never reset).
    std::uint64_t quarantined_events() const { return quarantined_events_; }
    std::uint64_t reintegrated_events() const { return reintegrated_events_; }
    std::uint64_t successes() const { return successes_; }
    std::uint64_t failures() const { return failures_; }
    /// Failure fraction of the current rolling window (0 when empty).
    double failure_fraction() const;
    Clock::time_point quarantined_at() const { return quarantined_at_; }
    const HealthPolicy& policy() const { return policy_; }

private:
    void open(Clock::time_point now);

    HealthPolicy policy_;
    ShardState state_ = ShardState::healthy;

    // Rolling outcome ring: 1 = failure, 0 = success.
    std::vector<unsigned char> ring_;
    std::size_t ring_next_ = 0;
    std::size_t ring_count_ = 0;
    std::size_t ring_failures_ = 0;

    Clock::time_point quarantined_at_{};
    int inflight_probes_ = 0;
    int clean_probes_ = 0;

    std::uint64_t quarantined_events_ = 0;
    std::uint64_t reintegrated_events_ = 0;
    std::uint64_t successes_ = 0;
    std::uint64_t failures_ = 0;
};

/// Point-in-time view of one shard, for stats and benches.
struct ShardHealthSnapshot {
    ShardState state = ShardState::healthy;
    double failure_fraction = 0.0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t quarantined_events = 0;
    std::uint64_t reintegrated_events = 0;
};

/// Thread-safe multi-shard front of the breakers — the router's view.
class HealthSupervisor {
public:
    using Clock = CircuitBreaker::Clock;

    HealthSupervisor(int shards, HealthPolicy policy);

    int shards() const { return static_cast<int>(breakers_.size()); }

    /// Indices of shards that would currently grant a dispatch slot
    /// (healthy, or probing with probe capacity). Applies cooldown
    /// transitions as a side effect.
    std::vector<int> acquirable(Clock::time_point now);

    /// Take a dispatch slot on `shard`; false if it no longer grants one.
    bool try_acquire(int shard, Clock::time_point now);

    /// Every shard refused: force-probe the shard whose quarantine is
    /// oldest (its cooldown expires soonest) and return its index. The tier
    /// degrades to serving through probes instead of failing outright.
    int force_acquire_soonest(Clock::time_point now);

    /// Release the slot on `shard` with the attempt's outcome.
    void record(int shard, CircuitBreaker::Outcome outcome, Clock::time_point now);

    /// Shards currently in ShardState::healthy (probing shards do not
    /// count) — drives proportional admission scaling in the router.
    int healthy_count(Clock::time_point now);

    std::vector<ShardHealthSnapshot> snapshot(Clock::time_point now);
    std::uint64_t quarantined_events_total() const;
    std::uint64_t reintegrated_events_total() const;

private:
    mutable std::mutex m_;
    std::vector<CircuitBreaker> breakers_;
};

}  // namespace salo
