#include "core/fair_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace salo {

FairScheduler::FairScheduler(FairQueueOptions options) : options_(std::move(options)) {
    SALO_EXPECTS(options_.default_quota.weight > 0.0);
    for (const auto& [name, quota] : options_.tenants) {
        SALO_EXPECTS(quota.weight > 0.0);
        (void)name;
    }
    if (options_.quantum > 0) adaptive_quantum_ = options_.quantum;
}

const TenantQuota& FairScheduler::quota(const std::string& tenant) const {
    auto it = options_.tenants.find(tenant);
    return it != options_.tenants.end() ? it->second : options_.default_quota;
}

AdmissionDecision FairScheduler::decide(const std::string& tenant, Priority priority,
                                        std::uint64_t cost) const {
    const TenantQuota& q = quota(tenant);
    AdmissionSnapshot snap;
    if (auto it = tenants_.find(tenant); it != tenants_.end()) {
        const Tenant& t = it->second;
        snap.queued_interactive = t.interactive.size();
        snap.queued_batch = t.batch.size();
        // The tenant's outstanding-cost ceiling covers queued *and*
        // in-flight work: a tenant cannot sidestep its quota just because
        // the scheduler already handed its requests to router workers.
        snap.outstanding_cost = t.queued_cost + t.in_flight_cost;
    }
    return AdmissionController(q.admission).decide(snap, priority, cost);
}

void FairScheduler::push(const std::string& tenant, Priority priority, std::uint64_t cost) {
    Tenant& t = tenants_[tenant];
    const bool was_queued = !t.interactive.empty() || !t.batch.empty();
    class_queue(t, priority).push_back(cost);
    t.queued_cost += cost;
    queued_cost_ += cost;
    if (priority == Priority::interactive) {
        ++queued_interactive_;
    } else {
        ++queued_batch_;
    }
    if (options_.quantum == 0) adaptive_quantum_ = std::max(adaptive_quantum_, cost);
    if (!was_queued) ring_.push_back(tenant);
}

std::int64_t FairScheduler::top_up(const std::string& tenant) const {
    const double w = quota(tenant).weight;
    const double amount = static_cast<double>(adaptive_quantum_) * w;
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(amount));
}

std::optional<FairScheduler::Pick> FairScheduler::pop() {
    if (empty()) return std::nullopt;
    // Strict band priority, matching the single-tenant sessions: no batch
    // request is served while interactive work is queued anywhere.
    const Priority band = queued_interactive_ > 0 ? Priority::interactive : Priority::batch;

    // At most one extra sweep after a global top-up: the top-up makes at
    // least one queued head affordable (quantum >= max cost seen when
    // adaptive; with a fixed small quantum a tenant may need several
    // rounds, so we loop until someone can afford — bounded because every
    // round strictly raises every queued tenant's deficit.)
    for (;;) {
        const std::size_t n = ring_.size();
        for (std::size_t step = 0; step < n; ++step) {
            const std::size_t slot = (cursor_ + step) % n;
            const std::string& name = ring_[slot];
            Tenant& t = tenants_.at(name);
            auto& q = class_queue(t, band);
            if (q.empty()) continue;
            const std::uint64_t cost = q.front();
            if (t.deficit < static_cast<std::int64_t>(cost)) continue;

            // Serve this head.
            t.deficit -= static_cast<std::int64_t>(cost);
            q.pop_front();
            t.queued_cost -= cost;
            t.in_flight_cost += cost;
            ++t.in_flight;
            queued_cost_ -= cost;
            if (band == Priority::interactive) {
                --queued_interactive_;
            } else {
                --queued_batch_;
            }

            Pick pick{name, band, cost};
            if (t.interactive.empty() && t.batch.empty()) {
                // Classic DWRR: a tenant that drains its queue loses its
                // banked credit (idle tenants cannot hoard service), but a
                // retry debt (negative deficit) is kept until the tenant
                // is fully idle — see release().
                if (t.deficit > 0) t.deficit = 0;
                ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(slot));
                // Keep the cursor on the slot after the erased one.
                cursor_ = ring_.empty() ? 0 : slot % ring_.size();
            } else {
                // Advance past the served tenant so the next pop starts at
                // its ring successor.
                cursor_ = (slot + 1) % n;
            }
            return pick;
        }
        // Nobody in the band could afford their head: one top-up round for
        // every tenant with queued work, then rescan.
        for (const auto& name : ring_) {
            Tenant& t = tenants_.at(name);
            if (class_queue(t, band).empty()) continue;
            t.deficit += top_up(name);
        }
    }
}

void FairScheduler::release(const std::string& tenant, std::uint64_t cost) {
    auto it = tenants_.find(tenant);
    SALO_EXPECTS(it != tenants_.end());
    Tenant& t = it->second;
    SALO_EXPECTS(t.in_flight > 0 && t.in_flight_cost >= cost);
    t.in_flight_cost -= cost;
    --t.in_flight;
    reclaim_if_idle(tenant);
}

void FairScheduler::charge(const std::string& tenant, std::uint64_t cost) {
    auto it = tenants_.find(tenant);
    // The request being retried was popped, so its tenant still has an
    // in-flight reference and cannot have been reclaimed.
    SALO_EXPECTS(it != tenants_.end());
    it->second.deficit -= static_cast<std::int64_t>(cost);
}

void FairScheduler::reclaim_if_idle(const std::string& tenant) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    const Tenant& t = it->second;
    if (!t.interactive.empty() || !t.batch.empty() || t.in_flight > 0) return;
    // Fully idle: forget the tenant entirely — including any retry debt.
    // A tenant that went idle has, by definition, stopped competing; its
    // entry (and memory) comes back only on the next push.
    auto ring_it = std::find(ring_.begin(), ring_.end(), tenant);
    if (ring_it != ring_.end()) {
        const std::size_t slot = static_cast<std::size_t>(ring_it - ring_.begin());
        ring_.erase(ring_it);
        if (ring_.empty()) {
            cursor_ = 0;
        } else if (cursor_ > slot) {
            --cursor_;
        } else {
            cursor_ %= ring_.size();
        }
    }
    tenants_.erase(it);
}

std::optional<TenantQueueSnapshot> FairScheduler::tenant_snapshot(
    const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return std::nullopt;
    const Tenant& t = it->second;
    TenantQueueSnapshot snap;
    snap.queued_interactive = t.interactive.size();
    snap.queued_batch = t.batch.size();
    snap.queued_cost = t.queued_cost;
    snap.in_flight_cost = t.in_flight_cost;
    snap.deficit = t.deficit;
    return snap;
}

}  // namespace salo
