// Umbrella header: the full public API of the SALO reproduction.
//
//   #include "core/salo.hpp"
//
// pulls in the pattern builders (Longformer / ViL / Star-Transformer /
// Sparse-Transformer), the data scheduler, the compile -> cache -> run
// lifecycle (CompiledPlan / PlanCache / SaloEngine), the SaloSession
// request-serving front end, the DecodeSession streaming-decode tier,
// and the analytic performance models. See
// docs/API.md for the lifecycle and the migration from the legacy
// one-shot calls.
#pragma once

#include "attention/golden.hpp"
#include "common/fault_injector.hpp"
#include "common/rng.hpp"
#include "core/admission.hpp"
#include "core/cancellation.hpp"
#include "core/compiled_plan.hpp"
#include "core/config.hpp"
#include "core/decode_session.hpp"
#include "core/engine.hpp"
#include "core/errors.hpp"
#include "core/health.hpp"
#include "core/plan_cache.hpp"
#include "core/session.hpp"
#include "core/shard_router.hpp"
#include "numeric/fixed.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/quantize.hpp"
#include "numeric/reciprocal.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor3.hpp"
