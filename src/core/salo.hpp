// Umbrella header: the full public API of the SALO reproduction.
//
//   #include "core/salo.hpp"
//
// pulls in the pattern builders (Longformer / ViL / Star-Transformer /
// Sparse-Transformer), the data scheduler, the engine with its three
// fidelity levels, and the analytic performance models.
#pragma once

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "numeric/fixed.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/quantize.hpp"
#include "numeric/reciprocal.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor3.hpp"
