// Tenant-aware fair queueing for the sharded serving tier.
//
// The overload hardening of core/admission.hpp is *global*: one tenant's
// 10x burst fills the shared queue and every other tenant's traffic is
// either rejected (QueueFull) or parked behind the burst. The fix is the
// classic per-source decomposition (the SST QoS Scheduler/PortFIFO model is
// the exemplar shape): requests land in per-tenant bounded queues and a
// weighted scheduler in front of the shared resource decides whose head
// runs next, so service is proportional to configured tenant weights
// regardless of arrival bursts.
//
// FairScheduler implements deficit-weighted round robin (DWRR):
//
//   * every tenant with queued work sits in a round-robin ring and owns a
//     deficit counter (its spendable service credit, in cost units);
//   * pop() serves the first ring tenant — scanning from the round-robin
//     cursor — whose deficit covers its head-of-line cost, and deducts the
//     cost. When no queued tenant can afford its head, every queued tenant
//     earns one top-up of quantum x weight and the scan repeats, so the
//     scheduler is work-conserving and a tenant's long-run service share is
//     proportional to its weight;
//   * priority classes form two bands: as in the single-tenant sessions,
//     no batch-class request is served while any tenant has interactive
//     work queued. DWRR arbitrates *within* the band; the deficit is one
//     per-tenant account spent in either band;
//   * a tenant's deficit resets when its queue drains (classic DWRR: idle
//     tenants cannot bank credit), and the whole per-tenant entry is
//     reclaimed once it has nothing queued and nothing in flight — tenants
//     are created lazily on first push, so the scheduler costs nothing for
//     traffic that never names a tenant;
//   * retries never jump the line: a retried request is still owned by its
//     router worker (it does not re-enter any queue), and charge() bills
//     the extra attempt against the tenant's deficit, so a tenant whose
//     traffic keeps faulting pays for its own re-execution with its future
//     share;
//   * per-tenant admission quotas ride on the same per-tenant counters:
//     decide() evaluates the tenant's own AdmissionPolicy (depth, batch
//     depth, outstanding cost — an AdmissionController per tenant) against
//     that tenant's queue only, on top of whatever global policy the
//     session enforces. A flooding tenant runs into *its own* quota and is
//     shed with QueueFull while everyone else's admission is untouched.
//
// Like AdmissionController, the scheduler holds no lock of its own: the
// owning session serializes every call under its mutex, which makes the
// DWRR state machine deterministic and directly unit-testable with plain
// cost sequences (tests/test_fair_queue.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/admission.hpp"

namespace salo {

/// Per-tenant service share and admission limits. The default-constructed
/// quota is weight 1 with unbounded admission — exactly the pre-tenant
/// behavior.
struct TenantQuota {
    /// Relative DWRR service share (> 0). A weight-2 tenant backlogged
    /// against a weight-1 tenant is served twice the cost per round.
    double weight = 1.0;
    /// Per-tenant admission limits evaluated against this tenant's queue
    /// only (core/admission.hpp; all-zero = unbounded). The mode decides
    /// whether an over-quota submit waits or sheds with QueueFull.
    AdmissionPolicy admission;
};

struct FairQueueOptions {
    /// Deficit top-up per round, in cost units, scaled by the tenant
    /// weight. 0 (default) adapts to the largest request cost seen, so any
    /// single request becomes affordable within one top-up round.
    std::uint64_t quantum = 0;
    /// Quota for tenants not named in `tenants` (including the default ""
    /// tenant of requests that never set tenant_id).
    TenantQuota default_quota;
    /// Per-tenant overrides, keyed by AttentionRequest::tenant_id.
    std::map<std::string, TenantQuota> tenants;
};

/// Introspection snapshot of one live tenant entry (tests, debugging).
struct TenantQueueSnapshot {
    std::size_t queued_interactive = 0;
    std::size_t queued_batch = 0;
    std::uint64_t queued_cost = 0;
    std::uint64_t in_flight_cost = 0;
    std::int64_t deficit = 0;
};

class FairScheduler {
public:
    explicit FairScheduler(FairQueueOptions options = {});

    /// The quota that applies to `tenant` (override or default).
    const TenantQuota& quota(const std::string& tenant) const;

    /// Per-tenant admission decision for one request of `cost` units —
    /// pure, like AdmissionController::decide; the caller combines it with
    /// its global policy and implements wait/reject.
    AdmissionDecision decide(const std::string& tenant, Priority priority,
                             std::uint64_t cost) const;

    /// Commit an admitted request into the tenant's queue (FIFO per
    /// class). Creates the tenant entry lazily.
    void push(const std::string& tenant, Priority priority, std::uint64_t cost);

    /// The DWRR pick: which tenant's head-of-line request runs next. The
    /// caller owns the actual request objects and must dequeue the front of
    /// exactly this (tenant, priority) queue. The picked cost moves from
    /// queued to in-flight; release() ends its life.
    struct Pick {
        std::string tenant;
        Priority priority = Priority::interactive;
        std::uint64_t cost = 0;
    };
    std::optional<Pick> pop();

    /// A previously popped request resolved (any outcome): release its
    /// in-flight cost and reclaim the tenant entry if it is now idle.
    void release(const std::string& tenant, std::uint64_t cost);

    /// Bill an extra execution attempt (a retry after a shard fault) to the
    /// tenant's deficit: the request itself never re-enters a queue, and
    /// the debit means the tenant's *next* requests wait until the deficit
    /// is earned back — fairness survives retries and failover.
    void charge(const std::string& tenant, std::uint64_t cost);

    bool empty() const { return queued_interactive_ + queued_batch_ == 0; }
    std::size_t queued(Priority priority) const {
        return priority == Priority::interactive ? queued_interactive_ : queued_batch_;
    }
    std::size_t queued_total() const { return queued_interactive_ + queued_batch_; }
    std::uint64_t queued_cost() const { return queued_cost_; }

    /// Live per-tenant entries (lazily created, reclaimed when idle).
    std::size_t active_tenants() const { return tenants_.size(); }
    std::optional<TenantQueueSnapshot> tenant_snapshot(const std::string& tenant) const;

private:
    struct Tenant {
        std::deque<std::uint64_t> interactive;  ///< queued request costs, FIFO
        std::deque<std::uint64_t> batch;
        std::uint64_t queued_cost = 0;
        std::uint64_t in_flight_cost = 0;
        std::size_t in_flight = 0;
        /// Spendable service credit. Signed: charge() (retry billing) may
        /// drive it negative, and the tenant earns its way back before its
        /// next head is served.
        std::int64_t deficit = 0;
    };

    std::deque<std::uint64_t>& class_queue(Tenant& t, Priority p) const {
        return p == Priority::interactive ? t.interactive : t.batch;
    }
    /// One deficit top-up for this tenant (>= 1 so progress is guaranteed).
    std::int64_t top_up(const std::string& tenant) const;
    /// Drop the ring slot / whole entry of a tenant that went idle.
    void reclaim_if_idle(const std::string& tenant);

    FairQueueOptions options_;
    std::uint64_t adaptive_quantum_ = 1;  ///< largest cost seen (quantum == 0)
    std::unordered_map<std::string, Tenant> tenants_;
    /// Tenants with queued work, in ring order; the cursor is where the
    /// next pop() starts scanning.
    std::vector<std::string> ring_;
    std::size_t cursor_ = 0;

    std::size_t queued_interactive_ = 0;
    std::size_t queued_batch_ = 0;
    std::uint64_t queued_cost_ = 0;
};

}  // namespace salo
