#include "core/plan_cache.hpp"

#include <utility>

namespace salo {

PlanCache::PlanCache(std::size_t capacity, PlanCompileFn compile_fn)
    : capacity_(capacity == 0 ? 1 : capacity), compile_fn_(std::move(compile_fn)) {
    if (!compile_fn_) {
        compile_fn_ = [](const HybridPattern& pattern, int head_dim,
                         const SaloConfig& config) {
            return compile_shared(pattern, head_dim, config);
        };
    }
}

void PlanCache::attach_shared_store(std::shared_ptr<PlanCache> store) {
    std::lock_guard<std::mutex> lock(m_);
    shared_ = std::move(store);
}

bool PlanCache::matches(const CompiledPlan& cached, const HybridPattern& pattern,
                        int head_dim, const SaloConfig& config,
                        std::optional<int> step_position) const {
    if (cached.is_step() != step_position.has_value()) return false;
    if (step_position && cached.step().position != *step_position) return false;
    return cached.head_dim() == head_dim && cached.geometry() == config.geometry &&
           cached.options() == config.schedule_options && cached.pattern() == pattern;
}

CompiledPlanPtr PlanCache::get_or_compile(const HybridPattern& pattern, int head_dim,
                                          const SaloConfig& config) {
    const std::uint64_t key =
        plan_fingerprint(pattern, head_dim, config.geometry, config.schedule_options);
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        const auto it = by_key_.find(key);
        if (it != by_key_.end() && matches(**it->second, pattern, head_dim, config)) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
            return *it->second;
        }
        if (inflight_.count(key) == 0) break;  // become the compiling leader
        // Another thread is compiling this key right now: wait for it and
        // adopt its artifact instead of running the scheduler twice. The
        // re-lookup on wake also handles a failed or colliding compile.
        cv_compiled_.wait(lock);
    }

    ++misses_;
    inflight_.insert(key);
    const std::shared_ptr<PlanCache> shared = shared_;
    lock.unlock();

    // Resolve the miss outside the lock — through the shared store when one
    // is attached (its own in-flight dedup makes the compile tier-wide
    // unique), otherwise by running the scheduler here. Either way a slow
    // resolution must not stall concurrent hits.
    CompiledPlanPtr fresh;
    try {
        fresh = shared ? shared->get_or_compile(pattern, head_dim, config)
                       : compile_fn_(pattern, head_dim, config);
    } catch (...) {
        // Unregister and wake waiters so one of them can take over as
        // leader (or hit a cached colliding entry); the error goes to our
        // caller untouched.
        lock.lock();
        inflight_.erase(key);
        cv_compiled_.notify_all();
        throw;
    }

    lock.lock();
    if (shared) {
        ++shared_resolved_;
    } else {
        ++compiles_;
    }
    inflight_.erase(key);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        // A colliding entry with this fingerprint exists (matches() said no
        // on the way in — a true 64-bit collision): replace it.
        lru_.erase(it->second);
        by_key_.erase(it);
    }
    insert_locked(fresh);
    cv_compiled_.notify_all();
    return fresh;
}

CompiledPlanPtr PlanCache::get_or_derive_step(const HybridPattern& pattern, int head_dim,
                                              const SaloConfig& config) {
    SALO_EXPECTS(decode_compatible(pattern));
    const int position = pattern.n() - 1;
    const std::uint64_t full_key =
        plan_fingerprint(pattern, head_dim, config.geometry, config.schedule_options);
    const std::uint64_t key = step_plan_fingerprint(full_key, position);
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        const auto it = by_key_.find(key);
        if (it != by_key_.end() &&
            matches(**it->second, pattern, head_dim, config, position)) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
            return *it->second;
        }
        if (inflight_.count(key) == 0) break;  // become the deriving leader
        cv_compiled_.wait(lock);
    }

    ++misses_;
    inflight_.insert(key);
    const std::shared_ptr<PlanCache> shared = shared_;
    lock.unlock();

    // Resolve outside the lock. The full plan goes through get_or_compile —
    // self-recursion on a different key while unlocked — so all steps of
    // one shape amortize a single scheduler pass, and the full plan stays
    // cached for whole-sequence traffic. With a shared store, the store
    // both compiles and derives tier-wide-once.
    CompiledPlanPtr fresh;
    try {
        if (shared) {
            fresh = shared->get_or_derive_step(pattern, head_dim, config);
        } else {
            const CompiledPlanPtr full = get_or_compile(pattern, head_dim, config);
            fresh = derive_micro_plan_shared(*full);
        }
    } catch (...) {
        lock.lock();
        inflight_.erase(key);
        cv_compiled_.notify_all();
        throw;
    }

    lock.lock();
    if (shared) {
        ++shared_resolved_;
    } else {
        ++step_derives_;
    }
    inflight_.erase(key);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        lru_.erase(it->second);
        by_key_.erase(it);
    }
    insert_locked(fresh);
    cv_compiled_.notify_all();
    return fresh;
}

void PlanCache::insert_locked(CompiledPlanPtr plan) {
    lru_.push_front(std::move(plan));
    by_key_[lru_.front()->fingerprint()] = lru_.begin();
    while (lru_.size() > capacity_) {
        by_key_.erase(lru_.back()->fingerprint());
        lru_.pop_back();
        ++evictions_;
    }
}

CompiledPlanPtr PlanCache::peek(std::uint64_t fingerprint) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = by_key_.find(fingerprint);
    return it == by_key_.end() ? nullptr : *it->second;
}

PlanCacheStats PlanCache::stats() const {
    std::lock_guard<std::mutex> lock(m_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.compiles = compiles_;
    s.step_derives = step_derives_;
    s.shared_resolved = shared_resolved_;
    s.evictions = evictions_;
    s.size = lru_.size();
    s.capacity = capacity_;
    return s;
}

void PlanCache::clear() {
    std::lock_guard<std::mutex> lock(m_);
    lru_.clear();
    by_key_.clear();
}

}  // namespace salo
