#include "core/plan_cache.hpp"

namespace salo {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

bool PlanCache::matches(const CompiledPlan& cached, const HybridPattern& pattern,
                        int head_dim, const SaloConfig& config) const {
    return cached.head_dim() == head_dim && cached.geometry() == config.geometry &&
           cached.options() == config.schedule_options && cached.pattern() == pattern;
}

CompiledPlanPtr PlanCache::get_or_compile(const HybridPattern& pattern, int head_dim,
                                          const SaloConfig& config) {
    const std::uint64_t key =
        plan_fingerprint(pattern, head_dim, config.geometry, config.schedule_options);
    {
        std::lock_guard<std::mutex> lock(m_);
        const auto it = by_key_.find(key);
        if (it != by_key_.end() && matches(**it->second, pattern, head_dim, config)) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
            return *it->second;
        }
        ++misses_;
    }

    // Compile outside the lock: a miss must not stall concurrent hits.
    CompiledPlanPtr fresh = compile_shared(pattern, head_dim, config);

    std::lock_guard<std::mutex> lock(m_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        if (matches(**it->second, pattern, head_dim, config)) {
            // Another thread compiled the same key while we did: adopt the
            // canonical copy so all callers share one artifact.
            lru_.splice(lru_.begin(), lru_, it->second);
            return *it->second;
        }
        // True fingerprint collision: replace the stale entry.
        lru_.erase(it->second);
        by_key_.erase(it);
    }
    insert_locked(fresh);
    return fresh;
}

void PlanCache::insert_locked(CompiledPlanPtr plan) {
    lru_.push_front(std::move(plan));
    by_key_[lru_.front()->fingerprint()] = lru_.begin();
    while (lru_.size() > capacity_) {
        by_key_.erase(lru_.back()->fingerprint());
        lru_.pop_back();
        ++evictions_;
    }
}

CompiledPlanPtr PlanCache::peek(std::uint64_t fingerprint) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = by_key_.find(fingerprint);
    return it == by_key_.end() ? nullptr : *it->second;
}

PlanCacheStats PlanCache::stats() const {
    std::lock_guard<std::mutex> lock(m_);
    PlanCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.size = lru_.size();
    s.capacity = capacity_;
    return s;
}

void PlanCache::clear() {
    std::lock_guard<std::mutex> lock(m_);
    lru_.clear();
    by_key_.clear();
}

}  // namespace salo
