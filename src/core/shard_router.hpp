// ShardedSession: the self-healing multi-engine serving tier.
//
// One SaloSession hardens one engine; a ShardedSession spreads traffic over
// N independent SaloEngine shards — each with its own worker pool and
// PlanCache — so a wedged or faulting engine degrades the tier instead of
// taking it down:
//
//   * routing: a pluggable policy picks the shard for every attempt —
//     least-outstanding-cost (default; joins the shortest effective queue),
//     consistent-hash by plan fingerprint (cache affinity: one shape
//     always compiles in one shard's PlanCache), or round-robin;
//   * retry with failover: an attempt that ends in EngineFault — or blows
//     the shard-stall bound (`stall_timeout`) — is retried up to
//     `RetryPolicy::max_attempts` times with exponential backoff and
//     deterministic jitter, preferring a *different healthy* shard
//     (counted in SessionStats::retried / failed_over, per attempt);
//   * no wasted retries: cancelled requests and expired deadlines are never
//     retried — the backoff wait itself polls the CancellationToken and the
//     request deadline, so a cancel between attempts aborts the sleep
//     immediately and resolves RequestCancelled, not EngineFault;
//   * health supervision (core/health.hpp): every attempt outcome feeds the
//     shard's circuit breaker; a shard past the rolling failure threshold
//     is quarantined (no traffic), probed half-open after a cooldown, and
//     reintegrated after K clean probes. While shards are out, tier
//     admission limits shrink proportionally (a 4-shard tier running on 2
//     healthy shards admits half the work) — graceful degradation, not
//     tier failure. Even with every shard quarantined the tier keeps
//     serving through forced probes;
//   * determinism: every completed result is bit-identical to the
//     sequential engine run of the same request, regardless of which shard
//     or retry attempt produced it (all shards share one SaloConfig, and
//     the engine guarantee is thread-count- and placement-independent);
//   * tenant isolation (core/fair_queue.hpp): requests carry a tenant_id
//     and land in per-tenant bounded queues drained by a deficit-weighted
//     round-robin scheduler, so one tenant's 10x burst cannot monopolize
//     the router workers — service stays proportional to configured
//     weights, per-tenant admission quotas shed a flooding tenant against
//     *its own* limits (everyone else sees zero QueueFull), retries are
//     billed to the faulting tenant's deficit, and tenant_stats() breaks
//     the conservation law down per tenant. With shared_plan_store set, the
//     shards also share one read-mostly compile tier, so a shape compiles
//     once tier-wide even under least-cost routing;
//
// Accounting: the SessionStats conservation law
//   completed + failed + rejected + timed_out + cancelled == submitted
// holds for the tier; `retried` and `failed_over` count attempts (one
// request retried twice contributes 2), outside the law by construction.
// The seeded chaos harness (`bench_serving --shards N --chaos --seed S`)
// enforces all of this plus bounded p99 in its exit code; the breaker state
// machine and methodology are documented in docs/RELIABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fair_queue.hpp"
#include "core/health.hpp"
#include "core/session.hpp"

namespace salo {

enum class RoutingPolicy {
    least_outstanding_cost,  ///< shard with the least queued+running cost
    consistent_hash,         ///< rendezvous-hash the plan fingerprint (cache affinity)
    round_robin,             ///< rotate over the currently-eligible shards
};

inline const char* routing_policy_name(RoutingPolicy p) {
    switch (p) {
        case RoutingPolicy::least_outstanding_cost: return "least_outstanding_cost";
        case RoutingPolicy::consistent_hash: return "consistent_hash";
        case RoutingPolicy::round_robin: return "round_robin";
    }
    return "?";
}

struct RetryPolicy {
    /// Total attempts per request, including the first. 1 disables retry.
    int max_attempts = 3;
    /// Backoff before retry k (1-based) is base_backoff << (k-1), capped at
    /// max_backoff, then jittered into [50%, 100%] of itself.
    std::chrono::microseconds base_backoff{500};
    std::chrono::microseconds max_backoff{8000};
    /// Seed of the deterministic jitter hash(seed, request id, attempt).
    std::uint64_t jitter_seed = 0x5a10;
};

struct ShardedSessionOptions {
    int num_shards = 2;
    RoutingPolicy routing = RoutingPolicy::least_outstanding_cost;
    RetryPolicy retry;
    HealthPolicy health;
    /// Tier-level admission policy. Limits scale with the healthy-shard
    /// fraction: on a 4-shard tier with 1 shard quarantined, a max_queue of
    /// 32 admits 24 (never below 1) — degraded tiers shed earlier instead
    /// of queueing deeper.
    AdmissionPolicy admission;
    /// Router worker threads (each carries one request end to end,
    /// including its retries). 0 = 2 x num_shards.
    int router_workers = 0;
    /// Per-attempt execution bound: an attempt running longer than this is
    /// abandoned as a shard stall and retried elsewhere (the shard's
    /// breaker records a failure). 0 disables. Never extends a request's
    /// own deadline — the attempt bound is min(deadline, now + stall_timeout).
    std::chrono::milliseconds stall_timeout{0};
    /// Chaos/testing hook: engine-level fault injector for shard i
    /// (missing/null entries leave that shard clean). Overridden per
    /// request by AttentionRequest::fault_injector as usual.
    std::vector<std::shared_ptr<const FaultInjector>> shard_fault_injectors;
    /// Tenant fairness: DWRR weights, quantum, and per-tenant admission
    /// quotas (core/fair_queue.hpp). The default is a single unbounded
    /// weight-1 default tenant — bit-for-bit the pre-tenant behavior for
    /// traffic that never sets tenant_id.
    FairQueueOptions fairness;
    /// Share one read-mostly PlanCache tier across all shards: each
    /// shard's local cache resolves misses through the shared store, so a
    /// repeated shape compiles exactly once tier-wide regardless of
    /// routing. Off by default (consistent_hash already gives affinity).
    bool shared_plan_store = false;
};

class ShardedSession {
public:
    explicit ShardedSession(const SaloConfig& config = {},
                            ShardedSessionOptions options = {});
    ~ShardedSession();  // close()

    ShardedSession(const ShardedSession&) = delete;
    ShardedSession& operator=(const ShardedSession&) = delete;

    /// Same contract as SaloSession::submit — every asynchronous failure is
    /// a typed SaloError through the future; submit throws only
    /// SessionClosed / ContractViolation. Thread-safe.
    std::future<LayerResult> submit(AttentionRequest request);
    std::future<LayerResult> submit(CompiledPlanPtr plan, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);
    std::future<LayerResult> submit(const HybridPattern& pattern, Tensor3<float> q,
                                    Tensor3<float> k, Tensor3<float> v, float scale);

    /// Compile through shard 0's PlanCache. The artifact is valid on every
    /// shard (all shards share one geometry/schedule configuration).
    CompiledPlanPtr compile(const HybridPattern& pattern, int head_dim) const;

    /// Block until every submitted request has resolved.
    void drain();

    /// Stop accepting, serve everything queued, join the router workers.
    /// Idempotent; the destructor calls it.
    void close();

    /// Tier-wide stats. plan_cache aggregates over shards; retried /
    /// failed_over / quarantined_shard_events / reintegrated_shard_events
    /// are live here (always 0 on a plain SaloSession).
    SessionStats stats() const;

    /// Per-tenant breakdown of the serving counters. Entries persist after
    /// the scheduler reclaims an idle tenant's queue state; summing any
    /// field over tenants reproduces the global stats() value, and each
    /// tenant satisfies the conservation law independently.
    std::map<std::string, TenantStats> tenant_stats() const;

    /// Live scheduler view of one tenant (nullopt once reclaimed).
    std::optional<TenantQueueSnapshot> tenant_queue(const std::string& tenant) const;

    /// The shared compile tier (null unless options.shared_plan_store).
    /// Its stats().compiles is the tier-wide scheduler-pass count.
    std::shared_ptr<PlanCache> shared_plan_store() const { return shared_store_; }

    /// Per-shard breaker states and counters.
    std::vector<ShardHealthSnapshot> shard_health() const;

    int num_shards() const { return static_cast<int>(shards_.size()); }
    const SaloEngine& shard_engine(int shard) const {
        return shards_[static_cast<std::size_t>(shard)]->engine;
    }
    const SaloConfig& config() const { return shards_.front()->engine.config(); }

private:
    using Clock = std::chrono::steady_clock;

    struct Shard {
        explicit Shard(const SaloConfig& config) : engine(config) {}
        SaloEngine engine;
        std::atomic<std::uint64_t> outstanding_cost{0};
        std::atomic<int> active{0};
    };

    struct Task {
        AttentionRequest request;
        std::promise<LayerResult> promise;
        std::uint64_t cost = 0;
        std::uint64_t id = 0;         ///< submission order; jitter input
        std::uint64_t fingerprint = 0;  ///< routing key (consistent_hash)
        int attempts = 0;
        int last_shard = -1;
    };

    /// How one request finally resolved (exactly one per task).
    enum class Resolution { completed, failed, timed_out, cancelled };

    enum class WaitOutcome { elapsed, cancelled, deadline };

    void worker_main();
    void serve_task(Task& task);
    void finish(const std::string& tenant, Resolution resolution,
                bool shed_expired = false);
    int pick_shard(const Task& task, Clock::time_point now);
    Clock::duration backoff_for(const Task& task) const;
    /// Poll-sleep for `d`, aborting the moment the token fires or the
    /// deadline passes — the no-retry-after-cancel guarantee lives here.
    WaitOutcome backoff_wait(Clock::duration d, const CancellationToken& cancel,
                             const std::optional<Clock::time_point>& deadline) const;
    AdmissionSnapshot snapshot_locked() const;

    ShardedSessionOptions options_;
    std::shared_ptr<PlanCache> shared_store_;  ///< before shards_ (they attach to it)
    std::vector<std::unique_ptr<Shard>> shards_;
    mutable HealthSupervisor health_;

    mutable std::mutex m_;
    std::condition_variable cv_work_;
    std::condition_variable cv_space_;
    std::condition_variable cv_idle_;
    /// DWRR arbiter over per-tenant queues; holds only costs. The actual
    /// Task objects live in task_queues_, pushed and popped in lockstep
    /// with the scheduler (same tenant, same class, FIFO), so the
    /// scheduler's pick always names the front task of that queue.
    FairScheduler sched_;
    std::unordered_map<std::string, std::array<std::deque<Task>, 2>> task_queues_;
    std::uint64_t in_flight_cost_ = 0;
    std::size_t in_flight_ = 0;
    /// Submitters parked in an admission wait (counted in submitted_ but
    /// not yet resolved); close() skips the conservation debug-assert
    /// while any exist (see SaloSession::close()).
    std::size_t waiting_submits_ = 0;
    bool closed_ = false;

    std::map<std::string, TenantStats> tenant_stats_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t timed_out_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t shed_expired_ = 0;
    std::uint64_t next_task_id_ = 0;

    std::atomic<std::uint64_t> retried_{0};
    std::atomic<std::uint64_t> failed_over_{0};
    std::atomic<std::uint64_t> round_robin_{0};

    std::vector<std::thread> workers_;  ///< last member: joined by close()
};

}  // namespace salo
