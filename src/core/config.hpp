// Engine configuration: fidelity levels, hardware/bandwidth parameters and
// host-side execution knobs, shared by the compile entry point, SaloEngine
// and SaloSession. Split out of engine.hpp so the compiled-plan and
// plan-cache layers can depend on the configuration without pulling in the
// execution engine.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>

#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "scheduler/geometry.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_formulas.hpp"
#include "sim/tile_costs.hpp"

namespace salo {

class FaultInjector;  // common/fault_injector.hpp (test/robustness hook)
class PlanCache;      // core/plan_cache.hpp (optional shared compile tier)

enum class Fidelity {
    kGolden,
    kFunctional,
    kCycleAccurate,
};

/// One simulation lane per hardware thread (>= 1).
inline int default_num_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
}

struct SaloConfig {
    ArrayGeometry geometry;
    PwlExp::Config exp_config;
    Reciprocal::Config recip_config;
    ScheduleOptions schedule_options;
    Fidelity fidelity = Fidelity::kFunctional;

    /// Off-chip bandwidth model: bytes transferred per cycle into the
    /// double-buffered SRAMs. Tile loads overlap compute; a tile stalls only
    /// when its input load is longer than the previous tile's compute.
    int bus_bytes_per_cycle = 64;
    bool double_buffer = true;

    /// Inter-tile stage overlap: stage 3 (row ripple + reciprocal +
    /// broadcast) uses the adder tree and the shared reciprocal unit, not
    /// the PE MACs, so the next tile's stage-1 systolic pass can run under
    /// it. When enabled, every tile after the first hides its stage-3
    /// latency. Off by default (the paper does not describe the overlap);
    /// quantified in bench_ablation.
    bool tile_pipelining = false;

    /// Host-side parallelism for simulation speed only: results are
    /// bit-identical for every value. Defaults to all hardware threads; an
    /// explicit 1 forces the plain sequential path (no pool involved), and
    /// values <= 0 mean "auto" (hardware concurrency).
    int num_threads = default_num_threads();

    /// Run the original scalar datapath loops (per-tile allocations, span
    /// indexing, int64 stage-5 accumulation) instead of the optimized
    /// kernels. Same results bit-for-bit; kept as the measured baseline for
    /// bench_throughput and for bit-identity tests.
    bool reference_datapath = false;

    /// Capacity of the engine's internal CompiledPlan LRU cache (distinct
    /// pattern/geometry/head-dim combinations kept hot). Must be >= 1.
    int plan_cache_capacity = 64;

    /// Deterministic fault/stall injection consulted at every tile boundary
    /// of every run through this engine (see common/fault_injector.hpp).
    /// Null (the default) costs nothing; a per-request injector on an
    /// AttentionRequest overrides this one for that request.
    std::shared_ptr<const FaultInjector> fault_injector;

    /// Optional shared read-mostly plan store: when set, the engine's local
    /// PlanCache resolves its misses through this store instead of running
    /// the scheduler itself, so engines sharing one store compile each
    /// distinct shape exactly once tier-wide (core/plan_cache.hpp; wired by
    /// ShardedSessionOptions::shared_plan_store). Null = self-contained.
    std::shared_ptr<PlanCache> shared_plan_store;

    /// Reject nonsensical values (zero geometry, non-positive bandwidth,
    /// NaN frequency, ...) with a ContractViolation naming the offending
    /// field, instead of tripping an opaque assertion — or worse — deep in
    /// the scheduler. Called by SaloEngine, compile() and SaloSession.
    void validate() const;

    /// The lane count `num_threads` resolves to (<= 0 means auto).
    int effective_threads() const {
        return num_threads <= 0 ? default_num_threads() : num_threads;
    }

    CycleConfig cycle_config() const {
        CycleConfig c;
        c.recip = recip_config;
        return c;
    }

    /// The sequential cycle-accounting parameters for head dimension `d` —
    /// the contract shared by the engine, the analytic model and the
    /// co-simulation kernel (sim/tile_costs.hpp).
    TileCostParams tile_cost_params(int d) const {
        TileCostParams p;
        p.cycle = cycle_config();
        p.head_dim = d;
        p.bus_bytes_per_cycle = bus_bytes_per_cycle;
        p.double_buffer = double_buffer;
        p.tile_pipelining = tile_pipelining;
        return p;
    }
};

}  // namespace salo
