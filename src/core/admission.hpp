// Admission control for the serving front door.
//
// Under overload, an unbounded queue turns a 10x burst into unbounded p99:
// every admitted request waits behind the whole backlog. The fix is to
// bound what gets in — reject (or briefly block) excess work at submit()
// so the queue depth, and therefore the worst admitted wait, stays capped.
// Rejected requests fail fast with the typed QueueFull error; clients see
// an explicit shed signal instead of a silently growing latency.
//
// The policy is a value object evaluated under the session lock:
//
//   * max_queue            total queued requests (both classes);
//   * max_queue_batch      queued batch-class requests (a tighter cap, so
//                          background traffic cannot starve interactive);
//   * max_outstanding_cost queued + in-flight work, in cost units
//                          (heads x rows — a proxy for execution time), so
//                          a few huge requests count like many small ones;
//   * mode                 what to do when a limit is hit: reject_fast,
//                          block (wait for space, the legacy behavior), or
//                          block_with_timeout (wait at most block_timeout,
//                          then reject).
//
// The controller itself is stateless and lock-free; the session owns the
// counters and passes a snapshot. decide() is a pure function of
// (snapshot, priority, cost), which makes policies unit-testable without a
// running session.
#pragma once

#include <chrono>
#include <cstdint>

namespace salo {

/// Request priority class. Interactive requests are dispatched first and
/// get the full queue budget; batch requests can be capped tighter and are
/// the first to be shed under overload.
enum class Priority { interactive, batch };

inline const char* priority_name(Priority p) {
    return p == Priority::interactive ? "interactive" : "batch";
}

enum class AdmissionMode {
    block,               ///< wait for space indefinitely (legacy submit())
    block_with_timeout,  ///< wait at most block_timeout, then reject
    reject_fast,         ///< never wait: reject the moment a limit is hit
};

struct AdmissionPolicy {
    AdmissionMode mode = AdmissionMode::block;
    std::chrono::milliseconds block_timeout{50};
    std::size_t max_queue = 0;            ///< 0 = unbounded
    std::size_t max_queue_batch = 0;      ///< 0 = no extra batch-class cap
    std::uint64_t max_outstanding_cost = 0;  ///< 0 = unbounded
};

/// What the session's counters look like at the moment of a decision.
struct AdmissionSnapshot {
    std::size_t queued_interactive = 0;
    std::size_t queued_batch = 0;
    std::uint64_t outstanding_cost = 0;  ///< queued + in-flight cost units

    std::size_t queued_total() const { return queued_interactive + queued_batch; }
};

enum class AdmissionDecision {
    admit,   ///< enqueue now
    wait,    ///< a limit is hit and the mode says to wait for space
    reject,  ///< a limit is hit and the mode says to shed (QueueFull)
};

/// Shrink a policy's limits to the healthy fraction of a sharded tier: a
/// 4-shard tier with 1 shard quarantined keeps 3/4 of each nonzero limit
/// (never below 1, and 0 stays 0 = unbounded). Degraded tiers shed earlier
/// instead of queueing work they cannot serve in time
/// (core/shard_router.hpp).
AdmissionPolicy scaled_policy(const AdmissionPolicy& base, int healthy_shards,
                              int total_shards);

class AdmissionController {
public:
    AdmissionController() = default;
    explicit AdmissionController(AdmissionPolicy policy) : policy_(policy) {}

    const AdmissionPolicy& policy() const { return policy_; }

    /// Pure decision for one request of `priority` and `cost` units given
    /// the current load. Never blocks; the caller implements wait.
    AdmissionDecision decide(const AdmissionSnapshot& s, Priority priority,
                             std::uint64_t cost) const;

    /// True if the policy can ever defer or shed (i.e. any limit is set).
    bool bounded() const {
        return policy_.max_queue > 0 || policy_.max_queue_batch > 0 ||
               policy_.max_outstanding_cost > 0;
    }

private:
    AdmissionPolicy policy_;
};

}  // namespace salo
