#include "core/engine.hpp"

#include <thread>

#include "attention/golden.hpp"
#include "numeric/quantize.hpp"
#include "sim/cycle_accurate.hpp"
#include "sim/tile_executor.hpp"
#include "sim/wsm.hpp"

namespace salo {

SaloEngine::SaloEngine() : SaloEngine(SaloConfig{}) {}

SaloEngine::SaloEngine(const SaloConfig& config)
    : config_(config), exp_unit_(config.exp_config), recip_unit_(config.recip_config) {
    config_.geometry.validate();
    SALO_EXPECTS(config_.bus_bytes_per_cycle > 0);
}

SchedulePlan SaloEngine::plan(const HybridPattern& pattern, int head_dim) const {
    return schedule(pattern, config_.geometry, head_dim, config_.schedule_options);
}

Matrix<float> SaloEngine::golden(const HybridPattern& pattern, const Matrix<float>& q,
                                 const Matrix<float>& k, const Matrix<float>& v,
                                 float scale) {
    return masked_attention(q, k, v, scale, pattern.attend_fn());
}

HeadResult SaloEngine::run_head_on_plan(const SchedulePlan& plan,
                                        const HybridPattern& pattern,
                                        const Matrix<float>& q, const Matrix<float>& k,
                                        const Matrix<float>& v, float scale) const {
    const int n = q.rows();
    const int d = q.cols();
    SALO_EXPECTS(n == pattern.n());
    SALO_EXPECTS(k.rows() == n && v.rows() == n && k.cols() == d && v.cols() == d);

    HeadResult result;
    if (config_.fidelity == Fidelity::kGolden) {
        result.output = golden(pattern, q, k, v, scale);
        return result;
    }

    // Quantize at the accelerator boundary; the 1/sqrt(d) scaling is folded
    // into Q (driver-side preprocessing, see DESIGN.md).
    Matrix<float> q_scaled = q;
    for (auto& x : q_scaled.data()) x *= scale;
    const Matrix<std::int8_t> qq = quantize<InputFx>(q_scaled);
    const Matrix<std::int8_t> kq = quantize<InputFx>(k);
    const Matrix<std::int8_t> vq = quantize<InputFx>(v);

    WeightedSumModule wsm(n, d, recip_unit_);
    std::vector<TilePart> parts;
    const CycleConfig ccfg = config_.cycle_config();

    std::int64_t prev_compute = 0;  // for the double-buffered load overlap
    bool first_tile = true;

    auto account = [&](const TileTask& tile, const CycleBreakdown& b) {
        std::int64_t compute = b.total();
        // Inter-tile pipelining: stage 3 of the previous tile overlaps this
        // tile's systolic stages (no MAC conflict), so it is hidden for
        // every tile but the first.
        if (config_.tile_pipelining && !first_tile) compute -= b.stage[2];
        const std::int64_t load =
            (tile_load_bytes(tile, d) + config_.bus_bytes_per_cycle - 1) /
            config_.bus_bytes_per_cycle;
        std::int64_t cycles;
        if (!config_.double_buffer) {
            cycles = load + compute;
        } else if (first_tile) {
            cycles = load + compute;  // nothing to overlap with yet
        } else {
            // The load of this tile overlapped the previous tile's compute;
            // stall only for the remainder.
            cycles = compute + std::max<std::int64_t>(0, load - prev_compute);
        }
        prev_compute = compute;
        first_tile = false;
        result.stats.cycles += cycles;
        ++result.stats.tiles;
        for (int s = 0; s < 5; ++s) result.stats.stage_totals.stage[s] += b.stage[s];
    };

    if (config_.fidelity == Fidelity::kFunctional) {
        const TileExecutor exec(exp_unit_, recip_unit_, qq, kq, vq);
        for (const TileTask& tile : plan.tiles) {
            parts.clear();
            exec.run(tile, parts, result.stats.activity);
            for (const TilePart& p : parts) wsm.merge(p);
            const CycleBreakdown b = tile_cycles(tile, d, ccfg);
            account(tile, b);
            result.stats.activity.pe_cycles +=
                static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
        }
    } else {
        const CycleAccurateArray array(config_.geometry, ccfg, exp_unit_, recip_unit_, qq,
                                       kq, vq);
        for (const TileTask& tile : plan.tiles) {
            parts.clear();
            const CycleBreakdown b = array.run(tile, parts, result.stats.activity);
            for (const TilePart& p : parts) wsm.merge(p);
            account(tile, b);
        }
    }

    result.output = wsm.finalize();
    return result;
}

HeadResult SaloEngine::run_head(const HybridPattern& pattern, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v,
                                float scale) const {
    const SchedulePlan p = plan(pattern, q.cols());
    return run_head_on_plan(p, pattern, q, k, v, scale);
}

LayerResult SaloEngine::run(const HybridPattern& pattern, const Tensor3<float>& q,
                            const Tensor3<float>& k, const Tensor3<float>& v,
                            float scale) const {
    SALO_EXPECTS(q.count() == k.count() && k.count() == v.count());
    SALO_EXPECTS(q.count() >= 1);
    LayerResult result;
    result.output = Tensor3<float>(q.count(), q.rows(), q.cols());
    const SchedulePlan p = plan(pattern, q.cols());
    result.schedule = p.stats;

    const int heads = q.count();
    std::vector<HeadResult> head_results(static_cast<std::size_t>(heads));
    const int threads = std::max(1, std::min(config_.num_threads, heads));
    if (threads == 1) {
        for (int h = 0; h < heads; ++h)
            head_results[static_cast<std::size_t>(h)] =
                run_head_on_plan(p, pattern, q[h], k[h], v[h], scale);
    } else {
        // Heads are independent; striped assignment keeps results identical
        // to the sequential path regardless of thread count.
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (int h = t; h < heads; h += threads)
                    head_results[static_cast<std::size_t>(h)] =
                        run_head_on_plan(p, pattern, q[h], k[h], v[h], scale);
            });
        }
        for (std::thread& worker : pool) worker.join();
    }
    for (int h = 0; h < heads; ++h) {
        result.output[h] = std::move(head_results[static_cast<std::size_t>(h)].output);
        result.stats += head_results[static_cast<std::size_t>(h)].stats;
    }
    return result;
}

}  // namespace salo
