#include "core/engine.hpp"

#include <algorithm>
#include <limits>

#include "attention/golden.hpp"
#include "numeric/quantize.hpp"
#include "sim/cycle_accurate.hpp"
#include "sim/tile_executor.hpp"
#include "sim/wsm.hpp"

namespace salo {

namespace {

/// Min/max query id over a tile's emitted parts, as a [lo, hi) range for
/// the merge phase's shard-skip test ({0, 0} when the tile emitted none).
/// `for_each_part` invokes its callback once per part, in any order.
template <typename ForEachPart>
QueryShard part_query_bounds(ForEachPart&& for_each_part) {
    QueryShard bounds{0, 0};
    bool first = true;
    for_each_part([&](const TilePart& p) {
        if (first) {
            bounds = QueryShard{p.query, p.query + 1};
            first = false;
            return;
        }
        bounds.lo = std::min(bounds.lo, p.query);
        bounds.hi = std::max(bounds.hi, p.query + 1);
    });
    return bounds;
}

/// Sequential cycle accounting shared by every execution path, a thin
/// adapter over the shared TileCostAccountant (sim/tile_costs.hpp — the
/// same contract the analytic model and the co-simulation kernel replay).
/// Tiles are accounted strictly in schedule order: the double-buffered load
/// overlap and the inter-tile stage-3 pipelining both depend on the
/// previous tile.
class TileAccountant {
public:
    TileAccountant(const SaloConfig& config, int head_dim)
        : accountant_(config.tile_cost_params(head_dim)) {}

    /// Account one tile; returns its closed-form stage breakdown for the
    /// caller's activity bookkeeping.
    const CycleBreakdown& account(const TileTask& tile, SimStats& stats) {
        const TileCostAccountant::Step step = accountant_.account(tile);
        stats.cycles += step.cycles;
        ++stats.tiles;
        for (int s = 0; s < 5; ++s)
            stats.stage_totals.stage[s] += step.cost.breakdown.stage[s];
        last_breakdown_ = step.cost.breakdown;
        return last_breakdown_;
    }

private:
    TileCostAccountant accountant_;
    CycleBreakdown last_breakdown_;
};

}  // namespace

SaloEngine::SaloEngine() : SaloEngine(SaloConfig{}) {}

SaloEngine::SaloEngine(const SaloConfig& config)
    : config_(config), exp_unit_(config.exp_config), recip_unit_(config.recip_config),
      plan_cache_(static_cast<std::size_t>(std::max(1, config.plan_cache_capacity))) {
    config_.validate();
    if (config_.shared_plan_store)
        plan_cache_.attach_shared_store(config_.shared_plan_store);
}

ThreadPool& SaloEngine::pool() const {
    std::call_once(pool_once_, [this] {
        pool_ = std::make_unique<ThreadPool>(config_.effective_threads());
    });
    return *pool_;
}

CompiledPlanPtr SaloEngine::compile(const HybridPattern& pattern, int head_dim) const {
    return plan_cache_.get_or_compile(pattern, head_dim, config_);
}

PlanCacheStats SaloEngine::plan_cache_stats() const { return plan_cache_.stats(); }

SchedulePlan SaloEngine::plan(const HybridPattern& pattern, int head_dim) const {
    return schedule(pattern, config_.geometry, head_dim, config_.schedule_options);
}

void SaloEngine::check_compatible(const CompiledPlan& plan) const {
    SALO_EXPECTS(plan.geometry() == config_.geometry);
    SALO_EXPECTS(plan.options() == config_.schedule_options);
}

Matrix<float> SaloEngine::golden(const HybridPattern& pattern, const Matrix<float>& q,
                                 const Matrix<float>& k, const Matrix<float>& v,
                                 float scale) {
    return masked_attention(q, k, v, scale, pattern.attend_fn());
}

HeadResult SaloEngine::run_head_impl(const SchedulePlan& plan,
                                     const HybridPattern& pattern,
                                     const Matrix<float>& q, const Matrix<float>& k,
                                     const Matrix<float>& v, float scale,
                                     Fidelity fidelity, int threads,
                                     ParallelWorkspace* ws, const RunControl* ctl) const {
    const int n = q.rows();
    const int d = q.cols();
    SALO_EXPECTS(n == pattern.n());
    SALO_EXPECTS(k.rows() == n && v.rows() == n && k.cols() == d && v.cols() == d);
    SALO_EXPECTS(plan.n == n && plan.head_dim == d);

    if (fidelity == Fidelity::kGolden) {
        // No tile loop here: the head boundary (-1) is the only checkpoint.
        if (ctl != nullptr) ctl->check(-1);
        HeadResult result;
        result.output = golden(pattern, q, k, v, scale);
        return result;
    }

    // Quantize at the accelerator boundary; the 1/sqrt(d) scaling is folded
    // into Q (driver-side preprocessing, see DESIGN.md).
    Matrix<float> q_scaled = q;
    for (auto& x : q_scaled.data()) x *= scale;
    const Matrix<std::int8_t> qq = quantize<InputFx>(q_scaled);
    const Matrix<std::int8_t> kq = quantize<InputFx>(k);
    const Matrix<std::int8_t> vq = quantize<InputFx>(v);

    // The reference datapath exists only in the sequential loop; honoring
    // the flag beats silently benchmarking the optimized path as "seed".
    const bool parallel_ok = !config_.reference_datapath;
    if (parallel_ok && threads > 1 && static_cast<int>(plan.tiles.size()) > 1) {
        if (ws != nullptr) return run_head_parallel(plan, fidelity, qq, kq, vq, *ws, ctl);
        ParallelWorkspace scratch_ws;
        return run_head_parallel(plan, fidelity, qq, kq, vq, scratch_ws, ctl);
    }
    return run_head_sequential(plan, fidelity, qq, kq, vq, ctl);
}

HeadResult SaloEngine::run_head_sequential(const SchedulePlan& plan, Fidelity fidelity,
                                           const Matrix<std::int8_t>& qq,
                                           const Matrix<std::int8_t>& kq,
                                           const Matrix<std::int8_t>& vq,
                                           const RunControl* ctl) const {
    const int n = qq.rows();
    const int d = qq.cols();
    const int num_tiles = static_cast<int>(plan.tiles.size());
    HeadResult result;
    WeightedSumModule wsm(n, d, recip_unit_);
    const CycleConfig ccfg = config_.cycle_config();
    TileAccountant accountant(config_, d);

    if (fidelity == Fidelity::kFunctional) {
        const TileExecutor exec(exp_unit_, recip_unit_, qq, kq, vq);
        if (config_.reference_datapath) {
            std::vector<TilePart> parts;
            for (int t = 0; t < num_tiles; ++t) {
                if (ctl != nullptr) ctl->check(t);
                const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
                parts.clear();
                exec.run(tile, parts, result.stats.activity);
                for (const TilePart& p : parts) wsm.merge(p);
                const CycleBreakdown& b = accountant.account(tile, result.stats);
                result.stats.activity.pe_cycles +=
                    static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
            }
        } else {
            PartArena arena;
            PartScratch scratch;
            for (int t = 0; t < num_tiles; ++t) {
                if (ctl != nullptr) ctl->check(t);
                const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
                arena.reset();
                exec.run(tile, arena, result.stats.activity, scratch);
                for (std::size_t i = 0; i < arena.used(); ++i) wsm.merge(arena.at(i));
                const CycleBreakdown& b = accountant.account(tile, result.stats);
                result.stats.activity.pe_cycles +=
                    static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
            }
        }
    } else {
        const CycleAccurateArray array(config_.geometry, ccfg, exp_unit_, recip_unit_, qq,
                                       kq, vq);
        std::vector<TilePart> parts;
        for (int t = 0; t < num_tiles; ++t) {
            if (ctl != nullptr) ctl->check(t);
            const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
            parts.clear();
            array.run(tile, parts, result.stats.activity);
            for (const TilePart& p : parts) wsm.merge(p);
            accountant.account(tile, result.stats);
        }
    }

    result.output = wsm.finalize();
    return result;
}

// ---------------------------------------------------------------------------
// Tile-level parallel execution: tiles of ONE head run concurrently.
//
// Phase A  workers claim tiles from the pool's ticket counter and execute
//          them into per-lane part arenas, recording an (arena, range) span
//          per tile. No shared mutable state beyond the counter.
// Phase B  query rows are partitioned into balanced shards; each lane
//          replays the *full* part stream in schedule order and merges only
//          the parts of its shard. Per-query merge order is therefore
//          exactly the sequential order — bit-identical output for any
//          thread count and any tile->lane assignment.
// Phase C  cycle accounting runs on the calling thread in schedule order
//          (the load-overlap model is inherently sequential, but it is
//          O(tiles), not O(work)).
// ---------------------------------------------------------------------------
HeadResult SaloEngine::run_head_parallel(const SchedulePlan& plan, Fidelity fidelity,
                                         const Matrix<std::int8_t>& qq,
                                         const Matrix<std::int8_t>& kq,
                                         const Matrix<std::int8_t>& vq,
                                         ParallelWorkspace& ws,
                                         const RunControl* ctl) const {
    const int n = qq.rows();
    const int d = qq.cols();
    const int num_tiles = static_cast<int>(plan.tiles.size());
    HeadResult result;
    WeightedSumModule wsm(n, d, recip_unit_);
    const CycleConfig ccfg = config_.cycle_config();
    TileAccountant accountant(config_, d);
    ThreadPool& workers = pool();
    const int lanes = workers.lanes();

    ws.lane_activity.assign(static_cast<std::size_t>(lanes), ActivityStats{});
    std::vector<ActivityStats>& lane_activity = ws.lane_activity;
    ws.tile_bounds.resize(static_cast<std::size_t>(num_tiles));
    std::vector<QueryShard>& tile_bounds = ws.tile_bounds;

    // Phase B, shared by both fidelities: every shard replays the full tile
    // list in schedule order — skipping tiles whose part queries fall
    // outside its range — and merges only its own queries, so per-query
    // merge order equals the sequential order for any lane count.
    auto replay_shards = [&](auto&& for_each_part_of_tile) {
        if (ws.shards.empty()) ws.shards = partition_query_rows(plan, lanes);
        const std::vector<QueryShard>& shards = ws.shards;
        workers.parallel_for(static_cast<int>(shards.size()), [&](int s, int) {
            const QueryShard shard = shards[static_cast<std::size_t>(s)];
            for (int t = 0; t < num_tiles; ++t) {
                const QueryShard bounds = tile_bounds[static_cast<std::size_t>(t)];
                if (bounds.hi <= shard.lo || bounds.lo >= shard.hi) continue;
                for_each_part_of_tile(t, [&](const TilePart& p) {
                    wsm.merge_shard(p, shard.lo, shard.hi);
                });
            }
        });
    };

    if (fidelity == Fidelity::kFunctional) {
        const TileExecutor exec(exp_unit_, recip_unit_, qq, kq, vq);
        ws.arenas.resize(static_cast<std::size_t>(lanes));
        for (PartArena& a : ws.arenas) a.reset();
        ws.scratch.resize(static_cast<std::size_t>(lanes));
        ws.spans.resize(static_cast<std::size_t>(num_tiles));
        std::vector<PartArena>& arenas = ws.arenas;
        std::vector<PartScratch>& scratch = ws.scratch;
        std::vector<PartSpan>& spans = ws.spans;

        // Larger claim chunks cut ticket-counter contention; tiles are small.
        const int chunk = std::max(1, num_tiles / (lanes * 8));
        workers.parallel_for(
            num_tiles,
            [&](int t, int lane) {
                // Tile boundary: cancellation/deadline/fault checks. A
                // throw fails only this run — sibling tiles of the same
                // region still execute (pool fault isolation), and the
                // first error is rethrown to this run's caller after the
                // region completes.
                if (ctl != nullptr) ctl->check(t);
                PartArena& arena = arenas[static_cast<std::size_t>(lane)];
                const auto first = static_cast<std::uint32_t>(arena.used());
                exec.run(plan.tiles[static_cast<std::size_t>(t)], arena,
                         lane_activity[static_cast<std::size_t>(lane)],
                         scratch[static_cast<std::size_t>(lane)]);
                PartSpan& span = spans[static_cast<std::size_t>(t)];
                span = PartSpan{lane, first,
                                static_cast<std::uint32_t>(arena.used() - first)};
                tile_bounds[static_cast<std::size_t>(t)] =
                    part_query_bounds([&](auto&& visit) {
                        for (std::uint32_t i = 0; i < span.count; ++i)
                            visit(arena.at(first + i));
                    });
            },
            chunk);

        replay_shards([&](int t, auto&& merge) {
            const PartSpan& span = spans[static_cast<std::size_t>(t)];
            const PartArena& arena = arenas[static_cast<std::size_t>(span.lane)];
            for (std::uint32_t i = 0; i < span.count; ++i)
                merge(arena.at(span.first + i));
        });

        for (const TileTask& tile : plan.tiles) {
            const CycleBreakdown& b = accountant.account(tile, result.stats);
            result.stats.activity.pe_cycles +=
                static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
        }
    } else {
        const CycleAccurateArray array(config_.geometry, ccfg, exp_unit_, recip_unit_, qq,
                                       kq, vq);
        ws.tile_parts.resize(static_cast<std::size_t>(num_tiles));
        for (auto& parts : ws.tile_parts) parts.clear();
        std::vector<std::vector<TilePart>>& tile_parts = ws.tile_parts;

        workers.parallel_for(num_tiles, [&](int t, int lane) {
            if (ctl != nullptr) ctl->check(t);
            std::vector<TilePart>& parts = tile_parts[static_cast<std::size_t>(t)];
            array.run(plan.tiles[static_cast<std::size_t>(t)], parts,
                      lane_activity[static_cast<std::size_t>(lane)]);
            tile_bounds[static_cast<std::size_t>(t)] =
                part_query_bounds([&](auto&& visit) {
                    for (const TilePart& p : parts) visit(p);
                });
        });

        replay_shards([&](int t, auto&& merge) {
            for (const TilePart& p : tile_parts[static_cast<std::size_t>(t)]) merge(p);
        });

        for (int t = 0; t < num_tiles; ++t)
            accountant.account(plan.tiles[static_cast<std::size_t>(t)], result.stats);
    }

    for (const ActivityStats& a : lane_activity) result.stats.activity += a;
    result.output = wsm.finalize();
    return result;
}

// ---------------------------------------------------------------------------
// Incremental decode: one query row against the compact K/V layout.
// ---------------------------------------------------------------------------

HeadResult SaloEngine::run_step_head(const CompiledPlan& micro, const Matrix<float>& q_row,
                                     int head, const Matrix<float>& k,
                                     const Matrix<float>& v, float scale,
                                     Fidelity fidelity, const RunControl* ctl) const {
    const StepGeometry& sg = micro.step();
    const int d = micro.head_dim();
    HeadResult result;

    if (fidelity == Fidelity::kGolden) {
        if (ctl != nullptr) ctl->check(-1);
        // masked_attention's row loop for row t, with absolute key
        // positions mapped into the compact layout. The compact rows are
        // copies of the absolute rows and the iteration stays ascending-j,
        // so every float op matches golden() over the full prefix.
        const HybridPattern& pattern = micro.pattern();
        const std::vector<int>& globals = pattern.global_tokens();
        const int t = sg.position;
        const auto compact_of = [&](int j) {
            if (j >= sg.window_lo) return sg.num_globals + (j - sg.window_lo);
            const auto pin = std::lower_bound(globals.begin(), globals.end(), j);
            SALO_ASSERT(pin != globals.end() && *pin == j);
            return static_cast<int>(pin - globals.begin());
        };
        std::vector<int> cols;
        std::vector<double> scores;
        for (int j = 0; j <= t; ++j)
            if (pattern.attends(t, j)) cols.push_back(j);
        Matrix<float> out(1, d, 0.0f);
        if (!cols.empty()) {
            double mx = -std::numeric_limits<double>::infinity();
            for (int j : cols) {
                const int cj = compact_of(j);
                double dot = 0.0;
                for (int x = 0; x < d; ++x)
                    dot += static_cast<double>(q_row(head, x)) *
                           static_cast<double>(k(cj, x));
                dot *= scale;
                scores.push_back(dot);
                mx = std::max(mx, dot);
            }
            double sum = 0.0;
            for (double& sc : scores) {
                sc = std::exp(sc - mx);
                sum += sc;
            }
            SALO_ASSERT(sum > 0.0);
            for (std::size_t idx = 0; idx < cols.size(); ++idx) {
                const double w = scores[idx] / sum;
                const int cj = compact_of(cols[idx]);
                for (int x = 0; x < d; ++x)
                    out(0, x) += static_cast<float>(w * static_cast<double>(v(cj, x)));
            }
        }
        result.output = std::move(out);
        return result;
    }

    // Quantization is elementwise, so the single scaled query row and the
    // compact K/V rows quantize to exactly the bits the full-prefix run
    // produces for the same rows.
    Matrix<float> q_scaled(1, d, 0.0f);
    for (int x = 0; x < d; ++x) q_scaled(0, x) = q_row(head, x) * scale;
    const Matrix<std::int8_t> qq = quantize<InputFx>(q_scaled);
    const Matrix<std::int8_t> kq = quantize<InputFx>(k);
    const Matrix<std::int8_t> vq = quantize<InputFx>(v);

    const SchedulePlan& plan = micro.plan();
    const int num_tiles = static_cast<int>(plan.tiles.size());
    WeightedSumModule wsm(1, d, recip_unit_);
    TileAccountant accountant(config_, d);

    if (fidelity == Fidelity::kFunctional) {
        const TileExecutor exec(exp_unit_, recip_unit_, qq, kq, vq);
        if (config_.reference_datapath) {
            std::vector<TilePart> parts;
            for (int t = 0; t < num_tiles; ++t) {
                if (ctl != nullptr) ctl->check(t);
                const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
                parts.clear();
                exec.run(tile, parts, result.stats.activity);
                for (const TilePart& p : parts) wsm.merge(p);
                const CycleBreakdown& b = accountant.account(tile, result.stats);
                result.stats.activity.pe_cycles +=
                    static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
            }
        } else {
            PartArena arena;
            PartScratch scratch;
            for (int t = 0; t < num_tiles; ++t) {
                if (ctl != nullptr) ctl->check(t);
                const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
                arena.reset();
                exec.run(tile, arena, result.stats.activity, scratch);
                for (std::size_t i = 0; i < arena.used(); ++i) wsm.merge(arena.at(i));
                const CycleBreakdown& b = accountant.account(tile, result.stats);
                result.stats.activity.pe_cycles +=
                    static_cast<std::int64_t>(tile.rows()) * tile.cols() * b.total();
            }
        }
    } else {
        const CycleAccurateArray array(config_.geometry, config_.cycle_config(), exp_unit_,
                                       recip_unit_, qq, kq, vq);
        std::vector<TilePart> parts;
        for (int t = 0; t < num_tiles; ++t) {
            if (ctl != nullptr) ctl->check(t);
            const TileTask& tile = plan.tiles[static_cast<std::size_t>(t)];
            parts.clear();
            array.run(tile, parts, result.stats.activity);
            for (const TilePart& p : parts) wsm.merge(p);
            accountant.account(tile, result.stats);
        }
    }

    result.output = wsm.finalize();
    return result;
}

CompiledPlanPtr SaloEngine::compile_step(const HybridPattern& pattern,
                                         int head_dim) const {
    return plan_cache_.get_or_derive_step(pattern, head_dim, config_);
}

StepResult SaloEngine::run_step(const CompiledPlan& micro, const Matrix<float>& q_row,
                                const Tensor3<float>& k, const Tensor3<float>& v,
                                float scale, const RunOptions& options) const {
    check_compatible(micro);
    SALO_EXPECTS(micro.is_step());
    const StepGeometry& sg = micro.step();
    const int heads = q_row.rows();
    const int d = micro.head_dim();
    SALO_EXPECTS(heads >= 1);
    SALO_EXPECTS(q_row.cols() == d);
    SALO_EXPECTS(k.count() == heads && v.count() == heads);
    SALO_EXPECTS(k.rows() == sg.compact_rows && v.rows() == sg.compact_rows);
    SALO_EXPECTS(k.cols() == d && v.cols() == d);

    const Fidelity fidelity = options.fidelity.value_or(config_.fidelity);
    RunControl ctl_storage;
    ctl_storage.cancel = options.cancel.cancellable() ? &options.cancel : nullptr;
    ctl_storage.has_deadline = options.deadline.has_value();
    if (options.deadline) ctl_storage.deadline = *options.deadline;
    ctl_storage.fault = options.fault_injector != nullptr ? options.fault_injector
                                                          : config_.fault_injector.get();
    const RunControl* ctl = ctl_storage.active() ? &ctl_storage : nullptr;

    StepResult result;
    result.position = sg.position;
    result.output = Tensor3<float>(heads, 1, d);

    const int threads =
        options.thread_budget <= 0 ? config_.effective_threads() : options.thread_budget;
    std::vector<HeadResult> head_results(static_cast<std::size_t>(heads));
    if (threads > 1 && heads > 1) {
        // Heads are independent; a step's per-head tile loop is tiny, so a
        // head is the only sensible work quantum.
        pool().parallel_for(heads, [&](int h, int) {
            head_results[static_cast<std::size_t>(h)] =
                run_step_head(micro, q_row, h, k[h], v[h], scale, fidelity, ctl);
        });
    } else {
        for (int h = 0; h < heads; ++h)
            head_results[static_cast<std::size_t>(h)] =
                run_step_head(micro, q_row, h, k[h], v[h], scale, fidelity, ctl);
    }

    for (int h = 0; h < heads; ++h) {
        result.output[h] = std::move(head_results[static_cast<std::size_t>(h)].output);
        result.stats += head_results[static_cast<std::size_t>(h)].stats;
    }
    return result;
}

// ---------------------------------------------------------------------------
// Compiled-plan entry points.
// ---------------------------------------------------------------------------

HeadResult SaloEngine::run_head(const CompiledPlan& plan, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v,
                                float scale) const {
    check_compatible(plan);
    return run_head_impl(plan.plan(), plan.pattern(), q, k, v, scale, config_.fidelity,
                         config_.effective_threads());
}

LayerResult SaloEngine::run(const CompiledPlan& plan, const Tensor3<float>& q,
                            const Tensor3<float>& k, const Tensor3<float>& v,
                            float scale) const {
    return run(plan, q, k, v, scale, config_.fidelity, 0);
}

LayerResult SaloEngine::run(const CompiledPlan& plan, const Tensor3<float>& q,
                            const Tensor3<float>& k, const Tensor3<float>& v, float scale,
                            Fidelity fidelity, int thread_budget) const {
    RunOptions options;
    options.fidelity = fidelity;
    options.thread_budget = thread_budget;
    return run(plan, q, k, v, scale, options);
}

LayerResult SaloEngine::run(const CompiledPlan& plan, const Tensor3<float>& q,
                            const Tensor3<float>& k, const Tensor3<float>& v, float scale,
                            const RunOptions& options) const {
    check_compatible(plan);
    SALO_EXPECTS(q.count() == k.count() && k.count() == v.count());
    SALO_EXPECTS(q.count() >= 1);
    const Fidelity fidelity = options.fidelity.value_or(config_.fidelity);
    const SchedulePlan& p = plan.plan();
    const HybridPattern& pattern = plan.pattern();
    LayerResult result;
    result.output = Tensor3<float>(q.count(), q.rows(), q.cols());
    result.schedule = p.stats;

    // Resolve the robustness hooks once; a null control keeps the tile
    // loops free of clock reads and atomic loads (the common case).
    RunControl ctl_storage;
    ctl_storage.cancel = options.cancel.cancellable() ? &options.cancel : nullptr;
    ctl_storage.has_deadline = options.deadline.has_value();
    if (options.deadline) ctl_storage.deadline = *options.deadline;
    ctl_storage.fault = options.fault_injector != nullptr ? options.fault_injector
                                                          : config_.fault_injector.get();
    const RunControl* ctl = ctl_storage.active() ? &ctl_storage : nullptr;

    const int heads = q.count();
    const int threads =
        options.thread_budget <= 0 ? config_.effective_threads() : options.thread_budget;
    std::vector<HeadResult> head_results(static_cast<std::size_t>(heads));

    if (threads == 1) {
        for (int h = 0; h < heads; ++h)
            head_results[static_cast<std::size_t>(h)] =
                run_head_impl(p, pattern, q[h], k[h], v[h], scale, fidelity, 1, nullptr,
                              ctl);
    } else if (!config_.reference_datapath && fidelity != Fidelity::kGolden &&
               (static_cast<int>(p.tiles.size()) >= 2 * threads || heads == 1)) {
        // (Golden fidelity has no tiles to parallelize — it goes through the
        // head-parallel branch below, like the original engine striped it.)
        // Large plans: tile-level parallelism inside each head dominates
        // (near-perfect balance even when heads % threads != 0). One
        // workspace serves every head so arenas keep their capacity.
        ParallelWorkspace ws;
        for (int h = 0; h < heads; ++h)
            head_results[static_cast<std::size_t>(h)] =
                run_head_impl(p, pattern, q[h], k[h], v[h], scale, fidelity, threads, &ws,
                              ctl);
    } else {
        // Small plans — and the reference datapath, which exists only in
        // the sequential tile loop but still parallelizes across heads,
        // like the original engine did: a head is the work quantum. Heads
        // are independent, so results are identical either way; each task
        // runs the sequential path (the two levels never nest).
        pool().parallel_for(heads, [&](int h, int) {
            head_results[static_cast<std::size_t>(h)] =
                run_head_impl(p, pattern, q[h], k[h], v[h], scale, fidelity, 1, nullptr,
                              ctl);
        });
    }

    for (int h = 0; h < heads; ++h) {
        result.output[h] = std::move(head_results[static_cast<std::size_t>(h)].output);
        result.stats += head_results[static_cast<std::size_t>(h)].stats;
    }
    return result;
}

// ---------------------------------------------------------------------------
// Legacy one-shot API: thin shims over compile + run. The engine's
// PlanCache makes repeated calls with the same pattern/geometry free of
// scheduler work.
// ---------------------------------------------------------------------------

HeadResult SaloEngine::run_head(const HybridPattern& pattern, const Matrix<float>& q,
                                const Matrix<float>& k, const Matrix<float>& v,
                                float scale) const {
    return run_head(*compile(pattern, q.cols()), q, k, v, scale);
}

LayerResult SaloEngine::run(const HybridPattern& pattern, const Tensor3<float>& q,
                            const Tensor3<float>& k, const Tensor3<float>& v,
                            float scale) const {
    SALO_EXPECTS(q.count() >= 1);
    return run(*compile(pattern, q.cols()), q, k, v, scale);
}

}  // namespace salo
