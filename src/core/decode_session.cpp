#include "core/decode_session.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/hash.hpp"

namespace salo {

namespace {

template <typename Error>
void fail_promise(std::promise<StepResult>& promise, Error error) {
    promise.set_exception(std::make_exception_ptr(std::move(error)));
}

/// The prefix pattern a stream sees at length L: same bands, globals
/// clipped to [0, L). Scheduler inputs depend on n, so each prefix length
/// is its own full plan + micro-plan (both cached by fingerprint).
HybridPattern prefix_pattern(const HybridPattern& full, int length) {
    std::vector<int> globals;
    for (int g : full.global_tokens()) {
        if (g >= length) break;  // sorted ascending
        globals.push_back(g);
    }
    return HybridPattern(length, full.bands(), std::move(globals));
}

}  // namespace

DecodeSession::DecodeSession(const SaloConfig& config, DecodeSessionOptions options)
    : options_(std::move(options)),
      health_(std::max(1, options_.num_shards), options_.health),
      admission_(options_.admission) {
    SALO_EXPECTS(options_.num_shards >= 1);
    if (options_.shared_plan_store)
        shared_store_ = std::make_shared<PlanCache>(
            static_cast<std::size_t>(std::max(1, config.plan_cache_capacity)));
    shards_.reserve(static_cast<std::size_t>(options_.num_shards));
    for (int s = 0; s < options_.num_shards; ++s) {
        SaloConfig shard_config = config;
        const auto idx = static_cast<std::size_t>(s);
        if (idx < options_.shard_fault_injectors.size() &&
            options_.shard_fault_injectors[idx] != nullptr)
            shard_config.fault_injector = options_.shard_fault_injectors[idx];
        shard_config.shared_plan_store = shared_store_;
        shards_.push_back(std::make_unique<Shard>(shard_config));
    }
    dispatcher_ = std::thread([this] { serve_loop(); });
}

DecodeSession::~DecodeSession() { close(); }

AdmissionSnapshot DecodeSession::snapshot_locked() const {
    AdmissionSnapshot s;
    s.queued_interactive = queued_steps_;
    s.queued_batch = 0;  // steps are interactive-class by construction
    s.outstanding_cost = queued_cost_ + in_flight_cost_;
    return s;
}

int DecodeSession::pick_shard(StreamId id, Clock::time_point now) {
    // Rendezvous hash over the shards that would currently grant a slot, so
    // placement is stable per stream id yet avoids shards already known
    // sick at open time. With every shard refusing, hash over all of them —
    // the stream will evict on its first step if the shard stays down.
    std::vector<int> eligible = health_.acquirable(now);
    if (eligible.empty()) {
        eligible.resize(shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s)
            eligible[s] = static_cast<int>(s);
    }
    int best = -1;
    std::uint64_t best_weight = 0;
    for (int s : eligible) {
        Fnv1a h;
        h.mix(std::uint64_t{0x5A10'0006});  // type tag: stream placement
        h.mix(id);
        h.mix(s);
        const std::uint64_t w = h.digest();
        if (best < 0 || w > best_weight) {
            best_weight = w;
            best = s;
        }
    }
    return best;
}

StreamId DecodeSession::open_stream(const HybridPattern& pattern, int heads,
                                    int head_dim, float scale, std::string tenant_id) {
    SALO_EXPECTS(decode_compatible(pattern));
    SALO_EXPECTS(heads >= 1);
    SALO_EXPECTS(head_dim >= 1);
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(m_);
    if (closed_)
        throw SessionClosed(
            "DecodeSession: open_stream() after close() — the session is closed");
    const StreamId id = next_stream_id_++;
    const int shard = pick_shard(id, now);
    streams_.emplace(id, std::make_unique<Stream>(pattern, heads, head_dim, scale,
                                                  std::move(tenant_id), shard));
    return id;
}

std::future<StepResult> DecodeSession::step(StreamId stream_id, StepRequest request) {
    PendingStep pending;
    std::future<StepResult> future = pending.promise.get_future();

    std::unique_lock<std::mutex> lock(m_);
    if (closed_)
        throw SessionClosed(
            "DecodeSession: step() after close() — the session is closed and no "
            "longer accepts steps");
    const auto it = streams_.find(stream_id);
    SALO_EXPECTS(it != streams_.end());
    Stream& stream = *it->second;
    // Shape and horizon checks are caller bugs, surfaced synchronously.
    SALO_EXPECTS(request.q_row.rows() == stream.heads &&
                 request.q_row.cols() == stream.head_dim);
    SALO_EXPECTS(request.k_row.rows() == stream.heads &&
                 request.k_row.cols() == stream.head_dim);
    SALO_EXPECTS(request.v_row.rows() == stream.heads &&
                 request.v_row.cols() == stream.head_dim);
    SALO_EXPECTS(stream.accepted_steps < static_cast<std::uint64_t>(stream.pattern.n()));

    pending.cost = static_cast<std::uint64_t>(stream.heads);
    pending.request = std::move(request);

    ++submitted_;
    ++steps_;
    TenantStats& tenant = tenant_stats_[stream.tenant];
    ++tenant.submitted;
    ++tenant.steps;
    ++stream.accepted_steps;

    if (stream.evicted) {
        // The append log already has a hole; this step can never execute.
        ++failed_;
        ++tenant.failed;
        fail_promise(pending.promise,
                     StreamEvicted("step() on an evicted stream: an earlier step "
                                   "failed or the pinned shard was quarantined — "
                                   "open a new stream and re-prefill"));
        return future;
    }

    // Admission wait loop, mirroring SaloSession::submit (steps are
    // interactive-class; an admission shed also evicts the stream, since
    // the skipped position would break the append order).
    const AdmissionPolicy& policy = admission_.policy();
    const Clock::time_point admission_deadline = Clock::now() + policy.block_timeout;
    for (;;) {
        if (closed_) {
            ++rejected_;
            ++tenant.rejected;
            evict_locked(stream, "session closed during admission wait");
            fail_promise(pending.promise,
                         SessionClosed("DecodeSession: session closed while the step "
                                       "waited for admission"));
            return future;
        }
        if (pending.request.deadline && Clock::now() > *pending.request.deadline) {
            ++timed_out_;
            ++shed_expired_;
            ++tenant.timed_out;
            evict_locked(stream, "step deadline expired during admission wait");
            fail_promise(pending.promise,
                         DeadlineExceeded("step deadline expired while waiting for "
                                          "admission"));
            return future;
        }
        const AdmissionDecision decision =
            admission_.decide(snapshot_locked(), Priority::interactive, pending.cost);
        if (decision == AdmissionDecision::admit) break;
        if (decision == AdmissionDecision::reject) {
            ++rejected_;
            ++tenant.rejected;
            evict_locked(stream, "admission control shed the step");
            fail_promise(pending.promise,
                         QueueFull("admission control rejected the decode step: queue "
                                   "limits reached (the stream is evicted — a skipped "
                                   "step would break the K/V append order)"));
            return future;
        }
        if (policy.mode == AdmissionMode::block_with_timeout) {
            ++waiting_submits_;
            const std::cv_status status = cv_space_.wait_until(lock, admission_deadline);
            --waiting_submits_;
            if (status == std::cv_status::timeout) {
                if (admission_.decide(snapshot_locked(), Priority::interactive,
                                      pending.cost) == AdmissionDecision::admit)
                    break;
                ++rejected_;
                ++tenant.rejected;
                evict_locked(stream, "admission wait timed out");
                fail_promise(pending.promise,
                             QueueFull("admission wait timed out for decode step"));
                return future;
            }
        } else {
            ++waiting_submits_;
            cv_space_.wait(lock);
            --waiting_submits_;
        }
        // The stream may have been evicted while we waited (its earlier
        // step failed, or the session started closing).
        if (stream.evicted) {
            ++failed_;
            ++tenant.failed;
            fail_promise(pending.promise,
                         StreamEvicted("stream evicted while the step waited for "
                                       "admission"));
            return future;
        }
    }

    ++queued_steps_;
    queued_cost_ += pending.cost;
    stream.pending.push_back(std::move(pending));
    if (!stream.executing && !stream.queued) {
        stream.queued = true;
        ready_.push_back(stream_id);
    }
    lock.unlock();
    cv_work_.notify_one();
    return future;
}

void DecodeSession::evict_locked(Stream& stream, const std::string& reason) {
    if (!stream.evicted) {
        stream.evicted = true;
        ++evicted_streams_;
    }
    TenantStats& tenant = tenant_stats_[stream.tenant];
    while (!stream.pending.empty()) {
        PendingStep p = std::move(stream.pending.front());
        stream.pending.pop_front();
        --queued_steps_;
        queued_cost_ -= p.cost;
        ++failed_;
        ++tenant.failed;
        fail_promise(p.promise, StreamEvicted("stream evicted (" + reason +
                                              "); this queued step cannot execute"));
    }
    stream.queued = false;
}

void DecodeSession::account_locked(const std::string& tenant_id, Outcome outcome) {
    TenantStats& tenant = tenant_stats_[tenant_id];
    switch (outcome) {
        case Outcome::ok:
            ++completed_;
            ++tenant.completed;
            break;
        case Outcome::failed:
            ++failed_;
            ++tenant.failed;
            break;
        case Outcome::cancelled:
            ++cancelled_;
            ++tenant.cancelled;
            break;
        case Outcome::timed_out:
            ++timed_out_;
            ++tenant.timed_out;
            break;
        case Outcome::shed_expired:
            ++timed_out_;
            ++shed_expired_;
            ++tenant.timed_out;
            break;
    }
}

DecodeSession::Outcome DecodeSession::execute(ExecItem& item, int thread_budget) {
    Stream& stream = *item.stream;
    StepRequest& request = item.step.request;
    SaloEngine& engine = shards_[static_cast<std::size_t>(stream.shard)]->engine;
    const Clock::time_point now = Clock::now();

    // Shed without touching the shard: these never acquire a health slot.
    if (request.cancel.cancelled()) {
        fail_promise(item.step.promise,
                     RequestCancelled("step cancelled while queued; shed before "
                                      "dispatch (stream evicted)"));
        return Outcome::cancelled;
    }
    if (request.deadline && now > *request.deadline) {
        fail_promise(item.step.promise,
                     DeadlineExceeded("step deadline expired while queued; shed "
                                      "before dispatch (stream evicted)"));
        return Outcome::shed_expired;
    }

    // Stream-sticky routing: the state lives here and only here. A shard
    // that refuses (quarantined, probe slots exhausted) evicts the stream —
    // the state is never rebuilt elsewhere behind the caller's back.
    if (!health_.try_acquire(stream.shard, now)) {
        fail_promise(item.step.promise,
                     StreamEvicted("pinned shard " + std::to_string(stream.shard) +
                                   " is quarantined; stream state is lost — open a "
                                   "new stream and re-prefill"));
        return Outcome::failed;
    }

    auto record = [&](CircuitBreaker::Outcome o) {
        health_.record(stream.shard, o, Clock::now());
    };

    try {
        // Commit the position to the append log first: whatever happens
        // below, position t is spoken for (a failure evicts the stream, so
        // the log never serves a later step with a hole in it).
        stream.state.append(request.k_row, request.v_row);
        const int length = stream.state.length();
        const HybridPattern prefix = prefix_pattern(stream.pattern, length);
        const CompiledPlanPtr micro = engine.compile_step(prefix, stream.head_dim);
        auto [k_compact, v_compact] = stream.state.assemble();

        RunOptions run_options;
        run_options.fidelity = request.fidelity;
        run_options.thread_budget = thread_budget;
        run_options.cancel = request.cancel;
        run_options.deadline = request.deadline;
        // Shard-level injectors were folded into the shard's SaloConfig at
        // construction; this only carries a per-step override.
        run_options.fault_injector = request.fault_injector.get();

        item.step.promise.set_value(engine.run_step(*micro, request.q_row, k_compact,
                                                    v_compact, stream.scale,
                                                    run_options));
        record(CircuitBreaker::Outcome::success);
        return Outcome::ok;
    } catch (const RequestCancelled&) {
        item.step.promise.set_exception(std::current_exception());
        record(CircuitBreaker::Outcome::neutral);
        return Outcome::cancelled;
    } catch (const DeadlineExceeded&) {
        item.step.promise.set_exception(std::current_exception());
        record(CircuitBreaker::Outcome::neutral);
        return Outcome::timed_out;
    } catch (const SaloError&) {
        item.step.promise.set_exception(std::current_exception());
        record(CircuitBreaker::Outcome::failure);
        return Outcome::failed;
    } catch (const ContractViolation&) {
        // Caller bug, not shard sickness: never wrapped, never judged.
        item.step.promise.set_exception(std::current_exception());
        record(CircuitBreaker::Outcome::neutral);
        return Outcome::failed;
    } catch (const std::exception& e) {
        fail_promise(item.step.promise,
                     EngineFault(std::string("decode step threw: ") + e.what()));
        record(CircuitBreaker::Outcome::failure);
        return Outcome::failed;
    } catch (...) {
        fail_promise(item.step.promise,
                     EngineFault("decode step threw a non-std exception"));
        record(CircuitBreaker::Outcome::failure);
        return Outcome::failed;
    }
}

void DecodeSession::serve_loop() {
    std::vector<ExecItem> batch;
    std::vector<Outcome> outcome;
    for (;;) {
        std::uint64_t batch_cost = 0;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_work_.wait(lock, [this] { return closed_ || !ready_.empty(); });
            if (ready_.empty()) {
                // Invariant: a stream with queued steps is in ready_ unless
                // it is mid-execution, and the (single) dispatcher is here —
                // so an empty ready_ means an empty backlog.
                if (closed_) return;
                continue;
            }
            const std::size_t take = options_.max_batch > 0
                                         ? options_.max_batch
                                         : std::numeric_limits<std::size_t>::max();
            batch.clear();
            // One step per stream per batch: steps of one stream are a
            // strictly-ordered append log, so intra-stream concurrency is
            // impossible by construction; inter-stream steps batch freely.
            while (batch.size() < take && !ready_.empty()) {
                const StreamId id = ready_.front();
                ready_.pop_front();
                const auto sit = streams_.find(id);
                if (sit == streams_.end()) continue;  // closed while queued
                Stream& stream = *sit->second;
                stream.queued = false;
                // An eviction while the id sat in ready_ drains pending but
                // leaves this stale entry behind; just skip it.
                if (stream.pending.empty()) continue;
                ExecItem item;
                item.id = id;
                item.stream = &stream;
                item.step = std::move(stream.pending.front());
                stream.pending.pop_front();
                stream.executing = true;
                --queued_steps_;
                queued_cost_ -= item.step.cost;
                batch_cost += item.step.cost;
                in_flight_cost_ += item.step.cost;
                batch.push_back(std::move(item));
            }
            in_flight_ = batch.size();
        }
        cv_space_.notify_all();

        outcome.assign(batch.size(), Outcome::ok);
        if (batch.size() == 1) {
            // Idle tier: the lone step gets its shard's whole pool.
            outcome[0] = execute(batch[0], /*thread_budget=*/0);
        } else if (!batch.empty()) {
            // Step-level parallelism, grouped per shard so each group runs
            // on its own engine's pool (budget 1 per step — no nested
            // parallelism, bit-identical to the sequential path). Groups of
            // different shards run concurrently on one helper thread each.
            std::vector<std::vector<std::size_t>> by_shard(shards_.size());
            for (std::size_t i = 0; i < batch.size(); ++i)
                by_shard[static_cast<std::size_t>(batch[i].stream->shard)].push_back(i);
            auto run_group = [&](const std::vector<std::size_t>& group) {
                if (group.empty()) return;
                if (group.size() == 1) {
                    outcome[group[0]] = execute(batch[group[0]], /*thread_budget=*/1);
                    return;
                }
                SaloEngine& engine =
                    shards_[static_cast<std::size_t>(batch[group[0]].stream->shard)]
                        ->engine;
                engine.pool().parallel_for(
                    static_cast<int>(group.size()), [&](int i, int) {
                        const std::size_t slot = group[static_cast<std::size_t>(i)];
                        outcome[slot] = execute(batch[slot], /*thread_budget=*/1);
                    });
            };
            std::vector<std::thread> helpers;
            bool first = true;
            const std::vector<std::size_t>* inline_group = nullptr;
            for (const auto& group : by_shard) {
                if (group.empty()) continue;
                if (first) {
                    inline_group = &group;
                    first = false;
                } else {
                    helpers.emplace_back([&run_group, &group] { run_group(group); });
                }
            }
            if (inline_group != nullptr) run_group(*inline_group);
            for (std::thread& t : helpers) t.join();
        }

        {
            std::lock_guard<std::mutex> lock(m_);
            for (std::size_t i = 0; i < batch.size(); ++i) {
                Stream& stream = *batch[i].stream;
                stream.executing = false;
                account_locked(stream.tenant, outcome[i]);
                if (outcome[i] != Outcome::ok) {
                    // Uniform eviction contract: any non-success outcome
                    // leaves a hole in the append log.
                    evict_locked(stream, "a step failed to complete");
                } else if (!stream.pending.empty() && !stream.queued) {
                    stream.queued = true;
                    ready_.push_back(batch[i].id);
                }
            }
            if (!batch.empty()) {
                ++batches_;
                if (batch.size() > max_batch_seen_) max_batch_seen_ = batch.size();
            }
            in_flight_cost_ -= batch_cost;
            in_flight_ = 0;
        }
        cv_space_.notify_all();
        cv_idle_.notify_all();
    }
}

void DecodeSession::close_stream(StreamId stream_id) {
    std::unique_lock<std::mutex> lock(m_);
    auto it = streams_.find(stream_id);
    SALO_EXPECTS(it != streams_.end());
    Stream* stream = it->second.get();
    cv_idle_.wait(lock, [stream] {
        return stream->pending.empty() && !stream->executing;
    });
    streams_.erase(stream_id);
}

void DecodeSession::drain() {
    std::unique_lock<std::mutex> lock(m_);
    cv_idle_.wait(lock, [this] {
        return queued_steps_ == 0 && in_flight_ == 0 && ready_.empty();
    });
}

void DecodeSession::close() {
    std::thread to_join;
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
        to_join = std::move(dispatcher_);
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    if (to_join.joinable()) {
        to_join.join();
#ifndef NDEBUG
        std::lock_guard<std::mutex> lock(m_);
        if (waiting_submits_ == 0) {
            // Conservation, and the decode-tier refinement: every accepted
            // submission is a step, globally and per tenant.
            SALO_DEBUG_ASSERT(completed_ + failed_ + rejected_ + timed_out_ +
                                  cancelled_ ==
                              submitted_);
            SALO_DEBUG_ASSERT(steps_ == submitted_);
            std::uint64_t tenant_submitted = 0;
            for (const auto& [name, t] : tenant_stats_) {
                (void)name;
                SALO_DEBUG_ASSERT(t.accounted() == t.submitted);
                SALO_DEBUG_ASSERT(t.steps == t.submitted);
                tenant_submitted += t.submitted;
            }
            SALO_DEBUG_ASSERT(tenant_submitted == submitted_);
        }
#endif
    }
}

int DecodeSession::stream_shard(StreamId stream_id) const {
    std::lock_guard<std::mutex> lock(m_);
    const auto it = streams_.find(stream_id);
    SALO_EXPECTS(it != streams_.end());
    return it->second->shard;
}

SessionStats DecodeSession::stats() const {
    SessionStats s;
    {
        std::lock_guard<std::mutex> lock(m_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.failed = failed_;
        s.rejected = rejected_;
        s.timed_out = timed_out_;
        s.cancelled = cancelled_;
        s.shed_expired = shed_expired_;
        s.batches = batches_;
        s.max_batch = max_batch_seen_;
        s.steps = steps_;
        s.evicted_streams = evicted_streams_;
    }
    for (const auto& shard : shards_) {
        const PlanCacheStats c = shard->engine.plan_cache_stats();
        s.plan_cache.hits += c.hits;
        s.plan_cache.misses += c.misses;
        s.plan_cache.compiles += c.compiles;
        s.plan_cache.step_derives += c.step_derives;
        s.plan_cache.shared_resolved += c.shared_resolved;
        s.plan_cache.evictions += c.evictions;
        s.plan_cache.size += c.size;
        s.plan_cache.capacity += c.capacity;
    }
    if (shared_store_) {
        const PlanCacheStats c = shared_store_->stats();
        s.plan_cache.compiles += c.compiles;
        s.plan_cache.step_derives += c.step_derives;
    }
    s.quarantined_shard_events = health_.quarantined_events_total();
    s.reintegrated_shard_events = health_.reintegrated_events_total();
    return s;
}

std::map<std::string, TenantStats> DecodeSession::tenant_stats() const {
    std::lock_guard<std::mutex> lock(m_);
    return tenant_stats_;
}

std::vector<ShardHealthSnapshot> DecodeSession::shard_health() const {
    return health_.snapshot(Clock::now());
}

}  // namespace salo
