// SaloError: the typed failure taxonomy of the serving layer.
//
// Every way a request can fail to produce a result maps to one concrete
// exception type, so callers can branch on *what happened* instead of
// string-matching a bare std::runtime_error:
//
//   SessionClosed     submit() on a session that stopped accepting work
//   QueueFull         admission control rejected the request (shed load)
//   DeadlineExceeded  the request's absolute deadline passed before or
//                     during execution
//   RequestCancelled  the request's CancellationToken fired
//   EngineFault       an execution-side failure (a worker lane threw); the
//                     original exception's message is preserved
//
// All of these derive from SaloError, which derives from
// std::runtime_error, so legacy catch sites keep working. Caller bugs —
// malformed configurations, shape mismatches — stay ContractViolation
// (common/assert.hpp): a contract violation is a programming error, not a
// serving outcome, and is never wrapped in EngineFault.
//
// Delivery: lifecycle bugs (SessionClosed) throw synchronously from
// submit(); per-request outcomes (QueueFull, DeadlineExceeded,
// RequestCancelled, EngineFault) resolve the request's future, so one
// uniform `future.get()` sees every asynchronous failure. SessionStats
// counts each outcome class (see core/session.hpp).
#pragma once

#include <stdexcept>
#include <string>

namespace salo {

/// Root of the serving-failure taxonomy.
class SaloError : public std::runtime_error {
public:
    explicit SaloError(const std::string& what) : std::runtime_error(what) {}
};

/// submit() after close(): the session no longer accepts work.
class SessionClosed : public SaloError {
public:
    explicit SessionClosed(const std::string& what) : SaloError(what) {}
};

/// Admission control shed the request (queue depth / cost / per-class
/// limit, or a block-with-timeout admission wait expired).
class QueueFull : public SaloError {
public:
    explicit QueueFull(const std::string& what) : SaloError(what) {}
};

/// The request's absolute deadline passed before a result was produced.
class DeadlineExceeded : public SaloError {
public:
    explicit DeadlineExceeded(const std::string& what) : SaloError(what) {}
};

/// The request's CancellationToken fired before a result was produced.
class RequestCancelled : public SaloError {
public:
    explicit RequestCancelled(const std::string& what) : SaloError(what) {}
};

/// An execution-side fault: a worker lane threw while running the request
/// (including injected faults, see common/fault_injector.hpp). The wrapped
/// exception's message is embedded in what().
class EngineFault : public SaloError {
public:
    explicit EngineFault(const std::string& what) : SaloError(what) {}
};

/// A decode stream lost its per-stream K/V state (core/decode_session.hpp):
/// its pinned shard was quarantined, or an earlier step of the stream failed
/// and broke the strictly-ordered append log. The state never migrates
/// silently — the caller must open a new stream and re-prefill. Delivered
/// through the failing step's future and through every later step() on the
/// same stream.
class StreamEvicted : public SaloError {
public:
    explicit StreamEvicted(const std::string& what) : SaloError(what) {}
};

}  // namespace salo
