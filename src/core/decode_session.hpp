// DecodeSession: streaming autoregressive decode over persistent per-stream
// K/V state.
//
// Where SaloSession serves whole sequences, a DecodeSession serves *steps*:
// a caller opens a stream (a fixed decode-compatible pattern, head count,
// head dimension), then submits one query row at a time; every step appends
// that position's K/V rows to the stream's DecodeState (ring window +
// pinned globals, attention/streaming.hpp) and computes only the new row's
// tiles through the engine's micro-plan path (SaloEngine::run_step) — the
// full-pattern schedule is compiled once per shape and each step derivation
// is cached, so steady-state decode runs no scheduler work at all.
//
//   DecodeSession session(config, options);
//   StreamId s = session.open_stream(pattern, heads, head_dim, scale);
//   std::future<StepResult> f = session.step(s, {q_row, k_row, v_row});
//   ...
//   session.close_stream(s);
//
// Batching: a dispatcher thread gathers the front step of every ready
// stream into one batch — steps of one stream always execute in submission
// order (the K/V append log is strictly ordered), steps of different
// streams run concurrently on the engine pools (budget 1 each), and a lone
// step gets the whole pool, mirroring SaloSession's two batch shapes. Every
// completed step is bit-identical to row t of the full-prefix encode.
//
// State affinity (the contract docs/API.md "Decode lifecycle" documents):
// a stream's DecodeState lives on exactly one engine shard, picked by
// rendezvous hash at open_stream() and never moved. If the shard is
// quarantined by health supervision — or any step of the stream fails for
// any reason (fault, deadline, cancellation, admission shed): a hole in a
// strictly-ordered append log cannot be papered over — the stream is
// *evicted*: the failing step's future and every later step() on the
// stream fail with StreamEvicted, and the caller must open a new stream
// and re-prefill. No retry, no silent migration, ever.
//
// Deadlines, cancellation, admission control and tenant accounting compose
// unchanged: each step is one admission unit (cost = heads) with its own
// deadline/token, and SessionStats/TenantStats obey the conservation law
// with steps == submitted (a pure decode tier).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "attention/streaming.hpp"
#include "core/admission.hpp"
#include "core/engine.hpp"
#include "core/health.hpp"
#include "core/session.hpp"  // SessionStats / TenantStats

namespace salo {

using StreamId = std::uint64_t;

/// One decode step: the new position's query/key/value rows, one row per
/// head (all heads x head_dim), plus the per-step robustness knobs of
/// AttentionRequest.
struct StepRequest {
    Matrix<float> q_row;
    Matrix<float> k_row;
    Matrix<float> v_row;
    std::optional<Fidelity> fidelity;
    std::string tenant_id;  ///< fixed per stream at open_stream(); ignored here
    std::optional<std::chrono::steady_clock::time_point> deadline;
    CancellationToken cancel;
    std::shared_ptr<const FaultInjector> fault_injector;
};

struct DecodeSessionOptions {
    /// Independent engine shards (own pool + PlanCache each). Streams are
    /// pinned to a shard at open_stream() and never migrate.
    int num_shards = 1;
    /// Maximum streams served in one dispatcher batch. 0 = every ready
    /// stream.
    std::size_t max_batch = 0;
    /// Admission policy over queued steps (cost unit = heads).
    AdmissionPolicy admission;
    /// Shard circuit breakers; a quarantined shard evicts its streams.
    HealthPolicy health;
    /// Chaos/testing hook: engine-level fault injector for shard i
    /// (missing/null entries leave that shard clean). Overridden per step
    /// by StepRequest::fault_injector.
    std::vector<std::shared_ptr<const FaultInjector>> shard_fault_injectors;
    /// Share one read-mostly PlanCache tier across shards (full plans and
    /// step micro-plans both compile/derive once tier-wide).
    bool shared_plan_store = false;
};

class DecodeSession {
public:
    explicit DecodeSession(const SaloConfig& config = {},
                           DecodeSessionOptions options = {});
    ~DecodeSession();  // close()

    DecodeSession(const DecodeSession&) = delete;
    DecodeSession& operator=(const DecodeSession&) = delete;

    /// Open a stream for up to pattern.n() steps of `pattern` (which must
    /// be decode_compatible: causal bands, 1D, globals inside the window
    /// span). Pins the stream's state to a shard. Throws SessionClosed
    /// after close() and ContractViolation on an incompatible pattern.
    StreamId open_stream(const HybridPattern& pattern, int heads, int head_dim,
                         float scale, std::string tenant_id = std::string());

    /// Submit the stream's next step. The future resolves with the step's
    /// attention row, or with a typed SaloError; after any failed step the
    /// stream is evicted and every later step() future fails with
    /// StreamEvicted. Throws SessionClosed / ContractViolation (unknown
    /// stream, shape mismatch, more steps than pattern.n()) synchronously.
    /// Blocking under a full queue follows the admission policy.
    std::future<StepResult> step(StreamId stream, StepRequest request);

    /// Block until the stream's submitted steps have resolved, then drop
    /// its state. Idempotent per id (a second call throws — the id is
    /// gone). Streams not closed explicitly are dropped by close().
    void close_stream(StreamId stream);

    /// Block until every submitted step has resolved.
    void drain();

    /// Stop accepting work, serve what is queued, join the dispatcher.
    /// Idempotent; the destructor calls it.
    void close();

    /// steps == submitted here by construction; evicted_streams counts
    /// streams lost to quarantine or failed steps. plan_cache aggregates
    /// over shards.
    SessionStats stats() const;

    /// Per-tenant slice; each tenant obeys the conservation law and
    /// steps == submitted.
    std::map<std::string, TenantStats> tenant_stats() const;

    std::vector<ShardHealthSnapshot> shard_health() const;

    int num_shards() const { return static_cast<int>(shards_.size()); }
    /// The shard a live stream is pinned to (tests/benches).
    int stream_shard(StreamId stream) const;
    const SaloEngine& shard_engine(int shard) const {
        return shards_[static_cast<std::size_t>(shard)]->engine;
    }
    const SaloConfig& config() const { return shards_.front()->engine.config(); }

private:
    using Clock = std::chrono::steady_clock;

    struct Shard {
        explicit Shard(const SaloConfig& config) : engine(config) {}
        SaloEngine engine;
    };

    struct PendingStep {
        StepRequest request;
        std::promise<StepResult> promise;
        std::uint64_t cost = 0;  ///< admission cost units (= heads)
    };

    struct Stream {
        HybridPattern pattern;  ///< full-horizon pattern (max length n)
        int heads = 0;
        int head_dim = 0;
        float scale = 1.0f;
        std::string tenant;
        int shard = 0;
        DecodeState state;
        std::deque<PendingStep> pending;
        std::uint64_t accepted_steps = 0;  ///< total step() calls admitted
        bool executing = false;  ///< front step is in the current batch
        bool queued = false;     ///< stream id is in ready_
        bool evicted = false;

        Stream(HybridPattern p, int h, int d, float sc, std::string t, int sh)
            : pattern(std::move(p)), heads(h), head_dim(d), scale(sc),
              tenant(std::move(t)), shard(sh),
              state(h, d, decode_window_span(pattern.bands()),
                    pattern.global_tokens()) {}
    };

    /// One stream's step lifted out of the queues for execution.
    struct ExecItem {
        StreamId id = 0;
        Stream* stream = nullptr;
        PendingStep step;
    };

    /// How one executed step resolved.
    enum class Outcome { ok, failed, cancelled, timed_out, shed_expired };

    void serve_loop();
    Outcome execute(ExecItem& item, int thread_budget);
    /// Mark the stream evicted and fail everything still queued on it.
    /// Caller holds m_.
    void evict_locked(Stream& stream, const std::string& reason);
    void account_locked(const std::string& tenant, Outcome outcome);
    int pick_shard(StreamId id, Clock::time_point now);
    AdmissionSnapshot snapshot_locked() const;

    DecodeSessionOptions options_;
    std::shared_ptr<PlanCache> shared_store_;  ///< before shards_ (they attach)
    std::vector<std::unique_ptr<Shard>> shards_;
    mutable HealthSupervisor health_;
    AdmissionController admission_;

    mutable std::mutex m_;
    std::condition_variable cv_work_;   ///< ready streams / closing
    std::condition_variable cv_space_;  ///< admission state changed
    std::condition_variable cv_idle_;   ///< a batch finished
    std::unordered_map<StreamId, std::unique_ptr<Stream>> streams_;
    std::deque<StreamId> ready_;  ///< streams with a dispatchable front step
    std::uint64_t next_stream_id_ = 1;
    std::size_t queued_steps_ = 0;
    std::uint64_t queued_cost_ = 0;
    std::uint64_t in_flight_cost_ = 0;
    std::size_t in_flight_ = 0;
    std::size_t waiting_submits_ = 0;  ///< see SaloSession::close()
    bool closed_ = false;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t timed_out_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t shed_expired_ = 0;
    std::uint64_t batches_ = 0;
    std::size_t max_batch_seen_ = 0;
    std::uint64_t steps_ = 0;  ///< == submitted_ (every submission is a step)
    std::uint64_t evicted_streams_ = 0;
    std::map<std::string, TenantStats> tenant_stats_;

    std::thread dispatcher_;  ///< last member: joined by close()
};

}  // namespace salo
