#include "core/compiled_plan.hpp"

#include "common/hash.hpp"

namespace salo {

std::uint64_t plan_fingerprint(const HybridPattern& pattern, int head_dim,
                               const ArrayGeometry& geometry,
                               const ScheduleOptions& options) {
    Fnv1a h;
    h.mix(std::uint64_t{0x5A10'0004});  // type tag: plan key
    h.mix(pattern.fingerprint());
    h.mix(head_dim);
    h.mix(geometry.fingerprint());
    h.mix(options.fingerprint());
    return h.digest();
}

CompiledPlan compile(const HybridPattern& pattern, int head_dim,
                     const SaloConfig& config) {
    config.validate();
    SALO_EXPECTS(head_dim >= 1);
    SchedulePlan plan =
        schedule(pattern, config.geometry, head_dim, config.schedule_options);
    const std::uint64_t key =
        plan_fingerprint(pattern, head_dim, config.geometry, config.schedule_options);
    return CompiledPlan(pattern, std::move(plan), key);
}

CompiledPlanPtr compile_shared(const HybridPattern& pattern, int head_dim,
                               const SaloConfig& config) {
    return std::make_shared<const CompiledPlan>(compile(pattern, head_dim, config));
}

}  // namespace salo
