#include "core/compiled_plan.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace salo {

std::uint64_t plan_fingerprint(const HybridPattern& pattern, int head_dim,
                               const ArrayGeometry& geometry,
                               const ScheduleOptions& options) {
    Fnv1a h;
    h.mix(std::uint64_t{0x5A10'0004});  // type tag: plan key
    h.mix(pattern.fingerprint());
    h.mix(head_dim);
    h.mix(geometry.fingerprint());
    h.mix(options.fingerprint());
    return h.digest();
}

CompiledPlan compile(const HybridPattern& pattern, int head_dim,
                     const SaloConfig& config) {
    config.validate();
    SALO_EXPECTS(head_dim >= 1);
    SchedulePlan plan =
        schedule(pattern, config.geometry, head_dim, config.schedule_options);
    const std::uint64_t key =
        plan_fingerprint(pattern, head_dim, config.geometry, config.schedule_options);
    return CompiledPlan(pattern, std::move(plan), key);
}

CompiledPlanPtr compile_shared(const HybridPattern& pattern, int head_dim,
                               const SaloConfig& config) {
    return std::make_shared<const CompiledPlan>(compile(pattern, head_dim, config));
}

// ---------------------------------------------------------------------------
// Streaming-decode micro-plans.
// ---------------------------------------------------------------------------

bool decode_compatible(const HybridPattern& pattern) {
    if (pattern.grid_width() != 0) return false;
    if (!is_causal(pattern.bands())) return false;
    const int span = decode_window_span(pattern.bands());
    for (int g : pattern.global_tokens())
        if (g >= span) return false;
    return true;
}

std::uint64_t step_plan_fingerprint(std::uint64_t full_fingerprint, int position) {
    Fnv1a h;
    h.mix(std::uint64_t{0x5A10'0005});  // type tag: step micro-plan key
    h.mix(full_fingerprint);
    h.mix(position);
    return h.digest();
}

CompiledPlan derive_micro_plan(const CompiledPlan& full) {
    SALO_EXPECTS(!full.is_step());
    const HybridPattern& pattern = full.pattern();
    SALO_EXPECTS(decode_compatible(pattern));

    const int t = full.n() - 1;
    const int span = decode_window_span(pattern.bands());
    const int window_lo = std::max(0, t - (span - 1));
    const std::vector<int>& globals = pattern.global_tokens();
    const int num_globals = static_cast<int>(globals.size());
    const int compact_rows = num_globals + (t - window_lo + 1);
    // Absolute key position j in the window maps to compact row
    // num_globals + (j - window_lo); segment key streams are affine in the
    // key id with slope 1, so one key_base shift remaps a whole segment.
    const std::int64_t shift = num_globals - window_lo;

    SchedulePlan micro;
    micro.geometry = full.geometry();
    micro.n = compact_rows;
    micro.head_dim = full.head_dim();
    micro.options = full.options();

    for (const TileTask& tile : full.plan().tiles) {
        // Locate query t's PE row in this tile, if any.
        int r_t = -1;
        for (int r = 0; r < tile.rows(); ++r) {
            if (tile.query_ids[static_cast<std::size_t>(r)] == t) {
                r_t = r;
                break;
            }
        }
        bool keep_window = false;
        if (r_t >= 0) {
            for (int c = 0; c < tile.cols() && !keep_window; ++c)
                if (tile.is_valid(r_t, c)) keep_window = true;
        }
        const bool keep_gcol = r_t >= 0 && tile.global_col_key >= 0 &&
                               tile.global_col_rows[static_cast<std::size_t>(r_t)] != 0;
        const bool keep_grow = tile.global_row_query == t;
        if (!keep_window && !keep_gcol && !keep_grow) continue;

        TileTask m = tile;

        // Single live query: row r_t keeps its PE-row index (the diagonal
        // key streams are keyed off the row index), but becomes query 0 of
        // the one-row step output. Every other row goes dark.
        for (auto& qid : m.query_ids) qid = -1;
        if (r_t >= 0) m.query_ids[static_cast<std::size_t>(r_t)] = 0;
        const int cols = m.cols();
        for (int r = 0; r < m.rows(); ++r) {
            if (r == r_t) continue;
            for (int c = 0; c < cols; ++c)
                m.valid[static_cast<std::size_t>(r * cols + c)] = 0;
        }

        // Window keys: absolute -> compact ring section. Segments that only
        // served deactivated rows may go negative; the executor never
        // dereferences keys of invalid slots, so that is harmless.
        for (TileSegment& seg : m.segments) seg.key_base += shift;

        // Global column: query t's contribution survives, rewritten to the
        // pinned copy of the global key; other rows' contributions go dark.
        if (keep_gcol) {
            const auto pin = std::lower_bound(globals.begin(), globals.end(),
                                              static_cast<int>(m.global_col_key));
            SALO_ASSERT(pin != globals.end() && *pin == m.global_col_key);
            m.global_col_key = static_cast<std::int32_t>(pin - globals.begin());
            std::fill(m.global_col_rows.begin(), m.global_col_rows.end(),
                      static_cast<std::uint8_t>(0));
            m.global_col_rows[static_cast<std::size_t>(r_t)] = 1;
        } else {
            m.global_col_key = -1;
            std::fill(m.global_col_rows.begin(), m.global_col_rows.end(),
                      static_cast<std::uint8_t>(0));
        }

        // Global row: kept only when t itself is global. t global implies
        // t < span (decode_compatible), so window_lo == 0 and every fresh
        // stream key remaps in-bounds into the ring section via `shift`.
        if (keep_grow) {
            m.global_row_query = 0;
        } else {
            m.global_row_query = -1;
            std::fill(m.global_fresh.begin(), m.global_fresh.end(),
                      static_cast<std::uint8_t>(0));
        }

        micro.tiles.push_back(std::move(m));
    }

    for (const TileTask& m : micro.tiles) {
        micro.stats.total_slots +=
            static_cast<std::int64_t>(m.rows()) * static_cast<std::int64_t>(m.cols());
        micro.stats.valid_slots += m.num_valid_slots();
        if (m.has_window_work())
            ++micro.stats.window_tiles;
        else
            ++micro.stats.catchup_tiles;
        if (m.global_row_query >= 0)
            for (auto f : m.global_fresh) micro.stats.global_row_ops += f;
        if (m.global_col_key >= 0)
            for (auto f : m.global_col_rows) micro.stats.global_col_ops += f;
    }

    const StepGeometry step{t, window_lo, num_globals, span, compact_rows};
    return CompiledPlan(pattern, std::move(micro),
                        step_plan_fingerprint(full.fingerprint(), t), step);
}

CompiledPlanPtr derive_micro_plan_shared(const CompiledPlan& full) {
    return std::make_shared<const CompiledPlan>(derive_micro_plan(full));
}

}  // namespace salo
