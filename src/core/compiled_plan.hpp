// CompiledPlan: the immutable artifact separating workload *compilation*
// from *execution* in the serving API.
//
//   compile(pattern, head_dim, config)  ->  CompiledPlan
//
// runs the data scheduler once and captures everything the engine needs to
// execute the workload repeatedly: the tile schedule, its statistics, the
// pattern (still needed by the golden oracle and for cache-collision
// checks), and a 64-bit content fingerprint of (pattern, geometry,
// schedule options, head_dim) — the exact inputs of schedule(). Two
// compilations have equal fingerprints iff those inputs are equal, so the
// fingerprint is the PlanCache key.
//
// CompiledPlan is deeply immutable after construction and safe to share
// across threads, sessions and engines with the same geometry/options
// (typically as std::shared_ptr<const CompiledPlan>).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/config.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"

namespace salo {

/// Geometry of a decode step's compact key-space (derive_micro_plan). The
/// step computes query row `position` of the full pattern against the
/// compact K/V layout DecodeState::assemble() produces:
/// [num_globals pinned rows][positions window_lo .. position].
struct StepGeometry {
    int position = 0;      ///< query row t in the full sequence (= pattern n - 1)
    int window_lo = 0;     ///< first ring position: max(0, t - (window_span - 1))
    int num_globals = 0;   ///< pinned rows ahead of the ring section
    int window_span = 0;   ///< ring capacity: decode_window_span(bands)
    int compact_rows = 0;  ///< num_globals + (t - window_lo + 1)
};

class CompiledPlan {
public:
    /// Built by compile() / derive_micro_plan(); use those entry points
    /// rather than this ctor. `step` is set only on micro-plans.
    CompiledPlan(HybridPattern pattern, SchedulePlan plan, std::uint64_t fingerprint,
                 std::optional<StepGeometry> step = std::nullopt)
        : pattern_(std::move(pattern)), plan_(std::move(plan)),
          fingerprint_(fingerprint), step_(step) {}

    const HybridPattern& pattern() const { return pattern_; }
    int n() const { return plan_.n; }
    int head_dim() const { return plan_.head_dim; }
    const ArrayGeometry& geometry() const { return plan_.geometry; }
    const ScheduleOptions& options() const { return plan_.options; }
    const SchedulePlan& plan() const { return plan_; }
    const ScheduleStats& schedule_stats() const { return plan_.stats; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    /// True for a decode micro-plan: plan().n is then the compact key-row
    /// count (StepGeometry::compact_rows), not a sequence length, and the
    /// plan is executable only through SaloEngine::run_step.
    bool is_step() const { return step_.has_value(); }
    const StepGeometry& step() const {
        SALO_EXPECTS(step_.has_value());
        return *step_;
    }

private:
    HybridPattern pattern_;
    SchedulePlan plan_;
    std::uint64_t fingerprint_;
    std::optional<StepGeometry> step_;
};

using CompiledPlanPtr = std::shared_ptr<const CompiledPlan>;

/// The cache key compile() stamps on its artifact: the combined content
/// hash of every scheduling input. Exposed so callers can key their own
/// caches the same way.
std::uint64_t plan_fingerprint(const HybridPattern& pattern, int head_dim,
                               const ArrayGeometry& geometry,
                               const ScheduleOptions& options);

/// Compile `pattern` for head dimension `head_dim` under `config`
/// (geometry + schedule options; the execution knobs are ignored).
/// Validates the config first and throws ContractViolation on nonsense.
CompiledPlan compile(const HybridPattern& pattern, int head_dim,
                     const SaloConfig& config);

/// Shared-ownership variant for callers that pass plans around.
CompiledPlanPtr compile_shared(const HybridPattern& pattern, int head_dim,
                               const SaloConfig& config);

// ---------------------------------------------------------------------------
// Streaming-decode micro-plans.
// ---------------------------------------------------------------------------

/// Can this pattern drive incremental decode? Requires 1D (no grid), causal
/// bands (no look-ahead), and every global token inside the ring span — a
/// step *on* a global position must find its whole fresh history in the
/// ring, so globals beyond the span would reference evicted rows.
bool decode_compatible(const HybridPattern& pattern);

/// Cache key of the step micro-plan derived from a full plan with
/// `full_fingerprint` at query position `position`. A distinct type tag
/// keeps every micro-plan key disjoint from every full-plan key, so both
/// kinds share one PlanCache without aliasing.
std::uint64_t step_plan_fingerprint(std::uint64_t full_fingerprint, int position);

/// Derive the decode micro-plan for the *last* row of `full` (position
/// t = full.n() - 1): keep exactly the tiles that touch query t, deactivate
/// every other query row, and rewrite key references from absolute sequence
/// positions into DecodeState's compact layout
/// ([globals][window_lo .. t]). Executing the result with run_step against
/// the assembled compact K/V is bit-identical to row t of running `full`
/// over the whole prefix. Preconditions: !full.is_step(),
/// decode_compatible(full.pattern()).
CompiledPlan derive_micro_plan(const CompiledPlan& full);
CompiledPlanPtr derive_micro_plan_shared(const CompiledPlan& full);

}  // namespace salo
