// CompiledPlan: the immutable artifact separating workload *compilation*
// from *execution* in the serving API.
//
//   compile(pattern, head_dim, config)  ->  CompiledPlan
//
// runs the data scheduler once and captures everything the engine needs to
// execute the workload repeatedly: the tile schedule, its statistics, the
// pattern (still needed by the golden oracle and for cache-collision
// checks), and a 64-bit content fingerprint of (pattern, geometry,
// schedule options, head_dim) — the exact inputs of schedule(). Two
// compilations have equal fingerprints iff those inputs are equal, so the
// fingerprint is the PlanCache key.
//
// CompiledPlan is deeply immutable after construction and safe to share
// across threads, sessions and engines with the same geometry/options
// (typically as std::shared_ptr<const CompiledPlan>).
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "pattern/pattern.hpp"
#include "scheduler/scheduler.hpp"

namespace salo {

class CompiledPlan {
public:
    /// Built by compile(); use that entry point rather than this ctor.
    CompiledPlan(HybridPattern pattern, SchedulePlan plan, std::uint64_t fingerprint)
        : pattern_(std::move(pattern)), plan_(std::move(plan)),
          fingerprint_(fingerprint) {}

    const HybridPattern& pattern() const { return pattern_; }
    int n() const { return plan_.n; }
    int head_dim() const { return plan_.head_dim; }
    const ArrayGeometry& geometry() const { return plan_.geometry; }
    const ScheduleOptions& options() const { return plan_.options; }
    const SchedulePlan& plan() const { return plan_; }
    const ScheduleStats& schedule_stats() const { return plan_.stats; }
    std::uint64_t fingerprint() const { return fingerprint_; }

private:
    HybridPattern pattern_;
    SchedulePlan plan_;
    std::uint64_t fingerprint_;
};

using CompiledPlanPtr = std::shared_ptr<const CompiledPlan>;

/// The cache key compile() stamps on its artifact: the combined content
/// hash of every scheduling input. Exposed so callers can key their own
/// caches the same way.
std::uint64_t plan_fingerprint(const HybridPattern& pattern, int head_dim,
                               const ArrayGeometry& geometry,
                               const ScheduleOptions& options);

/// Compile `pattern` for head dimension `head_dim` under `config`
/// (geometry + schedule options; the execution knobs are ignored).
/// Validates the config first and throws ContractViolation on nonsense.
CompiledPlan compile(const HybridPattern& pattern, int head_dim,
                     const SaloConfig& config);

/// Shared-ownership variant for callers that pass plans around.
CompiledPlanPtr compile_shared(const HybridPattern& pattern, int head_dim,
                               const SaloConfig& config);

}  // namespace salo
