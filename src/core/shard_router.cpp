#include "core/shard_router.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.hpp"

namespace salo {

namespace {

/// Same admission cost proxy as SaloSession: heads x rows.
std::uint64_t request_cost(const AttentionRequest& r) {
    return static_cast<std::uint64_t>(r.q.count()) *
           static_cast<std::uint64_t>(r.q.rows());
}

template <typename Error>
void fail_promise(std::promise<LayerResult>& promise, Error error) {
    promise.set_exception(std::make_exception_ptr(std::move(error)));
}

/// task_queues_ index for a priority class.
std::size_t band_index(Priority p) { return p == Priority::interactive ? 0 : 1; }

}  // namespace

ShardedSession::ShardedSession(const SaloConfig& config, ShardedSessionOptions options)
    : options_(std::move(options)),
      health_(std::max(options_.num_shards, 1), options_.health),
      sched_(options_.fairness) {
    SALO_EXPECTS(options_.num_shards >= 1);
    SALO_EXPECTS(options_.retry.max_attempts >= 1);
    if (options_.shared_plan_store)
        shared_store_ = std::make_shared<PlanCache>(
            static_cast<std::size_t>(std::max(1, config.plan_cache_capacity)));
    shards_.reserve(static_cast<std::size_t>(options_.num_shards));
    for (int i = 0; i < options_.num_shards; ++i) {
        SaloConfig shard_config = config;
        const auto idx = static_cast<std::size_t>(i);
        if (idx < options_.shard_fault_injectors.size() &&
            options_.shard_fault_injectors[idx] != nullptr)
            shard_config.fault_injector = options_.shard_fault_injectors[idx];
        shard_config.shared_plan_store = shared_store_;
        shards_.push_back(std::make_unique<Shard>(shard_config));
    }
    const int workers =
        options_.router_workers > 0 ? options_.router_workers : 2 * options_.num_shards;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        workers_.emplace_back([this] { worker_main(); });
}

ShardedSession::~ShardedSession() { close(); }

CompiledPlanPtr ShardedSession::compile(const HybridPattern& pattern,
                                        int head_dim) const {
    return shards_.front()->engine.compile(pattern, head_dim);
}

AdmissionSnapshot ShardedSession::snapshot_locked() const {
    AdmissionSnapshot s;
    s.queued_interactive = sched_.queued(Priority::interactive);
    s.queued_batch = sched_.queued(Priority::batch);
    s.outstanding_cost = sched_.queued_cost() + in_flight_cost_;
    return s;
}

std::future<LayerResult> ShardedSession::submit(AttentionRequest request) {
    SALO_EXPECTS(request.plan != nullptr || request.pattern.has_value());
    SALO_EXPECTS(request.q.count() >= 1);
    SALO_EXPECTS(request.q.count() == request.k.count() &&
                 request.k.count() == request.v.count());

    Task task;
    task.cost = request_cost(request);
    // The routing key must be known before any shard compiles the request:
    // consistent_hash keeps one shape on one shard's PlanCache.
    if (options_.routing == RoutingPolicy::consistent_hash) {
        const SaloConfig& c = config();
        task.fingerprint =
            request.plan != nullptr
                ? request.plan->fingerprint()
                : plan_fingerprint(*request.pattern, request.q.cols(), c.geometry,
                                   c.schedule_options);
    }
    task.request = std::move(request);
    std::future<LayerResult> future = task.promise.get_future();
    const Priority priority = task.request.priority;
    const std::string tenant = task.request.tenant_id;

    {
        std::unique_lock<std::mutex> lock(m_);
        if (closed_)
            throw SessionClosed(
                "ShardedSession: submit() after close() — the tier is closed and no "
                "longer accepts requests");
        ++submitted_;
        ++tenant_stats_[tenant].submitted;
        task.id = next_task_id_++;

        // Combined admission: the global scaled policy (degradation-aware:
        // limits shrink with the healthy-shard fraction) AND the tenant's
        // own quota, strictest outcome wins. A flooding tenant trips its
        // quota while everyone else's admission never sees it.
        struct Combined {
            AdmissionDecision decision;
            bool tenant_limited;
            int healthy;
        };
        auto decide_combined = [&]() -> Combined {
            const int healthy = health_.healthy_count(Clock::now());
            const AdmissionController global(scaled_policy(
                options_.admission, healthy, static_cast<int>(shards_.size())));
            const AdmissionDecision g =
                global.decide(snapshot_locked(), priority, task.cost);
            const AdmissionDecision t = sched_.decide(tenant, priority, task.cost);
            if (g == AdmissionDecision::reject || t == AdmissionDecision::reject)
                return {AdmissionDecision::reject, t == AdmissionDecision::reject,
                        healthy};
            if (g == AdmissionDecision::wait || t == AdmissionDecision::wait)
                return {AdmissionDecision::wait,
                        t == AdmissionDecision::wait && g == AdmissionDecision::admit,
                        healthy};
            return {AdmissionDecision::admit, false, healthy};
        };

        // The wait bound, when any applicable policy is block_with_timeout:
        // the tighter of the timeouts that can put this request to sleep.
        const AdmissionPolicy& tenant_policy = sched_.quota(tenant).admission;
        bool timed_wait = options_.admission.mode == AdmissionMode::block_with_timeout;
        std::chrono::milliseconds wait_budget = options_.admission.block_timeout;
        if (tenant_policy.mode == AdmissionMode::block_with_timeout) {
            wait_budget = timed_wait
                              ? std::min(wait_budget, tenant_policy.block_timeout)
                              : tenant_policy.block_timeout;
            timed_wait = true;
        }
        const Clock::time_point admission_deadline = Clock::now() + wait_budget;

        for (;;) {
            if (closed_) {
                ++rejected_;
                ++tenant_stats_[tenant].rejected;
                fail_promise(task.promise,
                             SessionClosed("ShardedSession: tier closed while the "
                                           "request waited for admission"));
                return future;
            }
            if (task.request.deadline && Clock::now() > *task.request.deadline) {
                ++timed_out_;
                ++shed_expired_;
                ++tenant_stats_[tenant].timed_out;
                fail_promise(task.promise,
                             DeadlineExceeded("request deadline expired while waiting "
                                              "for admission"));
                return future;
            }
            const Combined combined = decide_combined();
            if (combined.decision == AdmissionDecision::admit) break;
            if (combined.decision == AdmissionDecision::reject) {
                ++rejected_;
                ++tenant_stats_[tenant].rejected;
                fail_promise(
                    task.promise,
                    combined.tenant_limited
                        ? QueueFull(std::string("tenant quota rejected ") +
                                    priority_name(priority) +
                                    "-class request for tenant '" + tenant + "'")
                        : QueueFull(std::string("tier admission rejected ") +
                                    priority_name(priority) + "-class request (" +
                                    std::to_string(combined.healthy) + "/" +
                                    std::to_string(shards_.size()) +
                                    " shards healthy)"));
                return future;
            }
            if (timed_wait) {
                ++waiting_submits_;
                const std::cv_status wait_status =
                    cv_space_.wait_until(lock, admission_deadline);
                --waiting_submits_;
                if (wait_status == std::cv_status::timeout) {
                    if (decide_combined().decision == AdmissionDecision::admit) break;
                    ++rejected_;
                    ++tenant_stats_[tenant].rejected;
                    fail_promise(task.promise,
                                 QueueFull(std::string("tier admission wait timed out "
                                                       "for ") +
                                           priority_name(priority) + "-class request"));
                    return future;
                }
            } else {
                ++waiting_submits_;
                cv_space_.wait(lock);
                --waiting_submits_;
            }
        }

        // Lockstep commit: the scheduler books the cost, the task deque
        // holds the object — same tenant, same class, FIFO on both sides.
        sched_.push(tenant, priority, task.cost);
        task_queues_[tenant][band_index(priority)].push_back(std::move(task));
    }
    cv_work_.notify_one();
    return future;
}

std::future<LayerResult> ShardedSession::submit(CompiledPlanPtr plan, Tensor3<float> q,
                                                Tensor3<float> k, Tensor3<float> v,
                                                float scale) {
    return submit(
        make_request(std::move(plan), std::move(q), std::move(k), std::move(v), scale));
}

std::future<LayerResult> ShardedSession::submit(const HybridPattern& pattern,
                                                Tensor3<float> q, Tensor3<float> k,
                                                Tensor3<float> v, float scale) {
    return submit(make_request(pattern, std::move(q), std::move(k), std::move(v), scale));
}

void ShardedSession::worker_main() {
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_work_.wait(lock, [this] { return closed_ || !sched_.empty(); });
            if (sched_.empty()) {
                if (closed_) return;
                continue;
            }
            // The DWRR pick names a (tenant, class); the matching Task is
            // the front of that queue by the lockstep-commit invariant.
            const std::optional<FairScheduler::Pick> pick = sched_.pop();
            SALO_ASSERT(pick.has_value());
            auto queues_it = task_queues_.find(pick->tenant);
            SALO_ASSERT(queues_it != task_queues_.end());
            std::deque<Task>& q = queues_it->second[band_index(pick->priority)];
            SALO_ASSERT(!q.empty() && q.front().cost == pick->cost);
            task = std::move(q.front());
            q.pop_front();
            if (queues_it->second[0].empty() && queues_it->second[1].empty())
                task_queues_.erase(queues_it);
            in_flight_cost_ += task.cost;
            ++in_flight_;
        }
        cv_space_.notify_all();
        serve_task(task);
        {
            std::lock_guard<std::mutex> lock(m_);
            in_flight_cost_ -= task.cost;
            --in_flight_;
            sched_.release(task.request.tenant_id, task.cost);
        }
        cv_space_.notify_all();
        cv_idle_.notify_all();
    }
}

void ShardedSession::finish(const std::string& tenant, Resolution resolution,
                            bool shed_expired) {
    std::lock_guard<std::mutex> lock(m_);
    TenantStats& t = tenant_stats_[tenant];
    switch (resolution) {
        case Resolution::completed:
            ++completed_;
            ++t.completed;
            break;
        case Resolution::failed:
            ++failed_;
            ++t.failed;
            break;
        case Resolution::timed_out:
            ++timed_out_;
            ++t.timed_out;
            if (shed_expired) ++shed_expired_;
            break;
        case Resolution::cancelled:
            ++cancelled_;
            ++t.cancelled;
            break;
    }
}

int ShardedSession::pick_shard(const Task& task, Clock::time_point now) {
    for (;;) {
        std::vector<int> candidates = health_.acquirable(now);
        if (candidates.empty()) {
            // Every breaker refused: degrade to a forced probe of the shard
            // whose cooldown expires soonest rather than failing the tier.
            return health_.force_acquire_soonest(now);
        }
        // A retry prefers any shard other than the one that just failed it.
        if (task.last_shard >= 0 && candidates.size() > 1)
            candidates.erase(
                std::remove(candidates.begin(), candidates.end(), task.last_shard),
                candidates.end());

        int chosen = candidates.front();
        switch (options_.routing) {
            case RoutingPolicy::least_outstanding_cost: {
                std::uint64_t best = ~0ull;
                for (int s : candidates) {
                    const std::uint64_t cost =
                        shards_[static_cast<std::size_t>(s)]->outstanding_cost.load(
                            std::memory_order_relaxed);
                    if (cost < best) {
                        best = cost;
                        chosen = s;
                    }
                }
                break;
            }
            case RoutingPolicy::consistent_hash: {
                // Rendezvous hashing: stable per fingerprint while the
                // candidate set shrinks/grows with shard health.
                std::uint64_t best = 0;
                bool first = true;
                for (int s : candidates) {
                    Fnv1a h;
                    h.mix(task.fingerprint);
                    h.mix(s);
                    const std::uint64_t weight = h.digest();
                    if (first || weight > best) {
                        best = weight;
                        chosen = s;
                        first = false;
                    }
                }
                break;
            }
            case RoutingPolicy::round_robin: {
                const std::uint64_t turn =
                    round_robin_.fetch_add(1, std::memory_order_relaxed);
                chosen = candidates[static_cast<std::size_t>(
                    turn % candidates.size())];
                break;
            }
        }
        if (health_.try_acquire(chosen, now)) return chosen;
        // Lost a race with a quarantine or a probe slot; re-evaluate.
    }
}

ShardedSession::Clock::duration ShardedSession::backoff_for(const Task& task) const {
    const RetryPolicy& p = options_.retry;
    const int shift = std::min(task.attempts - 1, 20);
    const std::int64_t base_us = std::min<std::int64_t>(
        p.max_backoff.count(), p.base_backoff.count() << shift);
    Fnv1a h;
    h.mix(p.jitter_seed);
    h.mix(task.id);
    h.mix(task.attempts);
    const double u = static_cast<double>(h.digest() >> 11) *
                     (1.0 / 9007199254740992.0);  // [0, 1)
    return std::chrono::microseconds(
        static_cast<std::int64_t>(static_cast<double>(base_us) * (0.5 + 0.5 * u)));
}

ShardedSession::WaitOutcome ShardedSession::backoff_wait(
    Clock::duration d, const CancellationToken& cancel,
    const std::optional<Clock::time_point>& deadline) const {
    const Clock::time_point until = Clock::now() + d;
    for (;;) {
        // Token first: a cancel that fired between attempts aborts the
        // backoff immediately — the request must resolve RequestCancelled,
        // never burn another attempt.
        if (cancel.cancelled()) return WaitOutcome::cancelled;
        const Clock::time_point now = Clock::now();
        if (deadline && now >= *deadline) return WaitOutcome::deadline;
        if (now >= until) return WaitOutcome::elapsed;
        Clock::time_point next = std::min(until, now + std::chrono::microseconds(200));
        if (deadline && *deadline < next) next = *deadline;
        std::this_thread::sleep_until(next);
    }
}

void ShardedSession::serve_task(Task& task) {
    const std::string& tenant = task.request.tenant_id;
    // Shed without touching any shard, mirroring SaloSession's dispatcher.
    if (task.request.cancel.cancelled()) {
        fail_promise(task.promise, RequestCancelled("request cancelled while queued; "
                                                    "shed before dispatch"));
        finish(tenant, Resolution::cancelled);
        return;
    }
    if (task.request.deadline && Clock::now() > *task.request.deadline) {
        fail_promise(task.promise, DeadlineExceeded("request deadline expired while "
                                                    "queued; shed before dispatch"));
        finish(tenant, Resolution::timed_out, /*shed_expired=*/true);
        return;
    }

    std::string last_fault;
    for (;;) {
        ++task.attempts;
        const Clock::time_point attempt_start = Clock::now();
        const int shard_index = pick_shard(task, attempt_start);
        if (task.attempts > 1 && shard_index != task.last_shard) {
            failed_over_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(m_);
            ++tenant_stats_[tenant].failed_over;
        }
        Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
        shard.outstanding_cost.fetch_add(task.cost, std::memory_order_relaxed);
        const int active_here = shard.active.fetch_add(1, std::memory_order_relaxed) + 1;

        RunOptions run_options;
        run_options.fidelity = task.request.fidelity;
        // Alone on the shard: use its whole pool (tile parallelism). Sharing
        // it: sequential lanes, like SaloSession's busy-server path. Either
        // way the result is bit-identical (engine guarantee).
        run_options.thread_budget = active_here == 1 ? 0 : 1;
        run_options.cancel = task.request.cancel;
        std::optional<Clock::time_point> attempt_deadline = task.request.deadline;
        if (options_.stall_timeout.count() > 0) {
            const Clock::time_point stall_bound = attempt_start + options_.stall_timeout;
            attempt_deadline = attempt_deadline ? std::min(*attempt_deadline, stall_bound)
                                                : stall_bound;
        }
        run_options.deadline = attempt_deadline;
        run_options.fault_injector = task.request.fault_injector.get();

        auto release = [&](CircuitBreaker::Outcome outcome) {
            shard.outstanding_cost.fetch_sub(task.cost, std::memory_order_relaxed);
            shard.active.fetch_sub(1, std::memory_order_relaxed);
            health_.record(shard_index, outcome, Clock::now());
        };

        try {
            const CompiledPlanPtr plan =
                task.request.plan != nullptr
                    ? task.request.plan
                    : shard.engine.compile(*task.request.pattern, task.request.q.cols());
            LayerResult result =
                shard.engine.run(*plan, task.request.q, task.request.k, task.request.v,
                                 task.request.scale, run_options);
            release(CircuitBreaker::Outcome::success);
            task.promise.set_value(std::move(result));
            finish(tenant, Resolution::completed);
            return;
        } catch (const RequestCancelled&) {
            release(CircuitBreaker::Outcome::neutral);
            task.promise.set_exception(std::current_exception());
            finish(tenant, Resolution::cancelled);
            return;
        } catch (const DeadlineExceeded&) {
            const bool request_expired =
                task.request.deadline && Clock::now() >= *task.request.deadline;
            if (request_expired) {
                // The request's own deadline: terminal, and retrying could
                // only exceed it further.
                release(CircuitBreaker::Outcome::neutral);
                task.promise.set_exception(std::current_exception());
                finish(tenant, Resolution::timed_out);
                return;
            }
            // The stall bound, not the deadline: the shard wedged. Charge
            // its breaker and retry the work elsewhere.
            release(CircuitBreaker::Outcome::failure);
            last_fault = "shard " + std::to_string(shard_index) +
                         " stalled past the attempt bound";
        } catch (const ContractViolation&) {
            // Caller bug: deterministic on every shard, never retried.
            release(CircuitBreaker::Outcome::neutral);
            task.promise.set_exception(std::current_exception());
            finish(tenant, Resolution::failed);
            return;
        } catch (const SaloError& e) {
            release(CircuitBreaker::Outcome::failure);
            last_fault = e.what();
        } catch (const std::exception& e) {
            release(CircuitBreaker::Outcome::failure);
            last_fault = std::string("engine worker threw: ") + e.what();
        } catch (...) {
            release(CircuitBreaker::Outcome::failure);
            last_fault = "engine worker threw a non-std exception";
        }

        // Retryable failure (EngineFault or a shard stall).
        task.last_shard = shard_index;
        if (task.attempts >= options_.retry.max_attempts) {
            fail_promise(task.promise,
                         EngineFault("retry budget exhausted after " +
                                     std::to_string(task.attempts) +
                                     " attempts; last failure: " + last_fault));
            finish(tenant, Resolution::failed);
            return;
        }

        switch (backoff_wait(backoff_for(task), task.request.cancel,
                             task.request.deadline)) {
            case WaitOutcome::cancelled:
                fail_promise(task.promise,
                             RequestCancelled("request cancelled during retry backoff; "
                                              "not retried"));
                finish(tenant, Resolution::cancelled);
                return;
            case WaitOutcome::deadline:
                fail_promise(task.promise,
                             DeadlineExceeded("request deadline expired during retry "
                                              "backoff; not retried"));
                finish(tenant, Resolution::timed_out);
                return;
            case WaitOutcome::elapsed:
                break;
        }
        retried_.fetch_add(1, std::memory_order_relaxed);
        {
            // Fairness survives retries: the extra attempt is billed to the
            // tenant's DWRR deficit (the request itself stays with this
            // worker — it never re-enters a queue or jumps any line).
            std::lock_guard<std::mutex> lock(m_);
            ++tenant_stats_[tenant].retried;
            sched_.charge(tenant, task.cost);
        }
    }
}

void ShardedSession::drain() {
    std::unique_lock<std::mutex> lock(m_);
    cv_idle_.wait(lock, [this] { return sched_.empty() && in_flight_ == 0; });
}

void ShardedSession::close() {
    std::vector<std::thread> to_join;
    {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
        to_join = std::move(workers_);
        workers_.clear();
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    const bool joined = !to_join.empty();
    for (std::thread& t : to_join)
        if (t.joinable()) t.join();
#ifndef NDEBUG
    if (joined) {
        // Conservation law at the source, per tenant and globally (see
        // SaloSession::close() for the waiting-submitter caveat).
        std::lock_guard<std::mutex> lock(m_);
        if (waiting_submits_ == 0) {
            SALO_DEBUG_ASSERT(completed_ + failed_ + rejected_ + timed_out_ +
                                  cancelled_ ==
                              submitted_);
            std::uint64_t tenant_submitted = 0;
            std::uint64_t tenant_accounted = 0;
            for (const auto& [name, t] : tenant_stats_) {
                (void)name;
                SALO_DEBUG_ASSERT(t.accounted() == t.submitted);
                tenant_submitted += t.submitted;
                tenant_accounted += t.accounted();
            }
            SALO_DEBUG_ASSERT(tenant_submitted == submitted_);
            SALO_DEBUG_ASSERT(tenant_accounted ==
                              completed_ + failed_ + rejected_ + timed_out_ +
                                  cancelled_);
        }
    }
#else
    (void)joined;
#endif
}

SessionStats ShardedSession::stats() const {
    SessionStats s;
    {
        std::lock_guard<std::mutex> lock(m_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.failed = failed_;
        s.rejected = rejected_;
        s.timed_out = timed_out_;
        s.cancelled = cancelled_;
        s.shed_expired = shed_expired_;
    }
    s.retried = retried_.load(std::memory_order_relaxed);
    s.failed_over = failed_over_.load(std::memory_order_relaxed);
    s.quarantined_shard_events = health_.quarantined_events_total();
    s.reintegrated_shard_events = health_.reintegrated_events_total();
    for (const auto& shard : shards_) {
        const PlanCacheStats pc = shard->engine.plan_cache_stats();
        s.plan_cache.hits += pc.hits;
        s.plan_cache.misses += pc.misses;
        s.plan_cache.compiles += pc.compiles;
        s.plan_cache.shared_resolved += pc.shared_resolved;
        s.plan_cache.evictions += pc.evictions;
        s.plan_cache.size += pc.size;
        s.plan_cache.capacity += pc.capacity;
    }
    return s;
}

std::map<std::string, TenantStats> ShardedSession::tenant_stats() const {
    std::lock_guard<std::mutex> lock(m_);
    return tenant_stats_;
}

std::optional<TenantQueueSnapshot> ShardedSession::tenant_queue(
    const std::string& tenant) const {
    std::lock_guard<std::mutex> lock(m_);
    return sched_.tenant_snapshot(tenant);
}

std::vector<ShardHealthSnapshot> ShardedSession::shard_health() const {
    return health_.snapshot(Clock::now());
}

}  // namespace salo
