// CancellationToken: a shareable, thread-safe cancel flag for in-flight
// requests.
//
// A token is a handle to one shared atomic flag. Copies share the flag, so
// the submitter keeps one copy, attaches another to the AttentionRequest,
// and may fire request_cancel() from any thread at any time:
//
//   CancellationToken token = CancellationToken::make();
//   request.cancel = token;          // session + engine observe it
//   ...
//   token.request_cancel();          // future fails with RequestCancelled
//
// A default-constructed token is *inert*: it has no flag, can never be
// cancelled, and costs nothing to check — requests that never cancel pay
// no atomic traffic. The engine polls cancelled() at tile boundaries, so
// cancelling an executing request stops its remaining tiles early; the
// request's future then fails with RequestCancelled. Requests that finish
// before the token fires are untouched — completed results stay
// bit-identical to their standalone runs.
#pragma once

#include <atomic>
#include <memory>

namespace salo {

class CancellationToken {
public:
    /// Inert token: never cancellable, cancelled() is always false.
    CancellationToken() = default;

    /// A live token with a fresh shared flag.
    static CancellationToken make() {
        CancellationToken t;
        t.flag_ = std::make_shared<std::atomic<bool>>(false);
        return t;
    }

    /// Fire the flag; every copy of this token observes it. No-op on an
    /// inert token. Idempotent and thread-safe.
    void request_cancel() const noexcept {
        if (flag_) flag_->store(true, std::memory_order_release);
    }

    bool cancelled() const noexcept {
        return flag_ && flag_->load(std::memory_order_acquire);
    }

    /// True for tokens created by make() (a cancel can actually arrive).
    bool cancellable() const noexcept { return flag_ != nullptr; }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace salo
