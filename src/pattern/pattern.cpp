#include "pattern/pattern.hpp"

#include <algorithm>
#include <sstream>

#include "common/hash.hpp"

namespace salo {

HybridPattern::HybridPattern(int n, std::vector<Band> bands, std::vector<int> global_tokens,
                             int grid_width)
    : n_(n), bands_(std::move(bands)), globals_(std::move(global_tokens)),
      grid_width_(grid_width) {
    SALO_EXPECTS(n_ > 0);
    SALO_EXPECTS(grid_width_ >= 0);
    SALO_EXPECTS(grid_width_ == 0 || n_ % grid_width_ == 0);
    for (const Band& b : bands_) {
        SALO_EXPECTS(b.count >= 1);
        SALO_EXPECTS(b.dilation >= 1);
    }
    std::sort(globals_.begin(), globals_.end());
    globals_.erase(std::unique(globals_.begin(), globals_.end()), globals_.end());
    for (int g : globals_) SALO_EXPECTS(g >= 0 && g < n_);
}

bool HybridPattern::operator==(const HybridPattern& other) const {
    // globals_ is sorted + deduplicated by the constructor, so vector
    // equality is set equality.
    return n_ == other.n_ && grid_width_ == other.grid_width_ &&
           bands_ == other.bands_ && globals_ == other.globals_;
}

std::uint64_t HybridPattern::fingerprint() const {
    Fnv1a h;
    h.mix(std::uint64_t{0x5A10'0001});  // type tag: HybridPattern
    h.mix(n_);
    h.mix(grid_width_);
    h.mix(static_cast<std::uint64_t>(bands_.size()));
    for (const Band& b : bands_) {
        h.mix(b.lo);
        h.mix(b.count);
        h.mix(b.dilation);
        h.mix(b.dy);
    }
    h.mix(static_cast<std::uint64_t>(globals_.size()));
    for (int g : globals_) h.mix(g);
    return h.digest();
}

bool HybridPattern::is_global(int token) const {
    return std::binary_search(globals_.begin(), globals_.end(), token);
}

bool HybridPattern::window_contains(int i, int j) const {
    return first_band_index(i, j) >= 0;
}

int HybridPattern::first_band_index(int i, int j) const {
    if (i < 0 || i >= n_ || j < 0 || j >= n_) return -1;
    const int o = j - i;
    for (std::size_t b = 0; b < bands_.size(); ++b) {
        const Band& band = bands_[b];
        if (!band.contains_offset(o)) continue;
        if (grid_width_ > 0) {
            // 2D validity: the x-offset must keep the key inside the image
            // row (no wrap across the right/left edge of the patch grid).
            const int dx = o - band.dy * grid_width_;
            const int xi = i % grid_width_;
            const int xj = xi + dx;
            if (xj < 0 || xj >= grid_width_) continue;
            // And the y-offset must keep the key inside the grid (the
            // offset arithmetic guarantees this via the [0,n) check above,
            // but x-wrap could alias a different dy; recheck explicitly).
            if ((i / grid_width_) + band.dy != j / grid_width_) continue;
        }
        return static_cast<int>(b);
    }
    return -1;
}

bool HybridPattern::attends(int i, int j) const {
    if (i < 0 || i >= n_ || j < 0 || j >= n_) return false;
    if (is_global(i) || is_global(j)) return true;
    return window_contains(i, j);
}

std::int64_t HybridPattern::nnz() const {
    std::int64_t total = 0;
    for (int i = 0; i < n_; ++i) {
        if (is_global(i)) {
            total += n_;
            continue;
        }
        for (int j = 0; j < n_; ++j)
            if (is_global(j) || window_contains(i, j)) ++total;
    }
    return total;
}

double HybridPattern::sparsity() const {
    return static_cast<double>(nnz()) / (static_cast<double>(n_) * static_cast<double>(n_));
}

AttendFn HybridPattern::attend_fn() const {
    return [this](int i, int j) { return attends(i, j); };
}

Matrix<std::uint8_t> HybridPattern::dense_mask() const {
    SALO_EXPECTS(n_ <= 4096);  // guard: dense masks are for tests/visuals only
    Matrix<std::uint8_t> m(n_, n_, 0);
    for (int i = 0; i < n_; ++i)
        for (int j = 0; j < n_; ++j)
            if (attends(i, j)) m(i, j) = 1;
    return m;
}

std::string HybridPattern::ascii_art(int max_dim) const {
    SALO_EXPECTS(max_dim > 0);
    const int dim = std::min(n_, max_dim);
    const double step = static_cast<double>(n_) / dim;
    std::ostringstream os;
    for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dim; ++c) {
            // A display cell is "on" if any pattern element falls inside it.
            const int i0 = static_cast<int>(r * step);
            const int i1 = std::max(i0 + 1, static_cast<int>((r + 1) * step));
            const int j0 = static_cast<int>(c * step);
            const int j1 = std::max(j0 + 1, static_cast<int>((c + 1) * step));
            bool on = false;
            for (int i = i0; i < i1 && !on; ++i)
                for (int j = j0; j < j1 && !on; ++j)
                    if (attends(i, j)) on = true;
            os << (on ? '#' : '.');
        }
        os << '\n';
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

HybridPattern sliding_window(int n, int w, std::vector<int> global_tokens) {
    SALO_EXPECTS(w >= 1);
    const int a = -(w / 2);
    return sliding_window_range(n, a, a + w - 1, std::move(global_tokens));
}

HybridPattern sliding_window_range(int n, int a, int b, std::vector<int> global_tokens) {
    SALO_EXPECTS(b >= a);
    return HybridPattern(n, {Band{a, b - a + 1, 1, 0}}, std::move(global_tokens));
}

HybridPattern dilated_window(int n, int a, int b, int dilation, std::vector<int> global_tokens) {
    SALO_EXPECTS(b >= a);
    SALO_EXPECTS(dilation >= 1);
    return HybridPattern(n, {Band{a * dilation, b - a + 1, dilation, 0}},
                         std::move(global_tokens));
}

HybridPattern longformer(int n, int w, int num_global) {
    SALO_EXPECTS(num_global >= 0 && num_global <= n);
    std::vector<int> globals(static_cast<std::size_t>(num_global));
    for (int g = 0; g < num_global; ++g) globals[static_cast<std::size_t>(g)] = g;
    return sliding_window(n, w, std::move(globals));
}

HybridPattern star_transformer(int n) {
    // Ring attention: each token attends to its immediate neighbours and
    // itself; the relay node (token 0) is global.
    return sliding_window_range(n, -1, 1, {0});
}

HybridPattern sparse_transformer_strided(int n, int l) {
    SALO_EXPECTS(l >= 1);
    std::vector<Band> bands;
    bands.push_back(Band{-(l - 1), 2 * l - 1, 1, 0});  // local band (both sides)
    const int reach = (n - 1) / l;
    if (reach > 0 && l > 1)
        bands.push_back(Band{-reach * l, 2 * reach + 1, l, 0});  // strided column band
    return HybridPattern(n, std::move(bands));
}

HybridPattern sparse_transformer_fixed(int n, int l) {
    SALO_EXPECTS(l >= 1);
    std::vector<int> globals;
    for (int j = l - 1; j < n; j += l) globals.push_back(j);
    return HybridPattern(n, {Band{-(l - 1), 2 * l - 1, 1, 0}}, std::move(globals));
}

bool is_causal(const std::vector<Band>& bands) {
    for (const Band& b : bands)
        if (b.hi() > 0) return false;
    return true;
}

int decode_window_span(const std::vector<Band>& bands) {
    SALO_EXPECTS(is_causal(bands));
    int span = 1;  // position t always needs its own row
    for (const Band& b : bands) span = std::max(span, 1 - b.lo);
    return span;
}

HybridPattern vil_2d(int grid_h, int grid_w, int win_h, int win_w, int num_global) {
    SALO_EXPECTS(grid_h >= 1 && grid_w >= 1);
    SALO_EXPECTS(win_h >= 1 && win_w >= 1);
    const int n = grid_h * grid_w;
    std::vector<Band> bands;
    bands.reserve(static_cast<std::size_t>(win_h));
    const int dy_lo = -(win_h / 2);
    const int dx_lo = -(win_w / 2);
    for (int t = 0; t < win_h; ++t) {
        const int dy = dy_lo + t;
        bands.push_back(Band{dy * grid_w + dx_lo, win_w, 1, dy});
    }
    std::vector<int> globals(static_cast<std::size_t>(num_global));
    for (int g = 0; g < num_global; ++g) globals[static_cast<std::size_t>(g)] = g;
    return HybridPattern(n, std::move(bands), std::move(globals), grid_w);
}

}  // namespace salo
