// Hybrid sparse attention patterns (paper §2.3).
//
// Every pattern SALO supports is expressed as a union of *bands* plus a set
// of *global tokens*:
//
//   * A Band is a set of relative offsets o = j - i of the form
//     lo, lo+dilation, ..., lo+(count-1)*dilation. dilation == 1 is the
//     sliding-window attention; dilation > 1 is the dilated-window attention
//     of Sparse-Transformer-style patterns and of the y-axis of 2D windows.
//   * Global tokens attend to every key and are attended by every query.
//
// 2D patterns (ViL) set grid_width: the sequence is a row-major flattening
// of an H x W patch grid, each band carries the y-offset (dy) it came from,
// and x-boundary validity (the window must not wrap across image rows) is
// checked in window_contains(). This is exactly the structure the paper's
// data scheduler consumes: bands with dilation feed the reordering step,
// band widths feed the window-splitting step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attention/golden.hpp"
#include "common/assert.hpp"

namespace salo {

/// One diagonal band of relative offsets.
struct Band {
    int lo = 0;        ///< smallest offset (j - i)
    int count = 1;     ///< number of offsets in the band
    int dilation = 1;  ///< stride between consecutive offsets
    int dy = 0;        ///< originating y-offset for 2D patterns (grid only)

    /// Structural identity: dilation and dy participate even when they do
    /// not change the offset set (count == 1), because the scheduler's
    /// reordering keys off them.
    friend bool operator==(const Band&, const Band&) = default;

    int hi() const { return lo + (count - 1) * dilation; }

    /// Does this band contain relative offset o?
    bool contains_offset(int o) const {
        if (o < lo || o > hi()) return false;
        return (o - lo) % dilation == 0;
    }
};

/// A hybrid sparse attention pattern over a sequence of length n.
class HybridPattern {
public:
    HybridPattern(int n, std::vector<Band> bands, std::vector<int> global_tokens = {},
                  int grid_width = 0);

    int n() const { return n_; }
    const std::vector<Band>& bands() const { return bands_; }
    const std::vector<int>& global_tokens() const { return globals_; }
    /// Non-zero for 2D patterns: width W of the row-major patch grid.
    int grid_width() const { return grid_width_; }

    /// Structural equality: same n, band list (order-sensitive — the
    /// scheduler emits tiles in band order), global set and grid width.
    /// Distinguishes patterns that differ only in dilation or in the global
    /// set, which a coverage-based comparison could conflate.
    bool operator==(const HybridPattern& other) const;

    /// Stable 64-bit content fingerprint of the same fields operator==
    /// compares. Equal patterns hash equal; used (combined with the
    /// geometry/options/head-dim hashes) as the PlanCache key.
    std::uint64_t fingerprint() const;

    bool is_global(int token) const;

    /// Does the *window* part cover (i, j)? Excludes global-token coverage.
    bool window_contains(int i, int j) const;

    /// Index of the first band covering (i, j), or -1. The scheduler uses
    /// this to assign overlapping band positions to exactly one tile.
    int first_band_index(int i, int j) const;

    /// Full pattern membership: window OR i global OR j global.
    bool attends(int i, int j) const;

    /// Number of attended (i, j) pairs; sparsity() = nnz / n^2 as reported
    /// in the paper's Table 2.
    std::int64_t nnz() const;
    double sparsity() const;

    /// Adapter for the golden masked_attention model.
    AttendFn attend_fn() const;

    /// Dense boolean mask (small n only; guards against accidental O(n^2)
    /// blowups on long sequences).
    Matrix<std::uint8_t> dense_mask() const;

    /// Downsampled ASCII rendering in the style of the paper's Figure 2.
    std::string ascii_art(int max_dim = 48) const;

private:
    int n_;
    std::vector<Band> bands_;
    std::vector<int> globals_;
    int grid_width_;
};

// ---------------------------------------------------------------------------
// Builders for the patterns surveyed in the paper (Figure 2) and evaluated
// in its benchmarks (Table 2).
// ---------------------------------------------------------------------------

/// Symmetric sliding window of width w: offsets [-(w/2), w - w/2 - 1].
/// (w=512 for Longformer: 256 keys on each side.)
HybridPattern sliding_window(int n, int w, std::vector<int> global_tokens = {});

/// Asymmetric sliding window with explicit relative range [a, b] (paper §2.3).
HybridPattern sliding_window_range(int n, int a, int b, std::vector<int> global_tokens = {});

/// Dilated window: offsets a*d, (a+1)*d, ..., b*d (paper §2.3).
HybridPattern dilated_window(int n, int a, int b, int dilation,
                             std::vector<int> global_tokens = {});

/// Longformer (Figure 2a): symmetric sliding window + ng leading globals.
HybridPattern longformer(int n, int w, int num_global = 1);

/// Star-Transformer (Figure 2b): ring attention (w=3) + relay global token.
HybridPattern star_transformer(int n);

/// Sparse-Transformer strided (Figure 2c): local band of width l plus a
/// dilated column band with stride l (non-causal variant).
HybridPattern sparse_transformer_strided(int n, int l);

/// Sparse-Transformer "fixed": local band of width l plus global columns at
/// the last position of every l-block (expressed as global tokens).
HybridPattern sparse_transformer_fixed(int n, int l);

/// ViL-style 2D local window (wh x ww) over an H x W patch grid, flattened
/// row-major, plus ng global tokens. Each image row of the window becomes a
/// band at dy*W, and the dy offsets map onto SALO's dilated-window support.
HybridPattern vil_2d(int grid_h, int grid_w, int win_h, int win_w, int num_global = 1);

// ---------------------------------------------------------------------------
// Streaming-decode helpers (core/compiled_plan.hpp: derive_micro_plan).
// ---------------------------------------------------------------------------

/// True iff every band is causal (hi() <= 0): no offset ever looks ahead of
/// the query. A causal band set is the precondition for incremental decode —
/// appending position t can only reference keys <= t.
bool is_causal(const std::vector<Band>& bands);

/// Ring-buffer span a decode stream must retain for these bands: the last
/// `decode_window_span` positions cover every causal window offset of any
/// future step. 1 + max over bands of -lo; 1 (the query's own row) when the
/// band list is empty. Precondition: is_causal(bands).
int decode_window_span(const std::vector<Band>& bands);

}  // namespace salo
