#include "model/salo_model.hpp"

#include <algorithm>

namespace salo {

SimStats estimate_head_stats(const SchedulePlan& plan, const SaloConfig& config) {
    SimStats stats;
    TileCostAccountant accountant(config.tile_cost_params(plan.head_dim));
    for (const TileTask& tile : plan.tiles) {
        const TileCostAccountant::Step step = accountant.account(tile);
        stats.cycles += step.cycles;
        ++stats.tiles;
        for (int s = 0; s < 5; ++s)
            stats.stage_totals.stage[s] += step.cost.breakdown.stage[s];
        stats.activity.valid_slots += tile.num_valid_slots();
        stats.activity.array_slots += static_cast<std::int64_t>(tile.rows()) * tile.cols();
        stats.activity.pe_cycles +=
            static_cast<std::int64_t>(tile.rows()) * tile.cols() * step.compute_cycles;
        // Useful MACs: every pattern element costs d MACs in stage 1 and d
        // in stage 5 (window slots, global-column and global-row elements).
        std::int64_t elements = tile.num_valid_slots();
        if (tile.global_col_key >= 0)
            for (auto served : tile.global_col_rows) elements += served ? 1 : 0;
        for (auto fresh : tile.global_fresh) elements += fresh ? 1 : 0;
        stats.activity.mac_ops += 2 * elements * plan.head_dim;
        stats.activity.exp_ops += elements;
    }
    return stats;
}

LayerEstimate estimate_layer(const AttentionWorkload& workload, const SaloConfig& config) {
    const SchedulePlan plan =
        schedule(workload.pattern, config.geometry, workload.head_dim,
                 config.schedule_options);
    LayerEstimate estimate;
    estimate.schedule = plan.stats;
    const SimStats head = estimate_head_stats(plan, config);
    for (int h = 0; h < workload.heads; ++h) estimate.stats += head;
    estimate.latency_ms = estimate.stats.latency_ms(config.geometry.frequency_ghz);
    return estimate;
}

}  // namespace salo
