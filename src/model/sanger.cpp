#include "model/sanger.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace salo {

double sanger_utilization(double sparsity) {
    // Linear interpolation of the paper's quoted range: ~55 % at sparsity
    // 0.05 rising to ~75 % at sparsity 0.30.
    const double lo_s = 0.05, hi_s = 0.30;
    const double lo_u = 0.55, hi_u = 0.75;
    const double t = std::clamp((sparsity - lo_s) / (hi_s - lo_s), 0.0, 1.0);
    return lo_u + t * (hi_u - lo_u);
}

SangerEstimate sanger_estimate(const SangerConfig& config,
                               const AttentionWorkload& workload) {
    SALO_EXPECTS(config.total_pes() > 0);
    const double n = workload.n();
    const double d = workload.head_dim;
    const double heads = workload.heads;
    const double nnz = static_cast<double>(workload.pattern.nnz());

    SangerEstimate est;
    // Prediction: n^2 * d low-precision MACs per head, packed.
    est.prediction_cycles =
        n * n * d * heads / (config.total_pes() * config.prediction_packing);
    // Sparse attention: two MAC passes (S = QK^T and S'V) over the surviving
    // elements, at the irregular-pattern utilization.
    const double util = config.utilization > 0.0
                            ? config.utilization
                            : sanger_utilization(workload.pattern.sparsity());
    est.attention_cycles = 2.0 * nnz * d * heads / (config.total_pes() * util);
    return est;
}

}  // namespace salo
