// Analytic SALO performance model.
//
// Computes layer latency from a SchedulePlan using the closed-form per-tile
// cycle formulas and the same double-buffered load-overlap accounting as the
// engine — without touching any data. Tests assert it matches the engine's
// functional-mode cycle counts exactly, and the cycle-accurate model in
// turn validates the formulas; this is the path used for full-size
// workloads in the Figure 7 benchmarks.
#pragma once

#include "core/engine.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/parts.hpp"
#include "workload/workloads.hpp"

namespace salo {

/// Cycle/stage estimate for one head executed over `plan`.
SimStats estimate_head_stats(const SchedulePlan& plan, const SaloConfig& config);

/// Full-layer estimate for a workload (all heads; the schedule is shared).
struct LayerEstimate {
    SimStats stats;          ///< summed over heads
    ScheduleStats schedule;
    double latency_ms = 0.0;
};
LayerEstimate estimate_layer(const AttentionWorkload& workload, const SaloConfig& config);

}  // namespace salo
