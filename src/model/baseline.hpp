// CPU/GPU baseline latency and power models (substitute for the paper's
// measured Xeon E5-2630 v3 / GTX 1080Ti numbers — see DESIGN.md).
//
// Structure: an attention layer on a general-purpose device costs a compute
// term (FLOPs over achievable throughput) plus a memory term (materialized
// tensors over achievable bandwidth). Dense attention uses large GEMMs and
// runs near the device's calibrated GEMM efficiency; hybrid sparse
// attention is NOT directly supported by GEMM libraries (paper §1/§6.2):
// frameworks fall back to chunked/unfolded implementations that recompute
// overlapping windows and materialize big intermediate tensors, which is
// what the chunk_redundancy / unfold traffic terms model.
//
// Calibration anchors (documented in EXPERIMENTS.md):
//   * GPU dense efficiency is fitted to the paper's own measurement of
//     BERT attention on a 1080Ti (9.20 ms at n=2048, 145.70 ms at n=8192);
//   * CPU/GPU throughput ratio (~11.3x) matches the ratio between the
//     paper's CPU and GPU speedups;
//   * sparse-attention efficiencies are fitted so that the three Figure 7
//     workloads land near the paper's measured speedups;
//   * per-workload effective powers are the values implied by the paper's
//     Figure 7a/7b pair (power = saving / speedup * P_SALO).
#pragma once

#include <string>

#include "workload/workloads.hpp"

namespace salo {

struct DeviceSpec {
    std::string name;
    double peak_gflops;            ///< theoretical fp32 throughput
    double mem_bw_gbs;             ///< theoretical DRAM bandwidth
    double dense_gemm_efficiency;  ///< achievable fraction for big GEMMs
    double banded_efficiency;      ///< 1D chunked sliding-window kernels
    double unfold_efficiency;      ///< 2D unfold (ViL-style) kernels
    double bw_efficiency;          ///< achievable fraction of peak bandwidth
    double chunk_redundancy;       ///< recomputation factor of chunked windows
    double unfold_traffic_factor;  ///< DRAM passes over the unfolded K/V
};

/// NVIDIA GTX 1080Ti (the paper's GPU baseline, PyTorch 1.5 + cuDNN).
DeviceSpec gtx_1080ti();

/// Intel Xeon E5-2630 v3 (the paper's CPU baseline, PyTorch 1.5 + MKL).
DeviceSpec xeon_e5_2630_v3();

/// Dense (full) attention layer latency: two n x n x hidden GEMMs + softmax.
double dense_attention_ms(const DeviceSpec& device, int n, int hidden);

/// Hybrid sparse attention layer latency on a general-purpose device.
struct BaselineBreakdown {
    double compute_ms = 0.0;
    double memory_ms = 0.0;
    double total_ms() const { return compute_ms + memory_ms; }
};
BaselineBreakdown sparse_attention_ms(const DeviceSpec& device,
                                      const AttentionWorkload& workload);

/// Effective power (W) the paper's measurements imply for this device on
/// this workload (saving / speedup * P_SALO); used by the Figure 7b bench.
double implied_power_w(const DeviceSpec& device, const std::string& workload_name);

}  // namespace salo
