// Component-level area/power model reproducing the paper's Table 1
// synthesis report (Synopsys DC, FreePDK 45 nm, 1 GHz).
//
// We cannot run Synopsys DC offline, so Table 1 is reproduced from a
// component inventory with per-component area/power constants calibrated to
// the paper's totals (4.56 mm^2, 532.66 mW) — and, because the model is
// parameterized by ArrayGeometry, it also supports the array-size ablation
// bench. Constants are in the .cpp with their calibration noted.
#pragma once

#include <string>
#include <vector>

#include "scheduler/geometry.hpp"

namespace salo {

struct SynthesisComponent {
    std::string name;
    int count = 0;
    double area_mm2 = 0.0;   ///< total for all instances
    double power_mw = 0.0;   ///< total for all instances
};

struct SynthesisReport {
    std::vector<SynthesisComponent> components;
    double frequency_ghz = 1.0;

    double total_area_mm2() const {
        double a = 0.0;
        for (const auto& c : components) a += c.area_mm2;
        return a;
    }
    double total_power_mw() const {
        double p = 0.0;
        for (const auto& c : components) p += c.power_mw;
        return p;
    }
    double total_power_w() const { return total_power_mw() / 1000.0; }
};

/// Estimate the synthesis report for a given accelerator geometry.
SynthesisReport synthesize(const ArrayGeometry& geometry);

}  // namespace salo
