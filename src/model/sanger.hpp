// Analytic model of Sanger [Lu et al., MICRO 2021] for the paper's §6.3
// comparison.
//
// Sanger accelerates *dynamic* sparse attention: it first predicts the
// score matrix at low precision (a full quadratic pass, regardless of the
// final sparsity), masks it, and then computes the surviving elements on a
// reconfigurable 64x16 systolic array whose utilization on the resulting
// irregular patterns is 55-75 %. SALO skips the prediction entirely
// (patterns are static) and sustains higher utilization on regular hybrid
// patterns; with equal PE count and frequency this is where the paper's
// 1.33x advantage comes from.
#pragma once

#include "workload/workloads.hpp"

namespace salo {

struct SangerConfig {
    int pe_rows = 64;
    int pe_cols = 16;
    double frequency_ghz = 1.0;
    /// Low-precision prediction packs this many MACs per PE per cycle:
    /// Sanger predicts scores at 4-bit precision, four products per PE.
    double prediction_packing = 4.0;
    /// PE utilization on the irregular post-mask pattern (paper: 55-75 %).
    /// <= 0 derives it from the pattern sparsity via sanger_utilization().
    double utilization = 0.0;

    int total_pes() const { return pe_rows * pe_cols; }
};

struct SangerEstimate {
    double prediction_cycles = 0.0;  ///< quadratic low-precision Q*K^T pass
    double attention_cycles = 0.0;   ///< sparse attention on the array
    double total_cycles() const { return prediction_cycles + attention_cycles; }
    double latency_ms(double frequency_ghz) const {
        return total_cycles() / (frequency_ghz * 1e6);
    }
};

/// Cycle estimate for one attention layer (all heads).
SangerEstimate sanger_estimate(const SangerConfig& config,
                               const AttentionWorkload& workload);

/// Sanger's PE utilization as a function of pattern sparsity, interpolating
/// the 55-75 % range the paper quotes over sparsity 0.05-0.30 (denser
/// patterns give the load balancer more to pack, so utilization rises).
double sanger_utilization(double sparsity);

}  // namespace salo
