// Energy accounting for the Figure 7b comparison: E = P * t for SALO (power
// from the synthesis model, latency from the cycle model) and for the
// CPU/GPU baselines (implied powers x modeled latencies).
#pragma once

#include "model/baseline.hpp"
#include "model/salo_model.hpp"
#include "model/synthesis.hpp"

namespace salo {

struct EnergyComparison {
    double salo_latency_ms = 0.0;
    double salo_power_w = 0.0;
    double device_latency_ms = 0.0;
    double device_power_w = 0.0;

    double salo_energy_mj() const { return salo_power_w * salo_latency_ms; }
    double device_energy_mj() const { return device_power_w * device_latency_ms; }
    double energy_saving() const {
        return salo_energy_mj() > 0.0 ? device_energy_mj() / salo_energy_mj() : 0.0;
    }
    double speedup() const {
        return salo_latency_ms > 0.0 ? device_latency_ms / salo_latency_ms : 0.0;
    }
};

/// Full comparison of one workload against one baseline device.
inline EnergyComparison compare_energy(const AttentionWorkload& workload,
                                       const DeviceSpec& device,
                                       const SaloConfig& config) {
    EnergyComparison cmp;
    cmp.salo_latency_ms = estimate_layer(workload, config).latency_ms;
    cmp.salo_power_w = synthesize(config.geometry).total_power_w();
    cmp.device_latency_ms = sparse_attention_ms(device, workload).total_ms();
    cmp.device_power_w = implied_power_w(device, workload.name);
    return cmp;
}

}  // namespace salo
