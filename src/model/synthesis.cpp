#include "model/synthesis.hpp"

namespace salo {

namespace {
// Per-instance constants at FreePDK 45 nm, 1 GHz. Calibrated so the paper's
// geometry (32x32 array + 1 global row + 1 global column + 33 weighted-sum
// lanes + 112 KB SRAM) lands on Table 1's totals: 4.56 mm^2 / 532.66 mW.
// The component ratios follow standard 45 nm datapoints: an 8-bit MAC with
// registers and LUT share is a few thousand um^2 and a few hundred uW at
// 1 GHz; single-ported SRAM is ~16 um^2/byte.
constexpr double kPeAreaMm2 = 2.264e-3;     // MAC8 + Reg_acc + exp LUT share
constexpr double kPeDynPowerMw = 0.3755;    // at 1 GHz, typical toggle rate
constexpr double kWsmAreaMm2 = 6.0e-3;      // two multipliers + adder + regs
constexpr double kWsmPowerMw = 0.9;
constexpr double kRecipAreaMm2 = 8.0e-3;    // shared reciprocal unit
constexpr double kRecipPowerMw = 1.2;
constexpr double kSramAreaMm2PerKb = 0.0160;
constexpr double kSramPowerMwPerKb = 0.65;
constexpr double kControlAreaFrac = 0.04;   // control/NoC share of PE area
constexpr double kControlPowerFrac = 0.05;
}  // namespace

SynthesisReport synthesize(const ArrayGeometry& g) {
    g.validate();
    SynthesisReport report;
    report.frequency_ghz = g.frequency_ghz;

    const int array_pes = g.rows * g.cols;
    const int global_row_pes = g.num_global_rows * g.cols;
    const int global_col_pes = g.num_global_cols * g.rows;
    const int wsm_lanes = g.rows + g.num_global_rows;  // one lane per PE row
    const double sram_kb =
        static_cast<double>(g.query_buffer_bytes + g.key_buffer_bytes +
                            g.value_buffer_bytes + g.output_buffer_bytes) /
        1024.0;
    const double freq_scale = g.frequency_ghz;  // dynamic power ~ frequency

    auto add = [&](std::string name, int count, double area_each, double power_each) {
        report.components.push_back(SynthesisComponent{
            std::move(name), count, count * area_each, count * power_each * freq_scale});
    };
    add("PE array", array_pes, kPeAreaMm2, kPeDynPowerMw);
    add("Global PE row", global_row_pes, kPeAreaMm2, kPeDynPowerMw);
    add("Global PE column", global_col_pes, kPeAreaMm2, kPeDynPowerMw);
    add("Weighted-sum module", wsm_lanes, kWsmAreaMm2, kWsmPowerMw);
    add("Reciprocal unit", 1, kRecipAreaMm2, kRecipPowerMw);
    report.components.push_back(SynthesisComponent{
        "SRAM buffers", 1, sram_kb * kSramAreaMm2PerKb,
        sram_kb * kSramPowerMwPerKb * freq_scale});

    const int total_pes = array_pes + global_row_pes + global_col_pes;
    report.components.push_back(SynthesisComponent{
        "Control & interconnect", 1, total_pes * kPeAreaMm2 * kControlAreaFrac,
        total_pes * kPeDynPowerMw * kControlPowerFrac * freq_scale});
    return report;
}

}  // namespace salo
