#include "model/baseline.hpp"

#include "common/assert.hpp"

namespace salo {

namespace {
/// SALO's synthesized power (paper Table 1), used to invert the paper's
/// energy-saving figures into effective device powers.
constexpr double kSaloPowerW = 0.53266;

/// MAC-pair FLOPs of an attention layer over `pairs` (query, key) pairs:
/// Q*K^T and S'*V each cost pairs*hidden MACs = 2*pairs*hidden FLOPs.
double attention_flops(double pairs, int hidden) { return 4.0 * pairs * hidden; }
}  // namespace

DeviceSpec gtx_1080ti() {
    return DeviceSpec{
        .name = "GTX-1080Ti",
        .peak_gflops = 11340.0,
        .mem_bw_gbs = 484.0,
        // Fitted to the paper's BERT measurement: 9.20 ms at n=2048
        // (12.9 GFLOP) -> 1.40 effective TFLOPS -> 12.4 % of peak.
        .dense_gemm_efficiency = 0.124,
        // 1D banded (HF Longformer-style chunked) kernels: many small
        // batched GEMMs, masking and softmax elementwise traffic.
        .banded_efficiency = 0.035,
        // 2D (ViL-style unfold) kernels: better-shaped GEMMs but heavy
        // gather/scatter; both fitted to Figure 7a.
        .unfold_efficiency = 0.024,
        .bw_efficiency = 0.70,
        .chunk_redundancy = 3.0,      // 2w-chunks recompute window overlaps
        .unfold_traffic_factor = 2.0, // unfolded K/V written + read once
    };
}

DeviceSpec xeon_e5_2630_v3() {
    return DeviceSpec{
        .name = "Xeon-E5-2630v3",
        // 8 cores x 2.4 GHz x 32 fp32 FLOPs/cycle (2 AVX2 FMA ports).
        .peak_gflops = 614.0,
        .mem_bw_gbs = 59.0,  // 4-channel DDR4-1866
        // Chosen so the CPU/GPU dense-throughput ratio (~11.4x) matches the
        // ratio between the paper's CPU and GPU speedups (89.33/17.66).
        .dense_gemm_efficiency = 0.20,
        .banded_efficiency = 0.060,
        .unfold_efficiency = 0.085,
        .bw_efficiency = 0.50,
        .chunk_redundancy = 3.0,
        // MKL's cache-blocked unfold rematerializes far less DRAM traffic
        // than the GPU's global-memory version.
        .unfold_traffic_factor = 0.5,
    };
}

double dense_attention_ms(const DeviceSpec& device, int n, int hidden) {
    SALO_EXPECTS(n >= 1 && hidden >= 1);
    const double pairs = static_cast<double>(n) * static_cast<double>(n);
    const double flops = attention_flops(pairs, hidden);
    const double compute_ms =
        flops / (device.peak_gflops * device.dense_gemm_efficiency) * 1e-6;
    // Softmax over the n x n score matrix: ~4 passes over 4-byte scores.
    const double softmax_bytes = pairs * 4.0 * 4.0;
    const double memory_ms =
        softmax_bytes / (device.mem_bw_gbs * device.bw_efficiency) * 1e-6;
    return compute_ms + memory_ms;
}

BaselineBreakdown sparse_attention_ms(const DeviceSpec& device,
                                      const AttentionWorkload& workload) {
    const double n = workload.n();
    const double w = workload.window;
    const double hidden = workload.hidden();
    const double heads = workload.heads;
    const bool is_2d = workload.pattern.grid_width() > 0;

    BaselineBreakdown out;
    const double efficiency =
        is_2d ? device.unfold_efficiency : device.banded_efficiency;
    const double flops = attention_flops(n * w, static_cast<int>(hidden)) *
                         device.chunk_redundancy;
    out.compute_ms = flops / (device.peak_gflops * efficiency) * 1e-6;

    // Materialized intermediates: banded score tensors (always), plus the
    // full K/V unfold that 2D window implementations perform (ViL).
    double bytes = n * w * heads * 4.0 * 4.0;  // scores: write + 3 reads
    if (is_2d)
        bytes += 2.0 * n * w * hidden * 4.0 * device.unfold_traffic_factor;
    out.memory_ms = bytes / (device.mem_bw_gbs * device.bw_efficiency) * 1e-6;
    return out;
}

double implied_power_w(const DeviceSpec& device, const std::string& workload_name) {
    // P_device = saving / speedup * P_SALO, from the paper's Figure 7a/7b
    // pairs (see DESIGN.md substitutions). Values in watts.
    struct Entry {
        const char* workload;
        double saving;
        double speedup;
    };
    const bool is_gpu = device.name == "GTX-1080Ti";
    const Entry gpu[] = {{"Longformer", 336.05, 7.38},
                         {"ViL-stage1", 281.29, 20.10},
                         {"ViL-stage2", 198.78, 25.51}};
    const Entry cpu[] = {{"Longformer", 196.90, 83.57},
                         {"ViL-stage1", 187.53, 83.12},
                         {"ViL-stage2", 167.15, 101.31}};
    for (const Entry& e : is_gpu ? gpu : cpu)
        if (workload_name == e.workload) return e.saving / e.speedup * kSaloPowerW;
    // Unknown workload: average of the known implied powers.
    double sum = 0.0;
    for (const Entry& e : is_gpu ? gpu : cpu) sum += e.saving / e.speedup * kSaloPowerW;
    return sum / 3.0;
}

}  // namespace salo
