#include "transformer/encoder.hpp"

#include "common/assert.hpp"

namespace salo {

MultiHeadAttention::MultiHeadAttention(int hidden, int num_heads, HybridPattern pattern,
                                       Rng& rng)
    : hidden_(hidden), num_heads_(num_heads), pattern_(std::move(pattern)),
      q_proj_(Linear::random_init(hidden, hidden, rng)),
      k_proj_(Linear::random_init(hidden, hidden, rng)),
      v_proj_(Linear::random_init(hidden, hidden, rng)),
      out_proj_(Linear::random_init(hidden, hidden, rng)) {
    SALO_EXPECTS(num_heads >= 1);
    SALO_EXPECTS(hidden % num_heads == 0);
}

template <typename RunLayer>
Matrix<float> MultiHeadAttention::forward_impl(const Matrix<float>& x,
                                               RunLayer&& run_layer,
                                               SimStats* stats) const {
    SALO_EXPECTS(x.rows() == pattern_.n());
    SALO_EXPECTS(x.cols() == hidden_);
    const int n = x.rows();
    const int d = head_dim();

    const Matrix<float> q = q_proj_.forward(x);
    const Matrix<float> k = k_proj_.forward(x);
    const Matrix<float> v = v_proj_.forward(x);

    // Split heads: head h takes columns [h*d, (h+1)*d).
    Tensor3<float> qh(num_heads_, n, d), kh(num_heads_, n, d), vh(num_heads_, n, d);
    for (int h = 0; h < num_heads_; ++h)
        for (int i = 0; i < n; ++i)
            for (int t = 0; t < d; ++t) {
                qh[h](i, t) = q(i, h * d + t);
                kh[h](i, t) = k(i, h * d + t);
                vh[h](i, t) = v(i, h * d + t);
            }

    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const LayerResult result = run_layer(std::move(qh), std::move(kh), std::move(vh), scale);
    if (stats != nullptr) *stats += result.stats;

    // Gather heads and apply the output projection.
    Matrix<float> gathered(n, hidden_);
    for (int h = 0; h < num_heads_; ++h)
        for (int i = 0; i < n; ++i)
            for (int t = 0; t < d; ++t) gathered(i, h * d + t) = result.output[h](i, t);
    return out_proj_.forward(gathered);
}

Matrix<float> MultiHeadAttention::forward(const Matrix<float>& x, const SaloEngine& engine,
                                          SimStats* stats) const {
    // One CompiledPlan serves every layer of the stack: the engine's
    // PlanCache returns the shared artifact on all but the first call.
    const CompiledPlanPtr plan = engine.compile(pattern_, head_dim());
    return forward_impl(
        x,
        [&](Tensor3<float> qh, Tensor3<float> kh, Tensor3<float> vh, float scale) {
            return engine.run(*plan, qh, kh, vh, scale);
        },
        stats);
}

Matrix<float> MultiHeadAttention::forward(const Matrix<float>& x, SaloSession& session,
                                          SimStats* stats) const {
    const CompiledPlanPtr plan = session.compile(pattern_, head_dim());
    return forward_impl(
        x,
        [&](Tensor3<float> qh, Tensor3<float> kh, Tensor3<float> vh, float scale) {
            return session
                .submit(plan, std::move(qh), std::move(kh), std::move(vh), scale)
                .get();
        },
        stats);
}

EncoderBlock::EncoderBlock(int hidden, int num_heads, int intermediate,
                           HybridPattern pattern, Rng& rng)
    : attention_(hidden, num_heads, std::move(pattern), rng), norm1_(hidden),
      ffn_(hidden, intermediate, rng), norm2_(hidden) {}

Matrix<float> EncoderBlock::forward(const Matrix<float>& x, const SaloEngine& engine,
                                    SimStats* stats) const {
    const Matrix<float> attended = attention_.forward(x, engine, stats);
    const Matrix<float> h = norm1_.forward(add(x, attended));
    const Matrix<float> ff = ffn_.forward(h);
    return norm2_.forward(add(h, ff));
}

Matrix<float> EncoderBlock::forward(const Matrix<float>& x, SaloSession& session,
                                    SimStats* stats) const {
    const Matrix<float> attended = attention_.forward(x, session, stats);
    const Matrix<float> h = norm1_.forward(add(x, attended));
    const Matrix<float> ff = ffn_.forward(h);
    return norm2_.forward(add(h, ff));
}

Encoder::Encoder(int num_layers, int hidden, int num_heads, int intermediate,
                 HybridPattern pattern, Rng& rng) {
    SALO_EXPECTS(num_layers >= 1);
    blocks_.reserve(static_cast<std::size_t>(num_layers));
    for (int l = 0; l < num_layers; ++l)
        blocks_.emplace_back(hidden, num_heads, intermediate, pattern, rng);
}

Matrix<float> Encoder::forward(const Matrix<float>& x, const SaloEngine& engine,
                               SimStats* stats) const {
    Matrix<float> h = x;
    for (const EncoderBlock& block : blocks_) h = block.forward(h, engine, stats);
    return h;
}

Matrix<float> Encoder::forward(const Matrix<float>& x, SaloSession& session,
                               SimStats* stats) const {
    Matrix<float> h = x;
    for (const EncoderBlock& block : blocks_) h = block.forward(h, session, stats);
    return h;
}

}  // namespace salo
