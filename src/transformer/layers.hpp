// Float transformer layers surrounding the attention block (paper Fig. 1):
// linear projections, LayerNorm, GELU, the feed-forward network, residual
// connections. SALO accelerates the attention; these layers are the
// substrate that turns an accelerated attention head into a full encoder
// block whose output "will be gathered and regarded as the input of next
// block like FFN" (paper §3).
#pragma once

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Fully-connected layer: y = x W^T + b (W: out x in, row-major).
class Linear {
public:
    Linear(int in_features, int out_features);

    /// Xavier-uniform initialization with a deterministic seed.
    static Linear random_init(int in_features, int out_features, Rng& rng);

    int in_features() const { return weight_.cols(); }
    int out_features() const { return weight_.rows(); }

    Matrix<float>& weight() { return weight_; }
    const Matrix<float>& weight() const { return weight_; }
    std::vector<float>& bias() { return bias_; }
    const std::vector<float>& bias() const { return bias_; }

    /// x: n x in -> n x out.
    Matrix<float> forward(const Matrix<float>& x) const;

private:
    Matrix<float> weight_;     // out x in
    std::vector<float> bias_;  // out
};

/// Layer normalization over the last dimension with learnable gain/bias.
class LayerNorm {
public:
    explicit LayerNorm(int features, float epsilon = 1e-5f);

    int features() const { return static_cast<int>(gamma_.size()); }
    std::vector<float>& gamma() { return gamma_; }
    std::vector<float>& beta() { return beta_; }

    Matrix<float> forward(const Matrix<float>& x) const;

private:
    std::vector<float> gamma_;
    std::vector<float> beta_;
    float epsilon_;
};

/// Elementwise GELU (tanh approximation, as used by BERT/Longformer).
Matrix<float> gelu(const Matrix<float>& x);

/// Elementwise ReLU.
Matrix<float> relu(const Matrix<float>& x);

/// y = a + b (shape-checked residual add).
Matrix<float> add(const Matrix<float>& a, const Matrix<float>& b);

/// Position-wise feed-forward network: Linear -> GELU -> Linear.
class FeedForward {
public:
    FeedForward(int hidden, int intermediate, Rng& rng);

    Matrix<float> forward(const Matrix<float>& x) const;

    const Linear& up() const { return up_; }
    const Linear& down() const { return down_; }

private:
    Linear up_;
    Linear down_;
};

}  // namespace salo
