#include "transformer/layers.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace salo {

Linear::Linear(int in_features, int out_features)
    : weight_(out_features, in_features, 0.0f),
      bias_(static_cast<std::size_t>(out_features), 0.0f) {
    SALO_EXPECTS(in_features >= 1 && out_features >= 1);
}

Linear Linear::random_init(int in_features, int out_features, Rng& rng) {
    Linear layer(in_features, out_features);
    const double bound = std::sqrt(6.0 / (in_features + out_features));
    for (auto& w : layer.weight_.data())
        w = static_cast<float>(rng.uniform(-bound, bound));
    return layer;
}

Matrix<float> Linear::forward(const Matrix<float>& x) const {
    SALO_EXPECTS(x.cols() == in_features());
    Matrix<float> y = matmul_nt(x, weight_);
    for (int i = 0; i < y.rows(); ++i) {
        auto row = y.row(i);
        for (int j = 0; j < y.cols(); ++j)
            row[static_cast<std::size_t>(j)] += bias_[static_cast<std::size_t>(j)];
    }
    return y;
}

LayerNorm::LayerNorm(int features, float epsilon)
    : gamma_(static_cast<std::size_t>(features), 1.0f),
      beta_(static_cast<std::size_t>(features), 0.0f), epsilon_(epsilon) {
    SALO_EXPECTS(features >= 1);
    SALO_EXPECTS(epsilon > 0.0f);
}

Matrix<float> LayerNorm::forward(const Matrix<float>& x) const {
    SALO_EXPECTS(x.cols() == features());
    Matrix<float> y(x.rows(), x.cols());
    const int d = x.cols();
    for (int i = 0; i < x.rows(); ++i) {
        const auto row = x.row(i);
        double mean = 0.0;
        for (float v : row) mean += v;
        mean /= d;
        double var = 0.0;
        for (float v : row) var += (v - mean) * (v - mean);
        var /= d;
        const double inv = 1.0 / std::sqrt(var + epsilon_);
        auto out = y.row(i);
        for (int j = 0; j < d; ++j)
            out[static_cast<std::size_t>(j)] = static_cast<float>(
                (row[static_cast<std::size_t>(j)] - mean) * inv *
                    gamma_[static_cast<std::size_t>(j)] +
                beta_[static_cast<std::size_t>(j)]);
    }
    return y;
}

Matrix<float> gelu(const Matrix<float>& x) {
    constexpr float kSqrt2OverPi = 0.7978845608028654f;
    return x.map<float>([](float v) {
        const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
        return 0.5f * v * (1.0f + std::tanh(inner));
    });
}

Matrix<float> relu(const Matrix<float>& x) {
    return x.map<float>([](float v) { return v > 0.0f ? v : 0.0f; });
}

Matrix<float> add(const Matrix<float>& a, const Matrix<float>& b) {
    SALO_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
    Matrix<float> y(a.rows(), a.cols());
    for (std::size_t i = 0; i < a.size(); ++i)
        y.data()[i] = a.data()[i] + b.data()[i];
    return y;
}

FeedForward::FeedForward(int hidden, int intermediate, Rng& rng)
    : up_(Linear::random_init(hidden, intermediate, rng)),
      down_(Linear::random_init(intermediate, hidden, rng)) {}

Matrix<float> FeedForward::forward(const Matrix<float>& x) const {
    return down_.forward(gelu(up_.forward(x)));
}

}  // namespace salo
