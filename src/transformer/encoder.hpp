// Multi-head attention and a full transformer encoder block (paper Fig. 1)
// with the attention computation delegated to SALO.
//
// The block implements the standard post-norm encoder:
//   h   = LayerNorm(x + MultiHeadAttention(x))
//   out = LayerNorm(h + FFN(h))
// where MultiHeadAttention projects x to Q/K/V, runs every head through the
// simulated accelerator (or the float golden model, selected by the
// engine's fidelity), and applies the output projection to the gathered
// head outputs — exactly the integration story of paper §3.
//
// Compiled-plan integration: the attention pattern is compiled once per
// engine through the engine's PlanCache, so every layer of an encoder stack
// (same pattern, same head_dim) shares one CompiledPlan and the scheduler
// runs once for the whole stack. Every forward() also has a SaloSession
// overload that routes the layer through the serving queue instead of
// calling the engine synchronously.
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "core/session.hpp"
#include "transformer/layers.hpp"

namespace salo {

class MultiHeadAttention {
public:
    /// hidden must be divisible by num_heads.
    MultiHeadAttention(int hidden, int num_heads, HybridPattern pattern, Rng& rng);

    int hidden() const { return hidden_; }
    int num_heads() const { return num_heads_; }
    int head_dim() const { return hidden_ / num_heads_; }
    const HybridPattern& pattern() const { return pattern_; }

    /// x: n x hidden -> n x hidden. Attention runs on `engine` via a
    /// compiled plan from the engine's PlanCache; the returned stats
    /// describe the accelerator work of this call.
    Matrix<float> forward(const Matrix<float>& x, const SaloEngine& engine,
                          SimStats* stats = nullptr) const;

    /// Serving variant: the attention layer is submitted to `session` as an
    /// AttentionRequest (sharing the queue with any concurrent traffic) and
    /// awaited. Bit-identical to the engine overload.
    Matrix<float> forward(const Matrix<float>& x, SaloSession& session,
                          SimStats* stats = nullptr) const;

private:
    /// Split x's projections into per-head tensors, run `run_layer` on
    /// them, gather heads and apply the output projection.
    template <typename RunLayer>
    Matrix<float> forward_impl(const Matrix<float>& x, RunLayer&& run_layer,
                               SimStats* stats) const;

    int hidden_;
    int num_heads_;
    HybridPattern pattern_;
    Linear q_proj_;
    Linear k_proj_;
    Linear v_proj_;
    Linear out_proj_;
};

class EncoderBlock {
public:
    EncoderBlock(int hidden, int num_heads, int intermediate, HybridPattern pattern,
                 Rng& rng);

    Matrix<float> forward(const Matrix<float>& x, const SaloEngine& engine,
                          SimStats* stats = nullptr) const;
    Matrix<float> forward(const Matrix<float>& x, SaloSession& session,
                          SimStats* stats = nullptr) const;

    const MultiHeadAttention& attention() const { return attention_; }

private:
    MultiHeadAttention attention_;
    LayerNorm norm1_;
    FeedForward ffn_;
    LayerNorm norm2_;
};

/// A stack of encoder blocks sharing one attention pattern (a Longformer/
/// ViL-style encoder).
class Encoder {
public:
    Encoder(int num_layers, int hidden, int num_heads, int intermediate,
            HybridPattern pattern, Rng& rng);

    int num_layers() const { return static_cast<int>(blocks_.size()); }

    Matrix<float> forward(const Matrix<float>& x, const SaloEngine& engine,
                          SimStats* stats = nullptr) const;
    Matrix<float> forward(const Matrix<float>& x, SaloSession& session,
                          SimStats* stats = nullptr) const;

private:
    std::vector<EncoderBlock> blocks_;
};

}  // namespace salo
