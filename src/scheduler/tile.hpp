// TileTask: one pass of the PE array produced by the data scheduler.
//
// A tile processes up to `rows` queries against up to `cols` keys. Its
// columns are partitioned into *segments*; each segment is a slice of one
// pattern band and carries its own diagonal key stream:
//
//   key(r, c) = key_base + (r + c - col_begin) * dilation    (c in segment)
//
// so PE(r, c) and PE(r+1, c-1) hold the same key — the diagonal-connection
// data reuse of paper §4.1/§5.2. Queries in a tile are spaced `dilation`
// apart (the §4.2 reordering: a dilated window becomes contiguous within a
// residue class). With one segment per tile this is exactly the hardware of
// Fig. 5; multiple segments model column-packed scheduling, where narrow
// bands (e.g. ViL's 15-wide window rows) share the 32-wide array instead of
// leaving half the columns dark (see DESIGN.md, scheduling modes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "scheduler/geometry.hpp"

namespace salo {

struct TileSegment {
    int band = -1;           ///< owning pattern band; -1 for catch-up streams
    int col_begin = 0;       ///< first tile column of this segment
    int col_end = 0;         ///< one past the last tile column
    std::int64_t key_base = 0;  ///< key id at (r = 0, c = col_begin)
    int dilation = 1;        ///< key stride along the diagonal stream

    int width() const { return col_end - col_begin; }
    /// Distinct keys streamed through this segment for `rows` query rows.
    int stream_length(int rows) const { return rows + width() - 1; }

    std::int64_t key_at(int r, int c) const {
        SALO_EXPECTS(c >= col_begin && c < col_end);
        return key_base + static_cast<std::int64_t>(r + c - col_begin) * dilation;
    }
    std::int64_t stream_key(int s) const {
        return key_base + static_cast<std::int64_t>(s) * dilation;
    }
};

struct TileTask {
    /// Query id per PE row; -1 marks an inactive row. Queries are spaced by
    /// the scheduling class's dilation.
    std::vector<std::int32_t> query_ids;

    /// Column segments, non-overlapping, ordered by col_begin.
    std::vector<TileSegment> segments;

    /// rows x cols window-slot mask: 1 where PE(r, c) computes a pattern
    /// element. Masked-off slots (edge clipping, band-overlap dedup, global
    /// rows/columns, packing waste) idle — they are what keeps utilization
    /// below 100 %.
    std::vector<std::uint8_t> valid;

    /// Global query served by the global PE row this pass, or -1.
    std::int32_t global_row_query = -1;
    /// Per stream slot, concatenated across segments in order (length =
    /// sum of segment stream lengths): 1 if that streamed key feeds the
    /// global PE row for global_row_query.
    std::vector<std::uint8_t> global_fresh;

    /// Global key served by the global PE column this pass, or -1.
    std::int32_t global_col_key = -1;
    /// Per PE row: 1 if that row consumes the global column's contribution
    /// this pass (queries reappear across tiles; the scheduler picks exactly
    /// one pass per (query, global key) pair).
    std::vector<std::uint8_t> global_col_rows;

    int rows() const { return static_cast<int>(query_ids.size()); }
    int cols() const {
        return rows() == 0 ? 0 : static_cast<int>(valid.size()) / rows();
    }
    /// Rightmost occupied column + 1 (<= cols()).
    int cols_used() const {
        int used = 0;
        for (const TileSegment& s : segments) used = std::max(used, s.col_end);
        return used;
    }

    bool is_valid(int r, int c) const {
        return valid[static_cast<std::size_t>(r * cols() + c)] != 0;
    }

    /// Segment containing column c, or nullptr.
    const TileSegment* segment_at(int c) const {
        for (const TileSegment& s : segments)
            if (c >= s.col_begin && c < s.col_end) return &s;
        return nullptr;
    }

    /// Key id at PE(r, c); column must belong to a segment.
    std::int64_t key_at(int r, int c) const {
        const TileSegment* s = segment_at(c);
        SALO_EXPECTS(s != nullptr);
        return s->key_at(r, c);
    }

    /// Total diagonal-stream slots across segments (= global_fresh size).
    int total_stream_length() const {
        int len = 0;
        for (const TileSegment& s : segments) len += s.stream_length(rows());
        return len;
    }

    int num_valid_slots() const {
        int count = 0;
        for (auto v : valid) count += v;
        return count;
    }

    bool has_window_work() const { return num_valid_slots() > 0; }
    bool has_global_work() const { return global_row_query >= 0 || global_col_key >= 0; }
};

}  // namespace salo
