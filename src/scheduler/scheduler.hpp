// The SALO data scheduler (paper §4).
//
// Transforms a HybridPattern into a stream of TileTasks that the spatial
// accelerator executes directly:
//
//   * sequence splitting  — query rows are chunked into blocks of
//     geometry.rows (attention rows are independent, §4.2);
//   * window splitting    — each band is chunked into segments of at most
//     geometry.cols offsets; the per-part (weight, output) pairs are merged
//     by the weighted-sum module via the Eq. 2 renormalization;
//   * data reordering     — bands with dilation d are scheduled per residue
//     class (queries i, i+d, i+2d, ... share a tile), turning the dilated
//     window into a contiguous one (§4.2);
//   * column packing      — narrow band segments may share one tile's
//     columns (each segment keeps its own diagonal stream), which is what
//     sustains the paper's >75 % PE utilization on ViL's 15-wide window
//     rows; PackingMode::PerBand disables this for the ablation study;
//   * global assignment   — every (global query, key) pair is routed to the
//     global PE row exactly once, every (query, global key) pair to the
//     global PE column exactly once, exploiting the natural reloading of
//     inputs across tiles (§5.2). If a pattern exceeds the paper's n_g
//     bound, correctness is preserved by emitting explicit catch-up tiles.
//
// The scheduler also enforces the SRAM buffer capacities of Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.hpp"
#include "scheduler/geometry.hpp"
#include "scheduler/tile.hpp"

namespace salo {

enum class PackingMode {
    kPerBand,  ///< one band segment per tile (literal Fig. 5 dataflow)
    kPacked,   ///< multiple narrow segments share a tile's columns
};

struct ScheduleOptions {
    PackingMode packing = PackingMode::kPacked;

    friend bool operator==(const ScheduleOptions&, const ScheduleOptions&) = default;

    std::uint64_t fingerprint() const {
        Fnv1a h;
        h.mix(std::uint64_t{0x5A10'0003});  // type tag: ScheduleOptions
        h.mix(static_cast<int>(packing));
        return h.digest();
    }
};

struct ScheduleStats {
    int window_tiles = 0;        ///< tiles carrying window work
    int catchup_tiles = 0;       ///< extra tiles for leftover global work
    std::int64_t valid_slots = 0;    ///< active PE-array slots across all tiles
    std::int64_t total_slots = 0;    ///< rows*cols summed across all tiles
    std::int64_t global_row_ops = 0; ///< keys processed by the global PE row
    std::int64_t global_col_ops = 0; ///< queries processed by the global PE col

    int total_tiles() const { return window_tiles + catchup_tiles; }
    /// Fraction of PE-array slots doing useful work — the scheduler-level
    /// view of the utilization compared against Sanger in paper §6.3.
    double slot_occupancy() const {
        return total_slots == 0 ? 0.0
                                : static_cast<double>(valid_slots) /
                                      static_cast<double>(total_slots);
    }
};

struct SchedulePlan {
    ArrayGeometry geometry;
    int n = 0;         ///< sequence length
    int head_dim = 0;  ///< d; needed for buffer-capacity checks
    ScheduleOptions options;
    std::vector<TileTask> tiles;
    ScheduleStats stats;
};

/// Build the tile schedule for `pattern` on `geometry` with head dimension
/// `head_dim`. Throws ContractViolation if a tile footprint exceeds the
/// buffer capacities.
SchedulePlan schedule(const HybridPattern& pattern, const ArrayGeometry& geometry,
                      int head_dim, const ScheduleOptions& options = {});

/// A contiguous range of query rows [lo, hi) owned by one merge shard.
struct QueryShard {
    int lo = 0;
    int hi = 0;
};

/// Partition a plan's query rows [0, n) into at most `num_shards` contiguous
/// shards of roughly equal *merge work*, where a query's work is the number
/// of output parts the plan will emit for it (window parts across tiles,
/// global-column contributions, global-row contributions). Shards are
/// independent: the weighted-sum state of different queries never interacts,
/// so the per-shard part streams can be merged concurrently — the engine's
/// deterministic ordered merge replays each shard in schedule order.
/// Returns non-empty, disjoint, ascending shards covering [0, n).
std::vector<QueryShard> partition_query_rows(const SchedulePlan& plan, int num_shards);

/// The paper's explicit data-reordering permutation: query order grouping
/// residue classes mod `dilation` ([0, d, 2d, ..., 1, 1+d, ...]). Provided
/// for documentation/tests; schedule() applies the equivalent grouping
/// internally per band.
std::vector<int> reorder_permutation(int n, int dilation);

/// Exhaustive coverage check (O(n^2); tests only): verifies that the plan
/// computes every attended (i, j) pair exactly once and nothing else.
/// Returns true and leaves `error` empty on success.
bool verify_coverage(const HybridPattern& pattern, const SchedulePlan& plan,
                     std::string* error);

}  // namespace salo
