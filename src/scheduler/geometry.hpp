// Hardware geometry of the spatial accelerator (paper Table 1).
//
// Shared between the data scheduler (tile shapes, buffer-capacity checks),
// the cycle-accurate simulator and the analytic performance models.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/hash.hpp"

namespace salo {

struct ArrayGeometry {
    int rows = 32;  ///< PE array rows (#row): queries per tile
    int cols = 32;  ///< PE array cols (#col): window keys per tile
    int num_global_rows = 1;  ///< global PE rows (paper: 1)
    int num_global_cols = 1;  ///< global PE columns (paper: 1)

    int query_buffer_bytes = 16 * 1024;
    int key_buffer_bytes = 32 * 1024;
    int value_buffer_bytes = 32 * 1024;
    int output_buffer_bytes = 32 * 1024;

    double frequency_ghz = 1.0;  ///< synthesis result: 1 GHz

    /// Distinct keys streamed diagonally through one tile.
    int key_stream_length() const { return rows + cols - 1; }

    /// Total processing elements (array + global row + global column).
    int total_pes() const {
        return rows * cols + num_global_rows * cols + num_global_cols * rows;
    }

    void validate() const {
        SALO_EXPECTS(rows >= 1 && cols >= 1);
        SALO_EXPECTS(num_global_rows >= 0 && num_global_cols >= 0);
        SALO_EXPECTS(query_buffer_bytes > 0 && key_buffer_bytes > 0);
        SALO_EXPECTS(value_buffer_bytes > 0 && output_buffer_bytes > 0);
        SALO_EXPECTS(frequency_ghz > 0.0);
    }

    friend bool operator==(const ArrayGeometry&, const ArrayGeometry&) = default;

    /// Stable content hash over every field (including frequency_ghz:
    /// geometries that differ only in clock get distinct plan-cache
    /// entries, which is harmless and keeps the rule simple).
    std::uint64_t fingerprint() const {
        Fnv1a h;
        h.mix(std::uint64_t{0x5A10'0002});  // type tag: ArrayGeometry
        h.mix(rows);
        h.mix(cols);
        h.mix(num_global_rows);
        h.mix(num_global_cols);
        h.mix(query_buffer_bytes);
        h.mix(key_buffer_bytes);
        h.mix(value_buffer_bytes);
        h.mix(output_buffer_bytes);
        h.mix(frequency_ghz);
        return h.digest();
    }
};

}  // namespace salo
