#include "scheduler/scheduler.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace salo {

namespace {

/// Keys the K/V buffers can hold for one head (minus one slot reserved for
/// the global column's key vector).
int kv_capacity_keys(const ArrayGeometry& g, int head_dim) {
    const int cap = std::min(g.key_buffer_bytes, g.value_buffer_bytes) / head_dim;
    return cap - g.num_global_cols;
}

/// Check the Table 1 SRAM capacities against one tile's footprint. The K/V
/// capacity additionally constrains template packing (see build_templates).
void check_buffers(const ArrayGeometry& g, int head_dim) {
    const int bytes_in = 1;   // 8-bit quantized inputs
    const int bytes_out = 2;  // 16-bit outputs
    const int q_bytes = (g.rows + g.num_global_rows) * head_dim * bytes_in;
    const int out_bytes = (g.rows + g.num_global_rows) * head_dim * bytes_out;
    SALO_EXPECTS(q_bytes <= g.query_buffer_bytes);
    SALO_EXPECTS(out_bytes <= g.output_buffer_bytes);
    // A single full-width segment must always fit.
    SALO_EXPECTS(g.key_stream_length() <= kv_capacity_keys(g, head_dim));
}

/// A slice of one band: offsets [u0, u0+len) of band `band`.
struct Piece {
    int band = 0;
    int u0 = 0;
    int len = 0;
};

/// Diagonal-stream keys a piece loads into the K/V buffers.
int piece_stream_keys(const Piece& p, int rows) { return rows + p.len - 1; }

/// Split every band of the class into pieces of at most `cols` offsets,
/// then group pieces into tile templates. Packing respects both the column
/// budget and the K/V buffer capacity (each segment streams rows+len-1
/// keys, so many narrow segments cost more buffer than one wide one).
std::vector<std::vector<Piece>> build_templates(const std::vector<int>& band_indices,
                                                const std::vector<Band>& bands, int rows,
                                                int cols, int kv_cap_keys,
                                                PackingMode packing) {
    std::vector<Piece> pieces;
    for (int b : band_indices) {
        const int count = bands[static_cast<std::size_t>(b)].count;
        for (int u0 = 0; u0 < count; u0 += cols)
            pieces.push_back(Piece{b, u0, std::min(cols, count - u0)});
    }
    std::vector<std::vector<Piece>> templates;
    if (packing == PackingMode::kPerBand) {
        for (const Piece& p : pieces) templates.push_back({p});
        return templates;
    }
    // First-fit column packing: narrow segments share one tile.
    std::vector<int> fill;    // used columns per template
    std::vector<int> stream;  // buffered keys per template
    for (const Piece& p : pieces) {
        const int keys = piece_stream_keys(p, rows);
        bool placed = false;
        for (std::size_t t = 0; t < templates.size(); ++t) {
            if (fill[t] + p.len <= cols && stream[t] + keys <= kv_cap_keys) {
                templates[t].push_back(p);
                fill[t] += p.len;
                stream[t] += keys;
                placed = true;
                break;
            }
        }
        if (!placed) {
            templates.push_back({p});
            fill.push_back(p.len);
            stream.push_back(keys);
        }
    }
    return templates;
}

struct GlobalRowTracker {
    // For every global query: which keys have already been routed to the
    // global PE row (each (g, key) pair must be computed exactly once).
    std::vector<std::vector<std::uint8_t>> seen;
    std::vector<int> remaining;

    GlobalRowTracker(int num_globals, int n)
        : seen(static_cast<std::size_t>(num_globals),
               std::vector<std::uint8_t>(static_cast<std::size_t>(n), 0)),
          remaining(static_cast<std::size_t>(num_globals), n) {}
};

/// Enumerate a tile's diagonal key stream (concatenated across segments)
/// and call fn(stream_slot, key_id) for every in-range key.
template <typename Fn>
void for_each_stream_key(const TileTask& tile, int n, Fn&& fn) {
    int base = 0;
    for (const TileSegment& seg : tile.segments) {
        const int len = seg.stream_length(tile.rows());
        for (int s = 0; s < len; ++s) {
            const std::int64_t key = seg.stream_key(s);
            if (key >= 0 && key < n) fn(base + s, static_cast<int>(key));
        }
        base += len;
    }
}

/// Greedily pick the global query that gains the most unseen keys from this
/// tile's key stream; mark those keys fresh.
void assign_global_row(TileTask& tile, const HybridPattern& pattern,
                       GlobalRowTracker& tracker, ScheduleStats& stats) {
    tile.global_fresh.assign(static_cast<std::size_t>(tile.total_stream_length()), 0);
    const auto& globals = pattern.global_tokens();
    int best = -1;
    int best_gain = 0;
    for (std::size_t gi = 0; gi < globals.size(); ++gi) {
        if (tracker.remaining[gi] == 0) continue;
        int gain = 0;
        std::vector<std::uint8_t> in_tile(tracker.seen[gi].size(), 0);
        for_each_stream_key(tile, pattern.n(), [&](int, int key) {
            if (!tracker.seen[gi][static_cast<std::size_t>(key)] &&
                !in_tile[static_cast<std::size_t>(key)]) {
                in_tile[static_cast<std::size_t>(key)] = 1;
                ++gain;
            }
        });
        if (gain > best_gain) {
            best_gain = gain;
            best = static_cast<int>(gi);
        }
    }
    if (best < 0) return;
    tile.global_row_query = globals[static_cast<std::size_t>(best)];
    auto& seen = tracker.seen[static_cast<std::size_t>(best)];
    for_each_stream_key(tile, pattern.n(), [&](int slot, int key) {
        if (seen[static_cast<std::size_t>(key)]) return;
        seen[static_cast<std::size_t>(key)] = 1;
        tile.global_fresh[static_cast<std::size_t>(slot)] = 1;
        --tracker.remaining[static_cast<std::size_t>(best)];
        ++stats.global_row_ops;
    });
}

/// Serve the global PE column: pick the earliest still-needed global key
/// among this tile's active normal query rows and mark the rows it serves.
void assign_global_col(TileTask& tile, const HybridPattern& pattern,
                       std::vector<int>& col_done, ScheduleStats& stats) {
    const auto& globals = pattern.global_tokens();
    const int ng = static_cast<int>(globals.size());
    if (ng == 0) return;
    int min_level = ng;  // lowest col_done among rows still needing globals
    for (int r = 0; r < tile.rows(); ++r) {
        const int q = tile.query_ids[static_cast<std::size_t>(r)];
        if (q < 0 || pattern.is_global(q)) continue;
        min_level = std::min(min_level, col_done[static_cast<std::size_t>(q)]);
    }
    if (min_level >= ng) return;
    tile.global_col_key = globals[static_cast<std::size_t>(min_level)];
    tile.global_col_rows.assign(static_cast<std::size_t>(tile.rows()), 0);
    for (int r = 0; r < tile.rows(); ++r) {
        const int q = tile.query_ids[static_cast<std::size_t>(r)];
        if (q < 0 || pattern.is_global(q)) continue;
        if (col_done[static_cast<std::size_t>(q)] != min_level) continue;
        tile.global_col_rows[static_cast<std::size_t>(r)] = 1;
        ++col_done[static_cast<std::size_t>(q)];
        ++stats.global_col_ops;
    }
}

}  // namespace

SchedulePlan schedule(const HybridPattern& pattern, const ArrayGeometry& geometry,
                      int head_dim, const ScheduleOptions& options) {
    geometry.validate();
    SALO_EXPECTS(head_dim >= 1);
    check_buffers(geometry, head_dim);

    SchedulePlan plan;
    plan.geometry = geometry;
    plan.n = pattern.n();
    plan.head_dim = head_dim;
    plan.options = options;

    const int n = pattern.n();
    const int R = geometry.rows;
    const int C = geometry.cols;
    const auto& bands = pattern.bands();
    const auto& globals = pattern.global_tokens();
    const int ng = static_cast<int>(globals.size());

    GlobalRowTracker row_tracker(ng, n);
    std::vector<int> col_done(static_cast<std::size_t>(n), 0);

    // Group bands by dilation: one scheduling class per dilation value (the
    // §4.2 reordering applies per class).
    std::map<int, std::vector<int>> classes;
    for (std::size_t b = 0; b < bands.size(); ++b)
        classes[bands[b].dilation].push_back(static_cast<int>(b));

    for (const auto& [dl, band_indices] : classes) {
        const auto templates = build_templates(band_indices, bands, R, C,
                                               kv_capacity_keys(geometry, head_dim),
                                               options.packing);
        for (int rsd = 0; rsd < dl; ++rsd) {
            const int group_size = (n - rsd + dl - 1) / dl;
            if (group_size <= 0) continue;
            // Sequence splitting: blocks of R queries from this residue group.
            for (int t0 = 0; t0 < group_size; t0 += R) {
                const std::int64_t first_query = rsd + static_cast<std::int64_t>(t0) * dl;
                for (const auto& tmpl : templates) {
                    TileTask tile;
                    tile.query_ids.assign(static_cast<std::size_t>(R), -1);
                    for (int r = 0; r < R; ++r) {
                        const int t = t0 + r;
                        if (t < group_size)
                            tile.query_ids[static_cast<std::size_t>(r)] = rsd + t * dl;
                    }
                    int col = 0;
                    for (const Piece& p : tmpl) {
                        TileSegment seg;
                        seg.band = p.band;
                        seg.col_begin = col;
                        seg.col_end = col + p.len;
                        seg.dilation = dl;
                        seg.key_base = first_query +
                                       bands[static_cast<std::size_t>(p.band)].lo +
                                       static_cast<std::int64_t>(p.u0) * dl;
                        col += p.len;
                        tile.segments.push_back(seg);
                    }
                    tile.valid.assign(
                        static_cast<std::size_t>(R) * static_cast<std::size_t>(C), 0);
                    for (int r = 0; r < R; ++r) {
                        const int q = tile.query_ids[static_cast<std::size_t>(r)];
                        if (q < 0 || pattern.is_global(q)) continue;
                        for (const TileSegment& seg : tile.segments) {
                            for (int c = seg.col_begin; c < seg.col_end; ++c) {
                                const std::int64_t key = seg.key_at(r, c);
                                if (key < 0 || key >= n) continue;
                                const int j = static_cast<int>(key);
                                if (pattern.is_global(j)) continue;  // global col's job
                                if (pattern.first_band_index(q, j) != seg.band)
                                    continue;  // overlap dedup / 2D validity
                                tile.valid[static_cast<std::size_t>(r * C + c)] = 1;
                            }
                        }
                    }
                    if (!tile.has_window_work()) continue;  // fully clipped edge tile
                    assign_global_col(tile, pattern, col_done, plan.stats);
                    assign_global_row(tile, pattern, row_tracker, plan.stats);
                    plan.stats.valid_slots += tile.num_valid_slots();
                    plan.stats.total_slots += static_cast<std::int64_t>(R) * C;
                    ++plan.stats.window_tiles;
                    plan.tiles.push_back(std::move(tile));
                }
            }
        }
    }

    // Catch-up passes for leftover global work. With the paper's bound
    // n_g <= min{ceil(n/#row), ceil(w/#col)} these loops do not fire; they
    // keep the scheduler correct for arbitrary patterns.
    for (int gi = 0; gi < ng; ++gi) {
        while (row_tracker.remaining[static_cast<std::size_t>(gi)] > 0) {
            const auto& seen = row_tracker.seen[static_cast<std::size_t>(gi)];
            int k0 = 0;
            while (k0 < n && seen[static_cast<std::size_t>(k0)]) ++k0;
            SALO_ASSERT(k0 < n);
            TileTask tile;
            tile.query_ids.assign(static_cast<std::size_t>(R), -1);
            TileSegment seg;
            seg.band = -1;
            seg.col_begin = 0;
            seg.col_end = C;
            seg.key_base = k0;
            seg.dilation = 1;
            tile.segments.push_back(seg);
            tile.valid.assign(static_cast<std::size_t>(R) * static_cast<std::size_t>(C), 0);
            assign_global_row(tile, pattern, row_tracker, plan.stats);
            SALO_ASSERT(tile.global_row_query >= 0);
            ++plan.stats.catchup_tiles;
            plan.tiles.push_back(std::move(tile));
        }
    }
    for (int level = 0; level < ng; ++level) {
        std::vector<int> pending;
        for (int q = 0; q < n; ++q)
            if (!pattern.is_global(q) && col_done[static_cast<std::size_t>(q)] <= level)
                pending.push_back(q);
        for (std::size_t at = 0; at < pending.size(); at += static_cast<std::size_t>(R)) {
            TileTask tile;
            tile.query_ids.assign(static_cast<std::size_t>(R), -1);
            for (int r = 0; r < R && at + static_cast<std::size_t>(r) < pending.size(); ++r)
                tile.query_ids[static_cast<std::size_t>(r)] =
                    pending[at + static_cast<std::size_t>(r)];
            tile.valid.assign(static_cast<std::size_t>(R) * static_cast<std::size_t>(C), 0);
            assign_global_col(tile, pattern, col_done, plan.stats);
            SALO_ASSERT(tile.global_col_key >= 0);
            ++plan.stats.catchup_tiles;
            plan.tiles.push_back(std::move(tile));
        }
    }

    return plan;
}

std::vector<QueryShard> partition_query_rows(const SchedulePlan& plan, int num_shards) {
    SALO_EXPECTS(num_shards >= 1);
    const int n = plan.n;
    SALO_EXPECTS(n >= 1);

    // Per-query merge work: one unit per part the plan will emit for it.
    std::vector<std::int64_t> work(static_cast<std::size_t>(n), 0);
    for (const TileTask& tile : plan.tiles) {
        const int rows = tile.rows();
        const int cols = tile.cols();
        for (int r = 0; r < rows; ++r) {
            const int q = tile.query_ids[static_cast<std::size_t>(r)];
            if (q < 0) continue;
            bool any = false;
            const std::uint8_t* vrow =
                tile.valid.data() + static_cast<std::size_t>(r) *
                                        static_cast<std::size_t>(cols);
            for (int c = 0; c < cols && !any; ++c) any = vrow[c] != 0;
            if (any) ++work[static_cast<std::size_t>(q)];
            if (tile.global_col_key >= 0 && !tile.global_col_rows.empty() &&
                tile.global_col_rows[static_cast<std::size_t>(r)] != 0)
                ++work[static_cast<std::size_t>(q)];
        }
        if (tile.global_row_query >= 0)
            ++work[static_cast<std::size_t>(tile.global_row_query)];
    }

    std::int64_t total = 0;
    for (std::int64_t w : work) total += w;

    // Greedy prefix split: close each shard once it reaches its fair share
    // of the remaining work. Every shard is non-empty (hi always advances),
    // so at most min(num_shards, n) shards come back; the final shard takes
    // whatever tail is left.
    std::vector<QueryShard> shards;
    int lo = 0;
    std::int64_t remaining = total;
    for (int s = 0; s < num_shards && lo < n; ++s) {
        int hi;
        if (s + 1 == num_shards) {
            hi = n;  // last shard takes the tail
        } else {
            const int shards_left = num_shards - s;
            const std::int64_t target = (remaining + shards_left - 1) / shards_left;
            std::int64_t acc = 0;
            hi = lo;
            while (hi < n && (hi == lo || acc < target)) {
                acc += work[static_cast<std::size_t>(hi)];
                ++hi;
            }
            remaining -= acc;
        }
        shards.push_back(QueryShard{lo, hi});
        lo = hi;
    }
    if (!shards.empty()) shards.back().hi = n;
    return shards;
}

std::vector<int> reorder_permutation(int n, int dilation) {
    SALO_EXPECTS(n >= 1 && dilation >= 1);
    std::vector<int> perm;
    perm.reserve(static_cast<std::size_t>(n));
    for (int rsd = 0; rsd < dilation; ++rsd)
        for (int i = rsd; i < n; i += dilation) perm.push_back(i);
    return perm;
}

bool verify_coverage(const HybridPattern& pattern, const SchedulePlan& plan,
                     std::string* error) {
    const int n = pattern.n();
    SALO_EXPECTS(n <= 8192);  // O(n^2) scratch; tests only
    std::vector<std::uint16_t> count(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                                     0);
    auto bump = [&](int i, int j) {
        ++count[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(j)];
    };
    for (const TileTask& tile : plan.tiles) {
        const int rows = tile.rows();
        const int cols = tile.cols();
        for (int r = 0; r < rows; ++r) {
            const int q = tile.query_ids[static_cast<std::size_t>(r)];
            for (int c = 0; c < cols; ++c) {
                if (!tile.is_valid(r, c)) continue;
                const TileSegment* seg = tile.segment_at(c);
                const std::int64_t key = seg ? seg->key_at(r, c) : -1;
                if (q < 0 || key < 0 || key >= n) {
                    if (error) *error = "valid slot with out-of-range query/key";
                    return false;
                }
                bump(q, static_cast<int>(key));
            }
            if (tile.global_col_key >= 0 && !tile.global_col_rows.empty() &&
                tile.global_col_rows[static_cast<std::size_t>(r)] != 0) {
                if (q < 0) {
                    if (error) *error = "global col serving inactive row";
                    return false;
                }
                bump(q, tile.global_col_key);
            }
        }
        if (tile.global_row_query >= 0) {
            for_each_stream_key(tile, n, [&](int slot, int key) {
                if (tile.global_fresh[static_cast<std::size_t>(slot)] != 0)
                    bump(tile.global_row_query, key);
            });
        }
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const int expected = pattern.attends(i, j) ? 1 : 0;
            const int got = count[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(j)];
            if (got != expected) {
                if (error) {
                    std::ostringstream os;
                    os << "coverage mismatch at (" << i << ", " << j << "): expected "
                       << expected << ", got " << got;
                    *error = os.str();
                }
                return false;
            }
        }
    }
    if (error) error->clear();
    return true;
}

}  // namespace salo
