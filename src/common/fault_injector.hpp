// FaultInjector: deterministic execution-fault and stall injection for
// robustness tests and overload experiments.
//
// The engine consults an installed injector at every tile boundary (the
// same boundaries where cancellation and deadlines are checked), passing
// the tile's schedule-order index. The injector then either
//
//   * throws EngineFault           (fault_tiles / seeded tile_fault_rate),
//   * sleeps for stall_for         (stall_tiles), or
//   * just counts the visit        (probe mode: all triggers empty).
//
// Determinism: triggers depend only on the configured tile lists or on
// hash(seed, tile_index) — never on wall clock, lane ids, or scheduling
// order — so a given (seed, plan) faults the same tiles on every run and
// every thread count. Stalls change timing only, never results.
//
// Installation points (both optional, request wins):
//   * SaloConfig::fault_injector          — every run through the engine;
//   * AttentionRequest::fault_injector    — one specific request, which is
//     how tests prove a faulted lane fails exactly one future while the
//     rest of the batch completes.
//
// Probe mode doubles as a reached-the-engine detector: an injector with no
// triggers counts tiles_seen(), so a test can assert a shed request never
// executed (tiles_seen() == 0).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "core/cancellation.hpp"
#include "core/errors.hpp"

namespace salo {

class FaultInjector {
public:
    struct Config {
        /// Seed for the probabilistic trigger; also recorded by benches.
        std::uint64_t seed = 0;
        /// Probability that any given tile index faults, decided by
        /// hash(seed, tile) — deterministic per (seed, tile). 0 disables.
        double tile_fault_rate = 0.0;
        /// Explicit schedule-order tile indices that throw EngineFault.
        std::vector<int> fault_tiles;
        /// Explicit schedule-order tile indices that sleep for stall_for.
        std::vector<int> stall_tiles;
        std::chrono::microseconds stall_for{0};
        /// Stop injecting after this many faults (< 0 = unlimited), so a
        /// test can fault one request and leave the session serviceable.
        int max_faults = -1;
        /// Stop stalling after this many stalls (< 0 = unlimited), so a
        /// test can wedge one attempt and let its retry run clean.
        int max_stalls = -1;
    };

    FaultInjector() = default;
    explicit FaultInjector(Config config) : config_(std::move(config)) {}

    /// Consulted by the engine before executing tile `tile` (schedule
    /// order, per head). May throw EngineFault or sleep; always counts.
    ///
    /// A stall is bounded by the run's robustness hooks: the sleep is taken
    /// in small slices, and if `deadline` passes (or `cancel` fires) before
    /// the stall elapses, the stall throws DeadlineExceeded /
    /// RequestCancelled instead of blocking the lane for the remainder —
    /// an injected wedge can never hold a request past its deadline.
    void on_tile(int tile,
                 const std::optional<std::chrono::steady_clock::time_point>& deadline =
                     std::nullopt,
                 const CancellationToken* cancel = nullptr) const {
        tiles_seen_.fetch_add(1, std::memory_order_relaxed);
        if (should_stall(tile) &&
            (config_.max_stalls < 0 ||
             stalls_injected_.load(std::memory_order_relaxed) <
                 static_cast<std::uint64_t>(config_.max_stalls))) {
            stalls_injected_.fetch_add(1, std::memory_order_relaxed);
            stall(tile, deadline, cancel);
        }
        if (!should_fault(tile)) return;
        if (config_.max_faults >= 0) {
            // fetch_add under the cap: concurrent lanes may race past the
            // cap by one, which is fine for tests (cap 0 still disables).
            if (faults_injected_.load(std::memory_order_relaxed) >=
                static_cast<std::uint64_t>(config_.max_faults))
                return;
        }
        faults_injected_.fetch_add(1, std::memory_order_relaxed);
        throw EngineFault("FaultInjector: injected fault at tile " +
                          std::to_string(tile) + " (seed " +
                          std::to_string(config_.seed) + ")");
    }

    const Config& config() const { return config_; }
    std::uint64_t tiles_seen() const { return tiles_seen_.load(); }
    std::uint64_t faults_injected() const { return faults_injected_.load(); }
    std::uint64_t stalls_injected() const { return stalls_injected_.load(); }

    /// The deterministic probabilistic trigger, exposed for tests: true iff
    /// hash(seed, tile) falls under tile_fault_rate.
    bool seeded_fault(int tile) const {
        if (config_.tile_fault_rate <= 0.0) return false;
        Fnv1a h;
        h.mix(config_.seed);
        h.mix(tile);
        const double u = static_cast<double>(h.digest() >> 11) *
                         (1.0 / static_cast<double>(1ULL << 53));
        return u < config_.tile_fault_rate;
    }

private:
    void stall(int tile,
               const std::optional<std::chrono::steady_clock::time_point>& deadline,
               const CancellationToken* cancel) const {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point until = Clock::now() + config_.stall_for;
        for (;;) {
            const Clock::time_point now = Clock::now();
            if (deadline && now >= *deadline)
                throw DeadlineExceeded("deadline exceeded during injected stall at "
                                       "tile " +
                                       std::to_string(tile));
            if (cancel != nullptr && cancel->cancelled())
                throw RequestCancelled("request cancelled during injected stall at "
                                       "tile " +
                                       std::to_string(tile));
            if (now >= until) return;
            // Sleep in slices so a deadline or cancel lands within ~1 ms of
            // firing, however long the configured stall is.
            Clock::time_point next = std::min(until, now + std::chrono::milliseconds(1));
            if (deadline && *deadline < next) next = *deadline;
            std::this_thread::sleep_until(next);
        }
    }

    bool listed(const std::vector<int>& tiles, int tile) const {
        for (int t : tiles)
            if (t == tile) return true;
        return false;
    }

    bool should_fault(int tile) const {
        return listed(config_.fault_tiles, tile) || seeded_fault(tile);
    }

    bool should_stall(int tile) const {
        return config_.stall_for.count() > 0 && listed(config_.stall_tiles, tile);
    }

    Config config_;
    mutable std::atomic<std::uint64_t> tiles_seen_{0};
    mutable std::atomic<std::uint64_t> faults_injected_{0};
    mutable std::atomic<std::uint64_t> stalls_injected_{0};
};

}  // namespace salo
