// Persistent worker pool for host-side simulation parallelism.
//
// The original engine spawned fresh std::threads on every SaloEngine::run
// call; for layer-sized work items the spawn/join cost rivaled the work.
// This pool starts its workers once and reuses them for every parallel
// region. Scheduling is a shared atomic ticket counter — work-stealing in
// spirit: lanes that finish their items early immediately pull the next
// unclaimed index, so imbalanced tile costs even out without any static
// partitioning.
//
// Lanes: a pool of size L has L-1 worker threads plus the calling thread,
// which participates as lane 0 instead of blocking. Task functions receive
// (index, lane); per-lane scratch (arenas, score buffers) is indexed by the
// lane id, which is unique among concurrently-running tasks.
//
// parallel_for is not reentrant: tasks must not call back into the same
// pool (the engine never nests — head-level and tile-level parallelism are
// mutually exclusive per run).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace salo {

class ThreadPool {
public:
    /// A pool with `lanes` execution lanes total (>= 1); spawns lanes - 1
    /// persistent worker threads.
    explicit ThreadPool(int lanes) {
        const int workers = lanes > 1 ? lanes - 1 : 0;
        workers_.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            workers_.emplace_back([this, w] { worker_main(w + 1); });
    }

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_start_.notify_all();
        for (std::thread& t : workers_) t.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int lanes() const { return static_cast<int>(workers_.size()) + 1; }

    /// Run fn(index, lane) for every index in [0, count); blocks until all
    /// complete. Indices are claimed dynamically in chunks of `chunk`
    /// consecutive indices per ticket (larger chunks cut contention on the
    /// counter when items are tiny); the caller participates as lane 0.
    ///
    /// Fault isolation: a throwing task never abandons its siblings — every
    /// index still runs, and the first exception is rethrown here after the
    /// region completes. This is what lets one faulted request in a served
    /// batch fail alone while the rest of the batch finishes, and it is
    /// safe for cancellation too: cancelled tasks check their token first
    /// and throw immediately, so "run everything" costs one cheap check per
    /// remaining index, not real work.
    ///
    /// Safe for concurrent callers: regions from different threads are
    /// serialized on an internal mutex (SaloEngine is shared-const and its
    /// run() methods may race otherwise). Tasks must not call back into the
    /// same pool — a nested region would self-deadlock.
    void parallel_for(int count, const std::function<void(int, int)>& fn,
                      int chunk = 1) {
        if (count <= 0) return;
        if (workers_.empty() || count == 1) {
            // Inline path: same per-index fault isolation as the threaded
            // path — every index runs, first exception rethrown after.
            std::exception_ptr first;
            for (int i = 0; i < count; ++i) {
                try {
                    fn(i, 0);
                } catch (...) {
                    if (!first) first = std::current_exception();
                }
            }
            if (first) std::rethrow_exception(first);
            return;
        }
        const std::lock_guard<std::mutex> region(submit_m_);
        {
            std::lock_guard<std::mutex> lock(m_);
            job_ = &fn;
            count_ = count;
            chunk_ = chunk > 1 ? chunk : 1;
            next_.store(0, std::memory_order_relaxed);
            error_ = nullptr;
            active_ = static_cast<int>(workers_.size());
            ++generation_;
        }
        cv_start_.notify_all();
        drain(0);
        std::unique_lock<std::mutex> lock(m_);
        cv_done_.wait(lock, [this] { return active_ == 0; });
        job_ = nullptr;
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }

private:
    void drain(int lane) {
        const std::function<void(int, int)>* job = job_;
        const int chunk = chunk_;
        int begin;
        while ((begin = next_.fetch_add(chunk, std::memory_order_relaxed)) < count_) {
            const int end = begin + chunk < count_ ? begin + chunk : count_;
            for (int i = begin; i < end; ++i) {
                try {
                    (*job)(i, lane);
                } catch (...) {
                    // Isolate the fault to this index: record the first
                    // exception for the caller, keep running siblings.
                    std::lock_guard<std::mutex> lock(m_);
                    if (!error_) error_ = std::current_exception();
                }
            }
        }
    }

    void worker_main(int lane) {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lock(m_);
        while (true) {
            cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            lock.unlock();
            drain(lane);
            lock.lock();
            if (--active_ == 0) cv_done_.notify_one();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex submit_m_;  ///< serializes whole parallel_for regions
    std::mutex m_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    const std::function<void(int, int)>* job_ = nullptr;
    int count_ = 0;
    int chunk_ = 1;
    std::atomic<int> next_{0};
    int active_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
};

}  // namespace salo
