// ASCII table and bar-chart rendering used by the benchmark harnesses to
// print paper-style tables (Table 1-3) and figures (Figure 7a/7b).
#pragma once

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace salo {

/// Simple column-aligned ASCII table. Rows are vectors of pre-formatted
/// strings; the first row added is treated as the header.
class AsciiTable {
public:
    explicit AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

    void add_row(std::vector<std::string> row) {
        SALO_EXPECTS(row.size() == header_.size());
        rows_.push_back(std::move(row));
    }

    /// Render the table to a string with | separators and a rule under the
    /// header, e.g. for embedding in markdown-ish console output.
    std::string str() const {
        std::vector<std::size_t> width(header_.size(), 0);
        auto grow = [&](const std::vector<std::string>& row) {
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());
        };
        grow(header_);
        for (const auto& r : rows_) grow(r);

        std::ostringstream os;
        auto emit = [&](const std::vector<std::string>& row) {
            os << "|";
            for (std::size_t c = 0; c < row.size(); ++c)
                os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " |";
            os << "\n";
        };
        emit(header_);
        os << "|";
        for (std::size_t c = 0; c < header_.size(); ++c)
            os << std::string(width[c] + 2, '-') << "|";
        os << "\n";
        for (const auto& r : rows_) emit(r);
        return os.str();
    }

    void print() const { std::cout << str(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Horizontal ASCII bar chart: one labelled bar per entry, scaled so the
/// longest bar spans `max_width` characters. Used to render Figure 7a/7b.
class AsciiBarChart {
public:
    explicit AsciiBarChart(std::string title, int max_width = 50)
        : title_(std::move(title)), max_width_(max_width) {
        SALO_EXPECTS(max_width > 0);
    }

    void add(std::string label, double value) { entries_.push_back({std::move(label), value}); }

    std::string str() const {
        double peak = 0.0;
        std::size_t label_w = 0;
        for (const auto& e : entries_) {
            peak = std::max(peak, e.value);
            label_w = std::max(label_w, e.label.size());
        }
        std::ostringstream os;
        os << title_ << "\n";
        for (const auto& e : entries_) {
            const int len = peak > 0.0
                                ? static_cast<int>(e.value / peak * max_width_ + 0.5)
                                : 0;
            os << "  " << std::left << std::setw(static_cast<int>(label_w)) << e.label << " |"
               << std::string(static_cast<std::size_t>(len), '#') << " "
               << format_double(e.value, 2) << "\n";
        }
        return os.str();
    }

    void print() const { std::cout << str(); }

    static std::string format_double(double v, int precision) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return os.str();
    }

private:
    struct Entry {
        std::string label;
        double value;
    };
    std::string title_;
    int max_width_;
    std::vector<Entry> entries_;
};

/// printf-style float formatting helper shared by bench binaries.
inline std::string fmt(double v, int precision = 2) {
    return AsciiBarChart::format_double(v, precision);
}

}  // namespace salo
