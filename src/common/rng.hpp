// Deterministic, seedable random number generation used across tests,
// examples and benchmarks. We avoid std::default_random_engine because its
// behaviour is implementation-defined; reproductions must be bit-identical
// across platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace salo {

/// SplitMix64: tiny, high-quality 64-bit PRNG (public-domain algorithm by
/// Sebastiano Vigna). Deterministic across platforms.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /// Next raw 64-bit value.
    std::uint64_t next_u64() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniform_index(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

    /// Standard normal via Box-Muller (deterministic, no cached spare).
    double normal() {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300) u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    }

    /// Normal with mean/stddev.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// k distinct indices drawn from [0, n) (k <= n), in increasing order.
    std::vector<int> sample_indices(int n, int k) {
        std::vector<int> out;
        out.reserve(static_cast<std::size_t>(k));
        // Floyd's algorithm would need a set; n is small in our uses, so use
        // a simple selection sweep which is deterministic and ordered.
        int remaining = k;
        for (int i = 0; i < n && remaining > 0; ++i) {
            const int left = n - i;
            if (static_cast<int>(uniform_index(static_cast<std::uint64_t>(left))) < remaining) {
                out.push_back(i);
                --remaining;
            }
        }
        return out;
    }

private:
    std::uint64_t state_;
};

}  // namespace salo
