// 64-bit content hashing for plan fingerprints.
//
// FNV-1a with an avalanche finalizer: every fingerprinted structure feeds
// its fields through one Fnv1a accumulator, so two objects hash equal iff
// they feed the same byte stream. The stream always starts with a type tag
// and field counts, which keeps variable-length sections (band lists,
// global-token lists) from aliasing each other — the classic collision
// between {a,b | c} and {a | b,c} concatenations.
//
// The digest is stable across runs and platforms of equal endianness; it is
// a cache key, not a cryptographic hash.
#pragma once

#include <bit>
#include <cstdint>

namespace salo {

class Fnv1a {
public:
    void mix_bytes(const void* data, std::size_t size) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= p[i];
            state_ *= 1099511628211ULL;
        }
    }

    void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
    void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
    void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
    void mix(bool v) { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
    void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }

    /// Finalized digest (splitmix64 avalanche so near-equal streams spread
    /// over the whole 64-bit space).
    std::uint64_t digest() const {
        std::uint64_t x = state_;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

private:
    std::uint64_t state_ = 14695981039346656037ULL;  // FNV offset basis
};

}  // namespace salo
