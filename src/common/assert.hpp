// Contract-checking macros in the style of the C++ Core Guidelines (I.6/I.8:
// prefer Expects()/Ensures() for preconditions and postconditions).
//
// Violations throw salo::ContractViolation so that unit tests can assert on
// them; a hardware simulator must fail loudly on malformed configurations
// rather than silently produce wrong cycle counts.
#pragma once

#include <stdexcept>
#include <string>

namespace salo {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                            std::to_string(line));
}
}  // namespace detail

}  // namespace salo

/// Precondition check; use at function entry.
#define SALO_EXPECTS(cond)                                                        \
    do {                                                                          \
        if (!(cond)) ::salo::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
    } while (0)

/// Postcondition check; use before returning a computed result.
#define SALO_ENSURES(cond)                                                        \
    do {                                                                          \
        if (!(cond)) ::salo::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
    } while (0)

/// Internal invariant check (mid-function).
#define SALO_ASSERT(cond)                                                         \
    do {                                                                          \
        if (!(cond)) ::salo::detail::contract_fail("Assert", #cond, __FILE__, __LINE__); \
    } while (0)

/// Debug-build-only invariant check: active in debug and sanitizer builds
/// (the asan-ubsan/tsan presets compile without -DNDEBUG), compiled out of
/// release binaries so it never costs the hot path. For invariants that are
/// cheap to state but sit on paths where a release-mode throw would be
/// worse than the bug (e.g. destructors / close()).
#ifdef NDEBUG
#define SALO_DEBUG_ASSERT(cond) \
    do {                        \
    } while (0)
#else
#define SALO_DEBUG_ASSERT(cond)                                                   \
    do {                                                                          \
        if (!(cond)) ::salo::detail::contract_fail("DebugAssert", #cond, __FILE__, __LINE__); \
    } while (0)
#endif
