// Runtime-configurable fake quantization: rounds floats to an arbitrary
// signed fixed-point grid (int_bits.frac_bits) with saturation, without
// committing to a compile-time Fixed<> format. Used by the bit-width
// ablation (why did the paper pick 8 bits with 4 fraction bits?) and by
// tests that isolate input-quantization error from datapath error.
#pragma once

#include <cmath>

#include "common/assert.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Quantize one value to the grid of a (1 + int_bits + frac_bits)-bit
/// signed fixed-point format.
inline float fake_quantize_value(float v, int int_bits, int frac_bits) {
    SALO_EXPECTS(int_bits >= 0 && frac_bits >= 0);
    SALO_EXPECTS(int_bits + frac_bits >= 1 && int_bits + frac_bits <= 30);
    const double step = std::ldexp(1.0, -frac_bits);
    const double hi = std::ldexp(1.0, int_bits) - step;
    const double lo = -std::ldexp(1.0, int_bits);
    if (std::isnan(v)) return 0.0f;
    double q = std::nearbyint(static_cast<double>(v) / step) * step;
    if (q > hi) q = hi;
    if (q < lo) q = lo;
    return static_cast<float>(q);
}

/// Elementwise fake quantization of a matrix.
inline Matrix<float> fake_quantize(const Matrix<float>& m, int int_bits, int frac_bits) {
    return m.map<float>(
        [=](float v) { return fake_quantize_value(v, int_bits, frac_bits); });
}

}  // namespace salo
