// Piecewise-linear exponential unit (stage 2 of the PE datapath).
//
// SALO follows Softermax [Stevens et al. 2021]: instead of a hardware exp,
// the PE computes exp(x) = 2^(x*log2 e) by splitting y = x*log2 e into an
// integer part (a barrel shift) and a fractional part approximated with a
// piecewise-linear function whose slopes and intercepts live in two small
// LUTs (the "LUT / Frac / Shift" blocks of Fig. 5). The whole evaluation
// uses only the PE's MAC and shifter.
//
// This class is a bit-accurate software model of that unit: all arithmetic
// is integer, LUT contents are quantized to lut_frac bits, and the result is
// a Q.exp_frac raw value. A float reference and error-analysis helpers are
// provided for tests and for the PWL-segment-count ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/datapath.hpp"

namespace salo {

class PwlExp {
public:
    struct Config {
        int seg_bits = 3;   ///< log2(number of PWL segments) for 2^f, f in [0,1)
        int lut_frac = 14;  ///< fraction bits of LUT slope/intercept entries
        /// y = x*log2(e) is clamped to [y_min, y_max] before the shift; the
        /// clamp bounds the shifter width exactly as real hardware would.
        int y_min = -30;
        int y_max = 15;
    };

    PwlExp();  // default configuration
    explicit PwlExp(const Config& config);

    /// Bit-accurate evaluation: x is a raw score (Q.acc_frac); the result is
    /// exp(x) as a raw Q.exp_frac value, saturated to 32 bits.
    ExpRaw exp_raw(ScoreRaw x_raw) const;

    /// Convenience: evaluate on a real value through the quantized pipeline.
    double exp_value(double x) const;

    /// Max relative error of the PWL unit vs std::exp over [lo, hi],
    /// sampled at `samples` points. Used by tests and the ablation bench.
    double max_rel_error(double lo, double hi, int samples = 10000) const;

    const Config& config() const { return config_; }
    int segments() const { return 1 << config_.seg_bits; }

private:
    Config config_;
    // Chord approximation of 2^f on each segment: slope/intercept in Q.lut_frac.
    std::vector<std::int32_t> slope_q_;
    std::vector<std::int32_t> icept_q_;
};

}  // namespace salo
