// Piecewise-linear exponential unit (stage 2 of the PE datapath).
//
// SALO follows Softermax [Stevens et al. 2021]: instead of a hardware exp,
// the PE computes exp(x) = 2^(x*log2 e) by splitting y = x*log2 e into an
// integer part (a barrel shift) and a fractional part approximated with a
// piecewise-linear function whose slopes and intercepts live in two small
// LUTs (the "LUT / Frac / Shift" blocks of Fig. 5). The whole evaluation
// uses only the PE's MAC and shifter.
//
// This class is a bit-accurate software model of that unit: all arithmetic
// is integer, LUT contents are quantized to lut_frac bits, and the result is
// a Q.exp_frac raw value. A float reference and error-analysis helpers are
// provided for tests and for the PWL-segment-count ablation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "numeric/datapath.hpp"

namespace salo {

class PwlExp {
public:
    struct Config {
        int seg_bits = 3;   ///< log2(number of PWL segments) for 2^f, f in [0,1)
        int lut_frac = 14;  ///< fraction bits of LUT slope/intercept entries
        /// y = x*log2(e) is clamped to [y_min, y_max] before the shift; the
        /// clamp bounds the shifter width exactly as real hardware would.
        int y_min = -30;
        int y_max = 15;
    };

    PwlExp();  // default configuration
    explicit PwlExp(const Config& config);

    /// Bit-accurate evaluation: x is a raw score (Q.acc_frac); the result is
    /// exp(x) as a raw Q.exp_frac value, saturated to 32 bits.
    /// Defined inline below: stage 2 runs once per pattern element — the
    /// most-called function of a layer simulation — and inlining lets the
    /// caller's loop hoist the clamp bounds and LUT base pointers.
    ExpRaw exp_raw(ScoreRaw x_raw) const;

    /// Convenience: evaluate on a real value through the quantized pipeline.
    double exp_value(double x) const;

    /// Max relative error of the PWL unit vs std::exp over [lo, hi],
    /// sampled at `samples` points. Used by tests and the ablation bench.
    double max_rel_error(double lo, double hi, int samples = 10000) const;

    const Config& config() const { return config_; }
    int segments() const { return 1 << config_.seg_bits; }

    /// Raw LUT access for the batched SIMD evaluation (sim/kernels.hpp);
    /// entries are Q.lut_frac, one per segment.
    const std::int32_t* slope_data() const { return slope_q_.data(); }
    const std::int32_t* icept_data() const { return icept_q_.data(); }

private:
    Config config_;
    // Chord approximation of 2^f on each segment: slope/intercept in Q.lut_frac.
    std::vector<std::int32_t> slope_q_;
    std::vector<std::int32_t> icept_q_;
};

namespace detail {
// log2(e) in Q.16; multiplying a Q.8 score by this yields a Q.24 value.
inline constexpr std::int64_t kLog2eQ16 = 94548;  // round(1.4426950408889634 * 2^16)
inline constexpr int kYFrac = 16;  // fraction bits of y after renormalizing
}  // namespace detail

inline ExpRaw PwlExp::exp_raw(ScoreRaw x_raw) const {
    using detail::kLog2eQ16;
    using detail::kYFrac;
    // y = x * log2(e): Q.8 * Q.16 -> Q.24, renormalized to Q.16.
    std::int64_t y_q16 = (static_cast<std::int64_t>(x_raw) * kLog2eQ16) >> (24 - kYFrac);

    // Clamp the shift range (hardware: saturating barrel shifter).
    const std::int64_t y_lo = static_cast<std::int64_t>(config_.y_min) << kYFrac;
    const std::int64_t y_hi = static_cast<std::int64_t>(config_.y_max) << kYFrac;
    if (y_q16 < y_lo) y_q16 = y_lo;
    if (y_q16 > y_hi) y_q16 = y_hi;

    // Split into integer part (shift amount) and fractional part in [0,1).
    const std::int64_t yi = y_q16 >> kYFrac;  // floor, arithmetic shift
    const std::int64_t yf_q16 = y_q16 - (yi << kYFrac);
    SALO_ASSERT(yf_q16 >= 0 && yf_q16 < (std::int64_t{1} << kYFrac));

    // PWL evaluation of 2^yf with segment LUTs: m = slope*yf + icept.
    const int seg = static_cast<int>(yf_q16 >> (kYFrac - config_.seg_bits));
    const std::int64_t slope = slope_q_[static_cast<std::size_t>(seg)];
    const std::int64_t icept = icept_q_[static_cast<std::size_t>(seg)];
    // slope (Q.lut_frac) * yf (Q.16) -> Q.(lut_frac+16) -> renorm to Q.lut_frac.
    std::int64_t m_q = ((slope * yf_q16) >> kYFrac) + icept;  // Q.lut_frac, in [1,2]
    if (m_q < 0) m_q = 0;

    // Apply the 2^yi shift and renormalize from Q.lut_frac to Q.exp_frac.
    const int shift = static_cast<int>(yi) + Datapath::exp_frac - config_.lut_frac;
    std::int64_t result;
    if (shift >= 0) {
        // Saturate on overflow: with y_max <= 15 and exp_frac = 14 the result
        // fits 30 bits, but defend against config changes.
        if (shift >= 62 || (m_q >> (62 - shift)) != 0)
            result = std::numeric_limits<std::int64_t>::max();
        else
            result = m_q << shift;
    } else {
        // Rounded down-shift: truncation would cost up to a full LSB of
        // relative error at the smallest representable exponentials.
        result = (shift <= -62) ? 0
                                : (m_q + (std::int64_t{1} << (-shift - 1))) >> -shift;
    }
    if (result > static_cast<std::int64_t>(std::numeric_limits<ExpRaw>::max()))
        result = std::numeric_limits<ExpRaw>::max();
    return static_cast<ExpRaw>(result);
}

}  // namespace salo
