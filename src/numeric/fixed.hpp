// Saturating Q-format fixed-point value type.
//
// SALO quantizes Query/Key/Value to 8 bits with 4 fraction bits (paper §6.4)
// and emits 16-bit outputs. Fixed<IntBits, FracBits, Storage> models such a
// format: one sign bit + IntBits integer bits + FracBits fraction bits, all
// packed in Storage. from_float saturates and rounds to nearest (ties to
// even, the IEEE default), matching a hardware quantizer.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/assert.hpp"

namespace salo {

template <int IntBits, int FracBits, typename Storage = std::int32_t>
class Fixed {
    static_assert(std::is_signed_v<Storage> && std::is_integral_v<Storage>);
    static_assert(IntBits >= 0 && FracBits >= 0);
    static_assert(1 + IntBits + FracBits <= static_cast<int>(sizeof(Storage) * 8),
                  "format does not fit in storage");

public:
    using storage_type = Storage;
    static constexpr int int_bits = IntBits;
    static constexpr int frac_bits = FracBits;
    static constexpr std::int64_t raw_max = (std::int64_t{1} << (IntBits + FracBits)) - 1;
    static constexpr std::int64_t raw_min = -(std::int64_t{1} << (IntBits + FracBits));
    static constexpr double scale = static_cast<double>(std::int64_t{1} << FracBits);

    constexpr Fixed() = default;

    /// Reinterpret a raw integer (already in Q format) as a Fixed.
    static constexpr Fixed from_raw(std::int64_t raw) {
        Fixed f;
        f.raw_ = static_cast<Storage>(saturate(raw));
        return f;
    }

    /// Quantize a real value: round to nearest, saturate to format range.
    static Fixed from_float(double v) {
        if (std::isnan(v)) return from_raw(0);
        const double scaled = v * scale;
        const double rounded = std::nearbyint(scaled);
        if (rounded >= static_cast<double>(raw_max)) return from_raw(raw_max);
        if (rounded <= static_cast<double>(raw_min)) return from_raw(raw_min);
        return from_raw(static_cast<std::int64_t>(rounded));
    }

    constexpr Storage raw() const { return raw_; }
    constexpr double to_double() const { return static_cast<double>(raw_) / scale; }
    constexpr float to_float() const { return static_cast<float>(to_double()); }

    /// Largest / smallest representable values.
    static constexpr Fixed max() { return from_raw(raw_max); }
    static constexpr Fixed min() { return from_raw(raw_min); }
    /// Quantization step.
    static constexpr double resolution() { return 1.0 / scale; }

    /// Saturating add/sub within the same format.
    friend constexpr Fixed operator+(Fixed a, Fixed b) {
        return from_raw(static_cast<std::int64_t>(a.raw_) + b.raw_);
    }
    friend constexpr Fixed operator-(Fixed a, Fixed b) {
        return from_raw(static_cast<std::int64_t>(a.raw_) - b.raw_);
    }
    constexpr Fixed operator-() const { return from_raw(-static_cast<std::int64_t>(raw_)); }

    /// Full-precision product as a raw integer with FracBits(a)+FracBits(b)
    /// fraction bits. The caller chooses how to renormalize — exactly what a
    /// hardware MAC does with its wide accumulator.
    template <int I2, int F2, typename S2>
    constexpr std::int64_t mul_raw(Fixed<I2, F2, S2> other) const {
        return static_cast<std::int64_t>(raw_) * static_cast<std::int64_t>(other.raw());
    }

    /// Product renormalized into format R (round to nearest, ties away
    /// from zero — matching the datapath's round_shift).
    template <typename R, int I2, int F2, typename S2>
    constexpr R mul_to(Fixed<I2, F2, S2> other) const {
        constexpr int shift = FracBits + F2 - R::frac_bits;
        static_assert(shift >= 0, "target format has more fraction bits than the product");
        const std::int64_t p = mul_raw(other);
        if constexpr (shift == 0) {
            return R::from_raw(p);
        } else {
            const std::int64_t half = std::int64_t{1} << (shift - 1);
            return R::from_raw(p >= 0 ? (p + half) >> shift : -((-p + half) >> shift));
        }
    }

    friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }
    friend constexpr auto operator<=>(Fixed a, Fixed b) { return a.raw_ <=> b.raw_; }

private:
    static constexpr std::int64_t saturate(std::int64_t raw) {
        if (raw > raw_max) return raw_max;
        if (raw < raw_min) return raw_min;
        return raw;
    }

    Storage raw_ = 0;
};

/// The paper's input format: 8 bits total, 4 fraction bits (Q3.4 + sign).
using InputFx = Fixed<3, 4, std::int8_t>;
/// The paper's output format: 16 bits; we use Q7.8 (range +-128, step 1/256).
using OutputFx = Fixed<7, 8, std::int16_t>;

}  // namespace salo
