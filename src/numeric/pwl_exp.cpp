#include "numeric/pwl_exp.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace salo {

namespace {
// log2(e) in Q.16; multiplying a Q.8 score by this yields a Q.24 value.
constexpr std::int64_t kLog2eQ16 = 94548;  // round(1.4426950408889634 * 2^16)
constexpr int kYFrac = 16;                 // fraction bits of y after renormalizing
}  // namespace

PwlExp::PwlExp() : PwlExp(Config{}) {}

PwlExp::PwlExp(const Config& config) : config_(config) {
    SALO_EXPECTS(config_.seg_bits >= 0 && config_.seg_bits <= 10);
    SALO_EXPECTS(config_.lut_frac > 0 && config_.lut_frac <= 20);
    SALO_EXPECTS(config_.y_min < 0 && config_.y_max > 0 && config_.y_max < 17);
    const int n = 1 << config_.seg_bits;
    slope_q_.resize(static_cast<std::size_t>(n));
    icept_q_.resize(static_cast<std::size_t>(n));
    const double lut_scale = static_cast<double>(std::int64_t{1} << config_.lut_frac);
    for (int s = 0; s < n; ++s) {
        // Chord of 2^f over segment [s/n, (s+1)/n): exact at both endpoints,
        // which keeps the full PWL curve continuous across segments.
        const double f0 = static_cast<double>(s) / n;
        const double f1 = static_cast<double>(s + 1) / n;
        const double v0 = std::exp2(f0);
        const double v1 = std::exp2(f1);
        const double slope = (v1 - v0) / (f1 - f0);
        const double icept = v0 - slope * f0;
        slope_q_[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(std::lround(slope * lut_scale));
        icept_q_[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(std::lround(icept * lut_scale));
    }
}

ExpRaw PwlExp::exp_raw(ScoreRaw x_raw) const {
    // y = x * log2(e): Q.8 * Q.16 -> Q.24, renormalized to Q.16.
    std::int64_t y_q16 = (static_cast<std::int64_t>(x_raw) * kLog2eQ16) >> (24 - kYFrac);

    // Clamp the shift range (hardware: saturating barrel shifter).
    const std::int64_t y_lo = static_cast<std::int64_t>(config_.y_min) << kYFrac;
    const std::int64_t y_hi = static_cast<std::int64_t>(config_.y_max) << kYFrac;
    if (y_q16 < y_lo) y_q16 = y_lo;
    if (y_q16 > y_hi) y_q16 = y_hi;

    // Split into integer part (shift amount) and fractional part in [0,1).
    const std::int64_t yi = y_q16 >> kYFrac;  // floor, arithmetic shift
    const std::int64_t yf_q16 = y_q16 - (yi << kYFrac);
    SALO_ASSERT(yf_q16 >= 0 && yf_q16 < (std::int64_t{1} << kYFrac));

    // PWL evaluation of 2^yf with segment LUTs: m = slope*yf + icept.
    const int seg = static_cast<int>(yf_q16 >> (kYFrac - config_.seg_bits));
    const std::int64_t slope = slope_q_[static_cast<std::size_t>(seg)];
    const std::int64_t icept = icept_q_[static_cast<std::size_t>(seg)];
    // slope (Q.lut_frac) * yf (Q.16) -> Q.(lut_frac+16) -> renorm to Q.lut_frac.
    std::int64_t m_q = ((slope * yf_q16) >> kYFrac) + icept;  // Q.lut_frac, in [1,2]
    if (m_q < 0) m_q = 0;

    // Apply the 2^yi shift and renormalize from Q.lut_frac to Q.exp_frac.
    const int shift = static_cast<int>(yi) + Datapath::exp_frac - config_.lut_frac;
    std::int64_t result;
    if (shift >= 0) {
        // Saturate on overflow: with y_max <= 15 and exp_frac = 14 the result
        // fits 30 bits, but defend against config changes.
        if (shift >= 62 || (m_q >> (62 - shift)) != 0)
            result = std::numeric_limits<std::int64_t>::max();
        else
            result = m_q << shift;
    } else {
        // Rounded down-shift: truncation would cost up to a full LSB of
        // relative error at the smallest representable exponentials.
        result = (shift <= -62) ? 0
                                : (m_q + (std::int64_t{1} << (-shift - 1))) >> -shift;
    }
    if (result > static_cast<std::int64_t>(std::numeric_limits<ExpRaw>::max()))
        result = std::numeric_limits<ExpRaw>::max();
    return static_cast<ExpRaw>(result);
}

double PwlExp::exp_value(double x) const {
    const double scaled = x * static_cast<double>(1 << Datapath::acc_frac);
    double clamped = scaled;
    const double lim = static_cast<double>(std::numeric_limits<ScoreRaw>::max());
    if (clamped > lim) clamped = lim;
    if (clamped < -lim) clamped = -lim;
    const auto raw = static_cast<ScoreRaw>(std::lround(clamped));
    return static_cast<double>(exp_raw(raw)) / static_cast<double>(1 << Datapath::exp_frac);
}

double PwlExp::max_rel_error(double lo, double hi, int samples) const {
    SALO_EXPECTS(samples > 1 && hi > lo);
    double worst = 0.0;
    for (int i = 0; i < samples; ++i) {
        const double x = lo + (hi - lo) * i / (samples - 1);
        const double ref = std::exp(x);
        if (ref < 1e-9) continue;  // below representable resolution
        const double got = exp_value(x);
        const double rel = std::abs(got - ref) / ref;
        if (rel > worst) worst = rel;
    }
    return worst;
}

}  // namespace salo
