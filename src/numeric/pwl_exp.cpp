#include "numeric/pwl_exp.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace salo {

PwlExp::PwlExp() : PwlExp(Config{}) {}

PwlExp::PwlExp(const Config& config) : config_(config) {
    SALO_EXPECTS(config_.seg_bits >= 0 && config_.seg_bits <= 10);
    SALO_EXPECTS(config_.lut_frac > 0 && config_.lut_frac <= 20);
    SALO_EXPECTS(config_.y_min < 0 && config_.y_max > 0 && config_.y_max < 17);
    const int n = 1 << config_.seg_bits;
    slope_q_.resize(static_cast<std::size_t>(n));
    icept_q_.resize(static_cast<std::size_t>(n));
    const double lut_scale = static_cast<double>(std::int64_t{1} << config_.lut_frac);
    for (int s = 0; s < n; ++s) {
        // Chord of 2^f over segment [s/n, (s+1)/n): exact at both endpoints,
        // which keeps the full PWL curve continuous across segments.
        const double f0 = static_cast<double>(s) / n;
        const double f1 = static_cast<double>(s + 1) / n;
        const double v0 = std::exp2(f0);
        const double v1 = std::exp2(f1);
        const double slope = (v1 - v0) / (f1 - f0);
        const double icept = v0 - slope * f0;
        slope_q_[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(std::lround(slope * lut_scale));
        icept_q_[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(std::lround(icept * lut_scale));
    }
}

double PwlExp::exp_value(double x) const {
    const double scaled = x * static_cast<double>(1 << Datapath::acc_frac);
    double clamped = scaled;
    const double lim = static_cast<double>(std::numeric_limits<ScoreRaw>::max());
    if (clamped > lim) clamped = lim;
    if (clamped < -lim) clamped = -lim;
    const auto raw = static_cast<ScoreRaw>(std::lround(clamped));
    return static_cast<double>(exp_raw(raw)) / static_cast<double>(1 << Datapath::exp_frac);
}

double PwlExp::max_rel_error(double lo, double hi, int samples) const {
    SALO_EXPECTS(samples > 1 && hi > lo);
    double worst = 0.0;
    for (int i = 0; i < samples; ++i) {
        const double x = lo + (hi - lo) * i / (samples - 1);
        const double ref = std::exp(x);
        if (ref < 1e-9) continue;  // below representable resolution
        const double got = exp_value(x);
        const double rel = std::abs(got - ref) / ref;
        if (rel > worst) worst = rel;
    }
    return worst;
}

}  // namespace salo
