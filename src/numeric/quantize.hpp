// Matrix-level quantization helpers: float <-> Q-format conversions used at
// the boundary between the float world (model activations) and the
// accelerator's fixed-point world.
#pragma once

#include "numeric/fixed.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Quantize a float matrix to the raw storage of format Fx (saturating,
/// round-to-nearest). The result holds raw Q-format integers.
template <typename Fx>
Matrix<typename Fx::storage_type> quantize(const Matrix<float>& m) {
    return m.template map<typename Fx::storage_type>(
        [](float v) { return Fx::from_float(v).raw(); });
}

/// Dequantize raw Q-format integers back to float.
template <typename Fx>
Matrix<float> dequantize(const Matrix<typename Fx::storage_type>& m) {
    return m.template map<float>(
        [](typename Fx::storage_type raw) { return Fx::from_raw(raw).to_float(); });
}

/// Round-trip a float matrix through format Fx (quantize + dequantize);
/// models what the accelerator "sees" of a float input.
template <typename Fx>
Matrix<float> quantize_roundtrip(const Matrix<float>& m) {
    return m.template map<float>([](float v) { return Fx::from_float(v).to_float(); });
}

}  // namespace salo
