// Shared bit-level layout of the SALO PE datapath.
//
// Every value that flows through the simulated accelerator is a raw integer
// with an implied binary point; this header pins down where those points sit
// so the functional model, the cycle-accurate simulator and the weighted-sum
// module agree bit-for-bit.
//
//   inputs  q,k,v : int8   Q3.4   (IN_FRAC  = 4)   — paper §6.4
//   scores  S     : int32  Q23.8  (ACC_FRAC = 8)   — product of two Q3.4,
//                                                    accumulated over d terms
//   exp(S)        : uint32 Q.14   (EXP_FRAC = 14)  — PWL base-2 exponential
//   row sum W     : uint64 Q.14                    — sum of <= cols exp terms
//   1/W           : uint64 Q.30   (INV_FRAC = 30)  — reciprocal unit output
//   S' = exp/W    : uint16 Q.15   (SPRIME_FRAC=15) — attention probability
//   output        : int16  Q7.8   (OUT_FRAC = 8)   — paper: 16-bit outputs
#pragma once

#include <cstdint>

namespace salo {

struct Datapath {
    static constexpr int in_frac = 4;      ///< Q/K/V fraction bits (Q3.4)
    static constexpr int acc_frac = 8;     ///< S = q*k accumulator fraction bits
    static constexpr int exp_frac = 14;    ///< exp(S) fraction bits
    static constexpr int inv_frac = 30;    ///< 1/W fraction bits
    static constexpr int sprime_frac = 15; ///< S' (normalized prob) fraction bits
    static constexpr int out_frac = 8;     ///< final output fraction bits (Q7.8)
    /// Guard bits kept by the weighted-sum module's internal accumulator so
    /// that repeated Eq.2 merges do not lose precision before the final
    /// 16-bit emission.
    static constexpr int wsm_frac = 16;
};

/// Round-to-nearest (ties away from zero) right shift — the rounding every
/// renormalization step of the datapath uses. Negative shifts widen.
inline std::int64_t round_shift(std::int64_t v, int shift) {
    if (shift <= 0) return v << -shift;
    const std::int64_t half = std::int64_t{1} << (shift - 1);
    return v >= 0 ? (v + half) >> shift : -((-v + half) >> shift);
}

/// Raw score value (Q.acc_frac).
using ScoreRaw = std::int32_t;
/// Raw exponential value (Q.exp_frac), non-negative.
using ExpRaw = std::uint32_t;
/// Raw softmax-denominator (Q.exp_frac), non-negative, wide.
using SumRaw = std::uint64_t;
/// Raw reciprocal (Q.inv_frac).
using InvRaw = std::uint64_t;
/// Raw normalized probability (Q.sprime_frac).
using SprimeRaw = std::uint16_t;

}  // namespace salo
