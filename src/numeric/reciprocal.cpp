#include "numeric/reciprocal.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace salo {

namespace {
constexpr int kMantFrac = 15;  // mantissa u in [1,2) as Q.15 -> u in [2^15, 2^16)
constexpr int kRecFrac = 16;   // reciprocal r of 1/m in (0.5,1] as Q.16
}  // namespace

Reciprocal::Reciprocal() : Reciprocal(Config{}) {}

Reciprocal::Reciprocal(const Config& config) : config_(config) {
    SALO_EXPECTS(config_.lut_bits >= 1 && config_.lut_bits <= 12);
    SALO_EXPECTS(config_.nr_iters >= 0 && config_.nr_iters <= 6);
    const int n = 1 << config_.lut_bits;
    seed_q16_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        // Seed with the reciprocal of the segment midpoint mantissa.
        const double m = 1.0 + (i + 0.5) / n;
        seed_q16_[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(std::lround((1.0 / m) * (1 << kRecFrac)));
    }
}

InvRaw Reciprocal::inv_raw(SumRaw w_raw) const {
    SALO_EXPECTS(w_raw > 0);
    // Normalize: find p = position of the leading one, shift so the mantissa
    // u (Q.15) lies in [2^15, 2^16), i.e. m = u/2^15 in [1,2).
    const int p = 63 - std::countl_zero(w_raw);
    std::uint64_t u;
    if (p >= kMantFrac)
        u = w_raw >> (p - kMantFrac);
    else
        u = w_raw << (kMantFrac - p);
    SALO_ASSERT(u >= (std::uint64_t{1} << kMantFrac) && u < (std::uint64_t{1} << (kMantFrac + 1)));

    // Initial estimate from LUT, indexed by the bits right after the leading 1.
    const int idx = static_cast<int>((u >> (kMantFrac - config_.lut_bits)) & ((1u << config_.lut_bits) - 1));
    std::uint64_t r = seed_q16_[static_cast<std::size_t>(idx)];  // Q.16 of 1/m

    // Newton-Raphson: r <- r*(2 - m*r). In raw terms: t = m*r (Q.15*Q.16>>15
    // -> Q.16, approx 1.0); r <- r*(2^17 - t) >> 16.
    for (int it = 0; it < config_.nr_iters; ++it) {
        const std::uint64_t t = (u * r) >> kMantFrac;               // Q.16
        r = (r * ((std::uint64_t{2} << kRecFrac) - t)) >> kRecFrac; // Q.16
    }

    // Denormalize: 1/W = (1/m) * 2^(exp_frac - p). As a Q.inv_frac raw:
    //   inv_raw = r * 2^(inv_frac - kRecFrac + exp_frac - p)
    const int shift = Datapath::inv_frac - kRecFrac + Datapath::exp_frac - p;
    if (shift >= 0) {
        SALO_ASSERT(shift < 48);  // w_raw >= 1 -> p >= 0 -> shift <= 28
        return static_cast<InvRaw>(r << shift);
    }
    // Rounded down-shift (truncation costs a full LSB for very large sums).
    return static_cast<InvRaw>((r + (std::uint64_t{1} << (-shift - 1))) >> -shift);
}

double Reciprocal::max_rel_error(double lo, double hi, int samples) const {
    SALO_EXPECTS(samples > 1 && lo > 0.0 && hi > lo);
    double worst = 0.0;
    const double exp_scale = static_cast<double>(1 << Datapath::exp_frac);
    const double inv_scale = static_cast<double>(std::int64_t{1} << Datapath::inv_frac);
    for (int i = 0; i < samples; ++i) {
        const double w = lo + (hi - lo) * i / (samples - 1);
        const auto raw = static_cast<SumRaw>(std::llround(w * exp_scale));
        if (raw == 0) continue;
        const double got = static_cast<double>(inv_raw(raw)) / inv_scale;
        const double ref = 1.0 / (static_cast<double>(raw) / exp_scale);
        const double rel = std::abs(got - ref) / ref;
        if (rel > worst) worst = rel;
    }
    return worst;
}

}  // namespace salo
