// Reciprocal unit (stage 3 of the PE datapath).
//
// SALO deliberately avoids per-PE dividers: the row sum W = sum_k exp(S_ik)
// leaves the rightmost PE, a single shared unit computes 1/W, and the result
// is broadcast back so every PE can multiply instead of divide (paper §5.1).
//
// The hardware-style algorithm modeled here: normalize W to a mantissa in
// [1,2) (leading-zero count + barrel shift), look up an initial reciprocal
// estimate in a small LUT, refine with Newton-Raphson iterations
// r <- r*(2 - m*r) using the MAC, then denormalize. All arithmetic is
// integer; the iteration count is configurable for the ablation study.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "numeric/datapath.hpp"

namespace salo {

class Reciprocal {
public:
    struct Config {
        int lut_bits = 6;  ///< log2(#seed entries)
        int nr_iters = 2;  ///< Newton-Raphson refinement steps
        /// Modeled pipeline latency in cycles: normalize + LUT + iterations
        /// (each iteration = 2 MAC ops) + denormalize.
        int latency() const { return 2 + 2 * nr_iters + 1; }
    };

    Reciprocal();  // default configuration
    explicit Reciprocal(const Config& config);

    /// 1/W for a raw Q.exp_frac row sum; result is raw Q.inv_frac.
    /// Precondition: w_raw > 0 (a softmax denominator is always positive).
    InvRaw inv_raw(SumRaw w_raw) const;

    /// Max relative error vs exact reciprocal over [lo, hi] (real values).
    double max_rel_error(double lo, double hi, int samples = 10000) const;

    const Config& config() const { return config_; }

private:
    Config config_;
    std::vector<std::uint32_t> seed_q16_;  // initial 1/m estimates, Q.16
};

/// S' = exp * inv, renormalized to Q.sprime_frac with saturation. This is
/// the stage-4 multiply every PE performs after the broadcast. Inline: it
/// runs once per pattern element, inside the stage-4/5 loops.
inline SprimeRaw normalize_prob(ExpRaw exp_raw, InvRaw inv_raw) {
    // exp (Q.14) * inv (Q.30) -> Q.44, renormalize to Q.15. Because every
    // exponential term is bounded by the row sum, exp*inv <= 1 and the
    // 64-bit product cannot overflow (exp_raw <= W_raw, inv_raw ~= 2^44/W_raw).
    const std::uint64_t prod = static_cast<std::uint64_t>(exp_raw) * inv_raw;
    const int shift = Datapath::exp_frac + Datapath::inv_frac - Datapath::sprime_frac;
    std::uint64_t q = (prod + (std::uint64_t{1} << (shift - 1))) >> shift;
    if (q > std::numeric_limits<SprimeRaw>::max()) q = std::numeric_limits<SprimeRaw>::max();
    return static_cast<SprimeRaw>(q);
}

}  // namespace salo
