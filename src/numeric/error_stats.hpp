// Error metrics between float tensors: used by the quantization study, the
// fidelity tests and the numeric benches to quantify datapath error.
#pragma once

#include <cmath>

#include "common/assert.hpp"
#include "tensor/matrix.hpp"

namespace salo {

struct ErrorStats {
    double max_abs = 0.0;    ///< max |a - b|
    double mse = 0.0;        ///< mean squared error
    double cosine = 1.0;     ///< cosine similarity of the flattened tensors
    double snr_db = 0.0;     ///< signal-to-noise ratio of b vs reference a

    double rmse() const { return std::sqrt(mse); }
};

/// Compare candidate `b` against reference `a` (same shape).
inline ErrorStats compare(const Matrix<float>& a, const Matrix<float>& b) {
    SALO_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
    SALO_EXPECTS(!a.empty());
    ErrorStats s;
    double dot = 0.0, na = 0.0, nb = 0.0, err2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a.data()[i];
        const double y = b.data()[i];
        const double d = x - y;
        s.max_abs = std::max(s.max_abs, std::abs(d));
        err2 += d * d;
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    s.mse = err2 / static_cast<double>(a.size());
    const double denom = std::sqrt(na) * std::sqrt(nb);
    s.cosine = denom > 0.0 ? dot / denom : 1.0;
    s.snr_db = err2 > 0.0 ? 10.0 * std::log10(na / err2)
                          : std::numeric_limits<double>::infinity();
    return s;
}

}  // namespace salo
