// Banked HBM-style memory model serving the arrays' Q/K/V tile loads.
//
// A tile load is a *stream*: `chunks` fill-port-width transfers striped
// round-robin across banks, starting at the client's rolling bank pointer
// (consecutive tiles of one array continue the stripe). Per cycle:
//
//   * a stream receives at most one chunk (the array's SRAM fill port is
//     one chunk wide — this is what makes an uncontended single array
//     match the closed-form load model exactly);
//   * a bank serves at most one chunk (a second stream whose next chunk
//     maps to the same bank records a bank conflict and stalls);
//   * a channel serves at most one chunk (bank b belongs to channel
//     b % num_channels); total bandwidth is therefore num_channels chunks
//     per cycle — the knob the bench_multiarray bandwidth sweep turns.
//
// Requests are posted in the acquire phase, granted in arbitrate() under a
// pluggable policy, and applied in this component's commit. The component
// never reports kDeadlock: it is a server, idle when no stream is pending.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cosim/kernel.hpp"

namespace salo::cosim {

class BankedMemory : public Component, public Arbitrator {
public:
    struct Config {
        int num_banks = 8;
        int num_channels = 2;
        Arbitration policy = Arbitration::kOldestFirst;

        void validate() const;
    };

    struct Stats {
        std::int64_t chunks_served = 0;
        std::int64_t busy_cycles = 0;        ///< cycles with >= 1 grant
        std::int64_t bank_conflicts = 0;     ///< denials: bank already granted
        std::int64_t channel_conflicts = 0;  ///< denials: channel saturated
    };

    BankedMemory(Kernel& kernel, std::string name, const Config& config, int num_clients);

    /// Open a streaming load of `chunks` fill-port transfers for `client`.
    /// Call from a client's acquire phase; the first chunk is eligible for
    /// a grant in the same cycle. Returns a stream handle.
    int open_stream(int client, std::int64_t chunks);

    /// All chunks delivered (valid from the memory's commit of the final
    /// chunk's cycle onward — clients must be registered after the memory).
    bool stream_done(int stream) const;

    /// The stream was granted a chunk in the current cycle.
    bool stream_advanced(int stream) const;

    void arbitrate() override;

    const Config& config() const { return config_; }
    const Stats& stats() const { return stats_; }

private:
    struct Stream {
        int client = -1;
        std::int64_t chunks_left = 0;
        int next_bank = 0;
        std::int64_t opened_cycle = 0;
        std::int64_t last_advance_cycle = -1;
        bool granted = false;  ///< this cycle's arbitration outcome
    };

    RunState serve(CyclePhase phase);

    Config config_;
    Stats stats_;
    std::vector<Stream> streams_;       // stable handles; never reclaimed
    std::vector<int> active_;           // stream ids with chunks_left > 0
    std::vector<int> client_bank_ptr_;  // per-client rolling stripe start
    std::vector<std::uint8_t> bank_taken_;     // per-cycle arbitration scratch
    std::vector<std::uint8_t> channel_taken_;  // per-cycle arbitration scratch
    int rr_offset_ = 0;
};

}  // namespace salo::cosim
