#include "cosim/memory.hpp"

#include <algorithm>

namespace salo::cosim {

void BankedMemory::Config::validate() const {
    if (num_banks < 1)
        throw ContractViolation("BankedMemory: num_banks must be >= 1 (got " +
                                std::to_string(num_banks) + ")");
    if (num_channels < 1)
        throw ContractViolation("BankedMemory: num_channels must be >= 1 (got " +
                                std::to_string(num_channels) + ")");
    if (num_channels > num_banks)
        throw ContractViolation("BankedMemory: num_channels must be <= num_banks (got " +
                                std::to_string(num_channels) + " > " +
                                std::to_string(num_banks) + ")");
}

BankedMemory::BankedMemory(Kernel& kernel, std::string name, const Config& config,
                           int num_clients)
    : Component(kernel, std::move(name)), config_(config) {
    config_.validate();
    SALO_EXPECTS(num_clients >= 1);
    client_bank_ptr_.assign(static_cast<std::size_t>(num_clients), 0);
    bank_taken_.assign(static_cast<std::size_t>(config_.num_banks), 0);
    channel_taken_.assign(static_cast<std::size_t>(config_.num_channels), 0);
    register_process("serve", [this](CyclePhase phase) { return serve(phase); });
}

int BankedMemory::open_stream(int client, std::int64_t chunks) {
    SALO_EXPECTS(client >= 0 &&
                 client < static_cast<int>(client_bank_ptr_.size()));
    SALO_EXPECTS(chunks >= 1);
    Stream s;
    s.client = client;
    s.chunks_left = chunks;
    s.next_bank = client_bank_ptr_[static_cast<std::size_t>(client)];
    s.opened_cycle = kernel().cycle();
    const int id = static_cast<int>(streams_.size());
    streams_.push_back(s);
    active_.push_back(id);
    return id;
}

bool BankedMemory::stream_done(int stream) const {
    SALO_EXPECTS(stream >= 0 && stream < static_cast<int>(streams_.size()));
    return streams_[static_cast<std::size_t>(stream)].chunks_left == 0;
}

bool BankedMemory::stream_advanced(int stream) const {
    SALO_EXPECTS(stream >= 0 && stream < static_cast<int>(streams_.size()));
    return streams_[static_cast<std::size_t>(stream)].last_advance_cycle ==
           kernel().cycle();
}

void BankedMemory::arbitrate() {
    std::fill(bank_taken_.begin(), bank_taken_.end(), std::uint8_t{0});
    std::fill(channel_taken_.begin(), channel_taken_.end(), std::uint8_t{0});
    if (active_.empty()) return;

    // Build this cycle's candidate order from the policy. `active_` holds
    // stream ids in open order, so id order == (opened_cycle, seq) order.
    std::vector<int> order = active_;
    if (config_.policy == Arbitration::kRoundRobin && !order.empty()) {
        const int n = static_cast<int>(order.size());
        std::rotate(order.begin(), order.begin() + (rr_offset_ % n), order.end());
        rr_offset_ = (rr_offset_ + 1) % std::max(1, n);
    }
    for (int id : order) {
        Stream& s = streams_[static_cast<std::size_t>(id)];
        const int bank = s.next_bank;
        const int channel = bank % config_.num_channels;
        if (bank_taken_[static_cast<std::size_t>(bank)] != 0) {
            ++stats_.bank_conflicts;
            continue;
        }
        if (channel_taken_[static_cast<std::size_t>(channel)] != 0) {
            ++stats_.channel_conflicts;
            continue;
        }
        bank_taken_[static_cast<std::size_t>(bank)] = 1;
        channel_taken_[static_cast<std::size_t>(channel)] = 1;
        s.granted = true;
    }
}

RunState BankedMemory::serve(CyclePhase phase) {
    switch (phase) {
        case CyclePhase::kAcquire:
            for (int id : active_) streams_[static_cast<std::size_t>(id)].granted = false;
            return RunState::kIdle;
        case CyclePhase::kCheck:
            return RunState::kIdle;
        case CyclePhase::kCommit: {
            bool any = false;
            for (std::size_t i = 0; i < active_.size();) {
                const int id = active_[i];
                Stream& s = streams_[static_cast<std::size_t>(id)];
                if (!s.granted) {
                    ++i;
                    continue;
                }
                any = true;
                ++stats_.chunks_served;
                --s.chunks_left;
                s.next_bank = (s.next_bank + 1) % config_.num_banks;
                client_bank_ptr_[static_cast<std::size_t>(s.client)] = s.next_bank;
                s.last_advance_cycle = kernel().cycle();
                s.granted = false;
                if (s.chunks_left == 0) {
                    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
            if (any) {
                ++stats_.busy_cycles;
                return RunState::kRunning;
            }
            // A memory with pending streams but no grant never deadlocks on
            // its own — the stall is charged to the waiting client.
            return RunState::kIdle;
        }
    }
    return RunState::kIdle;
}

}  // namespace salo::cosim
