#include "cosim/bus.hpp"

namespace salo::cosim {

void BusArbiter::Config::validate() const {
    if (beat_bytes < 1)
        throw ContractViolation("BusArbiter: beat_bytes must be >= 1 (got " +
                                std::to_string(beat_bytes) + ")");
    if (beats_per_cycle < 1)
        throw ContractViolation("BusArbiter: beats_per_cycle must be >= 1 (got " +
                                std::to_string(beats_per_cycle) + ")");
    if (queue_capacity < 1)
        throw ContractViolation("BusArbiter: queue_capacity must be >= 1 (got " +
                                std::to_string(queue_capacity) + ")");
}

BusArbiter::BusArbiter(Kernel& kernel, std::string name, const Config& config,
                       int num_clients)
    : Component(kernel, std::move(name)), config_(config) {
    config_.validate();
    SALO_EXPECTS(num_clients >= 1);
    queues_.resize(static_cast<std::size_t>(num_clients));
    grants_.reserve(static_cast<std::size_t>(config_.beats_per_cycle));
    register_process("grant", [this](CyclePhase phase) { return grant(phase); });
}

bool BusArbiter::try_push(int client, std::int64_t beats) {
    SALO_EXPECTS(client >= 0 && client < static_cast<int>(queues_.size()));
    SALO_EXPECTS(beats >= 1);
    auto& q = queues_[static_cast<std::size_t>(client)];
    if (static_cast<int>(q.size()) >= config_.queue_capacity) return false;
    q.push_back({beats, kernel().cycle()});
    return true;
}

std::size_t BusArbiter::queue_depth(int client) const {
    SALO_EXPECTS(client >= 0 && client < static_cast<int>(queues_.size()));
    return queues_[static_cast<std::size_t>(client)].size();
}

bool BusArbiter::drained() const {
    for (const auto& q : queues_)
        if (!q.empty()) return false;
    return true;
}

void BusArbiter::arbitrate() {
    grants_.clear();
    requesters_ = 0;
    const int n = static_cast<int>(queues_.size());
    // Remaining grantable beats per client this cycle (across transactions).
    std::vector<std::int64_t> pending(static_cast<std::size_t>(n), 0);
    for (int c = 0; c < n; ++c) {
        for (const Transaction& t : queues_[static_cast<std::size_t>(c)])
            pending[static_cast<std::size_t>(c)] += t.beats_left;
        if (pending[static_cast<std::size_t>(c)] > 0) ++requesters_;
    }
    if (requesters_ == 0) return;

    for (int lane = 0; lane < config_.beats_per_cycle; ++lane) {
        int pick = -1;
        if (config_.policy == Arbitration::kRoundRobin) {
            for (int i = 0; i < n; ++i) {
                const int c = (rr_ptr_ + i) % n;
                if (pending[static_cast<std::size_t>(c)] > 0) {
                    pick = c;
                    break;
                }
            }
            if (pick >= 0) rr_ptr_ = (pick + 1) % n;
        } else {  // kOldestFirst: oldest head transaction wins, ties to lowest id
            std::int64_t best = 0;
            for (int c = 0; c < n; ++c) {
                if (pending[static_cast<std::size_t>(c)] == 0) continue;
                const auto& q = queues_[static_cast<std::size_t>(c)];
                if (pick < 0 || q.front().enqueued_cycle < best) {
                    pick = c;
                    best = q.front().enqueued_cycle;
                }
            }
        }
        if (pick < 0) break;
        --pending[static_cast<std::size_t>(pick)];
        grants_.push_back(pick);
    }
}

RunState BusArbiter::grant(CyclePhase phase) {
    switch (phase) {
        case CyclePhase::kAcquire:
        case CyclePhase::kCheck:
            return RunState::kIdle;
        case CyclePhase::kCommit: {
            if (grants_.empty()) return RunState::kIdle;
            for (int client : grants_) {
                auto& q = queues_[static_cast<std::size_t>(client)];
                Transaction& t = q.front();
                --t.beats_left;
                ++stats_.beats_granted;
                if (t.beats_left == 0) q.pop_front();
            }
            ++stats_.busy_cycles;
            if (requesters_ > 1) ++stats_.contended_cycles;
            grants_.clear();
            return RunState::kRunning;
        }
    }
    return RunState::kIdle;
}

}  // namespace salo::cosim
