// Deterministic event-driven co-simulation kernel (mgsim-style phases).
//
// Components register named *processes* with the kernel; every simulated
// cycle the kernel advances all processes through three phases:
//
//   kAcquire  processes post their wishes for the cycle (open a memory
//             stream, declare a compute start, ...) — per-cycle request
//             state only, no architectural mutation;
//   (arbitrate) registered arbitrators resolve this cycle's contended
//             resources (memory banks/channels, the writeback bus) from
//             the posted requests — deterministically;
//   kCheck    processes observe grants and verify they can proceed;
//   kCommit   processes mutate architectural state and report a RunState.
//
// The commit tally drives deadlock detection exactly as in mgsim's Kernel:
// a process with work that cannot advance reports kDeadlock for the cycle;
// if *some* process committed (kRunning) the system is live and the stalls
// are ordinary contention, but if live (stalled) processes exist and none
// committed, nothing can ever change in a closed deterministic system —
// the kernel stops and reports STATE kDeadlock with the stuck process
// names. All-idle means quiescence.
//
// Determinism contract: processes run in registration order in every phase,
// arbitrators resolve in registration order with explicitly ordered
// policies, and no container is keyed on pointers — two runs of the same
// component graph and inputs are bit-identical (asserted by
// tests/test_cosim_multiarray.cpp and the bench_multiarray gate).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace salo::cosim {

/// Phases inside one simulated cycle.
enum class CyclePhase { kAcquire, kCheck, kCommit };

/// Per-cycle run state of a process, and the aggregate state of the kernel.
enum class RunState {
    kIdle,      ///< no work (process) / all processes idle (kernel: quiesced)
    kRunning,   ///< committed forward progress this cycle
    kDeadlock,  ///< has work but cannot continue (kernel: none could commit)
    kAborted,   ///< kernel only: max_cycles exhausted before quiescence
};

const char* to_string(RunState state);

/// Arbitration policies shared by the contended resources.
enum class Arbitration {
    kRoundRobin,   ///< rotating priority pointer over requesters
    kOldestFirst,  ///< oldest outstanding request wins; ties to lowest id
};

const char* to_string(Arbitration policy);

class Kernel;

/// A named simulation object owning one or more registered processes.
/// Components must outlive the kernel's run.
class Component {
public:
    Component(Kernel& kernel, std::string name);
    virtual ~Component() = default;
    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    const std::string& name() const { return name_; }

protected:
    Kernel& kernel() const { return *kernel_; }

    /// Register a process under "<component>/<process_name>". Processes run
    /// in registration order in every phase — ordering is part of the
    /// component protocol (e.g. a producer's acquire must precede its
    /// consumer's acquire when same-cycle visibility is required).
    void register_process(const std::string& process_name,
                          std::function<RunState(CyclePhase)> fn);

private:
    Kernel* kernel_;
    std::string name_;
};

/// A contended resource that resolves the cycle's requests between the
/// acquire and check phases.
class Arbitrator {
public:
    virtual ~Arbitrator() = default;
    /// Deterministically pick this cycle's grants from posted requests.
    virtual void arbitrate() = 0;
};

class Kernel {
public:
    /// Advance one cycle (acquire, arbitrate, check, commit); returns the
    /// aggregate state of the commit tally.
    RunState step();

    /// Step until quiescence (kIdle), deadlock, or `max_cycles` elapsed
    /// (kAborted). max_cycles must be positive.
    RunState run(std::int64_t max_cycles);

    /// Cycle counter: during a phase callback this is the index of the
    /// cycle being executed (first cycle = 0); after step() it is the
    /// number of completed cycles.
    std::int64_t cycle() const { return cycle_; }

    RunState state() const { return state_; }

    /// Names of the processes that reported kDeadlock in the last committed
    /// cycle — the stuck set when state() == kDeadlock.
    std::vector<std::string> stuck_processes() const;

    std::size_t num_processes() const { return processes_.size(); }

    void register_arbitrator(Arbitrator* arbitrator);

private:
    friend class Component;

    struct ProcessInfo {
        std::string name;  ///< "<component>/<process>"
        std::function<RunState(CyclePhase)> fn;
        RunState last = RunState::kIdle;
    };

    void register_process(ProcessInfo info);

    std::vector<ProcessInfo> processes_;
    std::vector<Arbitrator*> arbitrators_;
    std::int64_t cycle_ = 0;
    RunState state_ = RunState::kIdle;
};

}  // namespace salo::cosim
