#include "cosim/system.hpp"

namespace salo::cosim {

namespace {
CosimConfig validated(CosimConfig config) {
    config.validate();
    return config;
}
}  // namespace

MultiArraySystem::MultiArraySystem(const CosimConfig& config)
    : config_(validated(config)),
      memory_(kernel_, "mem", config_.memory, config_.num_arrays),
      bus_(kernel_, "bus", config_.bus, config_.num_arrays) {
    kernel_.register_arbitrator(&memory_);
    kernel_.register_arbitrator(&bus_);
    ArrayComponent::Params params;
    params.double_buffer = config_.costs.double_buffer;
    params.tile_pipelining = config_.costs.tile_pipelining;
    arrays_.reserve(static_cast<std::size_t>(config_.num_arrays));
    for (int i = 0; i < config_.num_arrays; ++i)
        arrays_.push_back(std::make_unique<ArrayComponent>(
            kernel_, "array" + std::to_string(i), i, params, memory_, bus_));
}

void MultiArraySystem::enqueue(int array, const TileCost& cost) {
    SALO_EXPECTS(array >= 0 && array < num_arrays());
    arrays_[static_cast<std::size_t>(array)]->enqueue(cost);
    const std::int64_t beat = config_.bus.beat_bytes;
    serial_bound_ += cost.load_cycles + cost.compute_cycles +
                     (cost.writeback_bytes + beat - 1) / beat + 4;
}

CosimReport MultiArraySystem::run() {
    std::int64_t budget = config_.max_cycles;
    if (budget == 0) budget = serial_bound_ + 1024;  // auto: serialized + margin
    CosimReport report;
    report.final_state = kernel_.run(budget);
    report.makespan_cycles = kernel_.cycle();
    report.arrays.reserve(arrays_.size());
    for (const auto& a : arrays_) report.arrays.push_back(a->stats());
    report.memory = memory_.stats();
    report.bus = bus_.stats();
    if (report.final_state == RunState::kDeadlock ||
        report.final_state == RunState::kAborted)
        report.stuck = kernel_.stuck_processes();
    return report;
}

}  // namespace salo::cosim
