#include "cosim/array.hpp"

namespace salo::cosim {

ArrayComponent::ArrayComponent(Kernel& kernel, std::string name, int id,
                               const Params& params, BankedMemory& memory,
                               BusArbiter& bus)
    : Component(kernel, std::move(name)),
      params_(params),
      id_(id),
      memory_(&memory),
      bus_(&bus) {
    // exec before fetch: exec's acquire publishes the start of tile i so
    // fetch's acquire can open tile i+1's stream in the same cycle.
    register_process("exec", [this](CyclePhase phase) { return exec(phase); });
    register_process("fetch", [this](CyclePhase phase) { return fetch(phase); });
}

void ArrayComponent::enqueue(const TileCost& cost) {
    SALO_EXPECTS(kernel().cycle() == 0);
    SALO_EXPECTS(cost.load_cycles >= 1);
    SALO_EXPECTS(cost.compute_cycles >= 1);
    TileWork work;
    work.compute_cycles = cost.compute_cycles;
    // Inter-tile stage-3 pipelining hides stage 3 for every tile of this
    // array but its first — the same per-sequence adjustment
    // TileCostAccountant applies.
    if (params_.tile_pipelining && !tiles_.empty())
        work.compute_cycles -= cost.breakdown.stage[2];
    SALO_EXPECTS(work.compute_cycles >= 1);
    work.load_chunks = cost.load_cycles;
    const std::int64_t beat = bus_->config().beat_bytes;
    work.wb_beats = (cost.writeback_bytes + beat - 1) / beat;
    work.breakdown = cost.breakdown;
    tiles_.push_back(work);
}

RunState ArrayComponent::exec(CyclePhase phase) {
    switch (phase) {
        case CyclePhase::kAcquire:
            will_start_ = false;
            if (remaining_ == 0 && !blocked_wb_ &&
                next_exec_ < static_cast<int>(tiles_.size()) &&
                next_exec_ < loads_done_) {
                will_start_ = true;
                started_through_ = next_exec_;  // visible to fetch this cycle
            }
            return RunState::kIdle;
        case CyclePhase::kCheck:
            return RunState::kIdle;
        case CyclePhase::kCommit: {
            if (blocked_wb_) {
                const TileWork& t = tiles_[static_cast<std::size_t>(next_exec_)];
                if (!bus_->try_push(id_, t.wb_beats)) {
                    ++stats_.wb_stall_cycles;
                    return RunState::kDeadlock;
                }
                blocked_wb_ = false;
                stats_.tile_finish_cycles.push_back(kernel().cycle());
                stats_.total_cycles = kernel().cycle() + 1;
                ++next_exec_;
                ++done_count_;
                return RunState::kRunning;
            }
            if (will_start_) {
                const TileWork& t = tiles_[static_cast<std::size_t>(next_exec_)];
                remaining_ = t.compute_cycles;
                ++stats_.tiles;
                for (int s = 0; s < 5; ++s)
                    stats_.stage_totals.stage[s] += t.breakdown.stage[s];
            }
            if (remaining_ > 0) {
                --remaining_;
                ++stats_.compute_cycles;
                if (remaining_ == 0) {
                    const TileWork& t = tiles_[static_cast<std::size_t>(next_exec_)];
                    if (t.wb_beats > 0 && !bus_->try_push(id_, t.wb_beats)) {
                        blocked_wb_ = true;  // retried next cycle as a stall
                    } else {
                        stats_.tile_finish_cycles.push_back(kernel().cycle());
                        stats_.total_cycles = kernel().cycle() + 1;
                        ++next_exec_;
                        ++done_count_;
                    }
                }
                return RunState::kRunning;
            }
            if (next_exec_ < static_cast<int>(tiles_.size())) {
                ++stats_.mem_wait_cycles;  // live but operands not resident
                return RunState::kDeadlock;
            }
            return RunState::kIdle;
        }
    }
    return RunState::kIdle;
}

RunState ArrayComponent::fetch(CyclePhase phase) {
    switch (phase) {
        case CyclePhase::kAcquire: {
            if (stream_ < 0 && fetch_next_ < static_cast<int>(tiles_.size())) {
                // Double-buffered SRAM: prefetch at most one tile beyond the
                // tile being computed. Without double buffering the single
                // buffer is busy until the previous tile fully completes.
                const bool allowed = params_.double_buffer
                                         ? fetch_next_ <= started_through_ + 1
                                         : fetch_next_ <= done_count_;
                if (allowed)
                    stream_ = memory_->open_stream(
                        id_, tiles_[static_cast<std::size_t>(fetch_next_)].load_chunks);
            }
            return RunState::kIdle;
        }
        case CyclePhase::kCheck:
            return RunState::kIdle;
        case CyclePhase::kCommit: {
            if (stream_ < 0) return RunState::kIdle;
            if (memory_->stream_done(stream_)) {
                stream_ = -1;
                ++loads_done_;
                ++fetch_next_;
                return RunState::kRunning;
            }
            if (memory_->stream_advanced(stream_)) return RunState::kRunning;
            ++stats_.fetch_stall_cycles;  // open stream, no chunk this cycle
            return RunState::kDeadlock;
        }
    }
    return RunState::kIdle;
}

}  // namespace salo::cosim
