// Shared writeback bus connecting the arrays' output ports to the
// weighted-sum / output stage.
//
// Each client (array) owns a small FIFO of pending writeback transactions;
// a transaction is `beats` bus beats of `beat_bytes` each. The bus grants
// up to `beats_per_cycle` beats per cycle across all clients (a wider
// output bus has more lanes), each chosen by a pluggable policy
// (round-robin pointer or oldest-head-first). A full FIFO rejects
// try_push — the array then stalls its exec process (wb backpressure),
// which is how output-bandwidth limits propagate into tile timing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cosim/kernel.hpp"

namespace salo::cosim {

class BusArbiter : public Component, public Arbitrator {
public:
    struct Config {
        int beat_bytes = 64;
        int beats_per_cycle = 1;  ///< bus lanes: total grant bandwidth
        int queue_capacity = 4;   ///< per-client pending transactions
        Arbitration policy = Arbitration::kRoundRobin;

        void validate() const;
    };

    struct Stats {
        std::int64_t beats_granted = 0;
        std::int64_t busy_cycles = 0;       ///< cycles with a grant
        std::int64_t contended_cycles = 0;  ///< grant cycles with > 1 requester
    };

    BusArbiter(Kernel& kernel, std::string name, const Config& config, int num_clients);

    /// Enqueue a `beats`-beat writeback for `client`. Returns false when the
    /// client's FIFO is at capacity (caller must retry next cycle).
    bool try_push(int client, std::int64_t beats);

    /// Pending transactions in `client`'s FIFO.
    std::size_t queue_depth(int client) const;

    /// True when every FIFO is empty (all writebacks drained).
    bool drained() const;

    void arbitrate() override;

    const Config& config() const { return config_; }
    const Stats& stats() const { return stats_; }

private:
    struct Transaction {
        std::int64_t beats_left = 0;
        std::int64_t enqueued_cycle = 0;
    };

    RunState grant(CyclePhase phase);

    Config config_;
    Stats stats_;
    std::vector<std::deque<Transaction>> queues_;  // per client
    int rr_ptr_ = 0;
    std::vector<int> grants_;  ///< this cycle's granted clients, one per beat
    int requesters_ = 0;
};

}  // namespace salo::cosim
