// MultiArraySystem: N SALO arrays sharing one banked memory and one
// writeback bus, wired onto the deterministic co-simulation kernel.
//
// Construction order is the registration order and therefore part of the
// timing contract: memory first, bus second, arrays last — resource
// commits run before array commits each cycle, so a served chunk or a
// freed bus slot is visible to the arrays in the cycle it happens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "cosim/array.hpp"
#include "cosim/bus.hpp"
#include "cosim/kernel.hpp"
#include "cosim/memory.hpp"
#include "sim/tile_costs.hpp"

namespace salo::cosim {

struct CosimConfig {
    int num_arrays = 1;
    TileCostParams costs;          ///< shared tile-cost contract
    BankedMemory::Config memory;
    BusArbiter::Config bus;
    /// Simulation budget; 0 = auto (fully serialized execution of every
    /// enqueued tile plus margin — any live system finishes well within it,
    /// so hitting the budget means a real deadlock/livelock, not tuning).
    std::int64_t max_cycles = 0;

    void validate() const {
        if (num_arrays < 1)
            throw ContractViolation("CosimConfig: num_arrays must be >= 1 (got " +
                                    std::to_string(num_arrays) + ")");
        if (max_cycles < 0)
            throw ContractViolation("CosimConfig: max_cycles must be >= 0 (got " +
                                    std::to_string(max_cycles) + ")");
        costs.validate();
        memory.validate();
        bus.validate();
    }
};

struct CosimReport {
    RunState final_state = RunState::kIdle;
    std::int64_t makespan_cycles = 0;  ///< cycles until quiescence (bus drained)
    std::vector<ArrayComponent::Stats> arrays;
    BankedMemory::Stats memory;
    BusArbiter::Stats bus;
    std::vector<std::string> stuck;  ///< stuck process names when deadlocked

    /// Slowest array's total (the parallel completion time of the compute,
    /// excluding the final writeback drain).
    std::int64_t max_array_cycles() const {
        std::int64_t m = 0;
        for (const auto& a : arrays)
            if (a.total_cycles > m) m = a.total_cycles;
        return m;
    }

    /// Order-sensitive digest over every counter — two runs of the same
    /// configuration must produce equal fingerprints (the determinism gate).
    std::uint64_t fingerprint() const {
        Fnv1a h;
        h.mix(static_cast<int>(final_state));
        h.mix(makespan_cycles);
        h.mix(static_cast<std::int64_t>(arrays.size()));
        for (const auto& a : arrays) {
            h.mix(a.tiles);
            h.mix(a.total_cycles);
            h.mix(a.compute_cycles);
            h.mix(a.mem_wait_cycles);
            h.mix(a.fetch_stall_cycles);
            h.mix(a.wb_stall_cycles);
            for (int s = 0; s < 5; ++s) h.mix(a.stage_totals.stage[s]);
            h.mix(static_cast<std::int64_t>(a.tile_finish_cycles.size()));
            for (std::int64_t c : a.tile_finish_cycles) h.mix(c);
        }
        h.mix(memory.chunks_served);
        h.mix(memory.busy_cycles);
        h.mix(memory.bank_conflicts);
        h.mix(memory.channel_conflicts);
        h.mix(bus.beats_granted);
        h.mix(bus.busy_cycles);
        h.mix(bus.contended_cycles);
        return h.digest();
    }
};

class MultiArraySystem {
public:
    explicit MultiArraySystem(const CosimConfig& config);

    /// Queue a tile onto array `array` (wiring-time, before run()).
    void enqueue(int array, const TileCost& cost);

    /// Run to quiescence (or deadlock / budget abort) and report.
    CosimReport run();

    int num_arrays() const { return static_cast<int>(arrays_.size()); }

private:
    CosimConfig config_;
    Kernel kernel_;
    BankedMemory memory_;
    BusArbiter bus_;
    std::vector<std::unique_ptr<ArrayComponent>> arrays_;
    std::int64_t serial_bound_ = 0;  ///< serialized upper bound for auto budget
};

}  // namespace salo::cosim
