// One SALO spatial array replayed at tile granularity in the co-simulation.
//
// The array does not recompute attention — it replays the per-tile cost
// contract (sim/tile_costs.hpp) as two coupled processes:
//
//   "exec"   occupies the array for the tile's compute cycles once its
//            operands are resident, then pushes the tile's writeback onto
//            the shared bus (a full bus FIFO back-pressures the array);
//   "fetch"  streams the next tile's Q/K/V chunks from BankedMemory into
//            the double-buffered SRAM — at most one tile ahead of the tile
//            being computed (or, with double_buffer=false, only after the
//            previous tile fully completes).
//
// Process-order protocol (required for exact closed-form parity): within an
// array "exec" is registered before "fetch", so when exec's acquire decides
// to start tile i, fetch's acquire in the SAME cycle sees it and opens tile
// i+1's stream — the prefetch overlaps all of compute_i, reproducing
//
//   cycles_i = compute_i + max(0, load_i - compute_{i-1})
//
// exactly when memory is uncontended. The memory and bus components must be
// registered BEFORE every array (their commits run first, so a load chunk
// or a freed bus slot is visible to the array in the same cycle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cosim/bus.hpp"
#include "cosim/kernel.hpp"
#include "cosim/memory.hpp"
#include "sim/tile_costs.hpp"

namespace salo::cosim {

class ArrayComponent : public Component {
public:
    struct Params {
        bool double_buffer = true;
        bool tile_pipelining = false;
    };

    struct Stats {
        std::int64_t tiles = 0;
        std::int64_t total_cycles = 0;    ///< last tile finish cycle + 1
        std::int64_t compute_cycles = 0;  ///< cycles the PE array was busy
        std::int64_t mem_wait_cycles = 0; ///< exec idle, operands not resident
        std::int64_t fetch_stall_cycles = 0;  ///< stream open, no chunk granted
        std::int64_t wb_stall_cycles = 0;     ///< finished tile blocked on bus FIFO
        CycleBreakdown stage_totals;
        std::vector<std::int64_t> tile_finish_cycles;  ///< per-tile completion cycle
    };

    ArrayComponent(Kernel& kernel, std::string name, int id, const Params& params,
                   BankedMemory& memory, BusArbiter& bus);

    /// Queue one tile for replay. Wiring-time only (before the first cycle).
    void enqueue(const TileCost& cost);

    bool done() const { return done_count_ == static_cast<int>(tiles_.size()); }
    const Stats& stats() const { return stats_; }
    int id() const { return id_; }

private:
    struct TileWork {
        std::int64_t compute_cycles = 0;  ///< effective (pipelining-adjusted)
        std::int64_t load_chunks = 0;     ///< fill-port transfers to stream
        std::int64_t wb_beats = 0;        ///< bus beats to emit on completion
        CycleBreakdown breakdown;
    };

    RunState exec(CyclePhase phase);
    RunState fetch(CyclePhase phase);

    Params params_;
    int id_;
    BankedMemory* memory_;
    BusArbiter* bus_;
    Stats stats_;
    std::vector<TileWork> tiles_;

    // exec state
    int next_exec_ = 0;          ///< tile index to start next
    std::int64_t remaining_ = 0; ///< cycles left in the in-flight tile
    bool will_start_ = false;    ///< acquire-phase start decision
    bool blocked_wb_ = false;    ///< finished tile waiting for a bus slot
    int started_through_ = -1;   ///< highest tile index whose compute started
    int done_count_ = 0;

    // fetch state
    int fetch_next_ = 0;   ///< tile index to stream next
    int loads_done_ = 0;   ///< tiles fully resident in SRAM
    int stream_ = -1;      ///< open BankedMemory stream handle, -1 if none
};

}  // namespace salo::cosim
