#include "cosim/kernel.hpp"

namespace salo::cosim {

const char* to_string(RunState state) {
    switch (state) {
        case RunState::kIdle: return "idle";
        case RunState::kRunning: return "running";
        case RunState::kDeadlock: return "deadlock";
        case RunState::kAborted: return "aborted";
    }
    return "?";
}

const char* to_string(Arbitration policy) {
    switch (policy) {
        case Arbitration::kRoundRobin: return "round-robin";
        case Arbitration::kOldestFirst: return "oldest-first";
    }
    return "?";
}

Component::Component(Kernel& kernel, std::string name)
    : kernel_(&kernel), name_(std::move(name)) {}

void Component::register_process(const std::string& process_name,
                                 std::function<RunState(CyclePhase)> fn) {
    SALO_EXPECTS(fn != nullptr);
    kernel_->register_process({name_ + "/" + process_name, std::move(fn), RunState::kIdle});
}

void Kernel::register_process(ProcessInfo info) {
    // Registration is wiring-time only: adding processes mid-run would make
    // the phase order (and therefore results) depend on *when* they joined.
    SALO_EXPECTS(cycle_ == 0);
    processes_.push_back(std::move(info));
}

void Kernel::register_arbitrator(Arbitrator* arbitrator) {
    SALO_EXPECTS(arbitrator != nullptr);
    SALO_EXPECTS(cycle_ == 0);
    arbitrators_.push_back(arbitrator);
}

RunState Kernel::step() {
    SALO_EXPECTS(!processes_.empty());
    for (ProcessInfo& p : processes_) p.fn(CyclePhase::kAcquire);
    for (Arbitrator* a : arbitrators_) a->arbitrate();
    for (ProcessInfo& p : processes_) p.fn(CyclePhase::kCheck);
    int running = 0;
    int stalled = 0;
    for (ProcessInfo& p : processes_) {
        p.last = p.fn(CyclePhase::kCommit);
        if (p.last == RunState::kRunning) ++running;
        if (p.last == RunState::kDeadlock) ++stalled;
    }
    ++cycle_;
    if (running > 0)
        state_ = RunState::kRunning;
    else if (stalled > 0)
        state_ = RunState::kDeadlock;  // live processes exist but none committed
    else
        state_ = RunState::kIdle;
    return state_;
}

RunState Kernel::run(std::int64_t max_cycles) {
    SALO_EXPECTS(max_cycles > 0);
    for (std::int64_t i = 0; i < max_cycles; ++i) {
        const RunState s = step();
        if (s != RunState::kRunning) return s;
    }
    state_ = RunState::kAborted;
    return state_;
}

std::vector<std::string> Kernel::stuck_processes() const {
    std::vector<std::string> stuck;
    for (const ProcessInfo& p : processes_)
        if (p.last == RunState::kDeadlock) stuck.push_back(p.name);
    return stuck;
}

}  // namespace salo::cosim
