// The attention-layer workloads evaluated in the paper (Table 2) plus the
// BERT-base layer used for the §2.1 quadratic-latency experiment, and
// seeded synthetic Q/K/V generators.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "core/compiled_plan.hpp"
#include "pattern/pattern.hpp"
#include "tensor/tensor3.hpp"

namespace salo {

struct AttentionWorkload {
    std::string name;
    HybridPattern pattern;
    int heads;
    int head_dim;         ///< d per head
    int window;           ///< total window size (w, or win_h*win_w for 2D)
    double paper_sparsity;///< the sparsity column of Table 2

    int n() const { return pattern.n(); }
    int hidden() const { return heads * head_dim; }
    float scale() const { return 1.0f / std::sqrt(static_cast<float>(head_dim)); }
};

/// Longformer-Base-4096: n=4096, w=512, hidden 768 (12 heads x 64), 1 global.
AttentionWorkload longformer_base_4096();

/// ViL-Medium-Wide stage 1: 56x56 patches, 15x15 window, hidden 192, 1 global.
AttentionWorkload vil_stage1();

/// ViL-Medium-Wide stage 2: 28x28 patches, 15x15 window, hidden 384, 1 global.
AttentionWorkload vil_stage2();

/// The three workloads of Figure 7 / Table 2, in paper order.
std::vector<AttentionWorkload> paper_workloads();

/// BERT-base attention layer with full (dense) attention at length n —
/// the §2.1 scaling study workload.
AttentionWorkload bert_base(int n);

/// Scaled-down version of a workload (same pattern structure, smaller n/w)
/// for fast functional-simulation tests and benches.
AttentionWorkload longformer_small(int n, int w, int heads, int head_dim, int num_global);

/// Seeded Gaussian Q/K/V for every head of a workload. `stddev` is chosen
/// so scaled scores stay within the Q3.4 input format's useful range.
struct QkvSet {
    Tensor3<float> q, k, v;
};
QkvSet make_qkv(const AttentionWorkload& workload, std::uint64_t seed,
                double stddev = 0.5);

/// Compile a workload's pattern for its head dimension under `config` —
/// the shareable artifact the serving API (SaloSession / bench_serving)
/// submits requests against.
CompiledPlanPtr compile_workload(const AttentionWorkload& workload,
                                 const SaloConfig& config);

}  // namespace salo
