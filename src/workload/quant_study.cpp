#include "workload/quant_study.hpp"

#include <vector>

#include "common/rng.hpp"

namespace salo {

namespace {

/// Mean-pool the attention output and classify by nearest prototype.
int classify(const Matrix<float>& attention_out, const Matrix<float>& prototypes) {
    const int d = attention_out.cols();
    std::vector<double> pooled(static_cast<std::size_t>(d), 0.0);
    for (int i = 0; i < attention_out.rows(); ++i)
        for (int t = 0; t < d; ++t)
            pooled[static_cast<std::size_t>(t)] += attention_out(i, t);
    for (double& p : pooled) p /= attention_out.rows();

    int best = 0;
    double best_dot = -1e300;
    for (int c = 0; c < prototypes.rows(); ++c) {
        double dot = 0.0;
        for (int t = 0; t < d; ++t)
            dot += pooled[static_cast<std::size_t>(t)] * prototypes(c, t);
        if (dot > best_dot) {
            best_dot = dot;
            best = c;
        }
    }
    return best;
}

}  // namespace

QuantStudyResult run_quant_study(const QuantStudyConfig& study, const SaloConfig& config) {
    SALO_EXPECTS(study.num_classes >= 2 && study.num_samples >= 1);
    Rng rng(study.seed);

    // Unit-norm class prototypes.
    Matrix<float> prototypes(study.num_classes, study.head_dim);
    for (int c = 0; c < study.num_classes; ++c) {
        double norm = 0.0;
        for (int t = 0; t < study.head_dim; ++t) {
            const double v = rng.normal();
            prototypes(c, t) = static_cast<float>(v);
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (int t = 0; t < study.head_dim; ++t)
            prototypes(c, t) = static_cast<float>(prototypes(c, t) / norm *
                                                  study.prototype_scale);
    }

    const HybridPattern pattern = sliding_window(study.n, study.window, {0});
    SaloConfig quant_config = config;
    quant_config.fidelity = Fidelity::kFunctional;
    const SaloEngine engine(quant_config);
    // Compile once; every sample below reuses the schedule instead of
    // re-running the scheduler per run_head call.
    const CompiledPlanPtr plan = engine.compile(pattern, study.head_dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(study.head_dim));

    int correct_original = 0;
    int correct_quantized = 0;
    for (int s = 0; s < study.num_samples; ++s) {
        const int label = static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(study.num_classes)));
        Matrix<float> tokens(study.n, study.head_dim);
        for (int i = 0; i < study.n; ++i) {
            // Confuser tokens carry a uniformly random class prototype; the
            // sample is decided by the (noisy) majority, so samples near
            // the decision boundary occur at a controlled rate.
            const int token_class =
                rng.uniform() < study.confuser_prob
                    ? static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(study.num_classes)))
                    : label;
            for (int t = 0; t < study.head_dim; ++t)
                tokens(i, t) = prototypes(token_class, t) +
                               static_cast<float>(rng.normal(0.0, study.noise));
        }

        // Self-attention with identity projections: Q = K = V = tokens.
        const Matrix<float> original =
            SaloEngine::golden(pattern, tokens, tokens, tokens, scale);
        const Matrix<float> quantized =
            engine.run_head(*plan, tokens, tokens, tokens, scale).output;

        if (classify(original, prototypes) == label) ++correct_original;
        if (classify(quantized, prototypes) == label) ++correct_quantized;
    }

    QuantStudyResult result;
    result.accuracy_original =
        100.0 * correct_original / static_cast<double>(study.num_samples);
    result.accuracy_quantized =
        100.0 * correct_quantized / static_cast<double>(study.num_samples);
    return result;
}

}  // namespace salo
