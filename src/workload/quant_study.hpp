// Synthetic stand-in for the paper's Table 3 quantization study.
//
// The paper fine-tunes pretrained Longformer/ViL checkpoints on IMDB /
// Hyperpartisan / ImageNet-1K and shows that SALO's Q3.4 inputs + 16-bit
// outputs do not change downstream accuracy. Checkpoints and datasets are
// not available offline, so we build the closest synthetic equivalent that
// exercises the same error path (see DESIGN.md, substitutions):
//
//   * each class has a prototype token distribution;
//   * a sample is a sequence of noisy tokens: each token carries the
//     sample's class prototype, or (with confuser_prob) a uniformly random
//     class prototype — the confusers keep the task genuinely hard, so
//     borderline samples exist for quantization error to flip;
//   * the sequence is used directly as Q/K/V of a hybrid sparse attention
//     layer; the output is mean-pooled and classified by a fixed linear
//     probe (nearest prototype).
//
// Classification accuracy is then compared between the float golden
// attention ("Original") and the bit-accurate fixed-point engine
// ("Quantized") — the same quantized-vs-original delta format as Table 3.
#pragma once

#include <cstdint>
#include <string>

#include "core/engine.hpp"

namespace salo {

struct QuantStudyConfig {
    std::string name = "synthetic";
    int n = 96;           ///< sequence length
    int head_dim = 32;    ///< attention head dimension
    int window = 16;      ///< sliding window width (plus 1 global token)
    int num_classes = 4;
    int num_samples = 200;
    double prototype_scale = 1.0;  ///< class signal strength
    double noise = 0.5;            ///< per-token Gaussian noise stddev
    double confuser_prob = 0.60;   ///< P(token carries a random class instead)
    std::uint64_t seed = 1;
};

struct QuantStudyResult {
    double accuracy_original = 0.0;   ///< float golden attention
    double accuracy_quantized = 0.0;  ///< fixed-point SALO engine
    double delta() const { return accuracy_quantized - accuracy_original; }
};

/// Run the study with the given engine configuration (fidelity is forced to
/// kFunctional for the quantized arm and kGolden for the original arm).
QuantStudyResult run_quant_study(const QuantStudyConfig& study, const SaloConfig& config);

}  // namespace salo
