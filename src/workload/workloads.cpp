#include "workload/workloads.hpp"

namespace salo {

AttentionWorkload longformer_base_4096() {
    return AttentionWorkload{
        .name = "Longformer",
        .pattern = longformer(4096, 512, 1),
        .heads = 12,
        .head_dim = 64,
        .window = 512,
        .paper_sparsity = 0.125,
    };
}

AttentionWorkload vil_stage1() {
    return AttentionWorkload{
        .name = "ViL-stage1",
        .pattern = vil_2d(56, 56, 15, 15, 1),
        .heads = 3,  // hidden 192 at d=64
        .head_dim = 64,
        .window = 15 * 15,
        .paper_sparsity = 0.072,
    };
}

AttentionWorkload vil_stage2() {
    return AttentionWorkload{
        .name = "ViL-stage2",
        .pattern = vil_2d(28, 28, 15, 15, 1),
        .heads = 6,  // hidden 384 at d=64
        .head_dim = 64,
        .window = 15 * 15,
        .paper_sparsity = 0.288,
    };
}

std::vector<AttentionWorkload> paper_workloads() {
    return {longformer_base_4096(), vil_stage1(), vil_stage2()};
}

AttentionWorkload bert_base(int n) {
    // Full attention: a single band covering every relative offset.
    return AttentionWorkload{
        .name = "BERT-base(n=" + std::to_string(n) + ")",
        .pattern = sliding_window_range(n, -(n - 1), n - 1),
        .heads = 12,
        .head_dim = 64,
        .window = n,
        .paper_sparsity = 1.0,
    };
}

AttentionWorkload longformer_small(int n, int w, int heads, int head_dim, int num_global) {
    return AttentionWorkload{
        .name = "Longformer-small",
        .pattern = longformer(n, w, num_global),
        .heads = heads,
        .head_dim = head_dim,
        .window = w,
        .paper_sparsity = static_cast<double>(w) / n,
    };
}

CompiledPlanPtr compile_workload(const AttentionWorkload& workload,
                                 const SaloConfig& config) {
    return compile_shared(workload.pattern, workload.head_dim, config);
}

QkvSet make_qkv(const AttentionWorkload& workload, std::uint64_t seed, double stddev) {
    Rng rng(seed);
    QkvSet set;
    set.q = random_tensor3(workload.heads, workload.n(), workload.head_dim, rng, stddev);
    set.k = random_tensor3(workload.heads, workload.n(), workload.head_dim, rng, stddev);
    set.v = random_tensor3(workload.heads, workload.n(), workload.head_dim, rng, stddev);
    return set;
}

}  // namespace salo
