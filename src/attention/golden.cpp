#include "attention/golden.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"

namespace salo {

void softmax_row_inplace(std::span<float> row) {
    if (row.empty()) return;
    double mx = row[0];
    for (float v : row) mx = std::max(mx, static_cast<double>(v));
    double sum = 0.0;
    for (float& v : row) {
        const double e = std::exp(static_cast<double>(v) - mx);
        v = static_cast<float>(e);
        sum += e;
    }
    SALO_ASSERT(sum > 0.0);
    for (float& v : row) v = static_cast<float>(v / sum);
}

Matrix<float> score_matrix(const Matrix<float>& q, const Matrix<float>& k, float scale) {
    SALO_EXPECTS(q.cols() == k.cols());
    Matrix<float> s = matmul_nt(q, k);
    for (auto& v : s.data()) v *= scale;
    return s;
}

Matrix<float> dense_attention(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, float scale) {
    SALO_EXPECTS(k.rows() == v.rows());
    Matrix<float> s = score_matrix(q, k, scale);
    for (int i = 0; i < s.rows(); ++i) softmax_row_inplace(s.row(i));
    return matmul(s, v);
}

Matrix<float> masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                               const Matrix<float>& v, float scale, const AttendFn& attends) {
    SALO_EXPECTS(q.cols() == k.cols());
    SALO_EXPECTS(k.rows() == v.rows());
    const int n = q.rows();
    const int m = k.rows();
    const int d = v.cols();
    Matrix<float> out(n, d, 0.0f);
    std::vector<int> cols;
    std::vector<double> scores;
    for (int i = 0; i < n; ++i) {
        cols.clear();
        scores.clear();
        for (int j = 0; j < m; ++j)
            if (attends(i, j)) cols.push_back(j);
        if (cols.empty()) continue;

        const auto qi = q.row(i);
        double mx = -std::numeric_limits<double>::infinity();
        for (int j : cols) {
            const auto kj = k.row(j);
            double dot = 0.0;
            for (int t = 0; t < q.cols(); ++t)
                dot += static_cast<double>(qi[static_cast<std::size_t>(t)]) *
                       static_cast<double>(kj[static_cast<std::size_t>(t)]);
            dot *= scale;
            scores.push_back(dot);
            mx = std::max(mx, dot);
        }
        double sum = 0.0;
        for (double& sc : scores) {
            sc = std::exp(sc - mx);
            sum += sc;
        }
        SALO_ASSERT(sum > 0.0);
        auto orow = out.row(i);
        for (std::size_t idx = 0; idx < cols.size(); ++idx) {
            const double w = scores[idx] / sum;
            const auto vrow = v.row(cols[idx]);
            for (int t = 0; t < d; ++t)
                orow[static_cast<std::size_t>(t)] +=
                    static_cast<float>(w * static_cast<double>(vrow[static_cast<std::size_t>(t)]));
        }
    }
    return out;
}

}  // namespace salo
