// Streaming (online-softmax) attention reference, and the per-stream
// running K/V state of autoregressive decode.
//
// streaming_masked_attention computes masked attention in one pass over key
// blocks, maintaining a running (max, weight, output) triple per query and
// renormalizing on the fly — the same mathematics as SALO's window
// splitting + weighted-sum module (paper §4.2/Appendix A), and of
// FlashAttention-style kernels. Serves as an independent float oracle for
// the renormalization identity: for any block size the result must equal
// ordinary masked attention.
//
// DecodeState is the stateful sibling: it holds exactly the K/V rows a
// causal sliding-window + global pattern can still reference — a ring
// buffer of the last `window_span` positions plus pinned copies of the
// global tokens — so one decode step appends one row and assembles a
// compact K/V whose size is bounded by the pattern, not the prefix length.
#pragma once

#include <utility>
#include <vector>

#include "attention/golden.hpp"
#include "tensor/matrix.hpp"
#include "tensor/tensor3.hpp"

namespace salo {

/// Masked attention computed over key blocks of `block_size`, merging each
/// block's partial softmax into the running result via the Eq. 2 / online
/// renormalization. block_size >= 1; block_size >= n reduces to one pass.
Matrix<float> streaming_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                                         const Matrix<float>& v, float scale,
                                         const AttendFn& attends, int block_size);

/// Per-stream K/V running state for causal streaming decode.
///
/// Retention contract: after append()ing positions 0..L-1, the state can
/// reproduce every key/value row a causal band set with
/// decode_window_span(bands) == window_span, plus the given global tokens,
/// may reference at step L-1 or any later step:
///
///   * the *ring* keeps the last window_span positions; appending position
///     p overwrites slot p % window_span — that overwrite IS the
///     window-boundary eviction, no separate pass;
///   * every global position is additionally *pinned* on append, so it
///     survives ring eviction forever.
///
/// assemble() lays the live rows out compactly as
///   [pinned globals, ascending] [ring window window_lo()..L-1]
/// which is the key-space the step micro-plan (core/compiled_plan.hpp)
/// is rewritten against. A global inside the current window appears in
/// both sections; the copies are bit-identical, so either reference
/// produces the same result.
class DecodeState {
public:
    /// `global_tokens` are absolute positions (sorted + deduplicated here);
    /// they must all be < n of any pattern this state serves, but may be
    /// anywhere relative to window_span — pinning keeps evicted globals.
    DecodeState(int heads, int head_dim, int window_span, std::vector<int> global_tokens);

    int heads() const { return heads_; }
    int head_dim() const { return head_dim_; }
    int window_span() const { return span_; }
    const std::vector<int>& global_tokens() const { return globals_; }

    /// Number of positions appended so far (the prefix length L).
    int length() const { return length_; }
    /// First position still in the ring: max(0, L - window_span).
    int window_lo() const;
    /// Globals already appended: #{g in global_tokens : g < L}.
    int num_pinned() const;
    /// Rows assemble() produces: num_pinned() + (L - window_lo()).
    int compact_rows() const;

    /// Append position L's key/value rows (one row per head; k_row and
    /// v_row are heads x head_dim). Overwrites ring slot L % window_span
    /// and pins the row if L is a global token.
    void append(const Matrix<float>& k_row, const Matrix<float>& v_row);

    /// Compact-row index of absolute key position j as seen by the *latest*
    /// step: ring rows for j >= window_lo(), pinned rows for evicted
    /// globals. j must be a retained position (ContractViolation otherwise).
    int compact_index(int j) const;

    /// Materialize the compact K/V: [heads][compact_rows()][head_dim].
    std::pair<Tensor3<float>, Tensor3<float>> assemble() const;

private:
    int heads_;
    int head_dim_;
    int span_;
    std::vector<int> globals_;
    int length_ = 0;
    Tensor3<float> k_ring_, v_ring_;  ///< [heads][span][d], slot = p % span
    Tensor3<float> k_pin_, v_pin_;    ///< [heads][globals][d], sorted order
};

}  // namespace salo
