// Streaming (online-softmax) attention reference.
//
// Computes masked attention in one pass over key blocks, maintaining a
// running (max, weight, output) triple per query and renormalizing on the
// fly — the same mathematics as SALO's window splitting + weighted-sum
// module (paper §4.2/Appendix A), and of FlashAttention-style kernels.
// Serves as an independent float oracle for the renormalization identity:
// for any block size the result must equal ordinary masked attention.
#pragma once

#include "attention/golden.hpp"
#include "tensor/matrix.hpp"

namespace salo {

/// Masked attention computed over key blocks of `block_size`, merging each
/// block's partial softmax into the running result via the Eq. 2 / online
/// renormalization. block_size >= 1; block_size >= n reduces to one pass.
Matrix<float> streaming_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                                         const Matrix<float>& v, float scale,
                                         const AttendFn& attends, int block_size);

}  // namespace salo
