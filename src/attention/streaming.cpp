#include "attention/streaming.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace salo {

Matrix<float> streaming_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                                         const Matrix<float>& v, float scale,
                                         const AttendFn& attends, int block_size) {
    SALO_EXPECTS(q.cols() == k.cols());
    SALO_EXPECTS(k.rows() == v.rows());
    SALO_EXPECTS(block_size >= 1);
    const int n = q.rows();
    const int m = k.rows();
    const int d = v.cols();
    const int dk = q.cols();

    // Running state per query: max score, total weight, unnormalized-by-
    // weight output (i.e. the normalized output of everything seen so far).
    // The outputs live in one flat n*d buffer — one allocation, contiguous
    // per-query rows — instead of n separate heap vectors.
    std::vector<double> run_max(static_cast<std::size_t>(n),
                                -std::numeric_limits<double>::infinity());
    std::vector<double> run_weight(static_cast<std::size_t>(n), 0.0);
    std::vector<double> run_out(static_cast<std::size_t>(n) * static_cast<std::size_t>(d),
                                0.0);

    std::vector<double> scores;
    std::vector<int> cols;
    std::vector<double> out_block(static_cast<std::size_t>(d));
    for (int b0 = 0; b0 < m; b0 += block_size) {
        const int b1 = std::min(m, b0 + block_size);
        for (int i = 0; i < n; ++i) {
            scores.clear();
            cols.clear();
            double block_max = -std::numeric_limits<double>::infinity();
            const float* qi = q.row(i).data();
            for (int j = b0; j < b1; ++j) {
                if (!attends(i, j)) continue;
                const float* kj = k.row(j).data();
                double dot = 0.0;
                for (int t = 0; t < dk; ++t) dot += static_cast<double>(qi[t]) * kj[t];
                dot *= scale;
                scores.push_back(dot);
                cols.push_back(j);
                block_max = std::max(block_max, dot);
            }
            if (cols.empty()) continue;

            // Block-local softmax parts (weight W_b and normalized out_b).
            double w_block = 0.0;
            std::fill(out_block.begin(), out_block.end(), 0.0);
            for (std::size_t s = 0; s < cols.size(); ++s) {
                const double e = std::exp(scores[s] - block_max);
                w_block += e;
                const float* vr = v.row(cols[s]).data();
                for (int t = 0; t < d; ++t)
                    out_block[static_cast<std::size_t>(t)] += e * static_cast<double>(vr[t]);
            }
            for (double& x : out_block) x /= w_block;

            // Merge with the running state (Eq. 2 with max rebasing).
            double* out = run_out.data() + static_cast<std::size_t>(i) *
                                               static_cast<std::size_t>(d);
            double& w_run = run_weight[static_cast<std::size_t>(i)];
            double& m_run = run_max[static_cast<std::size_t>(i)];
            const double new_max = std::max(m_run, block_max);
            const double w_prev = w_run * std::exp(m_run - new_max);
            const double w_new = w_block * std::exp(block_max - new_max);
            const double w_total = w_prev + w_new;
            for (int t = 0; t < d; ++t)
                out[t] = (w_prev * out[t] + w_new * out_block[static_cast<std::size_t>(t)]) /
                         w_total;
            w_run = w_total;
            m_run = new_max;
        }
    }

    Matrix<float> result(n, d, 0.0f);
    for (int i = 0; i < n; ++i) {
        if (run_weight[static_cast<std::size_t>(i)] <= 0.0) continue;
        const double* out = run_out.data() + static_cast<std::size_t>(i) *
                                                 static_cast<std::size_t>(d);
        for (int t = 0; t < d; ++t) result(i, t) = static_cast<float>(out[t]);
    }
    return result;
}

}  // namespace salo
