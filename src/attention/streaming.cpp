#include "attention/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace salo {

// ---------------------------------------------------------------------------
// DecodeState
// ---------------------------------------------------------------------------

DecodeState::DecodeState(int heads, int head_dim, int window_span,
                         std::vector<int> global_tokens)
    : heads_(heads), head_dim_(head_dim), span_(window_span),
      globals_(std::move(global_tokens)) {
    SALO_EXPECTS(heads_ >= 1);
    SALO_EXPECTS(head_dim_ >= 1);
    SALO_EXPECTS(span_ >= 1);
    std::sort(globals_.begin(), globals_.end());
    globals_.erase(std::unique(globals_.begin(), globals_.end()), globals_.end());
    for (int g : globals_) SALO_EXPECTS(g >= 0);
    k_ring_ = Tensor3<float>(heads_, span_, head_dim_);
    v_ring_ = Tensor3<float>(heads_, span_, head_dim_);
    const int ng = static_cast<int>(globals_.size());
    k_pin_ = Tensor3<float>(heads_, ng, head_dim_);
    v_pin_ = Tensor3<float>(heads_, ng, head_dim_);
}

int DecodeState::window_lo() const { return std::max(0, length_ - span_); }

int DecodeState::num_pinned() const {
    return static_cast<int>(std::lower_bound(globals_.begin(), globals_.end(), length_) -
                            globals_.begin());
}

int DecodeState::compact_rows() const { return num_pinned() + (length_ - window_lo()); }

void DecodeState::append(const Matrix<float>& k_row, const Matrix<float>& v_row) {
    SALO_EXPECTS(k_row.rows() == heads_ && k_row.cols() == head_dim_);
    SALO_EXPECTS(v_row.rows() == heads_ && v_row.cols() == head_dim_);
    const int slot = length_ % span_;  // overwriting = window-boundary eviction
    const auto pin = std::lower_bound(globals_.begin(), globals_.end(), length_);
    const bool is_global = pin != globals_.end() && *pin == length_;
    const int pin_idx = static_cast<int>(pin - globals_.begin());
    for (int h = 0; h < heads_; ++h) {
        for (int t = 0; t < head_dim_; ++t) {
            k_ring_[h](slot, t) = k_row(h, t);
            v_ring_[h](slot, t) = v_row(h, t);
            if (is_global) {
                k_pin_[h](pin_idx, t) = k_row(h, t);
                v_pin_[h](pin_idx, t) = v_row(h, t);
            }
        }
    }
    ++length_;
}

int DecodeState::compact_index(int j) const {
    SALO_EXPECTS(j >= 0 && j < length_);
    if (j >= window_lo()) return num_pinned() + (j - window_lo());
    // Evicted from the ring: only a pinned global survives.
    const auto pin = std::lower_bound(globals_.begin(), globals_.end(), j);
    SALO_EXPECTS(pin != globals_.end() && *pin == j);
    return static_cast<int>(pin - globals_.begin());
}

std::pair<Tensor3<float>, Tensor3<float>> DecodeState::assemble() const {
    const int np = num_pinned();
    const int lo = window_lo();
    const int rows = compact_rows();
    Tensor3<float> k(heads_, rows, head_dim_);
    Tensor3<float> v(heads_, rows, head_dim_);
    for (int h = 0; h < heads_; ++h) {
        for (int p = 0; p < np; ++p) {
            for (int t = 0; t < head_dim_; ++t) {
                k[h](p, t) = k_pin_[h](p, t);
                v[h](p, t) = v_pin_[h](p, t);
            }
        }
        for (int j = lo; j < length_; ++j) {
            const int slot = j % span_;
            const int r = np + (j - lo);
            for (int t = 0; t < head_dim_; ++t) {
                k[h](r, t) = k_ring_[h](slot, t);
                v[h](r, t) = v_ring_[h](slot, t);
            }
        }
    }
    return {std::move(k), std::move(v)};
}

Matrix<float> streaming_masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                                         const Matrix<float>& v, float scale,
                                         const AttendFn& attends, int block_size) {
    SALO_EXPECTS(q.cols() == k.cols());
    SALO_EXPECTS(k.rows() == v.rows());
    SALO_EXPECTS(block_size >= 1);
    const int n = q.rows();
    const int m = k.rows();
    const int d = v.cols();
    const int dk = q.cols();

    // Running state per query: max score, total weight, unnormalized-by-
    // weight output (i.e. the normalized output of everything seen so far).
    // The outputs live in one flat n*d buffer — one allocation, contiguous
    // per-query rows — instead of n separate heap vectors.
    std::vector<double> run_max(static_cast<std::size_t>(n),
                                -std::numeric_limits<double>::infinity());
    std::vector<double> run_weight(static_cast<std::size_t>(n), 0.0);
    std::vector<double> run_out(static_cast<std::size_t>(n) * static_cast<std::size_t>(d),
                                0.0);

    std::vector<double> scores;
    std::vector<int> cols;
    std::vector<double> out_block(static_cast<std::size_t>(d));
    for (int b0 = 0; b0 < m; b0 += block_size) {
        const int b1 = std::min(m, b0 + block_size);
        for (int i = 0; i < n; ++i) {
            scores.clear();
            cols.clear();
            double block_max = -std::numeric_limits<double>::infinity();
            const float* qi = q.row(i).data();
            for (int j = b0; j < b1; ++j) {
                if (!attends(i, j)) continue;
                const float* kj = k.row(j).data();
                double dot = 0.0;
                for (int t = 0; t < dk; ++t) dot += static_cast<double>(qi[t]) * kj[t];
                dot *= scale;
                scores.push_back(dot);
                cols.push_back(j);
                block_max = std::max(block_max, dot);
            }
            if (cols.empty()) continue;

            // Block-local softmax parts (weight W_b and normalized out_b).
            double w_block = 0.0;
            std::fill(out_block.begin(), out_block.end(), 0.0);
            for (std::size_t s = 0; s < cols.size(); ++s) {
                const double e = std::exp(scores[s] - block_max);
                w_block += e;
                const float* vr = v.row(cols[s]).data();
                for (int t = 0; t < d; ++t)
                    out_block[static_cast<std::size_t>(t)] += e * static_cast<double>(vr[t]);
            }
            for (double& x : out_block) x /= w_block;

            // Merge with the running state (Eq. 2 with max rebasing).
            double* out = run_out.data() + static_cast<std::size_t>(i) *
                                               static_cast<std::size_t>(d);
            double& w_run = run_weight[static_cast<std::size_t>(i)];
            double& m_run = run_max[static_cast<std::size_t>(i)];
            const double new_max = std::max(m_run, block_max);
            const double w_prev = w_run * std::exp(m_run - new_max);
            const double w_new = w_block * std::exp(block_max - new_max);
            const double w_total = w_prev + w_new;
            for (int t = 0; t < d; ++t)
                out[t] = (w_prev * out[t] + w_new * out_block[static_cast<std::size_t>(t)]) /
                         w_total;
            w_run = w_total;
            m_run = new_max;
        }
    }

    Matrix<float> result(n, d, 0.0f);
    for (int i = 0; i < n; ++i) {
        if (run_weight[static_cast<std::size_t>(i)] <= 0.0) continue;
        const double* out = run_out.data() + static_cast<std::size_t>(i) *
                                                 static_cast<std::size_t>(d);
        for (int t = 0; t < d; ++t) result(i, t) = static_cast<float>(out[t]);
    }
    return result;
}

}  // namespace salo
