// Float golden models of the attention mechanism (paper §2.1, Eq. 1).
//
// These are the oracles every simulator test compares against: a dense
// softmax attention and a masked (sparse) variant where the mask is an
// arbitrary predicate over (query, key) index pairs. They use numerically
// safe softmax (max subtraction) in double precision.
#pragma once

#include <functional>

#include "tensor/matrix.hpp"

namespace salo {

/// Predicate deciding whether query i attends to key j.
using AttendFn = std::function<bool(int i, int j)>;

/// Numerically safe softmax over a row, in place (double accumulation).
void softmax_row_inplace(std::span<float> row);

/// Dense attention: softmax(Q K^T * scale) V.
/// Q: n x d, K: n x d, V: n x d -> n x d.
Matrix<float> dense_attention(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, float scale);

/// Masked sparse attention: positions with attends(i,j) == false are
/// excluded from the softmax and the weighted sum. Rows that attend to
/// nothing produce zero vectors.
Matrix<float> masked_attention(const Matrix<float>& q, const Matrix<float>& k,
                               const Matrix<float>& v, float scale, const AttendFn& attends);

/// The score matrix S = Q K^T * scale (before softmax); exposed because the
/// simulator tests validate stage-1 results independently.
Matrix<float> score_matrix(const Matrix<float>& q, const Matrix<float>& k, float scale);

}  // namespace salo
