// Minimal dense row-major matrix used throughout SALO: by golden attention
// models (float), by the quantized datapath (int8/int16/int32 element types)
// and by the workload generators. No external BLAS is available offline, so
// matmul/reductions are implemented here with cache-friendly loop orders.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace salo {

/// Dense row-major matrix. Invariant: data().size() == rows()*cols().
template <typename T>
class Matrix {
public:
    Matrix() = default;

    Matrix(int rows, int cols, T init = T{})
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), init) {
        SALO_EXPECTS(rows >= 0 && cols >= 0);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T& operator()(int r, int c) {
        SALO_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(c)];
    }
    const T& operator()(int r, int c) const {
        SALO_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(c)];
    }

    /// Mutable view of one row.
    std::span<T> row(int r) {
        SALO_EXPECTS(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
                static_cast<std::size_t>(cols_)};
    }
    std::span<const T> row(int r) const {
        SALO_EXPECTS(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
                static_cast<std::size_t>(cols_)};
    }

    std::span<T> data() { return data_; }
    std::span<const T> data() const { return data_; }

    void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

    /// Elementwise transform into a new matrix (possibly different type).
    template <typename U, typename Fn>
    Matrix<U> map(Fn&& fn) const {
        Matrix<U> out(rows_, cols_);
        for (std::size_t i = 0; i < data_.size(); ++i)
            out.data()[i] = fn(data_[i]);
        return out;
    }

    bool operator==(const Matrix& other) const {
        return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
    }

private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

/// C = A * B (A: m x k, B: k x n). ikj loop order for row-major locality.
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
    SALO_EXPECTS(a.cols() == b.rows());
    Matrix<T> c(a.rows(), b.cols(), T{});
    for (int i = 0; i < a.rows(); ++i) {
        for (int k = 0; k < a.cols(); ++k) {
            const T aik = a(i, k);
            if (aik == T{}) continue;
            const auto brow = b.row(k);
            auto crow = c.row(i);
            for (int j = 0; j < b.cols(); ++j) crow[static_cast<std::size_t>(j)] +=
                aik * brow[static_cast<std::size_t>(j)];
        }
    }
    return c;
}

/// C = A * B^T (A: m x k, B: n x k) -> m x n. This is the Q*K^T shape.
template <typename T>
Matrix<T> matmul_nt(const Matrix<T>& a, const Matrix<T>& b) {
    SALO_EXPECTS(a.cols() == b.cols());
    Matrix<T> c(a.rows(), b.rows(), T{});
    for (int i = 0; i < a.rows(); ++i) {
        const auto arow = a.row(i);
        for (int j = 0; j < b.rows(); ++j) {
            const auto brow = b.row(j);
            T acc{};
            for (int k = 0; k < a.cols(); ++k)
                acc += arow[static_cast<std::size_t>(k)] * brow[static_cast<std::size_t>(k)];
            c(i, j) = acc;
        }
    }
    return c;
}

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
    Matrix<T> t(a.cols(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
    return t;
}

/// Gaussian-filled float matrix; the standard way tests/benches make Q/K/V.
inline Matrix<float> random_matrix(int rows, int cols, Rng& rng, double mean = 0.0,
                                   double stddev = 1.0) {
    Matrix<float> m(rows, cols);
    for (auto& v : m.data()) v = static_cast<float>(rng.normal(mean, stddev));
    return m;
}

/// Max absolute elementwise difference; the standard test tolerance metric.
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
    SALO_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = std::abs(static_cast<double>(a.data()[i]) -
                                  static_cast<double>(b.data()[i]));
        worst = std::max(worst, d);
    }
    return worst;
}

}  // namespace salo
