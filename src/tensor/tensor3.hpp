// Rank-3 tensor (e.g. [heads][n][d]) built on Matrix slices. Multi-head
// attention inputs and outputs use this shape.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace salo {

/// Owning container of `count` equally-shaped matrices; slice h is head h.
template <typename T>
class Tensor3 {
public:
    Tensor3() = default;
    Tensor3(int count, int rows, int cols) {
        SALO_EXPECTS(count >= 0);
        slices_.reserve(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) slices_.emplace_back(rows, cols);
    }

    int count() const { return static_cast<int>(slices_.size()); }
    int rows() const { return slices_.empty() ? 0 : slices_.front().rows(); }
    int cols() const { return slices_.empty() ? 0 : slices_.front().cols(); }

    Matrix<T>& operator[](int i) {
        SALO_EXPECTS(i >= 0 && i < count());
        return slices_[static_cast<std::size_t>(i)];
    }
    const Matrix<T>& operator[](int i) const {
        SALO_EXPECTS(i >= 0 && i < count());
        return slices_[static_cast<std::size_t>(i)];
    }

private:
    std::vector<Matrix<T>> slices_;
};

/// Random multi-head inputs: `heads` matrices of n x d.
inline Tensor3<float> random_tensor3(int heads, int n, int d, Rng& rng, double stddev = 1.0) {
    Tensor3<float> t(heads, n, d);
    for (int h = 0; h < heads; ++h)
        for (auto& v : t[h].data()) v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

}  // namespace salo
