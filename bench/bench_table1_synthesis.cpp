// Reproduces Table 1: hardware parameters and the synthesis report.
//
// The paper synthesizes Chisel-generated Verilog with Synopsys DC at
// FreePDK 45 nm; offline we reproduce the report from a calibrated
// component-level model (see DESIGN.md substitutions). The breakdown also
// powers the array-size ablation in bench_ablation.
#include <iostream>

#include "common/table.hpp"
#include "model/synthesis.hpp"

int main() {
    using namespace salo;
    const ArrayGeometry geometry;  // the paper's configuration

    std::cout << "=== Table 1: Synthesis details ===\n\n";
    AsciiTable params({"Hardware Parameter", "Value"});
    params.add_row({"PE array size", std::to_string(geometry.rows) + " x " +
                                         std::to_string(geometry.cols)});
    params.add_row({"Global PE column", std::to_string(geometry.num_global_cols)});
    params.add_row({"Global PE row", std::to_string(geometry.num_global_rows)});
    params.add_row({"Weighted Sum Module",
                    std::to_string(geometry.rows + geometry.num_global_rows)});
    params.add_row({"Query Buffer", std::to_string(geometry.query_buffer_bytes / 1024) + "KB"});
    params.add_row({"Key Buffer", std::to_string(geometry.key_buffer_bytes / 1024) + "KB"});
    params.add_row({"Value Buffer", std::to_string(geometry.value_buffer_bytes / 1024) + "KB"});
    params.add_row({"Output Buffer", std::to_string(geometry.output_buffer_bytes / 1024) + "KB"});
    params.print();

    const auto report = synthesize(geometry);
    std::cout << "\n--- Synthesis report (component model) ---\n\n";
    AsciiTable comp({"Component", "Count", "Area (mm^2)", "Power (mW)"});
    for (const auto& c : report.components)
        comp.add_row({c.name, std::to_string(c.count), fmt(c.area_mm2, 3),
                      fmt(c.power_mw, 2)});
    comp.print();

    std::cout << "\n";
    AsciiTable totals({"Metric", "Ours", "Paper"});
    totals.add_row({"Frequency", fmt(report.frequency_ghz, 1) + " GHz", "1 GHz"});
    totals.add_row({"Power", fmt(report.total_power_mw(), 2) + " mW", "532.66 mW"});
    totals.add_row({"Area", fmt(report.total_area_mm2(), 2) + " mm^2", "4.56 mm^2"});
    totals.print();
    return 0;
}
