// google-benchmark micro suite: throughput of the core kernels (PWL exp,
// reciprocal, tile execution, scheduler, weighted-sum merges, golden model).
#include <benchmark/benchmark.h>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "numeric/quantize.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cycle_accurate.hpp"
#include "sim/tile_executor.hpp"
#include "sim/wsm.hpp"
#include "workload/workloads.hpp"

namespace salo {
namespace {

void BM_PwlExp(benchmark::State& state) {
    const PwlExp unit;
    ScoreRaw x = -2048;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.exp_raw(x));
        x = static_cast<ScoreRaw>((x + 37) % 4096);
    }
}
BENCHMARK(BM_PwlExp);

void BM_Reciprocal(benchmark::State& state) {
    const Reciprocal unit;
    SumRaw w = 12345;
    for (auto _ : state) {
        benchmark::DoNotOptimize(unit.inv_raw(w));
        w = (w * 2654435761ull) % (1ull << 36) + 1;
    }
}
BENCHMARK(BM_Reciprocal);

void BM_Schedule(benchmark::State& state) {
    const auto pattern = longformer(static_cast<int>(state.range(0)), 64, 1);
    const ArrayGeometry geometry;
    for (auto _ : state) {
        benchmark::DoNotOptimize(schedule(pattern, geometry, 64, {}));
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Schedule)->Arg(512)->Arg(1024)->Arg(2048)->Complexity(benchmark::oN);

struct TileFixture {
    ArrayGeometry geometry;
    SchedulePlan plan;
    Matrix<std::int8_t> q, k, v;
    PwlExp exp_unit;
    Reciprocal recip;

    TileFixture() {
        plan = schedule(longformer(256, 64, 1), geometry, 64, {});
        Rng rng(1);
        q = quantize<InputFx>(random_matrix(256, 64, rng, 0.0, 0.8));
        k = quantize<InputFx>(random_matrix(256, 64, rng, 0.0, 0.8));
        v = quantize<InputFx>(random_matrix(256, 64, rng, 0.0, 0.8));
    }
};

void BM_TileExecutorFunctional(benchmark::State& state) {
    const TileFixture f;
    const TileExecutor exec(f.exp_unit, f.recip, f.q, f.k, f.v);
    std::vector<TilePart> parts;
    ActivityStats activity;
    std::size_t i = 0;
    for (auto _ : state) {
        parts.clear();
        exec.run(f.plan.tiles[i % f.plan.tiles.size()], parts, activity);
        benchmark::DoNotOptimize(parts);
        ++i;
    }
}
BENCHMARK(BM_TileExecutorFunctional);

void BM_TileCycleAccurate(benchmark::State& state) {
    const TileFixture f;
    const CycleAccurateArray array(f.geometry, CycleConfig{}, f.exp_unit, f.recip, f.q,
                                   f.k, f.v);
    std::vector<TilePart> parts;
    ActivityStats activity;
    std::size_t i = 0;
    for (auto _ : state) {
        parts.clear();
        array.run(f.plan.tiles[i % f.plan.tiles.size()], parts, activity);
        benchmark::DoNotOptimize(parts);
        ++i;
    }
}
BENCHMARK(BM_TileCycleAccurate);

void BM_WeightedSumMerge(benchmark::State& state) {
    const Reciprocal recip;
    TilePart part;
    part.query = 0;
    part.weight = 123456;
    part.out_q.assign(64, 1000);
    WeightedSumModule wsm(1, 64, recip);
    for (auto _ : state) {
        wsm.merge(part);
        benchmark::DoNotOptimize(wsm);
    }
}
BENCHMARK(BM_WeightedSumMerge);

void BM_GoldenDenseAttention(benchmark::State& state) {
    Rng rng(1);
    const int n = static_cast<int>(state.range(0));
    const auto q = random_matrix(n, 64, rng);
    const auto k = random_matrix(n, 64, rng);
    const auto v = random_matrix(n, 64, rng);
    for (auto _ : state) benchmark::DoNotOptimize(dense_attention(q, k, v, 0.125f));
    state.SetComplexityN(n);
}
BENCHMARK(BM_GoldenDenseAttention)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNSquared);

void BM_EngineSmallLongformer(benchmark::State& state) {
    SaloConfig config;
    const SaloEngine engine(config);
    const auto w = longformer_small(256, 64, 1, 64, 1);
    const auto qkv = make_qkv(w, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            engine.run_head(w.pattern, qkv.q[0], qkv.k[0], qkv.v[0], w.scale()));
    }
}
BENCHMARK(BM_EngineSmallLongformer);

}  // namespace
}  // namespace salo

BENCHMARK_MAIN();
