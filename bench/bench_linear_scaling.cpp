// Supplementary figure for the paper's §1 claim: hybrid sparse attention
// reduces complexity to linear in sequence length, and SALO preserves that
// linearity in hardware. We sweep n with the Longformer pattern (w=512
// fixed) and print SALO cycles next to the quadratic dense-GPU model.
#include <iostream>

#include "common/table.hpp"
#include "model/baseline.hpp"
#include "model/salo_model.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;
    const SaloConfig config;
    const auto gpu = gtx_1080ti();

    std::cout << "=== Linear scaling of SALO vs quadratic dense attention ===\n"
                 "(Longformer pattern, w=512, 12 heads, d=64; dense = BERT layer)\n\n";
    AsciiTable table({"n", "SALO (ms)", "SALO ratio", "dense GPU (ms)", "dense ratio"});
    AsciiBarChart chart("SALO latency (ms) vs n — linear growth");
    double prev_salo = 0.0, prev_dense = 0.0;
    for (int n : {1024, 2048, 4096, 8192, 16384}) {
        const auto w = longformer_small(n, 512, 12, 64, 1);
        const double salo_ms = estimate_layer(w, config).latency_ms;
        const double dense_ms = dense_attention_ms(gpu, n, 768);
        table.add_row({std::to_string(n), fmt(salo_ms, 3),
                       prev_salo > 0 ? fmt(salo_ms / prev_salo, 2) + "x" : "-",
                       fmt(dense_ms, 2),
                       prev_dense > 0 ? fmt(dense_ms / prev_dense, 2) + "x" : "-"});
        chart.add("n=" + std::to_string(n), salo_ms);
        prev_salo = salo_ms;
        prev_dense = dense_ms;
    }
    table.print();
    std::cout << "\n";
    chart.print();
    std::cout << "\nSALO doubles (~2.00x) per doubling of n; dense attention\n"
                 "quadruples (~4.00x). This is what makes 16k-token sequences\n"
                 "tractable (paper Section 1).\n\n";

    std::cout << "=== Global-token sweep (n=4096, w=512) ===\n"
                 "(the paper's bound n_g <= min{ceil(n/rows), ceil(w/cols)} = 16)\n\n";
    AsciiTable gsweep({"global tokens", "tiles", "catch-up tiles", "latency (ms)"});
    for (int ng : {0, 1, 2, 4, 8, 16}) {
        AttentionWorkload w = longformer_small(4096, 512, 12, 64, ng);
        const auto est = estimate_layer(w, config);
        gsweep.add_row({std::to_string(ng), std::to_string(est.schedule.total_tiles()),
                        std::to_string(est.schedule.catchup_tiles),
                        fmt(est.latency_ms, 3)});
    }
    gsweep.print();
    std::cout << "\nWithin the paper's bound the global PE row/column absorb all\n"
                 "global work for free (no catch-up tiles, latency unchanged).\n";
    return 0;
}
