// Reproduces Figure 7a: SALO's speedup over CPU (Xeon E5-2630 v3) and GPU
// (GTX 1080Ti) on the three attention-layer workloads.
//
// SALO latency: our cycle model (validated against the cycle-accurate
// simulator by the test suite) at 1 GHz. Baseline latencies: the calibrated
// analytic CPU/GPU models (see DESIGN.md substitutions). Paper values are
// printed alongside for shape comparison.
#include <iostream>

#include "common/table.hpp"
#include "model/baseline.hpp"
#include "model/salo_model.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;
    const SaloConfig config;
    const auto cpu = xeon_e5_2630_v3();
    const auto gpu = gtx_1080ti();

    struct PaperRow {
        const char* name;
        double cpu_speedup;
        double gpu_speedup;
    };
    const PaperRow paper[] = {{"Longformer", 83.57, 7.38},
                              {"ViL-stage1", 83.12, 20.10},
                              {"ViL-stage2", 101.31, 25.51}};

    std::cout << "=== Figure 7a: speedup of SALO vs CPU and GPU ===\n\n";
    AsciiTable table({"Workload", "SALO (ms)", "CPU (ms)", "GPU (ms)", "CPU speedup",
                      "paper", "GPU speedup", "paper"});
    AsciiBarChart cpu_chart("CPU speedup (ours)");
    AsciiBarChart gpu_chart("GPU speedup (ours)");
    double cpu_sum = 0.0, gpu_sum = 0.0;
    const auto workloads = paper_workloads();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto& w = workloads[i];
        const double salo_ms = estimate_layer(w, config).latency_ms;
        const double cpu_ms = sparse_attention_ms(cpu, w).total_ms();
        const double gpu_ms = sparse_attention_ms(gpu, w).total_ms();
        const double cpu_speedup = cpu_ms / salo_ms;
        const double gpu_speedup = gpu_ms / salo_ms;
        cpu_sum += cpu_speedup;
        gpu_sum += gpu_speedup;
        table.add_row({w.name, fmt(salo_ms, 3), fmt(cpu_ms, 1), fmt(gpu_ms, 1),
                       fmt(cpu_speedup, 2) + "x", fmt(paper[i].cpu_speedup, 2) + "x",
                       fmt(gpu_speedup, 2) + "x", fmt(paper[i].gpu_speedup, 2) + "x"});
        cpu_chart.add(w.name, cpu_speedup);
        gpu_chart.add(w.name, gpu_speedup);
    }
    const double n = static_cast<double>(workloads.size());
    table.add_row({"Average", "-", "-", "-", fmt(cpu_sum / n, 2) + "x", "89.33x",
                   fmt(gpu_sum / n, 2) + "x", "17.66x"});
    table.print();
    std::cout << "\n";
    cpu_chart.print();
    std::cout << "\n";
    gpu_chart.print();
    return 0;
}
