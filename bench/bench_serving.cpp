// Request-serving throughput and latency: a mixed Longformer + ViL stream
// through SaloSession vs the same requests run one-shot on the synchronous
// engine.
//
// The stream interleaves three request shapes (an NLP Longformer slice and
// two ViL 2D grids), pre-generates every Q/K/V, then fires the whole burst
// at the session and measures
//   * wall-clock throughput (requests/s),
//   * per-request latency submit -> future-ready (p50 / p99),
//   * the PlanCache hit rate (3 distinct shapes in the whole stream),
//   * bit-identity of every served result against the sequential run.
//
//   bench_serving [--quick] [--requests N] [--seed S] [--overload]
//                 [--shards N] [--chaos] [--sweep-shards]
//                 [--tenants [K]] [--noisy] [--sweep-tenants] [--json <path>]
//
// --overload adds the overload experiment (docs/PERFORMANCE.md): the same
// stream re-fired as a 10x burst — paced arrivals at ten times the measured
// sequential service rate — with a seeded mix of interactive/batch
// priorities and per-request deadlines, against a bounded reject-fast
// admission policy. Reported: shed rate, goodput, and p50/p99 over the
// *admitted* requests; the acceptance bar is admitted-p99 within 2x the
// non-overloaded p99. --seed controls the priority/deadline draw and is
// recorded in the JSON.
//
// --shards N serves the same stream through a ShardedSession of N engine
// shards; --chaos turns the run into the seeded chaos soak (docs/
// RELIABILITY.md): one seeded shard faults ~5% of its tiles until it
// "heals" (exercising quarantine, half-open probing, and reintegration),
// 1 in 10 requests carries a one-shot transient fault (exercising retry
// and failover), and 1 in 20 wedges briefly at a tile boundary. The exit
// code enforces the tier invariants: zero lost futures, every completed
// result bit-identical to the sequential engine, the stats conservation
// law, at least one retry actually exercised, and completed p99 under 3x
// the same-shard-count healthy tier's p99.
//
// --sweep-shards additionally records a 1/2/4-shard x healthy/chaos sweep
// (correctness invariants enforced; latencies informational).
//
// --tenants [K] runs the tenant-isolation experiment (docs/RELIABILITY.md):
// K well-behaved tenants (default 4) send paced, staggered interactive
// ViL-28x28 traffic through a 1-shard tier with the shared plan store and
// the DWRR fairness layer on. --noisy adds the noisy neighbor: an
// "aggressor" tenant flooding small batch-class ViL-14x14 requests at ~10x
// a well-behaved tenant's rate against its own {weight 1, reject_fast,
// max_queue 4} quota. The exit code then enforces the isolation gates:
//   (a) every well-behaved tenant's p99 stays under 2x its solo-run p99
//       (solo baseline floored at 10 ms),
//   (b) the aggressor's excess is shed against its own quota — the
//       well-behaved tenants see zero QueueFull while the aggressor sees
//       at least one,
//   (c) the stats conservation law holds per tenant and globally (and the
//       per-tenant breakdown sums to the global counters),
//   (d) every completed result is bit-identical to the sequential engine.
//
// --sweep-tenants records the same mix at K = 2, 4, 8 (correctness gates
// (b)-(d) enforced; latencies informational).
//
// --json writes the machine-readable snapshot recorded as
// BENCH_serving.json at the repo root (CMake target bench_serving_json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/salo.hpp"
#include "sim/kernels.hpp"
#include "workload/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

bool identical(const salo::LayerResult& a, const salo::LayerResult& b) {
    if (a.stats.cycles != b.stats.cycles || a.stats.tiles != b.stats.tiles) return false;
    if (a.output.count() != b.output.count()) return false;
    for (int h = 0; h < a.output.count(); ++h)
        if (salo::max_abs_diff(a.output[h], b.output[h]) != 0.0) return false;
    return true;
}

/// One ShardedSession run of the pre-generated stream — healthy or under
/// the seeded chaos mix — with per-request latency stamps and the tier
/// invariants evaluated locally.
struct TierRunResult {
    int shards = 0;
    bool chaos = false;
    double wall_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0, throughput_rps = 0.0;
    salo::SessionStats stats;
    int lost = 0;             ///< futures never ready within the await budget
    bool identical_ok = true; ///< every completed result vs sequential
    bool conserved = true;    ///< the stats conservation law
    int bad_shard = -1;
    std::uint64_t shard_faults = 0, transient_faults = 0, stalls = 0;
};

TierRunResult run_tier(const salo::SaloConfig& config, int shards, bool chaos,
                       std::uint64_t seed,
                       const std::vector<const salo::AttentionWorkload*>& req_shape,
                       const std::vector<salo::QkvSet>& req_qkv,
                       const std::vector<salo::LayerResult>& expected) {
    using namespace salo;
    const int n = static_cast<int>(req_shape.size());
    TierRunResult out;
    out.shards = shards;
    out.chaos = chaos;

    ShardedSessionOptions options;
    options.num_shards = shards;
    options.retry.max_attempts = 4;
    options.retry.jitter_seed = seed;
    options.stall_timeout = std::chrono::milliseconds(250);
    options.health.window = 8;
    options.health.min_samples = 4;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = std::chrono::milliseconds(25);
    options.health.reintegrate_after = 2;

    // Shard-level chaos: one seeded shard faults ~5% of its tile indices
    // (deterministic per (seed, tile)) for its first 20 faults, then heals —
    // long enough to trip the breaker, short enough that half-open probes
    // find it clean and reintegrate it mid-run.
    std::shared_ptr<FaultInjector> bad_injector;
    if (chaos) {
        Rng pick(seed ^ 0xC4A05EEDull);
        out.bad_shard = static_cast<int>(pick.uniform_index(
            static_cast<std::uint64_t>(shards)));
        FaultInjector::Config fc;
        fc.seed = seed;
        fc.tile_fault_rate = 0.05;
        fc.max_faults = 20;
        bad_injector = std::make_shared<FaultInjector>(fc);
        options.shard_fault_injectors.assign(static_cast<std::size_t>(shards), nullptr);
        options.shard_fault_injectors[static_cast<std::size_t>(out.bad_shard)] =
            bad_injector;
    }

    ShardedSession tier(config, options);

    // Request-level chaos, deterministic per seed: 1 in 10 requests faults
    // its first attempt once (retry/failover path), 1 in 20 wedges 5 ms at
    // a tile boundary (latency noise under the stall bound).
    const int fault_phase = static_cast<int>(seed % 10);
    // +1 keeps the stall phase off the fault phase mod 10, so both kinds of
    // chaos actually occur.
    const int stall_phase = static_cast<int>((seed + 1) % 20);
    std::vector<std::shared_ptr<FaultInjector>> injectors(
        static_cast<std::size_t>(n));
    std::vector<std::future<LayerResult>> futures;
    std::vector<Clock::time_point> submit_at(static_cast<std::size_t>(n));
    futures.reserve(static_cast<std::size_t>(n));
    const auto t0 = Clock::now();
    for (int i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        AttentionRequest r =
            make_request(req_shape[idx]->pattern, req_qkv[idx].q, req_qkv[idx].k,
                         req_qkv[idx].v, req_shape[idx]->scale());
        if (chaos) {
            FaultInjector::Config fc;
            if (i % 10 == fault_phase) {
                fc.fault_tiles = {0};
                fc.max_faults = 1;
                injectors[idx] = std::make_shared<FaultInjector>(fc);
            } else if (i % 20 == stall_phase) {
                fc.stall_tiles = {0};
                fc.stall_for = std::chrono::milliseconds(5);
                fc.max_stalls = 1;
                injectors[idx] = std::make_shared<FaultInjector>(fc);
            }
            r.fault_injector = injectors[idx];
        }
        submit_at[idx] = Clock::now();
        futures.push_back(tier.submit(std::move(r)));
    }

    // Await every future under a global budget: a future still unready when
    // the budget expires is *lost* — the invariant the soak exists to catch.
    std::vector<double> latency_ms(static_cast<std::size_t>(n), -1.0);
    const Clock::time_point await_deadline = Clock::now() + std::chrono::seconds(120);
    int remaining = n;
    while (remaining > 0 && Clock::now() < await_deadline) {
        for (int i = 0; i < n; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            if (latency_ms[idx] >= 0.0) continue;
            if (futures[idx].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                latency_ms[idx] = ms_between(submit_at[idx], Clock::now());
                --remaining;
            }
        }
        if (remaining > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    out.lost = remaining;
    out.wall_ms = ms_between(t0, Clock::now());

    std::vector<double> completed_ms;
    for (int i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (latency_ms[idx] < 0.0) continue;  // lost: leave it to the gate
        try {
            const LayerResult r = futures[idx].get();
            completed_ms.push_back(latency_ms[idx]);
            if (!identical(expected[idx], r)) out.identical_ok = false;
        } catch (const SaloError&) {
            // failed / timed_out / cancelled / rejected: classified by the
            // tier's own counters below.
        }
    }
    tier.close();

    out.stats = tier.stats();
    out.conserved = out.stats.accounted() == out.stats.submitted;
    out.throughput_rps = 1000.0 * static_cast<double>(completed_ms.size()) / out.wall_ms;
    out.p50_ms = percentile(completed_ms, 0.50);
    out.p99_ms = percentile(completed_ms, 0.99);
    if (bad_injector) out.shard_faults = bad_injector->faults_injected();
    for (const auto& inj : injectors) {
        if (!inj) continue;
        out.transient_faults += inj->faults_injected();
        out.stalls += inj->stalls_injected();
    }
    return out;
}

void print_tier(const TierRunResult& t) {
    std::printf("tier[%d shard%s, %s]        %9.1f ms  (%.1f req/s)  "
                "p50 %.1f ms, p99 %.1f ms\n",
                t.shards, t.shards == 1 ? "" : "s", t.chaos ? "chaos" : "healthy",
                t.wall_ms, t.throughput_rps, t.p50_ms, t.p99_ms);
    std::printf("  completed %llu / %llu (failed %llu), retried %llu, "
                "failed_over %llu\n",
                static_cast<unsigned long long>(t.stats.completed),
                static_cast<unsigned long long>(t.stats.submitted),
                static_cast<unsigned long long>(t.stats.failed),
                static_cast<unsigned long long>(t.stats.retried),
                static_cast<unsigned long long>(t.stats.failed_over));
    if (t.chaos)
        std::printf("  bad shard %d: %llu shard faults; %llu transient faults, "
                    "%llu stalls; quarantined %llu, reintegrated %llu\n",
                    t.bad_shard, static_cast<unsigned long long>(t.shard_faults),
                    static_cast<unsigned long long>(t.transient_faults),
                    static_cast<unsigned long long>(t.stalls),
                    static_cast<unsigned long long>(t.stats.quarantined_shard_events),
                    static_cast<unsigned long long>(t.stats.reintegrated_shard_events));
    std::printf("  lost futures: %d; conservation law holds: %s; completed "
                "bit-identical: %s\n",
                t.lost, t.conserved ? "yes" : "NO — BUG",
                t.identical_ok ? "yes" : "NO — BUG");
}

/// The invariants every tier run must satisfy, chaos or not.
bool tier_invariants_ok(const TierRunResult& t) {
    return t.lost == 0 && t.conserved && t.identical_ok;
}

void tier_json(std::ostream& os, const TierRunResult& t, const char* indent) {
    os << indent << "{\n"
       << indent << "  \"shards\": " << t.shards << ",\n"
       << indent << "  \"chaos\": " << (t.chaos ? "true" : "false") << ",\n"
       << indent << "  \"wall_ms\": " << t.wall_ms << ",\n"
       << indent << "  \"throughput_rps\": " << t.throughput_rps << ",\n"
       << indent << "  \"latency_p50_ms\": " << t.p50_ms << ",\n"
       << indent << "  \"latency_p99_ms\": " << t.p99_ms << ",\n"
       << indent << "  \"submitted\": " << t.stats.submitted << ",\n"
       << indent << "  \"completed\": " << t.stats.completed << ",\n"
       << indent << "  \"failed\": " << t.stats.failed << ",\n"
       << indent << "  \"retried\": " << t.stats.retried << ",\n"
       << indent << "  \"failed_over\": " << t.stats.failed_over << ",\n"
       << indent << "  \"quarantined_shard_events\": "
       << t.stats.quarantined_shard_events << ",\n"
       << indent << "  \"reintegrated_shard_events\": "
       << t.stats.reintegrated_shard_events << ",\n"
       << indent << "  \"lost_futures\": " << t.lost << ",\n"
       << indent << "  \"conserved\": " << (t.conserved ? "true" : "false") << ",\n"
       << indent << "  \"completed_bit_identical\": "
       << (t.identical_ok ? "true" : "false") << "\n"
       << indent << "}";
}

// -------------------------------------------------------------------------
// Tenant isolation: K paced well-behaved tenants vs one flooding aggressor.
// -------------------------------------------------------------------------

/// The fixed shapes + pre-generated inputs/expected outputs of the tenant
/// mix. Well-behaved tenants send the large vision shape interactive; the
/// aggressor floods the small one batch-class. Inputs come from small
/// per-role pools so the sequential baseline stays cheap while bit-identity
/// is still checked per request.
struct TenantMix {
    salo::AttentionWorkload wb_shape;
    salo::AttentionWorkload ag_shape;
    std::vector<salo::QkvSet> wb_qkv, ag_qkv;
    std::vector<salo::LayerResult> wb_expected, ag_expected;
    double wb_service_ms = 1.0;  ///< measured sequential service time
};

TenantMix make_tenant_mix(const salo::SaloConfig& config, std::uint64_t seed) {
    using namespace salo;
    AttentionWorkload vil = vil_stage2();
    vil.pattern = vil_2d(28, 28, 9, 9, 1);
    vil.heads = 2;
    vil.window = 9 * 9;
    vil.name = "ViL-28x28";
    AttentionWorkload vil_small = vil;
    vil_small.pattern = vil_2d(14, 14, 7, 7, 1);
    vil_small.window = 7 * 7;
    vil_small.name = "ViL-14x14";
    TenantMix mix{std::move(vil), std::move(vil_small)};

    const SaloEngine sequential(config);
    constexpr int kPool = 3;
    for (int i = 0; i < kPool; ++i) {
        mix.wb_qkv.push_back(make_qkv(mix.wb_shape, seed + 100 + static_cast<std::uint64_t>(i)));
        mix.ag_qkv.push_back(make_qkv(mix.ag_shape, seed + 200 + static_cast<std::uint64_t>(i)));
    }
    const auto t0 = Clock::now();
    for (int i = 0; i < kPool; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        mix.wb_expected.push_back(sequential.run(mix.wb_shape.pattern, mix.wb_qkv[idx].q,
                                                 mix.wb_qkv[idx].k, mix.wb_qkv[idx].v,
                                                 mix.wb_shape.scale()));
    }
    mix.wb_service_ms = std::max(ms_between(t0, Clock::now()) / kPool, 0.2);
    for (int i = 0; i < kPool; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        mix.ag_expected.push_back(sequential.run(mix.ag_shape.pattern, mix.ag_qkv[idx].q,
                                                 mix.ag_qkv[idx].k, mix.ag_qkv[idx].v,
                                                 mix.ag_shape.scale()));
    }
    return mix;
}

struct TenantPerf {
    std::string name;
    std::uint64_t sent = 0, completed = 0, rejected = 0, other = 0;
    double p50_ms = 0.0, p99_ms = 0.0;
};

struct TenantRunResult {
    int wb_tenants = 0;
    bool noisy = false;
    double wall_ms = 0.0, interval_ms = 0.0;
    std::vector<TenantPerf> wb;
    TenantPerf aggressor;
    salo::SessionStats stats;
    std::map<std::string, salo::TenantStats> per_tenant;
    int lost = 0;
    bool identical_ok = true;      ///< gate (d)
    bool conserved = true;         ///< gate (c), global + per tenant + sums
    bool wb_zero_rejects = true;   ///< gate (b), well-behaved side
    bool aggressor_shed = false;   ///< gate (b), aggressor side (noisy only)
    std::uint64_t shared_store_compiles = 0;
};

/// One run of the tenant mix: K well-behaved tenants paced at one request
/// per `interval` each (starts staggered across the interval), plus — when
/// `noisy` — the aggressor flooding 10x a well-behaved tenant's request
/// count with no pacing at all.
TenantRunResult run_tenants(const salo::SaloConfig& config, int wb_tenants, bool noisy,
                            int per_wb, double interval_ms, std::uint64_t seed,
                            const TenantMix& mix) {
    using namespace salo;
    TenantRunResult out;
    out.wb_tenants = wb_tenants;
    out.noisy = noisy;
    out.interval_ms = interval_ms;

    ShardedSessionOptions options;
    // One shard, one router lane: on a small host the isolation signal is
    // the scheduler's pick order, not parallelism — more lanes would only
    // let the OS scheduler blur what DWRR decides.
    options.num_shards = 1;
    options.router_workers = 1;
    options.shared_plan_store = true;
    options.retry.max_attempts = 2;
    options.retry.jitter_seed = seed;
    if (noisy) {
        TenantQuota quota;
        quota.weight = 1.0;
        quota.admission.mode = AdmissionMode::reject_fast;
        quota.admission.max_queue = 4;
        options.fairness.tenants["aggressor"] = quota;
    }
    ShardedSession tier(config, options);

    const int flood_n = noisy ? 10 * per_wb : 0;
    const int total = wb_tenants * per_wb + flood_n;
    std::vector<std::future<LayerResult>> futures(static_cast<std::size_t>(total));
    std::vector<Clock::time_point> submit_at(static_cast<std::size_t>(total));
    std::vector<const LayerResult*> expect_of(static_cast<std::size_t>(total), nullptr);

    // Each submitter owns a disjoint slot range; joins below publish the
    // writes before the await sweep reads them.
    const auto start = Clock::now() + std::chrono::milliseconds(5);
    std::vector<std::thread> senders;
    for (int t = 0; t < wb_tenants; ++t) {
        senders.emplace_back([&, t] {
            const double stagger = interval_ms * static_cast<double>(t) /
                                   static_cast<double>(wb_tenants);
            for (int j = 0; j < per_wb; ++j) {
                std::this_thread::sleep_until(
                    start + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    stagger + interval_ms * j)));
                const std::size_t pool =
                    static_cast<std::size_t>(t + j) % mix.wb_qkv.size();
                const std::size_t slot = static_cast<std::size_t>(t * per_wb + j);
                AttentionRequest r = make_request(mix.wb_shape.pattern,
                                                  mix.wb_qkv[pool].q, mix.wb_qkv[pool].k,
                                                  mix.wb_qkv[pool].v, mix.wb_shape.scale());
                r.tenant_id = "wb-" + std::to_string(t);
                expect_of[slot] = &mix.wb_expected[pool];
                submit_at[slot] = Clock::now();
                futures[slot] = tier.submit(std::move(r));
            }
        });
    }
    if (noisy) {
        senders.emplace_back([&] {
            std::this_thread::sleep_until(start);
            for (int j = 0; j < flood_n; ++j) {
                const std::size_t pool = static_cast<std::size_t>(j) % mix.ag_qkv.size();
                const std::size_t slot = static_cast<std::size_t>(wb_tenants * per_wb + j);
                AttentionRequest r = make_request(mix.ag_shape.pattern,
                                                  mix.ag_qkv[pool].q, mix.ag_qkv[pool].k,
                                                  mix.ag_qkv[pool].v, mix.ag_shape.scale());
                r.tenant_id = "aggressor";
                r.priority = Priority::batch;
                expect_of[slot] = &mix.ag_expected[pool];
                submit_at[slot] = Clock::now();
                futures[slot] = tier.submit(std::move(r));
            }
        });
    }
    const auto t0 = Clock::now();
    for (auto& s : senders) s.join();

    // Await with readiness stamping (same scheme as run_tier).
    std::vector<double> latency_ms(static_cast<std::size_t>(total), -1.0);
    const Clock::time_point await_deadline = Clock::now() + std::chrono::seconds(120);
    int remaining = total;
    while (remaining > 0 && Clock::now() < await_deadline) {
        for (int i = 0; i < total; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            if (latency_ms[idx] >= 0.0) continue;
            if (futures[idx].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                latency_ms[idx] = ms_between(submit_at[idx], Clock::now());
                --remaining;
            }
        }
        if (remaining > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    out.lost = remaining;
    out.wall_ms = ms_between(t0, Clock::now());

    // Classify per tenant.
    out.wb.resize(static_cast<std::size_t>(wb_tenants));
    for (int t = 0; t < wb_tenants; ++t)
        out.wb[static_cast<std::size_t>(t)].name = "wb-" + std::to_string(t);
    out.aggressor.name = "aggressor";
    std::vector<std::vector<double>> wb_ms(static_cast<std::size_t>(wb_tenants));
    for (int i = 0; i < total; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool is_wb = i < wb_tenants * per_wb;
        TenantPerf& perf = is_wb ? out.wb[static_cast<std::size_t>(i / per_wb)]
                                 : out.aggressor;
        ++perf.sent;
        if (latency_ms[idx] < 0.0) continue;  // lost: already gated
        try {
            const LayerResult r = futures[idx].get();
            ++perf.completed;
            if (is_wb) wb_ms[static_cast<std::size_t>(i / per_wb)].push_back(latency_ms[idx]);
            if (!identical(*expect_of[idx], r)) out.identical_ok = false;
        } catch (const QueueFull&) {
            ++perf.rejected;
        } catch (const std::exception&) {
            ++perf.other;
        }
    }
    for (int t = 0; t < wb_tenants; ++t) {
        TenantPerf& perf = out.wb[static_cast<std::size_t>(t)];
        perf.p50_ms = percentile(wb_ms[static_cast<std::size_t>(t)], 0.50);
        perf.p99_ms = percentile(wb_ms[static_cast<std::size_t>(t)], 0.99);
        if (perf.rejected > 0) out.wb_zero_rejects = false;
    }
    out.aggressor_shed = out.aggressor.rejected >= 1;
    tier.close();

    out.stats = tier.stats();
    out.per_tenant = tier.tenant_stats();
    if (tier.shared_plan_store())
        out.shared_store_compiles = tier.shared_plan_store()->stats().compiles;
    out.conserved = out.stats.accounted() == out.stats.submitted;
    std::uint64_t sum_submitted = 0, sum_accounted = 0;
    for (const auto& [name, ts] : out.per_tenant) {
        if (ts.accounted() != ts.submitted) out.conserved = false;
        sum_submitted += ts.submitted;
        sum_accounted += ts.accounted();
        (void)name;
    }
    if (sum_submitted != out.stats.submitted || sum_accounted != out.stats.accounted())
        out.conserved = false;
    return out;
}

void print_tenants(const TenantRunResult& r, double solo_p99_ms) {
    std::printf("tenant mix [%d well-behaved%s]  %9.1f ms wall, "
                "interval %.1f ms/tenant\n",
                r.wb_tenants, r.noisy ? " + aggressor" : "", r.wall_ms, r.interval_ms);
    for (const TenantPerf& t : r.wb)
        std::printf("  %-10s sent %3llu, completed %3llu, rejected %llu; "
                    "p50 %.1f ms, p99 %.1f ms\n",
                    t.name.c_str(), static_cast<unsigned long long>(t.sent),
                    static_cast<unsigned long long>(t.completed),
                    static_cast<unsigned long long>(t.rejected), t.p50_ms, t.p99_ms);
    if (r.noisy)
        std::printf("  %-10s sent %3llu, completed %3llu, rejected %llu "
                    "(shed against its own quota)\n",
                    r.aggressor.name.c_str(),
                    static_cast<unsigned long long>(r.aggressor.sent),
                    static_cast<unsigned long long>(r.aggressor.completed),
                    static_cast<unsigned long long>(r.aggressor.rejected));
    std::printf("  shared plan store compiles: %llu (tier-wide); lost futures: %d\n",
                static_cast<unsigned long long>(r.shared_store_compiles), r.lost);
    std::printf("  conservation (per tenant + global): %s; completed bit-identical: %s\n",
                r.conserved ? "yes" : "NO — BUG", r.identical_ok ? "yes" : "NO — BUG");
    if (solo_p99_ms > 0.0)
        std::printf("  solo baseline p99 %.1f ms (gate floor 10 ms)\n", solo_p99_ms);
}

void tenants_json(std::ostream& os, const TenantRunResult& r, const char* indent) {
    os << indent << "{\n"
       << indent << "  \"wb_tenants\": " << r.wb_tenants << ",\n"
       << indent << "  \"noisy\": " << (r.noisy ? "true" : "false") << ",\n"
       << indent << "  \"wall_ms\": " << r.wall_ms << ",\n"
       << indent << "  \"interval_ms\": " << r.interval_ms << ",\n"
       << indent << "  \"wb\": [\n";
    for (std::size_t i = 0; i < r.wb.size(); ++i) {
        const TenantPerf& t = r.wb[i];
        os << indent << "    {\"name\": \"" << t.name << "\", \"sent\": " << t.sent
           << ", \"completed\": " << t.completed << ", \"rejected\": " << t.rejected
           << ", \"p50_ms\": " << t.p50_ms << ", \"p99_ms\": " << t.p99_ms << "}"
           << (i + 1 < r.wb.size() ? "," : "") << "\n";
    }
    os << indent << "  ],\n"
       << indent << "  \"aggressor\": {\"sent\": " << r.aggressor.sent
       << ", \"completed\": " << r.aggressor.completed
       << ", \"rejected\": " << r.aggressor.rejected << "},\n"
       << indent << "  \"shared_store_compiles\": " << r.shared_store_compiles << ",\n"
       << indent << "  \"lost_futures\": " << r.lost << ",\n"
       << indent << "  \"wb_zero_rejects\": " << (r.wb_zero_rejects ? "true" : "false")
       << ",\n"
       << indent << "  \"aggressor_shed\": " << (r.aggressor_shed ? "true" : "false")
       << ",\n"
       << indent << "  \"conserved\": " << (r.conserved ? "true" : "false") << ",\n"
       << indent << "  \"completed_bit_identical\": "
       << (r.identical_ok ? "true" : "false") << "\n"
       << indent << "}";
}

/// Correctness gates every tenant run must satisfy ((b)-(d); the p99 gate
/// (a) is evaluated only for the explicit --noisy run).
bool tenant_invariants_ok(const TenantRunResult& r) {
    const bool shed_ok = !r.noisy || (r.wb_zero_rejects && r.aggressor_shed);
    return r.lost == 0 && r.conserved && r.identical_ok && shed_ok;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace salo;

    bool quick = false;
    bool overload = false;
    bool chaos = false;
    bool sweep_shards = false;
    bool tenants = false;
    bool noisy = false;
    bool sweep_tenants = false;
    int wb_tenants = 4;
    int shards = 0;
    int num_requests = 48;
    std::uint64_t seed = 42;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--overload") == 0) overload = true;
        else if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
        else if (std::strcmp(argv[i], "--sweep-shards") == 0) sweep_shards = true;
        else if (std::strcmp(argv[i], "--noisy") == 0) { noisy = true; tenants = true; }
        else if (std::strcmp(argv[i], "--sweep-tenants") == 0) sweep_tenants = true;
        else if (std::strcmp(argv[i], "--tenants") == 0) {
            tenants = true;
            if (i + 1 < argc && argv[i + 1][0] >= '0' && argv[i + 1][0] <= '9')
                wb_tenants = std::atoi(argv[++i]);
        }
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            shards = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            num_requests = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::cerr << "usage: bench_serving [--quick] [--requests N] [--seed S] "
                         "[--overload] [--shards N] [--chaos] [--sweep-shards] "
                         "[--tenants [K]] [--noisy] [--sweep-tenants] [--json path]\n";
            return 2;
        }
    }
    if (quick) num_requests = std::min(num_requests, 16);
    if (num_requests < 1) num_requests = 1;
    if (wb_tenants < 1) wb_tenants = 1;
    if (chaos && shards <= 0) shards = 4;  // the soak needs a tier to degrade

    // The mixed stream: one NLP shape, two vision shapes (paper Table 2
    // families, scaled so a full stream finishes in seconds at functional
    // fidelity on one core).
    std::vector<AttentionWorkload> shapes;
    shapes.push_back(longformer_small(1024, 128, 4, 64, 1));
    {
        AttentionWorkload vil = vil_stage2();
        vil.pattern = vil_2d(28, 28, 9, 9, 1);
        vil.heads = 2;
        vil.window = 9 * 9;
        vil.name = "ViL-28x28";
        shapes.push_back(vil);
        AttentionWorkload vil_small = vil;
        vil_small.pattern = vil_2d(14, 14, 7, 7, 1);
        vil_small.window = 7 * 7;
        vil_small.name = "ViL-14x14";
        shapes.push_back(vil_small);
    }

    const SaloConfig config;  // default geometry, hardware-threads lanes
    std::printf("mixed serving stream: %d requests over %zu shapes "
                "(%s interleaved)\n",
                num_requests, shapes.size(), "Longformer-1024 + ViL-28x28 + ViL-14x14");
    std::printf("kernel ISA: %s, hardware threads: %d, lanes: %d\n\n",
                kernels::isa_name(), default_num_threads(), config.effective_threads());

    // Pre-generate the whole stream so generation cost never pollutes the
    // serving measurement.
    std::vector<const AttentionWorkload*> req_shape;
    std::vector<QkvSet> req_qkv;
    req_shape.reserve(static_cast<std::size_t>(num_requests));
    req_qkv.reserve(static_cast<std::size_t>(num_requests));
    for (int i = 0; i < num_requests; ++i) {
        const AttentionWorkload& w = shapes[static_cast<std::size_t>(i) % shapes.size()];
        req_shape.push_back(&w);
        req_qkv.push_back(make_qkv(w, 7000 + static_cast<std::uint64_t>(i)));
    }

    // --- Sequential baseline: synchronous one-shot engine calls ----------
    const SaloEngine sequential(config);
    std::vector<LayerResult> expected;
    expected.reserve(static_cast<std::size_t>(num_requests));
    const auto seq0 = Clock::now();
    for (int i = 0; i < num_requests; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        expected.push_back(sequential.run(req_shape[idx]->pattern, req_qkv[idx].q,
                                          req_qkv[idx].k, req_qkv[idx].v,
                                          req_shape[idx]->scale()));
    }
    const double sequential_ms = ms_between(seq0, Clock::now());
    std::printf("%-26s %9.1f ms  (%.1f req/s)\n", "sequential_engine",
                sequential_ms, 1000.0 * num_requests / sequential_ms);

    // --- Session serving: burst-submit, await in order --------------------
    // Requests carry their *pattern*, not a precompiled plan: the session
    // resolves every request through the PlanCache, so the stream measures
    // the compile -> cache -> submit lifecycle end to end (3 misses for the
    // 3 distinct shapes, hits for everything after).
    SaloSession session(config);
    std::vector<std::future<LayerResult>> futures;
    std::vector<Clock::time_point> submit_at;
    futures.reserve(static_cast<std::size_t>(num_requests));
    submit_at.reserve(static_cast<std::size_t>(num_requests));
    const auto serve0 = Clock::now();
    for (int i = 0; i < num_requests; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        submit_at.push_back(Clock::now());
        futures.push_back(session.submit(req_shape[idx]->pattern, req_qkv[idx].q,
                                         req_qkv[idx].k, req_qkv[idx].v,
                                         req_shape[idx]->scale()));
    }
    // Stamp each request when its future becomes ready, not in submission
    // order: in a batch-of-N, lanes finish out of order, and head-of-line
    // waiting would inflate the recorded latency of early finishers. The
    // polling sweep bounds the stamping error at ~the sweep interval,
    // far below the ms-scale latencies measured here.
    std::vector<double> latency_ms(static_cast<std::size_t>(num_requests), -1.0);
    int remaining = num_requests;
    while (remaining > 0) {
        for (int i = 0; i < num_requests; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            if (latency_ms[idx] >= 0.0) continue;
            if (futures[idx].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                latency_ms[idx] = ms_between(submit_at[idx], Clock::now());
                --remaining;
            }
        }
        // 1 ms sweep: invisible next to the ~100 ms request latencies, and
        // keeps the measuring thread from competing with serving lanes on
        // low-core hosts.
        if (remaining > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<LayerResult> served;
    served.reserve(static_cast<std::size_t>(num_requests));
    for (int i = 0; i < num_requests; ++i)
        served.push_back(futures[static_cast<std::size_t>(i)].get());
    const double session_ms = ms_between(serve0, Clock::now());
    session.drain();

    bool bit_identical = true;
    for (int i = 0; i < num_requests; ++i)
        if (!identical(expected[static_cast<std::size_t>(i)],
                       served[static_cast<std::size_t>(i)]))
            bit_identical = false;

    const SessionStats stats = session.stats();
    const double throughput = 1000.0 * num_requests / session_ms;
    const double p50 = percentile(latency_ms, 0.50);
    const double p99 = percentile(latency_ms, 0.99);

    std::printf("%-26s %9.1f ms  (%.1f req/s, %.2fx vs sequential)\n", "session_serving",
                session_ms, throughput, sequential_ms / session_ms);
    std::printf("request latency            p50 %.1f ms, p99 %.1f ms\n", p50, p99);
    std::printf("batches: %llu (largest %zu)\n",
                static_cast<unsigned long long>(stats.batches), stats.max_batch);
    std::printf("plan cache                 %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(stats.plan_cache.hits),
                static_cast<unsigned long long>(stats.plan_cache.misses),
                100.0 * stats.plan_cache.hit_rate());
    std::printf("bit-identical to sequential: %s\n", bit_identical ? "yes" : "NO — BUG");

    // --- Overload: 10x burst against a bounded reject-fast front door -----
    struct OverloadResult {
        bool ran = false;
        std::uint64_t submitted = 0, completed = 0, rejected = 0, timed_out = 0,
                      cancelled = 0, failed = 0;
        double shed_rate = 0.0, goodput_rps = 0.0, p50 = 0.0, p99 = 0.0,
               p99_ratio = 0.0, wall_ms = 0.0, arrival_interval_ms = 0.0;
        std::size_t max_queue = 0, max_queue_batch = 0;
        bool identical_ok = true;
    } ov;

    if (overload) {
        // Offered load: arrivals paced at 10x the measured sequential
        // service rate, so the burst genuinely outruns capacity instead of
        // measuring one giant enqueue.
        const double mean_service_ms = sequential_ms / num_requests;
        ov.arrival_interval_ms = mean_service_ms / 10.0;

        SessionOptions options;
        options.admission.mode = AdmissionMode::reject_fast;
        options.admission.max_queue =
            std::max<std::size_t>(4, static_cast<std::size_t>(num_requests) / 2);
        options.admission.max_queue_batch =
            std::max<std::size_t>(2, options.admission.max_queue / 4);
        ov.max_queue = options.admission.max_queue;
        ov.max_queue_batch = options.admission.max_queue_batch;

        // Seeded request mix: ~half batch-class, a quarter carrying a
        // deadline a few service times out — deep-queue requests miss it
        // and are shed at dispatch, never reaching the engine.
        Rng mix(seed);
        SaloSession burst(config, options);
        std::vector<std::future<LayerResult>> ofutures;
        std::vector<Clock::time_point> osubmit(static_cast<std::size_t>(num_requests));
        ofutures.reserve(static_cast<std::size_t>(num_requests));
        const auto burst0 = Clock::now();
        for (int i = 0; i < num_requests; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            const auto arrive =
                burst0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 ov.arrival_interval_ms * i));
            std::this_thread::sleep_until(arrive);
            AttentionRequest r =
                make_request(req_shape[idx]->pattern, req_qkv[idx].q, req_qkv[idx].k,
                             req_qkv[idx].v, req_shape[idx]->scale());
            if (mix.uniform() < 0.5) r.priority = Priority::batch;
            if (mix.uniform() < 0.25)
                r.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                                std::chrono::duration<double, std::milli>(
                                                    6.0 * mean_service_ms));
            osubmit[idx] = Clock::now();
            ofutures.push_back(burst.submit(std::move(r)));
        }
        // Stamp readiness (admitted latency), then classify every outcome.
        std::vector<double> ready_ms(static_cast<std::size_t>(num_requests), -1.0);
        int oremaining = num_requests;
        while (oremaining > 0) {
            for (int i = 0; i < num_requests; ++i) {
                const auto idx = static_cast<std::size_t>(i);
                if (ready_ms[idx] >= 0.0) continue;
                if (ofutures[idx].wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                    ready_ms[idx] = ms_between(osubmit[idx], Clock::now());
                    --oremaining;
                }
            }
            if (oremaining > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ov.wall_ms = ms_between(burst0, Clock::now());
        std::vector<double> admitted_ms;
        for (int i = 0; i < num_requests; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            try {
                const LayerResult r = ofutures[idx].get();
                ++ov.completed;
                admitted_ms.push_back(ready_ms[idx]);
                if (!identical(expected[idx], r)) ov.identical_ok = false;
            } catch (const QueueFull&) {
                ++ov.rejected;
            } catch (const DeadlineExceeded&) {
                ++ov.timed_out;
            } catch (const RequestCancelled&) {
                ++ov.cancelled;
            } catch (const std::exception&) {
                ++ov.failed;
            }
        }
        burst.close();
        const SessionStats ostats = burst.stats();
        ov.ran = true;
        ov.submitted = ostats.submitted;
        ov.shed_rate = static_cast<double>(ov.rejected + ov.timed_out + ov.cancelled) /
                       static_cast<double>(num_requests);
        ov.goodput_rps = 1000.0 * static_cast<double>(ov.completed) / ov.wall_ms;
        ov.p50 = percentile(admitted_ms, 0.50);
        ov.p99 = percentile(admitted_ms, 0.99);
        ov.p99_ratio = p99 > 0.0 ? ov.p99 / p99 : 0.0;
        const bool conserved = ostats.accounted() == ostats.submitted;
        if (!conserved) ov.identical_ok = false;

        std::printf("\noverload burst (10x, seed %llu): %d requests, "
                    "max_queue %zu (batch cap %zu)\n",
                    static_cast<unsigned long long>(seed), num_requests, ov.max_queue,
                    ov.max_queue_batch);
        std::printf("  completed %llu, rejected %llu, timed_out %llu "
                    "(shed rate %.1f%%)\n",
                    static_cast<unsigned long long>(ov.completed),
                    static_cast<unsigned long long>(ov.rejected),
                    static_cast<unsigned long long>(ov.timed_out),
                    100.0 * ov.shed_rate);
        std::printf("  goodput %.1f req/s, admitted p50 %.1f ms, p99 %.1f ms "
                    "(%.2fx non-overloaded p99)\n",
                    ov.goodput_rps, ov.p50, ov.p99, ov.p99_ratio);
        std::printf("  conservation law holds: %s; admitted results bit-identical: %s\n",
                    conserved ? "yes" : "NO — BUG", ov.identical_ok ? "yes" : "NO — BUG");
    }

    // --- Sharded tier: healthy baseline, then the seeded chaos soak -------
    bool tier_ok = true;
    std::vector<TierRunResult> tier_runs;  // recorded to JSON
    double chaos_p99_ratio = 0.0;
    if (shards > 0) {
        std::printf("\nsharded tier: %d shards, seed %llu%s\n", shards,
                    static_cast<unsigned long long>(seed),
                    chaos ? " (chaos soak)" : "");
        const TierRunResult healthy =
            run_tier(config, shards, /*chaos=*/false, seed, req_shape, req_qkv, expected);
        print_tier(healthy);
        tier_runs.push_back(healthy);
        tier_ok = tier_ok && tier_invariants_ok(healthy);
        if (chaos) {
            const TierRunResult soak =
                run_tier(config, shards, /*chaos=*/true, seed, req_shape, req_qkv,
                         expected);
            print_tier(soak);
            tier_runs.push_back(soak);
            // The p99 bar floors the healthy baseline at 10 ms so a
            // microsecond-fast healthy tier cannot turn scheduling noise
            // into a gate failure.
            const double healthy_p99 = std::max(healthy.p99_ms, 10.0);
            chaos_p99_ratio = soak.p99_ms / healthy_p99;
            const bool soak_ok = tier_invariants_ok(soak) && soak.stats.retried >= 1 &&
                                 chaos_p99_ratio < 3.0;
            std::printf("  chaos p99 %.1f ms vs healthy p99 %.1f ms: %.2fx "
                        "(bar < 3x) -> %s\n",
                        soak.p99_ms, healthy.p99_ms, chaos_p99_ratio,
                        soak_ok ? "OK" : "FAIL");
            tier_ok = tier_ok && soak_ok;
        }
    }
    if (sweep_shards) {
        std::printf("\nshard sweep (healthy + chaos per width, seed %llu):\n",
                    static_cast<unsigned long long>(seed));
        for (const int width : {1, 2, 4}) {
            for (const bool with_chaos : {false, true}) {
                // Skip combinations the explicit --shards run already did.
                bool done = false;
                for (const TierRunResult& t : tier_runs)
                    if (t.shards == width && t.chaos == with_chaos) done = true;
                if (done) continue;
                const TierRunResult t = run_tier(config, width, with_chaos, seed,
                                                 req_shape, req_qkv, expected);
                print_tier(t);
                tier_runs.push_back(t);
                tier_ok = tier_ok && tier_invariants_ok(t);
            }
        }
    }

    // --- Tenant isolation: paced tenants vs the noisy neighbor ------------
    bool tenants_ok = true;
    std::vector<TenantRunResult> tenant_runs;  // recorded to JSON
    double solo_p99_ms = 0.0, worst_wb_ratio = 0.0;
    if (tenants || sweep_tenants) {
        const TenantMix mix = make_tenant_mix(config, seed);
        const int per_wb = quick ? 6 : 12;
        if (tenants) {
            // One request per `interval` per tenant; the interval scales
            // with K so the combined well-behaved load stays at ~half of
            // the single lane's capacity and isolation — not raw overload —
            // is what the gate measures.
            const double interval_ms =
                std::max(2.0 * wb_tenants * mix.wb_service_ms, 2.0 * wb_tenants);
            std::printf("\ntenant isolation: %d well-behaved tenant%s%s, seed %llu\n",
                        wb_tenants, wb_tenants == 1 ? "" : "s",
                        noisy ? " + 1 noisy aggressor (10x flood)" : "",
                        static_cast<unsigned long long>(seed));
            // Solo baseline: one tenant, same pacing, empty tier.
            const TenantRunResult solo =
                run_tenants(config, 1, /*noisy=*/false, per_wb, interval_ms, seed, mix);
            solo_p99_ms = solo.wb.empty() ? 0.0 : solo.wb[0].p99_ms;
            tenants_ok = tenants_ok && tenant_invariants_ok(solo);

            const TenantRunResult contested =
                run_tenants(config, wb_tenants, noisy, per_wb, interval_ms, seed, mix);
            print_tenants(contested, solo_p99_ms);
            tenant_runs.push_back(contested);
            tenants_ok = tenants_ok && tenant_invariants_ok(contested);
            if (noisy) {
                // Gate (a): every well-behaved tenant within 2x its solo
                // p99, the baseline floored at 10 ms so a microsecond-fast
                // solo run cannot turn scheduler noise into a failure.
                const double floor_p99 = std::max(solo_p99_ms, 10.0);
                for (const TenantPerf& t : contested.wb)
                    worst_wb_ratio = std::max(worst_wb_ratio, t.p99_ms / floor_p99);
                const bool fair = worst_wb_ratio < 2.0;
                std::printf("  worst wb p99 ratio vs solo: %.2fx (bar < 2x) -> %s\n",
                            worst_wb_ratio, fair ? "OK" : "FAIL");
                tenants_ok = tenants_ok && fair;
            }
        }
        if (sweep_tenants) {
            std::printf("\ntenant sweep (noisy mix, correctness gates, seed %llu):\n",
                        static_cast<unsigned long long>(seed));
            for (const int k : {2, 4, 8}) {
                bool done = false;
                for (const TenantRunResult& r : tenant_runs)
                    if (r.wb_tenants == k && r.noisy) done = true;
                if (done) continue;
                const double interval_ms =
                    std::max(2.0 * k * mix.wb_service_ms, 2.0 * k);
                const TenantRunResult r = run_tenants(config, k, /*noisy=*/true, per_wb,
                                                      interval_ms, seed, mix);
                print_tenants(r, 0.0);
                tenant_runs.push_back(r);
                tenants_ok = tenants_ok && tenant_invariants_ok(r);
            }
        }
    }

    if (!json_path.empty()) {
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::strftime(date, sizeof date, "%Y-%m-%d", std::gmtime(&now));
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"bench\": \"serving\",\n"
           << "  \"schema_version\": 1,\n"
           << "  \"date\": \"" << date << "\",\n"
           << "  \"mix\": \"longformer-1024x4h + vil-28x28x2h + vil-14x14x2h\",\n"
           << "  \"seed\": " << seed << ",\n"
           << "  \"num_requests\": " << num_requests << ",\n"
           << "  \"distinct_shapes\": " << shapes.size() << ",\n"
           << "  \"fidelity\": \"functional\",\n"
           << "  \"kernel_isa\": \"" << kernels::isa_name() << "\",\n"
           << "  \"hardware_threads\": " << default_num_threads() << ",\n"
           << "  \"sequential_ms\": " << sequential_ms << ",\n"
           << "  \"session_ms\": " << session_ms << ",\n"
           << "  \"throughput_rps\": " << throughput << ",\n"
           << "  \"latency_p50_ms\": " << p50 << ",\n"
           << "  \"latency_p99_ms\": " << p99 << ",\n"
           << "  \"speedup_vs_sequential\": " << sequential_ms / session_ms << ",\n"
           << "  \"batches\": " << stats.batches << ",\n"
           << "  \"max_batch\": " << stats.max_batch << ",\n"
           << "  \"plan_cache_hit_rate\": " << stats.plan_cache.hit_rate() << ",\n"
           << "  \"plan_cache_hits\": " << stats.plan_cache.hits << ",\n"
           << "  \"plan_cache_misses\": " << stats.plan_cache.misses << ",\n"
           << "  \"bit_identical\": " << (bit_identical ? "true" : "false");
        if (ov.ran) {
            os << ",\n  \"overload\": {\n"
               << "    \"burst_factor\": 10,\n"
               << "    \"arrival_interval_ms\": " << ov.arrival_interval_ms << ",\n"
               << "    \"admission_mode\": \"reject_fast\",\n"
               << "    \"max_queue\": " << ov.max_queue << ",\n"
               << "    \"max_queue_batch\": " << ov.max_queue_batch << ",\n"
               << "    \"submitted\": " << ov.submitted << ",\n"
               << "    \"completed\": " << ov.completed << ",\n"
               << "    \"rejected\": " << ov.rejected << ",\n"
               << "    \"timed_out\": " << ov.timed_out << ",\n"
               << "    \"cancelled\": " << ov.cancelled << ",\n"
               << "    \"failed\": " << ov.failed << ",\n"
               << "    \"shed_rate\": " << ov.shed_rate << ",\n"
               << "    \"goodput_rps\": " << ov.goodput_rps << ",\n"
               << "    \"admitted_p50_ms\": " << ov.p50 << ",\n"
               << "    \"admitted_p99_ms\": " << ov.p99 << ",\n"
               << "    \"p99_ratio_vs_baseline\": " << ov.p99_ratio << ",\n"
               << "    \"admitted_bit_identical\": "
               << (ov.identical_ok ? "true" : "false") << "\n"
               << "  }";
        }
        if (!tier_runs.empty()) {
            os << ",\n  \"shard_sweep\": [\n";
            for (std::size_t i = 0; i < tier_runs.size(); ++i) {
                tier_json(os, tier_runs[i], "    ");
                if (i + 1 < tier_runs.size()) os << ",";
                os << "\n";
            }
            os << "  ]";
            if (chaos) os << ",\n  \"chaos_p99_ratio\": " << chaos_p99_ratio;
        }
        if (!tenant_runs.empty()) {
            os << ",\n  \"tenant_isolation\": {\n"
               << "    \"solo_p99_ms\": " << solo_p99_ms << ",\n"
               << "    \"worst_wb_p99_ratio\": " << worst_wb_ratio << ",\n"
               << "    \"runs\": [\n";
            for (std::size_t i = 0; i < tenant_runs.size(); ++i) {
                tenants_json(os, tenant_runs[i], "      ");
                if (i + 1 < tenant_runs.size()) os << ",";
                os << "\n";
            }
            os << "    ]\n  }";
        }
        os << "\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    const bool overload_ok = !ov.ran || (ov.identical_ok && ov.p99_ratio < 2.0);
    return bit_identical && overload_ok && tier_ok && tenants_ok ? 0 : 1;
}
