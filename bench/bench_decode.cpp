// bench_decode: streaming-decode throughput and correctness gates.
//
//   bench_decode [--quick] [--steps N] [--seed S] [--json <path>] [--soak]
//
// Throughput mode (default): drives the DecodeSession at 1, 64 and 4096
// concurrent streams over a decode-compatible hybrid pattern (64-wide
// causal band + 2 global tokens) and reports tokens/s per level. The 4096
// streams share 64 seeded input classes, so correctness is affordable:
// one full per-prefix encode chain is computed per class, and EVERY step
// output of EVERY stream is byte-compared against row t of the full
// encode of the same prefix. The exit code enforces bit-identity at every
// level — the incremental micro-plan path must produce exactly the bits
// of re-running the whole prefix, at every concurrency.
//
// Soak mode (--soak): 64 streams with mixed step counts on a 2-shard tier
// whose shard 0 runs seeded fault injection. The exit code enforces the
// serving invariants under chaos: no lost futures (every submitted step
// resolves), only typed SaloErrors, bit-identity of every COMPLETED step,
// the stats conservation law with steps == submitted (globally and per
// tenant), and eviction bookkeeping (every failed stream counted). This
// is the `decode_soak` ctest, also run under TSan in CI.
//
// --json writes the machine-readable snapshot recorded as
// BENCH_decode.json at the repo root (see docs/PERFORMANCE.md for the
// tokens/s methodology).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/salo.hpp"
#include "sim/kernels.hpp"

namespace {

using namespace salo;

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

struct DecodeShape {
    std::vector<Band> bands = {Band{-63, 64, 1, 0}};
    std::vector<int> globals = {0, 1};
    int heads = 2;
    int head_dim = 32;
    float scale = 0.176777f;  // ~ 1/sqrt(32)

    HybridPattern pattern(int steps) const {
        std::vector<int> g;
        for (int x : globals)
            if (x < steps) g.push_back(x);
        return HybridPattern(steps, bands, g);
    }
};

/// One input class: per-position Q/K/V rows for `steps` positions.
struct InputClass {
    Tensor3<float> q, k, v;  // [heads][steps][d]
};

InputClass make_class(const DecodeShape& shape, int steps, std::uint64_t seed) {
    Rng rng(seed);
    InputClass c;
    c.q = random_tensor3(shape.heads, steps, shape.head_dim, rng);
    c.k = random_tensor3(shape.heads, steps, shape.head_dim, rng);
    c.v = random_tensor3(shape.heads, steps, shape.head_dim, rng);
    return c;
}

Matrix<float> row_of(const Tensor3<float>& all, int t, int heads, int d) {
    Matrix<float> row(heads, d, 0.0f);
    for (int h = 0; h < heads; ++h)
        for (int x = 0; x < d; ++x) row(h, x) = all[h](t, x);
    return row;
}

/// Reference chain for one input class: expected[t] = row t of the full
/// whole-sequence encode of prefix length t+1 (the only correct reference;
/// a global row attends later keys, so rows of longer encodes differ).
std::vector<Matrix<float>> reference_chain(const SaloEngine& engine,
                                           const DecodeShape& shape,
                                           const InputClass& cls, int steps) {
    const int heads = shape.heads, d = shape.head_dim;
    std::vector<Matrix<float>> expected;
    expected.reserve(static_cast<std::size_t>(steps));
    for (int t = 0; t < steps; ++t) {
        Tensor3<float> q(heads, t + 1, d), k(heads, t + 1, d), v(heads, t + 1, d);
        for (int h = 0; h < heads; ++h)
            for (int r = 0; r <= t; ++r)
                for (int x = 0; x < d; ++x) {
                    q[h](r, x) = cls.q[h](r, x);
                    k[h](r, x) = cls.k[h](r, x);
                    v[h](r, x) = cls.v[h](r, x);
                }
        const LayerResult full =
            engine.run(*engine.compile(shape.pattern(t + 1), d), q, k, v, shape.scale);
        Matrix<float> row(heads, d, 0.0f);
        for (int h = 0; h < heads; ++h)
            for (int x = 0; x < d; ++x) row(h, x) = full.output[h](t, x);
        expected.push_back(std::move(row));
    }
    return expected;
}

bool rows_equal(const Matrix<float>& a, const Matrix<float>& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            if (a(r, c) != b(r, c)) return false;
    return true;
}

struct LevelResult {
    int streams = 0;
    std::uint64_t steps_total = 0;
    double wall_ms = 0.0;
    double tokens_per_s = 0.0;
    bool bit_identical = true;
    std::uint64_t batches = 0;
    std::size_t max_batch = 0;
    std::uint64_t step_derives = 0;
    double plan_cache_hit_rate = 0.0;
};

/// Drive `num_streams` concurrent streams for `steps` positions each,
/// submitting in lockstep waves (wave t = step t of every live stream), and
/// byte-compare every step output against the class reference chains.
LevelResult run_level(const SaloConfig& config, const DecodeShape& shape,
                      const std::vector<InputClass>& classes,
                      const std::vector<std::vector<Matrix<float>>>& expected,
                      int num_streams, int steps) {
    LevelResult out;
    out.streams = num_streams;

    DecodeSessionOptions options;
    options.num_shards = 1;
    DecodeSession session(config, options);
    const HybridPattern pattern = shape.pattern(steps);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<StreamId> ids;
    ids.reserve(static_cast<std::size_t>(num_streams));
    for (int i = 0; i < num_streams; ++i)
        ids.push_back(session.open_stream(pattern, shape.heads, shape.head_dim,
                                          shape.scale));

    std::vector<std::future<StepResult>> futures(
        static_cast<std::size_t>(num_streams));
    for (int t = 0; t < steps; ++t) {
        for (int i = 0; i < num_streams; ++i) {
            const InputClass& cls = classes[static_cast<std::size_t>(i) % classes.size()];
            StepRequest req;
            req.q_row = row_of(cls.q, t, shape.heads, shape.head_dim);
            req.k_row = row_of(cls.k, t, shape.heads, shape.head_dim);
            req.v_row = row_of(cls.v, t, shape.heads, shape.head_dim);
            futures[static_cast<std::size_t>(i)] =
                session.step(ids[static_cast<std::size_t>(i)], std::move(req));
        }
        for (int i = 0; i < num_streams; ++i) {
            const StepResult step = futures[static_cast<std::size_t>(i)].get();
            ++out.steps_total;
            const std::vector<Matrix<float>>& exp =
                expected[static_cast<std::size_t>(i) % expected.size()];
            Matrix<float> got(shape.heads, shape.head_dim, 0.0f);
            for (int h = 0; h < shape.heads; ++h)
                for (int x = 0; x < shape.head_dim; ++x)
                    got(h, x) = step.output[h](0, x);
            if (!rows_equal(got, exp[static_cast<std::size_t>(t)]))
                out.bit_identical = false;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    session.close();

    out.wall_ms = ms_between(t0, t1);
    out.tokens_per_s = out.wall_ms > 0.0
                           ? static_cast<double>(out.steps_total) * 1000.0 / out.wall_ms
                           : 0.0;
    const SessionStats st = session.stats();
    out.batches = st.batches;
    out.max_batch = st.max_batch;
    out.step_derives = st.plan_cache.step_derives;
    out.plan_cache_hit_rate = st.plan_cache.hit_rate();
    if (st.completed != out.steps_total || st.steps != st.submitted)
        out.bit_identical = false;  // fold accounting breakage into the gate
    return out;
}

struct SoakResult {
    std::uint64_t submitted = 0;
    std::uint64_t resolved = 0;
    std::uint64_t completed = 0;
    std::uint64_t evicted_streams = 0;
    std::uint64_t failed = 0;
    bool typed_errors_only = true;
    bool bit_identical = true;
    bool conserved = true;
    bool tenants_conserved = true;
};

/// 64 streams, mixed step counts, 2 shards with seeded chaos on shard 0.
SoakResult run_soak(const SaloConfig& config, const DecodeShape& shape,
                    const std::vector<InputClass>& classes,
                    const std::vector<std::vector<Matrix<float>>>& expected,
                    int max_steps, std::uint64_t seed) {
    SoakResult out;
    const int num_streams = 64;

    DecodeSessionOptions options;
    options.num_shards = 2;
    // Micro-plans have only a couple of tiles, so a per-tile-index seeded
    // rate either always fires or never does; use the deterministic
    // triggers instead: the first `max_faults` shard-0 head-runs fault
    // (evicting their streams), and early runs also stall briefly for
    // timing jitter (useful under TSan).
    FaultInjector::Config chaos;
    chaos.seed = seed;
    chaos.fault_tiles = {0};
    chaos.max_faults = 6;
    chaos.stall_tiles = {1};
    chaos.stall_for = std::chrono::microseconds(200);
    chaos.max_stalls = 32;
    options.shard_fault_injectors = {std::make_shared<FaultInjector>(chaos), nullptr};
    // Quarantine aggressively so the soak exercises shard refusal too.
    options.health.window = 16;
    options.health.min_samples = 4;
    options.health.failure_threshold = 0.5;
    options.health.cooldown = std::chrono::milliseconds(20);
    DecodeSession session(config, options);

    const char* tenants[] = {"ant", "bee", "cricket", "dragonfly"};
    std::vector<StreamId> ids;
    std::vector<int> stream_steps;
    for (int i = 0; i < num_streams; ++i) {
        const int steps = 4 + (i * 7) % (max_steps - 3);
        stream_steps.push_back(steps);
        ids.push_back(session.open_stream(shape.pattern(steps), shape.heads,
                                          shape.head_dim, shape.scale,
                                          tenants[i % 4]));
    }

    std::vector<std::future<StepResult>> futures;
    std::vector<int> future_stream, future_step;
    for (int t = 0; t < max_steps; ++t) {
        futures.clear();
        future_stream.clear();
        future_step.clear();
        for (int i = 0; i < num_streams; ++i) {
            if (t >= stream_steps[static_cast<std::size_t>(i)]) continue;
            const InputClass& cls = classes[static_cast<std::size_t>(i) % classes.size()];
            StepRequest req;
            req.q_row = row_of(cls.q, t, shape.heads, shape.head_dim);
            req.k_row = row_of(cls.k, t, shape.heads, shape.head_dim);
            req.v_row = row_of(cls.v, t, shape.heads, shape.head_dim);
            futures.push_back(session.step(ids[static_cast<std::size_t>(i)],
                                           std::move(req)));
            future_stream.push_back(i);
            future_step.push_back(t);
            ++out.submitted;
        }
        for (std::size_t f = 0; f < futures.size(); ++f) {
            try {
                const StepResult step = futures[f].get();
                ++out.resolved;
                ++out.completed;
                const std::vector<Matrix<float>>& exp =
                    expected[static_cast<std::size_t>(future_stream[f]) %
                             expected.size()];
                Matrix<float> got(shape.heads, shape.head_dim, 0.0f);
                for (int h = 0; h < shape.heads; ++h)
                    for (int x = 0; x < shape.head_dim; ++x)
                        got(h, x) = step.output[h](0, x);
                if (!rows_equal(got,
                                exp[static_cast<std::size_t>(future_step[f])]))
                    out.bit_identical = false;
            } catch (const SaloError&) {
                ++out.resolved;  // typed failure: the contract under chaos
            } catch (...) {
                ++out.resolved;
                out.typed_errors_only = false;
            }
        }
    }
    session.close();

    const SessionStats st = session.stats();
    out.evicted_streams = st.evicted_streams;
    out.failed = st.failed;
    out.conserved = st.accounted() == st.submitted && st.steps == st.submitted &&
                    st.submitted == out.submitted;
    out.tenants_conserved = true;
    std::uint64_t tenant_submitted = 0;
    for (const auto& [name, ts] : session.tenant_stats()) {
        (void)name;
        if (ts.accounted() != ts.submitted || ts.steps != ts.submitted)
            out.tenants_conserved = false;
        tenant_submitted += ts.submitted;
    }
    if (tenant_submitted != st.submitted) out.tenants_conserved = false;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool soak = false;
    int steps = 32;
    std::uint64_t seed = 42;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--soak") == 0) soak = true;
        else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc)
            steps = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: bench_decode [--quick] [--soak] [--steps N] "
                         "[--seed S] [--json path]\n");
            return 2;
        }
    }
    if (quick) steps = std::min(steps, 8);
    if (steps < 4) steps = 4;

    const DecodeShape shape;
    SaloConfig config;
    config.plan_cache_capacity = 4 * steps;  // full + micro plan per position

    std::printf("streaming decode: band span %d + %zu globals, heads %d, d %d, "
                "%d steps per stream\n",
                decode_window_span(shape.bands), shape.globals.size(), shape.heads,
                shape.head_dim, steps);
    std::printf("kernel ISA: %s, hardware threads: %d\n\n", kernels::isa_name(),
                default_num_threads());

    // 64 seeded input classes shared by every level (and the soak), with
    // one full per-prefix reference encode chain per class.
    const int num_classes = 64;
    std::vector<InputClass> classes;
    for (int c = 0; c < num_classes; ++c)
        classes.push_back(make_class(shape, steps, seed * 1000 + static_cast<std::uint64_t>(c)));
    const SaloEngine ref(config);
    std::vector<std::vector<Matrix<float>>> expected;
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (const InputClass& cls : classes)
            expected.push_back(reference_chain(ref, shape, cls, steps));
        std::printf("reference: %d per-prefix encode chains (%d prefixes each) "
                    "in %.0f ms\n\n",
                    num_classes, steps,
                    ms_between(t0, std::chrono::steady_clock::now()));
    }

    if (soak) {
        const SoakResult r = run_soak(config, shape, classes, expected, steps, seed);
        std::printf("soak: 64 streams (mixed 4..%d steps), 2 shards, chaos on "
                    "shard 0 (seed %llu)\n",
                    steps, static_cast<unsigned long long>(seed));
        std::printf("  submitted %llu, resolved %llu, completed %llu, failed %llu, "
                    "evicted streams %llu\n",
                    static_cast<unsigned long long>(r.submitted),
                    static_cast<unsigned long long>(r.resolved),
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.failed),
                    static_cast<unsigned long long>(r.evicted_streams));
        const bool no_lost = r.resolved == r.submitted;
        const bool chaos_hit = r.evicted_streams >= 1 && r.failed >= 1;
        std::printf("  gates: lost=%s typed=%s bit-identical=%s conserved=%s "
                    "tenants=%s chaos-exercised=%s\n",
                    no_lost ? "none" : "LOST", r.typed_errors_only ? "ok" : "FAIL",
                    r.bit_identical ? "ok" : "FAIL", r.conserved ? "ok" : "FAIL",
                    r.tenants_conserved ? "ok" : "FAIL", chaos_hit ? "ok" : "FAIL");
        return no_lost && r.typed_errors_only && r.bit_identical && r.conserved &&
                       r.tenants_conserved && chaos_hit
                   ? 0
                   : 1;
    }

    const int levels[] = {1, 64, 4096};
    std::vector<LevelResult> results;
    bool all_identical = true;
    for (int streams : levels) {
        const LevelResult r = run_level(config, shape, classes, expected, streams, steps);
        std::printf("%5d streams: %7llu steps in %8.1f ms -> %9.0f tokens/s  "
                    "(batches %llu, max batch %zu, step derives %llu, "
                    "bit-identical %s)\n",
                    r.streams, static_cast<unsigned long long>(r.steps_total),
                    r.wall_ms, r.tokens_per_s,
                    static_cast<unsigned long long>(r.batches), r.max_batch,
                    static_cast<unsigned long long>(r.step_derives),
                    r.bit_identical ? "yes" : "NO");
        all_identical = all_identical && r.bit_identical;
        results.push_back(r);
    }

    if (!json_path.empty()) {
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::strftime(date, sizeof date, "%Y-%m-%d", std::gmtime(&now));
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"bench\": \"decode\",\n"
           << "  \"schema_version\": 1,\n"
           << "  \"date\": \"" << date << "\",\n"
           << "  \"seed\": " << seed << ",\n"
           << "  \"pattern\": \"band-span-" << decode_window_span(shape.bands)
           << "-plus-" << shape.globals.size() << "-globals\",\n"
           << "  \"heads\": " << shape.heads << ",\n"
           << "  \"head_dim\": " << shape.head_dim << ",\n"
           << "  \"steps_per_stream\": " << steps << ",\n"
           << "  \"input_classes\": " << num_classes << ",\n"
           << "  \"fidelity\": \"functional\",\n"
           << "  \"kernel_isa\": \"" << kernels::isa_name() << "\",\n"
           << "  \"hardware_threads\": " << default_num_threads() << ",\n"
           << "  \"levels\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const LevelResult& r = results[i];
            os << "    {\n"
               << "      \"streams\": " << r.streams << ",\n"
               << "      \"steps_total\": " << r.steps_total << ",\n"
               << "      \"wall_ms\": " << r.wall_ms << ",\n"
               << "      \"tokens_per_s\": " << r.tokens_per_s << ",\n"
               << "      \"batches\": " << r.batches << ",\n"
               << "      \"max_batch\": " << r.max_batch << ",\n"
               << "      \"step_derives\": " << r.step_derives << ",\n"
               << "      \"plan_cache_hit_rate\": " << r.plan_cache_hit_rate << ",\n"
               << "      \"bit_identical\": " << (r.bit_identical ? "true" : "false")
               << "\n    }";
            if (i + 1 < results.size()) os << ",";
            os << "\n";
        }
        os << "  ],\n"
           << "  \"bit_identical\": " << (all_identical ? "true" : "false") << "\n"
           << "}\n";
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    return all_identical ? 0 : 1;
}
