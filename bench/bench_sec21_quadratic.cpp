// Reproduces the §2.1 motivation experiment: the latency of one dense
// attention layer grows quadratically with sequence length.
//
// Two views are printed:
//   * MEASURED — our own float dense-attention implementation timed on the
//     host CPU (the quadratic-growth claim is platform-independent);
//   * MODELED — the calibrated GTX-1080Ti model, whose anchors are the
//     paper's own measurements (9.20 ms at n=2048, 145.70 ms at n=8192).
#include <chrono>
#include <iostream>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/baseline.hpp"

namespace {

double measure_dense_ms(int n, int d, int heads) {
    using clock = std::chrono::steady_clock;
    salo::Rng rng(42);
    const auto q = salo::random_matrix(n, d, rng);
    const auto k = salo::random_matrix(n, d, rng);
    const auto v = salo::random_matrix(n, d, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    // One warm-up head, then time `heads` heads (a full layer).
    (void)salo::dense_attention(q, k, v, scale);
    const auto start = clock::now();
    for (int h = 0; h < heads; ++h) (void)salo::dense_attention(q, k, v, scale);
    const auto stop = clock::now();
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
    using namespace salo;
    std::cout << "=== Section 2.1: quadratic latency growth of dense attention ===\n\n";

    std::cout << "--- Measured on this host (our float implementation, 4 heads, d=64) ---\n\n";
    AsciiTable measured({"n", "latency (ms)", "ratio vs previous n"});
    double prev = 0.0;
    for (int n : {64, 128, 256, 512}) {
        const double ms = measure_dense_ms(n, 64, 4);
        measured.add_row({std::to_string(n), fmt(ms, 2),
                          prev > 0.0 ? fmt(ms / prev, 2) + "x" : "-"});
        prev = ms;
    }
    measured.print();
    std::cout << "(doubling n should roughly quadruple latency)\n\n";

    std::cout << "--- Modeled GTX-1080Ti (paper anchors: 9.20 ms @2048, 145.70 ms @8192) ---\n\n";
    const auto gpu = gtx_1080ti();
    AsciiTable modeled({"n", "latency (ms)", "paper"});
    for (int n : {512, 1024, 2048, 4096, 8192}) {
        std::string paper = "-";
        if (n == 2048) paper = "9.20";
        if (n == 8192) paper = "145.70";
        modeled.add_row({std::to_string(n), fmt(dense_attention_ms(gpu, n, 768), 2), paper});
    }
    modeled.print();
    const double ratio =
        dense_attention_ms(gpu, 8192, 768) / dense_attention_ms(gpu, 2048, 768);
    std::cout << "\nn=8192 vs n=2048 ratio: " << fmt(ratio, 2)
              << "x (paper: ~16x quadratic growth)\n";
    return 0;
}
