// Reproduces Table 3: impact of SALO's quantization (Q3.4 inputs, 16-bit
// outputs) on downstream accuracy.
//
// The paper fine-tunes Longformer on IMDB/Hyperpartisan and ViL on
// ImageNet-1K; offline we use synthetic classification stand-ins that
// exercise the same error path (see DESIGN.md substitutions). Difficulty is
// set so the Original accuracies resemble the paper's rows; the claim under
// test is that the Quantized column matches the Original column.
#include <iostream>

#include "common/table.hpp"
#include "workload/quant_study.hpp"

int main() {
    using namespace salo;
    SaloConfig config;
    config.geometry.rows = 16;
    config.geometry.cols = 16;

    struct Dataset {
        QuantStudyConfig study;
        double paper_original;
        double paper_quantized;
    };
    std::vector<Dataset> datasets;
    {
        QuantStudyConfig s;  // stand-in for Longformer/IMDB (95.34 / 95.20)
        s.name = "IMDB (synthetic stand-in)";
        s.n = 192;
        s.window = 32;
        s.head_dim = 32;
        s.num_classes = 2;
        s.confuser_prob = 0.84;
        s.num_samples = 400;
        s.seed = 101;
        datasets.push_back({s, 95.34, 95.20});
    }
    {
        QuantStudyConfig s;  // stand-in for Longformer/Hyperpartisan (93.42 / 93.46)
        s.name = "Hyperpartisan (synthetic stand-in)";
        s.n = 256;
        s.window = 32;
        s.head_dim = 32;
        s.num_classes = 2;
        s.confuser_prob = 0.87;
        s.num_samples = 400;
        s.seed = 202;
        datasets.push_back({s, 93.42, 93.46});
    }
    {
        QuantStudyConfig s;  // stand-in for ViL/ImageNet-1K (82.87 / 82.80)
        s.name = "ImageNet-1K (synthetic stand-in)";
        s.n = 144;
        s.window = 24;
        s.head_dim = 32;
        s.num_classes = 8;
        s.confuser_prob = 0.78;
        s.num_samples = 400;
        s.seed = 303;
        datasets.push_back({s, 82.87, 82.80});
    }

    std::cout << "=== Table 3: original vs quantized model accuracy ===\n\n";
    AsciiTable table({"Dataset", "Original (ours)", "Quantized (ours)", "Delta",
                      "Original (paper)", "Quantized (paper)"});
    for (const auto& ds : datasets) {
        const auto result = run_quant_study(ds.study, config);
        table.add_row({ds.study.name, fmt(result.accuracy_original, 2),
                       fmt(result.accuracy_quantized, 2), fmt(result.delta(), 2),
                       fmt(ds.paper_original, 2), fmt(ds.paper_quantized, 2)});
    }
    table.print();
    std::cout << "\nClaim under test: quantization deltas stay within a few tenths\n"
                 "of a point, matching the paper's conclusion that SALO's fixed-point\n"
                 "datapath does not degrade accuracy.\n";
    return 0;
}
