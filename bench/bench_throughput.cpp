// End-to-end functional-simulation throughput: the seed's sequential scalar
// path vs the overhauled engine (SIMD kernels, arena parts, persistent
// worker pool with tile-level parallelism).
//
// The baseline configuration (`seed_reference_1t`) runs the original
// datapath loops preserved behind SaloConfig::reference_datapath on one
// thread — the seed's execution path. Every configuration is verified to
// produce bit-identical outputs and identical simulation statistics before
// any number is reported.
//
//   bench_throughput [--quick] [--heads N] [--json <path>]
//
// --json writes a machine-readable snapshot (the BENCH_throughput.json
// trajectory at the repo root); wired up as the CMake target
// `bench_throughput_json`.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/salo.hpp"
#include "sim/kernels.hpp"
#include "workload/workloads.hpp"

namespace {

using salo::AttentionWorkload;
using salo::LayerResult;
using salo::QkvSet;
using salo::SaloConfig;
using salo::SaloEngine;

double median_ms(const SaloConfig& config, const AttentionWorkload& w, const QkvSet& qkv,
                 int reps, LayerResult* out) {
    // One engine for all reps: the persistent pool and its arenas are
    // steady-state across calls, which is exactly what we want to measure.
    const SaloEngine engine(config);
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        LayerResult r = engine.run(w.pattern, qkv.q, qkv.k, qkv.v, w.scale());
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (out) *out = std::move(r);
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

bool identical(const LayerResult& a, const LayerResult& b) {
    if (a.stats.cycles != b.stats.cycles || a.stats.tiles != b.stats.tiles)
        return false;
    for (int s = 0; s < 5; ++s)
        if (a.stats.stage_totals.stage[s] != b.stats.stage_totals.stage[s]) return false;
    const salo::ActivityStats& aa = a.stats.activity;
    const salo::ActivityStats& ba = b.stats.activity;
    if (aa.mac_ops != ba.mac_ops || aa.exp_ops != ba.exp_ops ||
        aa.valid_slots != ba.valid_slots || aa.array_slots != ba.array_slots ||
        aa.pe_cycles != ba.pe_cycles)
        return false;
    for (int h = 0; h < a.output.count(); ++h)
        if (salo::max_abs_diff(a.output[h], b.output[h]) != 0.0) return false;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    int heads_override = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) quick = true;
        else if (std::strcmp(argv[i], "--heads") == 0 && i + 1 < argc)
            heads_override = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::cerr << "usage: bench_throughput [--quick] [--heads N] [--json path]\n";
            return 2;
        }
    }

    AttentionWorkload w = salo::longformer_base_4096();
    if (heads_override > 0) w.heads = heads_override;
    else if (quick) w.heads = 2;
    const int reps = quick ? 1 : 3;
    const QkvSet qkv = salo::make_qkv(w, 42);

    SaloConfig seed_cfg;
    seed_cfg.num_threads = 1;
    seed_cfg.reference_datapath = true;
    SaloConfig opt1_cfg;
    opt1_cfg.num_threads = 1;
    SaloConfig opt8_cfg;
    opt8_cfg.num_threads = 8;

    std::printf("workload: Longformer-4096, %d heads, d=%d (functional fidelity)\n",
                w.heads, w.head_dim);
    std::printf("kernel ISA: %s, hardware threads: %d, reps: %d (median)\n\n",
                salo::kernels::isa_name(), salo::default_num_threads(), reps);

    LayerResult r_seed, r_opt1, r_opt8;
    const double seed_ms = median_ms(seed_cfg, w, qkv, reps, &r_seed);
    std::printf("%-24s %9.1f ms\n", "seed_reference_1t", seed_ms);
    const double opt1_ms = median_ms(opt1_cfg, w, qkv, reps, &r_opt1);
    std::printf("%-24s %9.1f ms   (%.2fx)\n", "optimized_1t", opt1_ms, seed_ms / opt1_ms);
    const double opt8_ms = median_ms(opt8_cfg, w, qkv, reps, &r_opt8);
    std::printf("%-24s %9.1f ms   (%.2fx)\n", "optimized_8t", opt8_ms, seed_ms / opt8_ms);

    const bool bit_identical = identical(r_seed, r_opt1) && identical(r_seed, r_opt8);
    std::printf("\nbit-identical outputs + stats across all configs: %s\n",
                bit_identical ? "yes" : "NO — BUG");
    std::printf("layer cycles: %lld, tiles: %lld\n",
                static_cast<long long>(r_seed.stats.cycles),
                static_cast<long long>(r_seed.stats.tiles));

    if (!json_path.empty()) {
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::strftime(date, sizeof date, "%Y-%m-%d", std::gmtime(&now));
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"bench\": \"throughput\",\n"
           << "  \"schema_version\": 1,\n"
           << "  \"date\": \"" << date << "\",\n"
           << "  \"workload\": \"longformer-base-4096\",\n"
           << "  \"n\": " << w.n() << ",\n"
           << "  \"heads\": " << w.heads << ",\n"
           << "  \"head_dim\": " << w.head_dim << ",\n"
           << "  \"fidelity\": \"functional\",\n"
           << "  \"kernel_isa\": \"" << salo::kernels::isa_name() << "\",\n"
           << "  \"hardware_threads\": " << salo::default_num_threads() << ",\n"
           << "  \"reps\": " << reps << ",\n"
           << "  \"seed_reference_1t_ms\": " << seed_ms << ",\n"
           << "  \"optimized_1t_ms\": " << opt1_ms << ",\n"
           << "  \"optimized_8t_ms\": " << opt8_ms << ",\n"
           << "  \"speedup_1t_vs_seed\": " << seed_ms / opt1_ms << ",\n"
           << "  \"speedup_8t_vs_seed\": " << seed_ms / opt8_ms << ",\n"
           << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << ",\n"
           << "  \"layer_cycles\": " << r_seed.stats.cycles << "\n"
           << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return bit_identical ? 0 : 1;
}
