// Reproduces Table 2: key parameters of the evaluated attention layers,
// plus the exact sparsity our pattern library computes (the paper quotes
// window/n with edge effects ignored) and the schedule statistics.
#include <iostream>

#include "common/table.hpp"
#include "model/salo_model.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;
    std::cout << "=== Table 2: Key parameters of attention layers ===\n\n";
    AsciiTable table({"Parameters", "Sequence length", "Window size", "Hidden size",
                      "Global Token", "Sparsity (paper)", "Sparsity (exact)"});
    for (const auto& w : paper_workloads()) {
        std::string seq = std::to_string(w.n());
        std::string win = std::to_string(w.window);
        if (w.pattern.grid_width() > 0) {
            const int gw = w.pattern.grid_width();
            const int gh = w.n() / gw;
            seq = std::to_string(gh) + "x" + std::to_string(gw);
            win = "15x15";
        }
        table.add_row({w.name, seq, win, std::to_string(w.hidden()),
                       std::to_string(w.pattern.global_tokens().size()),
                       fmt(w.paper_sparsity, 3), fmt(w.pattern.sparsity(), 3)});
    }
    table.print();

    std::cout << "\n=== Schedule statistics (32x32 array, packed mode) ===\n\n";
    AsciiTable sched({"Workload", "Tiles", "Catch-up", "Occupancy", "Heads",
                      "Layer latency (ms @1GHz)"});
    const SaloConfig config;
    for (const auto& w : paper_workloads()) {
        const auto est = estimate_layer(w, config);
        sched.add_row({w.name, std::to_string(est.schedule.total_tiles()),
                       std::to_string(est.schedule.catchup_tiles),
                       fmt(est.schedule.slot_occupancy(), 3), std::to_string(w.heads),
                       fmt(est.latency_ms, 3)});
    }
    sched.print();
    return 0;
}
