// Reproduces Figure 7b: energy saving of SALO vs CPU and GPU.
//
// SALO energy: synthesis-model power (Table 1: ~533 mW) x cycle-model
// latency. Baseline energy: implied per-workload device powers (inverted
// from the paper's Figure 7a/7b pairs; see DESIGN.md) x modeled latencies.
#include <iostream>

#include "common/table.hpp"
#include "model/energy.hpp"

int main() {
    using namespace salo;
    const SaloConfig config;
    const auto cpu = xeon_e5_2630_v3();
    const auto gpu = gtx_1080ti();

    struct PaperRow {
        const char* name;
        double cpu_saving;
        double gpu_saving;
    };
    const PaperRow paper[] = {{"Longformer", 196.90, 336.05},
                              {"ViL-stage1", 187.53, 281.29},
                              {"ViL-stage2", 167.15, 198.78}};

    std::cout << "=== Figure 7b: energy saving of SALO vs CPU and GPU ===\n";
    std::cout << "(SALO power from the synthesis model: "
              << fmt(synthesize(config.geometry).total_power_w() * 1000.0, 2)
              << " mW)\n\n";
    AsciiTable table({"Workload", "SALO E (mJ)", "CPU E (mJ)", "GPU E (mJ)",
                      "CPU saving", "paper", "GPU saving", "paper"});
    AsciiBarChart cpu_chart("Energy saving vs CPU (ours)");
    AsciiBarChart gpu_chart("Energy saving vs GPU (ours)");
    double cpu_sum = 0.0, gpu_sum = 0.0;
    const auto workloads = paper_workloads();
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto& w = workloads[i];
        const auto vs_cpu = compare_energy(w, cpu, config);
        const auto vs_gpu = compare_energy(w, gpu, config);
        cpu_sum += vs_cpu.energy_saving();
        gpu_sum += vs_gpu.energy_saving();
        table.add_row({w.name, fmt(vs_cpu.salo_energy_mj(), 4),
                       fmt(vs_cpu.device_energy_mj(), 2),
                       fmt(vs_gpu.device_energy_mj(), 2),
                       fmt(vs_cpu.energy_saving(), 2) + "x",
                       fmt(paper[i].cpu_saving, 2) + "x",
                       fmt(vs_gpu.energy_saving(), 2) + "x",
                       fmt(paper[i].gpu_saving, 2) + "x"});
        cpu_chart.add(w.name, vs_cpu.energy_saving());
        gpu_chart.add(w.name, vs_gpu.energy_saving());
    }
    const double n = static_cast<double>(workloads.size());
    table.add_row({"Average", "-", "-", "-", fmt(cpu_sum / n, 2) + "x", "183.86x",
                   fmt(gpu_sum / n, 2) + "x", "272.04x"});
    table.print();
    std::cout << "\n";
    cpu_chart.print();
    std::cout << "\n";
    gpu_chart.print();
    return 0;
}
